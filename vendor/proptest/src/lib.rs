//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset used by `tests/tests/proptest_props.rs`:
//!
//! * the [`proptest!`] macro over `fn name(pat in strategy, ...) { .. }`
//!   items (attributes and doc comments pass through),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * `any::<T>()` for integers and `bool`,
//! * integer `Range`/`RangeInclusive` strategies,
//! * tuple strategies, and [`collection::vec`] with fixed or ranged length.
//!
//! Cases are generated deterministically (seed = test-independent constant
//! + case index); there is no shrinking — on failure the panic message
//! carries the case number so the run can be replayed exactly. The case
//! count defaults to 32 and can be raised with `PROPTEST_CASES`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-test case source of randomness.
pub type TestRng = StdRng;

/// Number of cases per property (env `PROPTEST_CASES`, default 32).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

/// Builds the deterministic RNG for one case of one property.
pub fn case_rng(case: u32) -> TestRng {
    StdRng::seed_from_u64(0xC5A7_0000_0000_0000 ^ u64::from(case))
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over a type's whole domain.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait VecLen {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecLen for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl VecLen for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of `element` with length drawn from `len`.
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions that run their body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases();
            for case in 0..cases {
                let mut proptest_rng = $crate::case_rng(case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                let run = || $body;
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {case}/{cases} of `{}` failed (deterministic; replay with PROPTEST_CASES>{case})",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// `assert!` with proptest's name (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Sampled values respect their strategies.
        #[test]
        fn strategies_in_bounds(
            n in 3usize..=7,
            x in 0u32..256,
            pair in (1u32..=8, any::<bool>()),
            v in collection::vec(any::<u64>(), 2),
            w in collection::vec(0i32..5, 1..4),
        ) {
            prop_assert!((3..=7).contains(&n));
            prop_assert!(x < 256);
            prop_assert!((1..=8).contains(&pair.0));
            prop_assert_eq!(v.len(), 2);
            prop_assert!(!w.is_empty() && w.len() < 4);
            prop_assert!(w.iter().all(|&e| (0..5).contains(&e)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::case_rng(3);
        let mut b = crate::case_rng(3);
        let s = 0u32..1000;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
