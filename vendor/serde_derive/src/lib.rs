//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! marker (nothing calls serde's serialization machinery — report output
//! goes through the `bench` crate's own CSV writers), so these derives
//! expand to nothing. If a future PR needs real serialization, vendor the
//! genuine serde stack or emit impls here.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
