//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Provides the `Serialize`/`Deserialize` names this workspace imports:
//! the derive macros (no-ops, from the vendored `serde_derive`) and empty
//! marker traits so `use serde::{Deserialize, Serialize}` resolves both
//! namespaces exactly as with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize` (no methods; the no-op
/// derive does not implement it).
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}
