//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, API-compatible subset of rand 0.8: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — fast, deterministic, and statistically solid for the
//! simulation/fuzzing workloads here. It intentionally does NOT reproduce
//! upstream rand's value streams.

/// A type that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The random-generator trait: everything is derived from `next_u64`.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly over the type's whole domain
    /// (floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64 - lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64 + (rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(1u32..=8);
            assert!((1..=8).contains(&y));
            let z: f64 = r.gen();
            assert!((0.0..1.0).contains(&z));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
