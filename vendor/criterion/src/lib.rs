//! Offline stand-in for [criterion](https://docs.rs/criterion) 0.5.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of the criterion harness API the workspace benches use —
//! [`Criterion`], [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher::iter`], [`BenchmarkId::new`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — with plain
//! mean-wall-clock timing and no statistical analysis. Each bench prints
//! one `label  mean ms/iter (n=..)` line. `CRITERION_SAMPLES` overrides
//! the per-bench iteration count.

use std::hint;
use std::time::Instant;

/// Opaque value barrier preventing the optimiser from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark label, optionally parameterised (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Runs the closure under timing; handed to bench bodies.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock per iteration, filled in by [`Bencher::iter`].
    mean_s: f64,
}

impl Bencher {
    /// Times `f` over the configured number of samples (one warm-up first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_s = start.elapsed().as_secs_f64() / self.samples.max(1) as f64;
    }
}

/// A named group of benches sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-bench iteration count (`CRITERION_SAMPLES` overrides).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("CRITERION_SAMPLES").is_err() {
            self.samples = n.max(1);
        }
        self
    }

    /// Times `f` and prints one `group/label  mean ms/iter (n=..)` line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            mean_s: 0.0,
        };
        f(&mut b);
        println!(
            "{}/{}  {:.3} ms/iter (n={})",
            self.name,
            id.label,
            b.mean_s * 1e3,
            self.samples
        );
        self
    }

    /// [`BenchmarkGroup::bench_function`] with an explicit input borrow.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op; results were printed as they ran).
    pub fn finish(&mut self) {}
}

/// The benchmark harness context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Default iteration count unless `CRITERION_SAMPLES` or
    /// [`BenchmarkGroup::sample_size`] says otherwise.
    fn default_samples() -> usize {
        std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10)
            .max(1)
    }

    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: Self::default_samples(),
            _c: self,
        }
    }

    /// A one-off bench outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let samples = Self::default_samples();
        let mut b = Bencher {
            samples,
            mean_s: 0.0,
        };
        f(&mut b);
        println!(
            "{}  {:.3} ms/iter (n={})",
            id.label,
            b.mean_s * 1e3,
            samples
        );
        self
    }
}

/// Declares a bench group function, criterion-0.5 style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's bench targets in order.
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness args (e.g. `--bench` from `cargo bench`) are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_bench_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &3usize, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // One warm-up + `samples` timed runs.
        assert_eq!(runs, 3);
    }
}
