//! Deterministic fault-injection harness for the resource-governance
//! layer: chaos-seeded Unknown storms, worker panics, and round
//! starvation inside the parallel sweep, plus cross-thread cancellation
//! and deadline interruption of the CDCL solver. The invariants under
//! test are the soundness half of the robustness contract:
//!
//! * a faulted sweep still returns, and its output is functionally
//!   equivalent to the input (faults lose merges, never correctness);
//! * fault plans are pure functions of `(seed, round, task)`, so a
//!   chaos run is thread-count-invariant for a pinned shard count;
//! * deterministic round starvation only ever *removes* merges relative
//!   to the fault-free run (merge subset);
//! * a panicking shard is contained: reported in `shard_failures`, its
//!   pairs degraded to undecided, the process never aborts;
//! * a cancelled or deadline-cut solver returns `Unknown` promptly with
//!   its incremental state intact — the follow-up unthrottled solve on
//!   the *same* solver agrees with a fresh one.

use aig::check::{exhaustive_equiv, sim_equiv};
use proptest::prelude::*;
use sat::{solve_cnf, Budget, Cancellation, SolveResult, Solver, SolverConfig};
use std::time::{Duration, Instant};
use sweep::{fraig, ChaosPlan, FraigParams};
use workloads::cnf_gen::random_3sat;
use workloads::lec::{adder_miter, miter, restructure};
use workloads::random_aig::{random_aig, RandomAigParams};

fn test_miter(seed: u64, n_gates: usize) -> aig::Aig {
    let g = random_aig(
        &RandomAigParams {
            n_pis: 7,
            n_gates,
            n_pos: 2,
            ..RandomAigParams::default()
        },
        seed,
    );
    miter(&g, &restructure(&g, seed ^ 0xFA))
}

proptest! {
    /// Unknown storms at a random rate: whatever queries the chaos eats,
    /// the sweep must terminate with an equivalent graph, and the
    /// outcome must be identical at 1 and 4 threads (fault rolls are
    /// functions of (seed, round, task), never of the schedule).
    #[test]
    fn unknown_storm_is_sound_and_thread_invariant(
        seed in 0u64..10_000,
        rate in 0u16..1025,
    ) {
        let m = test_miter(seed, 60);
        let base = FraigParams {
            shards: 4,
            chaos: Some(ChaosPlan { seed, unknown_in_1024: rate, ..ChaosPlan::default() }),
            ..FraigParams::default()
        };
        let seq = fraig(&m, &FraigParams { threads: 1, ..base.clone() });
        let par = fraig(&m, &FraigParams { threads: 4, ..base.clone() });
        prop_assert_eq!(&seq.stats, &par.stats, "chaos run diverged across thread counts");
        prop_assert!(exhaustive_equiv(&m, &seq.aig), "faulted sweep must stay equivalent");
    }

    /// Deterministic round starvation (every query Unknown from round r
    /// on): rounds before r are untouched, so the starved run's merges
    /// are exactly a prefix — and therefore a subset — of the fault-free
    /// run's.
    #[test]
    fn round_starvation_merges_are_a_subset(seed in 0u64..10_000, from in 0usize..4) {
        let m = test_miter(seed, 50);
        let base = FraigParams { shards: 2, threads: 1, ..FraigParams::default() };
        let free = fraig(&m, &base);
        let starved = fraig(&m, &FraigParams {
            chaos: Some(ChaosPlan { seed, starve_from_round: Some(from), ..ChaosPlan::default() }),
            ..base.clone()
        });
        prop_assert!(starved.stats.proved <= free.stats.proved, "faults can only lose merges");
        prop_assert!(starved.aig.num_ands() >= free.aig.num_ands());
        prop_assert!(exhaustive_equiv(&m, &starved.aig));
        if from >= free.stats.rounds {
            // Chaos that never fires must change nothing at all.
            prop_assert_eq!(&starved.stats, &free.stats);
        }
    }

    /// Worker panics at a random rate: contained, reported, sound, and
    /// thread-count-invariant. The process-level assertion is implicit —
    /// an escaped panic would abort the test binary.
    #[test]
    fn panic_storm_is_contained_and_thread_invariant(seed in 0u64..10_000) {
        let m = test_miter(seed, 40);
        let base = FraigParams {
            shards: 4,
            chaos: Some(ChaosPlan { seed, panic_in_1024: 300, ..ChaosPlan::default() }),
            ..FraigParams::default()
        };
        let seq = fraig(&m, &FraigParams { threads: 1, ..base.clone() });
        let par = fraig(&m, &FraigParams { threads: 4, ..base.clone() });
        prop_assert_eq!(&seq.stats, &par.stats, "panic containment diverged across threads");
        prop_assert!(exhaustive_equiv(&m, &seq.aig));
    }

    /// Cancelling a solver mid-search from another thread: the solve
    /// returns promptly (Unknown, unless it legitimately finished first),
    /// and after lifting the token the SAME solver instance reaches the
    /// verdict of a fresh, never-cancelled solver.
    #[test]
    fn cross_thread_cancellation_is_prompt_and_recoverable(seed in 0u64..10_000) {
        let f = random_3sat(40, 4.26, seed);
        let cancel = Cancellation::new();
        let mut s = Solver::from_cnf(&f, SolverConfig::kissat_like());
        s.set_budget(Budget::UNLIMITED.with_cancel(cancel.clone()));
        let canceller = {
            let c = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(300));
                c.cancel();
            })
        };
        let t0 = Instant::now();
        let throttled = s.solve();
        let waited = t0.elapsed();
        canceller.join().expect("canceller thread must not panic");
        prop_assert!(waited < Duration::from_secs(20), "cancellation was not prompt");
        if matches!(throttled, SolveResult::Unknown) {
            prop_assert!(s.stats().cancellations >= 1, "Unknown must be attributed to the token");
        }
        // Recover on the same incremental state.
        cancel.reset();
        s.set_budget(Budget::UNLIMITED);
        let resumed = s.solve();
        let (fresh, _) = solve_cnf(&f, SolverConfig::kissat_like(), Budget::UNLIMITED);
        match (&resumed, &fresh) {
            (SolveResult::Sat(model), SolveResult::Sat(_)) => {
                prop_assert!(f.eval(model), "resumed model must satisfy the formula");
            }
            (SolveResult::Unsat, SolveResult::Unsat) => {}
            other => panic!("cancelled-then-resumed solver diverged from fresh: {other:?}"),
        }
    }

    /// Deadline exhaustion mid-search leaves the incremental state
    /// intact: an expired-deadline solve returns Unknown, and the same
    /// solver under a fresh unlimited budget agrees with a fresh solver.
    #[test]
    fn deadline_interrupt_preserves_solver_state(seed in 0u64..10_000) {
        let f = random_3sat(36, 4.26, seed);
        let mut s = Solver::from_cnf(&f, SolverConfig::cadical_like());
        s.set_budget(Budget::timeout(Duration::ZERO));
        prop_assert!(matches!(s.solve(), SolveResult::Unknown));
        prop_assert!(s.stats().deadline_interrupts >= 1);
        s.set_budget(Budget::UNLIMITED);
        let resumed = s.solve();
        let (fresh, _) = solve_cnf(&f, SolverConfig::cadical_like(), Budget::UNLIMITED);
        match (&resumed, &fresh) {
            (SolveResult::Sat(model), SolveResult::Sat(_)) => prop_assert!(f.eval(model)),
            (SolveResult::Unsat, SolveResult::Unsat) => {}
            other => panic!("deadline-cut solver diverged from fresh: {other:?}"),
        }
    }
}

/// A guaranteed panic storm (every query dies) on a real miter: the sweep
/// must survive every shard failing in every round, report the failures,
/// merge nothing, and hand back an untouched (still equivalent) graph.
#[test]
fn total_panic_storm_still_returns_sound_result() {
    let m = adder_miter(5);
    let out = fraig(
        &m,
        &FraigParams {
            threads: 2,
            shards: 2,
            chaos: Some(ChaosPlan {
                seed: 7,
                panic_in_1024: 1024,
                ..ChaosPlan::default()
            }),
            ..FraigParams::default()
        },
    );
    assert!(out.stats.shard_failures >= 1, "failures must be counted");
    assert_eq!(out.stats.proved, 0, "no query survives to prove anything");
    assert!(sim_equiv(&m, &out.aig, 16, 3));
}

/// A whole-sweep deadline in the past: zero rounds run, the interruption
/// is recorded, and the untouched graph is returned.
#[test]
fn expired_sweep_deadline_yields_partial_but_sound_result() {
    let m = adder_miter(5);
    let out = fraig(
        &m,
        &FraigParams {
            threads: 1,
            shards: 2,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..FraigParams::default()
        },
    );
    assert_eq!(out.stats.rounds, 0);
    assert!(out.stats.deadline_interrupts >= 1);
    assert!(sim_equiv(&m, &out.aig, 16, 3));
}
