//! Property-based tests (proptest) over the core data structures and the
//! cross-crate invariants DESIGN.md §6 calls out.

use aig::npn::npn_canon;
use aig::{Aig, Cube, Lit, Tt};
use cnf::{Cnf, CnfLit};
use proptest::prelude::*;
use sat::{reference::dpll_sat, solve_cnf, Budget, SolverConfig};

proptest! {
    /// ISOP covers compute exactly the function they cover (3..=7 vars).
    #[test]
    fn isop_cover_equals_function(nvars in 3usize..=7, words in proptest::collection::vec(any::<u64>(), 2)) {
        let n_words = if nvars <= 6 { 1 } else { 2 };
        let f = Tt::from_words(nvars, words[..n_words].to_vec());
        let cover = f.isop();
        let mut acc = Tt::zero(nvars);
        for c in &cover {
            acc = acc | c.to_tt(nvars);
        }
        prop_assert_eq!(acc, f);
    }

    /// Branching complexity is bounded by the minterm counts of both sides
    /// (each ISOP cube covers at least one minterm exclusively) and is at
    /// least 2 for any non-constant function (one cube per side).
    ///
    /// Note: exact *permutation* invariance does NOT hold — ISOP covers are
    /// irredundant, not minimum, so the cube count can vary slightly with
    /// variable order; the LUT mapper prices the concrete cut function it
    /// will encode, which is exactly what `lut2cnf` emits.
    #[test]
    fn branching_complexity_bounds(bits in any::<u16>()) {
        let f = Tt::from_u16(bits);
        let c = f.branching_complexity();
        let onset = f.count_ones() as usize;
        let offset = 16 - onset;
        prop_assert!(c <= onset + offset.max(1) + 1);
        if bits != 0 && bits != u16::MAX {
            prop_assert!(c >= 2, "non-constant needs a cube on each side");
        } else {
            prop_assert_eq!(c, 1, "constants have one tautology cube on one side");
        }
    }

    /// Output complementation swaps the two ISOP sides but keeps the total.
    #[test]
    fn branching_complexity_output_symmetric(bits in any::<u16>()) {
        let f = Tt::from_u16(bits);
        prop_assert_eq!(f.branching_complexity(), (!&f).branching_complexity());
    }

    /// NPN canonisation: the canon is reachable and class-invariant.
    #[test]
    fn npn_canon_sound(bits in any::<u16>()) {
        let (canon, t) = npn_canon(bits);
        prop_assert_eq!(t.apply(bits), canon);
        let (canon2, _) = npn_canon(canon);
        prop_assert_eq!(canon, canon2);
    }

    /// Lit encoding roundtrips.
    #[test]
    fn lit_roundtrip(var in 0u32..1_000_000, compl in any::<bool>()) {
        let l = Lit::from_var(var, compl);
        prop_assert_eq!(l.var(), var);
        prop_assert_eq!(l.is_compl(), compl);
        prop_assert_eq!(!!l, l);
    }

    /// Cube evaluation matches its truth-table expansion.
    #[test]
    fn cube_tt_agree(mask in 0u32..256, vals in 0u32..256, m in 0u32..256) {
        let c = Cube { mask, vals };
        let t = c.to_tt(8);
        prop_assert_eq!(c.eval(m), t.bit(m as usize));
    }

    /// AIGER text roundtrip preserves the function of random graphs.
    #[test]
    fn aiger_roundtrip(seed in any::<u64>()) {
        let g = arbitrary_aig(seed, 5, 25);
        let text = aig::aiger::to_aag_string(&g);
        let h = aig::aiger::from_aag_str(&text).unwrap();
        prop_assert!(aig::check::exhaustive_equiv(&g, &h));
    }

    /// The CDCL solver agrees with the DPLL oracle on arbitrary small CNFs.
    #[test]
    fn solver_matches_oracle(clauses in proptest::collection::vec(
        proptest::collection::vec((1u32..=8, any::<bool>()), 1..4), 1..30)) {
        let mut f = Cnf::new();
        f.ensure_vars(8);
        for c in &clauses {
            let mut lits: Vec<CnfLit> = Vec::new();
            for &(v, pos) in c {
                if lits.iter().all(|l| l.var() != v) {
                    lits.push(CnfLit::new(v, pos));
                }
            }
            f.add_clause(lits);
        }
        let expected = dpll_sat(&f);
        let (res, _) = solve_cnf(&f, SolverConfig::kissat_like(), Budget::UNLIMITED);
        prop_assert_eq!(res.is_sat(), expected);
        if let sat::SolveResult::Sat(model) = res {
            prop_assert!(f.eval(&model));
        }
    }

    /// Synthesis operations preserve function on arbitrary graphs
    /// (simulation check; SAT-proved in `synth_equivalence.rs`).
    #[test]
    fn synth_ops_preserve_function(seed in any::<u64>(), op_idx in 0usize..5) {
        let g = arbitrary_aig(seed, 6, 40);
        let op = synth::SynthOp::ALL[op_idx];
        let h = synth::apply_op(&g, op);
        prop_assert!(aig::check::exhaustive_equiv(&g, &h));
    }

    /// SAT sweeping preserves function on arbitrary graphs and never
    /// grows them.
    #[test]
    fn fraig_preserves_function_and_never_grows(seed in any::<u64>()) {
        let g = arbitrary_aig(seed, 6, 35);
        let out = sweep::fraig(&g, &sweep::FraigParams::default());
        prop_assert!(aig::check::exhaustive_equiv(&g, &out.aig));
        prop_assert!(out.aig.num_ands() <= g.num_ands());
        prop_assert_eq!(
            out.stats.proved + out.stats.disproved + out.stats.unknown,
            out.stats.sat_calls as usize
        );
    }

    /// CNF presolve is equisatisfiable and its model reconstruction is
    /// sound on arbitrary small formulas.
    #[test]
    fn presolve_equisatisfiable(clauses in proptest::collection::vec(
        proptest::collection::vec((1u32..=9, any::<bool>()), 1..5), 1..35)) {
        let mut f = Cnf::new();
        f.ensure_vars(9);
        for c in &clauses {
            let mut lits: Vec<CnfLit> = Vec::new();
            for &(v, pos) in c {
                if lits.iter().all(|l| l.var() != v) {
                    lits.push(CnfLit::new(v, pos));
                }
            }
            f.add_clause(lits);
        }
        let expected = dpll_sat(&f);
        let (res, _) = sat::presolve::solve_cnf_presolved(
            &f,
            SolverConfig::cadical_like(),
            Budget::UNLIMITED,
            &sat::presolve::PresolveConfig::default(),
        );
        prop_assert_eq!(res.is_sat(), expected);
        if let sat::SolveResult::Sat(model) = res {
            prop_assert!(f.eval(&model), "reconstructed model must satisfy the input");
        }
    }

    /// Mapping preserves function on arbitrary graphs for both costs.
    #[test]
    fn mapping_preserves_function(seed in any::<u64>(), k in 3usize..=6) {
        let g = arbitrary_aig(seed, 6, 30);
        let params = mapper::MapParams { k, max_cuts: 8, rounds: 2, depth_slack: Some(0) };
        for cost in [true, false] {
            let net = if cost {
                mapper::map_luts(&g, &params, &mapper::BranchingCost::new())
            } else {
                mapper::map_luts(&g, &params, &mapper::AreaCost)
            };
            for m in 0..64usize {
                let ins: Vec<bool> = (0..6).map(|i| m >> i & 1 != 0).collect();
                prop_assert_eq!(g.eval(&ins), net.eval(&ins));
            }
        }
    }
}

/// Deterministic "arbitrary" AIG from a seed (proptest shrinks the seed).
fn arbitrary_aig(seed: u64, n_pis: usize, n_gates: usize) -> Aig {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut g = Aig::new();
    let pis = g.add_pis(n_pis);
    let mut pool: Vec<Lit> = pis;
    for _ in 0..n_gates {
        let a = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
        let b = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
        let l = match rng.gen_range(0..4) {
            0 | 1 => g.and(a, b),
            2 => g.or(a, b),
            _ => g.xor(a, b),
        };
        pool.push(l);
    }
    let n = pool.len();
    g.add_po(pool[n - 1]);
    g
}
