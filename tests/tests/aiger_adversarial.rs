//! Adversarial regression suite for the AIGER front door — the untrusted
//! input surface of the `csat` CLI (`solve`/`encode`/`stats`/`fraig` read
//! combinational files, `bmc` reads sequential ones). Every malformed
//! shape must come back as a clean [`ParseAigerError`], never a panic, an
//! overflowing index computation, or a header-driven giant allocation.

use aig::aiger::{from_aag_str, from_seq_aag_str, read_aig_binary, to_aag_string, ParseAigerError};
use proptest::prelude::*;

fn expect_malformed(input: &str, why: &str) {
    match from_seq_aag_str(input) {
        Err(ParseAigerError::Malformed(_)) => {}
        Err(other) => panic!("{why}: expected Malformed, got {other}"),
        Ok(m) => panic!(
            "{why}: parser accepted bad input (pis={} latches={} pos={})",
            m.num_pis(),
            m.num_latches(),
            m.num_pos()
        ),
    }
}

#[test]
fn truncated_files_are_errors() {
    expect_malformed("", "empty file");
    expect_malformed("aag", "magic only");
    expect_malformed("aag 3 2 0 1 1\n2\n", "missing second input");
    expect_malformed("aag 3 2 0 1 1\n2\n4\n", "missing output");
    expect_malformed("aag 3 2 0 1 1\n2\n4\n6\n", "missing and line");
    expect_malformed("aag 1 0 1 0 0\n", "missing latch line");
}

#[test]
fn malformed_latch_lines_are_errors() {
    expect_malformed("aag 1 0 1 0 0\n2\n", "latch line with one field");
    expect_malformed("aag 1 0 1 0 0\n2 x\n", "non-numeric next-state");
    expect_malformed("aag 1 0 1 0 0\nx 2\n", "non-numeric current-state");
    expect_malformed("aag 1 0 1 0 0\n3 2\n", "odd current-state literal");
    expect_malformed("aag 1 0 1 0 0\n0 2\n", "constant current-state");
    expect_malformed("aag 1 0 1 0 0\n2 3 1\n", "non-zero reset value");
    expect_malformed("aag 1 0 1 0 0\n2 3 0 9\n", "trailing latch tokens");
    // Latch-count mismatch: the header promises two latches, the body
    // delivers one (the would-be second latch line is the symbol table
    // in a real file, EOF here).
    expect_malformed("aag 2 0 2 0 0\n2 3\n", "latch count mismatch");
}

#[test]
fn overflowing_literals_are_errors() {
    // Beyond u32: must fail integer parsing, not wrap into a bogus var.
    expect_malformed("aag 1 1 0 0 0\n99999999999\n", "input literal > u32");
    expect_malformed(
        "aag 1 0 1 0 0\n2 99999999999\n",
        "latch next-state literal > u32",
    );
    expect_malformed("aag 99999999999 1 0 0 0\n2\n", "header field > u32");
    // u32::MAX itself parses as an integer but exceeds the header M.
    expect_malformed("aag 1 1 0 0 0\n4294967295\n", "literal above header M");
}

#[test]
fn lying_headers_are_errors_not_allocations() {
    // I + L + A overflows u32: checked arithmetic, not a wrap that
    // sneaks past the `M >= I + L + A` validation.
    expect_malformed("aag 5 4294967295 0 0 4294967295\n", "header I + A overflow");
    // A huge M in a tiny file must be rejected up front (plausibility
    // cap), not answered with a multi-gigabyte variable map.
    expect_malformed("aag 4000000000 1 0 0 0\n2\n", "implausibly large M");
    expect_malformed("aag 3 2 0 1 1 7 7\n", "extended header sections");
    expect_malformed("aag 1 1\n2\n", "header with too few fields");
    expect_malformed("aag 1 x 0 0 0\n2\n", "non-numeric header field");
}

#[test]
fn duplicate_definitions_are_errors() {
    // Two inputs claiming the same variable.
    expect_malformed("aag 2 2 0 0 0\n2\n2\n", "duplicate input variable");
    // A latch reusing an input's variable.
    expect_malformed("aag 2 1 1 0 0\n2\n2 3\n", "latch reuses input variable");
    // An and-gate redefining an input.
    expect_malformed("aag 2 1 0 0 1\n2\n2 2 2\n", "and lhs redefines input");
    // A second header line where a body line belongs.
    expect_malformed("aag 1 1 0 0 0\naag 1 1 0 0 0\n2\n", "duplicate header");
}

#[test]
fn binary_reader_rejects_lying_headers() {
    let parse = |text: &str| read_aig_binary(std::io::Cursor::new(text.as_bytes().to_vec()));
    assert!(matches!(
        parse("aig 4000000000 4000000000 0 0 0\n"),
        Err(ParseAigerError::Malformed(_))
    ));
    // I + A wrapping to M must not satisfy the M = I + A identity.
    assert!(matches!(
        parse("aig 4 4294967295 0 0 9\n"),
        Err(ParseAigerError::Malformed(_))
    ));
    // Truncated delta stream after a well-formed header.
    assert!(parse("aig 2 1 0 1 1\n2\n").is_err());
}

#[test]
fn well_formed_input_still_parses() {
    // The hardening must not reject the AIGER spec's own examples.
    let and = from_aag_str("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n").unwrap();
    assert_eq!(and.eval(&[true, true]), vec![true]);
    let toggle = from_seq_aag_str("aag 1 0 1 2 0\n2 3\n2\n3\n").unwrap();
    assert_eq!(toggle.num_latches(), 1);
    // Sparse variable numbering below M stays legal.
    let sparse = from_aag_str("aag 7 2 0 1 1\n2\n4\n14\n14 2 4\n").unwrap();
    assert_eq!(sparse.eval(&[true, true]), vec![true]);
}

proptest! {
    /// Arbitrary byte soup near the AIGER grammar must never panic the
    /// parser — any outcome other than a clean `Result` fails the test
    /// by aborting the process. Half the cases are prefixed with a real
    /// magic token so the fuzz reaches past the first check.
    #[test]
    fn fuzzed_text_never_panics(
        bytes in collection::vec(0usize..16, 0..64),
        variant in 0u8..4,
    ) {
        const CHARSET: &[u8; 16] = b"0123456789 \n-agx";
        let soup: String = bytes.iter().map(|&b| CHARSET[b] as char).collect();
        let text = match variant {
            0 => soup,
            1 => format!("aag {soup}"),
            2 => format!("aag 9 1 1 1 1\n{soup}"),
            _ => format!("aig {soup}"),
        };
        let _ = from_aag_str(&text);
        let _ = from_seq_aag_str(&text);
        let _ = read_aig_binary(std::io::Cursor::new(text.into_bytes()));
    }

    /// Truncating a well-formed file at any byte must yield Ok (a prefix
    /// can happen to be complete) or a clean error — never a panic.
    #[test]
    fn truncation_never_panics(cut in 0usize..200, seed in 0u64..32) {
        let g = workloads::random_aig::random_aig(
            &workloads::random_aig::RandomAigParams::default(), seed);
        let text = to_aag_string(&g);
        let cut = cut.min(text.len());
        // Cut on a char boundary (the text is ASCII, so every byte is).
        let _ = from_aag_str(&text[..cut]);
        let _ = from_seq_aag_str(&text[..cut]);
    }
}
