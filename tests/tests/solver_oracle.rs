//! Differential testing of the CDCL solver at integration scale: random
//! CNFs against the DPLL oracle, circuit CNFs against semantic ground
//! truth, budget semantics, and preset agreement.
//!
//! UNSAT verdicts are never taken on faith — neither the CDCL solver's
//! nor the DPLL reference's: every unsatisfiable case is routed through
//! [`csat_tests::solve_certified`] / [`csat_tests::assert_certified_unsat`],
//! which demand a certificate the independent backward RUP checker
//! accepts, giving a second witness that shares no code with either
//! solver.

use cnf::{Cnf, CnfLit};
use csat_tests::{assert_certified_unsat, solve_certified};
use rand::{Rng, SeedableRng};
use sat::{reference::dpll_sat, solve_cnf, Budget, SolveResult, Solver, SolverConfig};
use workloads::dataset::{generate, DatasetParams};

fn random_cnf(rng: &mut rand::rngs::StdRng, n_vars: u32, n_clauses: usize, max_len: usize) -> Cnf {
    let mut f = Cnf::new();
    f.ensure_vars(n_vars);
    for _ in 0..n_clauses {
        // Cap at the variable count: clauses hold distinct variables, so a
        // longer request could never be filled.
        let len = rng.gen_range(1..=max_len.min(n_vars as usize));
        let mut clause: Vec<CnfLit> = Vec::new();
        while clause.len() < len {
            let v = rng.gen_range(1..=n_vars);
            if clause.iter().all(|l| l.var() != v) {
                clause.push(CnfLit::new(v, rng.gen()));
            }
        }
        f.add_clause(clause);
    }
    f
}

#[test]
fn agrees_with_dpll_oracle_on_400_random_formulas() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    for iter in 0..400 {
        let n = rng.gen_range(3..=14);
        let m = (n as f64 * rng.gen_range(2.0..6.0)) as usize;
        let f = random_cnf(&mut rng, n, m, 3);
        let expected = dpll_sat(&f);
        for cfg in [SolverConfig::kissat_like(), SolverConfig::cadical_like()] {
            // solve_certified panics unless any UNSAT answer carries a
            // checker-verified certificate — the independent witness
            // backing the DPLL agreement below.
            let res = solve_certified(&f, cfg);
            match (&res, expected) {
                (SolveResult::Sat(model), true) => assert!(f.eval(model), "iter {iter}"),
                (SolveResult::Unsat, false) => {}
                other => panic!("iter {iter}: solver/oracle mismatch {other:?}"),
            }
        }
    }
}

#[test]
fn mixed_length_clauses_cross_checked() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
    for iter in 0..150 {
        let n = rng.gen_range(4..=10);
        let m = rng.gen_range(5..=40);
        let f = random_cnf(&mut rng, n, m, 5);
        let expected = dpll_sat(&f);
        let res = solve_certified(&f, SolverConfig::default());
        assert_eq!(res.is_sat(), expected, "iter {iter}");
    }
}

#[test]
fn verdicts_match_instance_labels() {
    let set = generate(
        &DatasetParams {
            count: 9,
            min_bits: 4,
            max_bits: 8,
            hard_multipliers: false,
        },
        0x5A5A,
    );
    for inst in &set {
        let (formula, map) = cnf::tseitin_sat_instance(&inst.aig);
        let (res, stats) = solve_cnf(&formula, SolverConfig::cadical_like(), Budget::UNLIMITED);
        if let Some(expected) = inst.expected {
            assert_eq!(res.is_sat(), expected, "{}", inst.name);
        }
        if res.is_unsat() {
            // The label said UNSAT and the solver agreed — demand the
            // independent checker's signature on top.
            solve_certified(&formula, SolverConfig::cadical_like());
        }
        if let SolveResult::Sat(model) = &res {
            let ins = map.decode_inputs(model);
            assert_eq!(inst.aig.eval(&ins), vec![true], "{}", inst.name);
        }
        // Branching statistics must be populated on non-trivial runs.
        assert!(stats.propagations > 0, "{}", inst.name);
    }
}

#[test]
fn budget_is_respected_and_resumable() {
    // A formula needing real search: pigeonhole 8/7.
    let holes = 7u32;
    let pigeons = holes + 1;
    let var = |p: u32, h: u32| p * holes + h + 1;
    let mut f = Cnf::new();
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| CnfLit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                f.add_clause(vec![CnfLit::neg(var(p1, h)), CnfLit::neg(var(p2, h))]);
            }
        }
    }
    let mut config = SolverConfig::kissat_like();
    config.proof = true;
    let mut solver = Solver::from_cnf(&f, config);
    solver.set_budget(Budget::conflicts(50));
    assert_eq!(
        solver.solve(),
        SolveResult::Unknown,
        "tiny budget must interrupt"
    );
    assert!(solver.stats().conflicts >= 50);
    // Lifting the budget and re-solving completes the proof — and the
    // certificate, which spans both the interrupted and the resumed
    // search, must still satisfy the independent checker.
    solver.set_budget(Budget::UNLIMITED);
    assert_eq!(solver.solve(), SolveResult::Unsat);
    assert_certified_unsat(&solver, &[]);
}

#[test]
fn decision_counts_differ_between_encodings() {
    // The branching metric must be sensitive to the encoding — otherwise
    // the whole framework would be unobservable.
    let set = generate(
        &DatasetParams {
            count: 5,
            min_bits: 8,
            max_bits: 10,
            hard_multipliers: false,
        },
        77,
    );
    let mut any_diff = false;
    for inst in &set {
        let (t, _) = cnf::tseitin_sat_instance(&inst.aig);
        let net = mapper::map_luts(
            &inst.aig,
            &mapper::MapParams::default(),
            &mapper::BranchingCost::new(),
        );
        let (l, _) = cnf::lut_to_cnf_sat_instance(&net);
        let (_, st) = solve_cnf(&t, SolverConfig::kissat_like(), Budget::UNLIMITED);
        let (_, sl) = solve_cnf(&l, SolverConfig::kissat_like(), Budget::UNLIMITED);
        if st.decisions != sl.decisions {
            any_diff = true;
        }
    }
    assert!(any_diff, "encodings never changed branching counts");
}
