//! Adversarial regression suite for the DIMACS front door — the only
//! untrusted input surface of the pipeline (`csat` bin, workload corpora).
//! Every malformed shape must come back as a clean `ParseDimacsError`,
//! never a panic, and well-formed input must round-trip through the
//! writer byte-for-value.

use cnf::dimacs::{from_dimacs_str, to_dimacs_string, ParseDimacsError};
use cnf::{Cnf, CnfLit};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn expect_malformed(input: &str, why: &str) {
    match from_dimacs_str(input) {
        Err(ParseDimacsError::Malformed(_)) => {}
        Err(other) => panic!("{why}: expected Malformed, got {other}"),
        Ok(f) => panic!(
            "{why}: parser accepted bad input ({} vars, {} clauses)",
            f.num_vars(),
            f.num_clauses()
        ),
    }
}

#[test]
fn glued_header_token_rejected() {
    // `p` must be its own whitespace-delimited token.
    expect_malformed("pcnf 2 1\n1 -2 0\n", "glued pcnf header");
    expect_malformed("p cnf2 1\n1 0\n", "glued format token");
    // The well-formed spelling of the same instance parses.
    let f = from_dimacs_str("p cnf 2 1\n1 -2 0\n").unwrap();
    assert_eq!((f.num_vars(), f.num_clauses()), (2, 1));
    // Arbitrary whitespace between header tokens is fine.
    let g = from_dimacs_str("p   cnf\t2   1\n1 -2 0\n").unwrap();
    assert_eq!(f, g);
}

#[test]
fn extreme_literals_rejected_not_panicking() {
    // i32::MIN parses as an i32 but its negation overflows: must be a
    // parse error, not a downstream panic or wrap.
    expect_malformed("p cnf 3 1\n-2147483648 0\n", "i32::MIN literal");
    expect_malformed("-2147483648 0\n", "i32::MIN literal, headerless");
    // Magnitudes beyond i32 fail integer parsing.
    expect_malformed("2147483648 0\n", "literal beyond i32::MAX");
    expect_malformed("99999999999999999999 0\n", "absurd literal");
    // i32::MAX itself is representable and accepted.
    let f = from_dimacs_str("2147483647 0\n").unwrap();
    assert_eq!(f.num_vars(), i32::MAX as u32);
}

#[test]
fn clause_count_mismatch_rejected() {
    expect_malformed("p cnf 2 2\n1 -2 0\n", "fewer clauses than declared");
    expect_malformed("p cnf 2 1\n1 0\n-2 0\n", "more clauses than declared");
    expect_malformed("p cnf 2 0\n1 0\n", "clauses after a zero declaration");
    // The declared count is checked against clauses as *parsed*: a
    // tautology is normalised away by `Cnf`, but still counts.
    let f = from_dimacs_str("p cnf 2 2\n1 -1 0\n2 0\n").unwrap();
    assert_eq!(f.num_clauses(), 1, "tautology dropped after counting");
}

#[test]
fn duplicate_and_junk_headers_rejected() {
    expect_malformed("p cnf 2 1\np cnf 2 1\n1 -2 0\n", "duplicate header");
    expect_malformed("p cnf 2 1 7\n1 -2 0\n", "trailing token in header");
    expect_malformed("p cnf -2 1\n1 0\n", "negative variable count");
    // A header alone must not be able to command a per-variable
    // allocation: counts beyond i32::MAX (the literal range) are rejected.
    expect_malformed("p cnf 4294967295 0\n", "variable count beyond i32::MAX");
    expect_malformed("p dnf 1 1\n1 0\n", "wrong format name");
    expect_malformed("p\n", "bare p line");
}

#[test]
fn crlf_and_whitespace_variants_parse() {
    let f = from_dimacs_str("c comment\r\np cnf 3 2\r\n1 -2 0\r\n2 3 0\r\n").unwrap();
    assert_eq!((f.num_vars(), f.num_clauses()), (3, 2));
    // Clause split across CRLF lines.
    let g = from_dimacs_str("p cnf 3 2\r\n1\r\n-2 0\r\n2 3 0\r\n").unwrap();
    assert_eq!(f, g);
    // Mixed endings and trailing blank lines.
    let h = from_dimacs_str("p cnf 3 2\n1 -2 0\r\n2 3 0\n\r\n\n").unwrap();
    assert_eq!(f, h);
}

#[test]
fn unterminated_and_zero_literals_rejected() {
    expect_malformed("p cnf 2 1\n1 -2\n", "missing terminating zero");
    expect_malformed("1 2 3\n", "headerless unterminated clause");
    expect_malformed("p cnf 1 1\n2 0\n", "variable beyond declared count");
    expect_malformed("p cnf 2 1\n1 x 0\n", "non-integer literal");
}

fn random_formula(seed: u64) -> Cnf {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..=24u32);
    let m = rng.gen_range(0..=40usize);
    let mut f = Cnf::new();
    f.ensure_vars(n);
    for _ in 0..m {
        let len = rng.gen_range(1..=4.min(n as usize));
        let mut clause: Vec<CnfLit> = Vec::new();
        while clause.len() < len {
            let v = rng.gen_range(1..=n);
            if clause.iter().all(|l| l.var() != v) {
                clause.push(CnfLit::new(v, rng.gen()));
            }
        }
        f.add_clause(clause);
    }
    f
}

proptest! {
    /// write → read is the identity on normalised formulas: the writer's
    /// header always matches what the hardened reader validates.
    #[test]
    fn write_read_roundtrip(seed in any::<u64>()) {
        let f = random_formula(seed);
        let text = to_dimacs_string(&f);
        let g = from_dimacs_str(&text).expect("writer output must parse");
        prop_assert_eq!(&f, &g);
        // And a second lap is stable.
        prop_assert_eq!(to_dimacs_string(&g), text);
    }
}
