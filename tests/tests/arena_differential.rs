//! Differential tests for the flat-arena clause database: the arena-backed
//! CDCL solver against the DPLL reference on generated corpora, plus
//! GC-under-load checks that force clause-database reductions mid-solve
//! and assert the watch/reason invariants survive arena compaction.
//!
//! UNSAT verdicts get a second, independent witness: they are routed
//! through the `checker` crate's backward RUP checker (via
//! [`csat_tests::solve_certified`] / [`csat_tests::assert_certified_unsat`])
//! rather than resting on DPLL-reference agreement alone.

use cnf::{Cnf, CnfLit};
use csat_tests::{assert_certified_unsat, solve_certified};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sat::{reference::dpll_sat, solve_cnf, Budget, SolveResult, Solver, SolverConfig};
use workloads::cnf_gen::pigeonhole;
use workloads::dataset::{generate, DatasetParams};

fn random_cnf(rng: &mut rand::rngs::StdRng, n_vars: u32, n_clauses: usize, max_len: usize) -> Cnf {
    let mut f = Cnf::new();
    f.ensure_vars(n_vars);
    for _ in 0..n_clauses {
        let len = rng.gen_range(1..=max_len.min(n_vars as usize));
        let mut clause: Vec<CnfLit> = Vec::new();
        while clause.len() < len {
            let v = rng.gen_range(1..=n_vars);
            if clause.iter().all(|l| l.var() != v) {
                clause.push(CnfLit::new(v, rng.gen()));
            }
        }
        f.add_clause(clause);
    }
    f
}

#[test]
fn arena_agrees_with_reference_on_seed_corpus() {
    // The built-in workload corpus, Tseitin-encoded: verdicts must match
    // the instance labels and every SAT model must evaluate the circuit.
    let set = generate(
        &DatasetParams {
            count: 8,
            min_bits: 4,
            max_bits: 7,
            hard_multipliers: false,
        },
        0xA12E,
    );
    for inst in &set {
        let (formula, map) = cnf::tseitin_sat_instance(&inst.aig);
        for cfg in [SolverConfig::kissat_like(), SolverConfig::cadical_like()] {
            let res = solve_certified(&formula, cfg);
            if let Some(expected) = inst.expected {
                assert_eq!(res.is_sat(), expected, "{}", inst.name);
            }
            if let SolveResult::Sat(model) = &res {
                assert!(formula.eval(model), "{}: model must satisfy CNF", inst.name);
                let ins = map.decode_inputs(model);
                assert_eq!(inst.aig.eval(&ins), vec![true], "{}", inst.name);
            }
        }
    }
}

#[test]
fn arena_agrees_with_dpll_on_random_mixed_formulas() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD1FF);
    for iter in 0..200 {
        let n = rng.gen_range(3..=13);
        let m = rng.gen_range(4..=(n as usize * 6));
        let f = random_cnf(&mut rng, n, m, 4);
        let expected = dpll_sat(&f);
        let res = solve_certified(&f, SolverConfig::default());
        assert_eq!(res.is_sat(), expected, "iter {iter}");
        if let SolveResult::Sat(model) = &res {
            assert!(f.eval(model), "iter {iter}: invalid model");
        }
    }
}

proptest! {
    /// Arena solver verdict == DPLL verdict and models are valid, on
    /// proptest-driven random formulas (both presets).
    #[test]
    fn arena_verdicts_match_dpll(seed in any::<u64>(), n in 3u32..=11, density in 20u32..=55) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = (n * density / 10) as usize;
        let f = random_cnf(&mut rng, n, m, 3);
        let expected = dpll_sat(&f);
        for cfg in [SolverConfig::kissat_like(), SolverConfig::cadical_like()] {
            let res = solve_certified(&f, cfg);
            prop_assert_eq!(res.is_sat(), expected);
            if let SolveResult::Sat(model) = &res {
                prop_assert!(f.eval(model), "invalid model");
            }
        }
    }
}

#[test]
fn binary_tier_agrees_with_dpll_on_random_2sat() {
    // Pure 2-SAT (plus occasional units): every clause lives in the inline
    // binary tier, so propagation, conflict analysis, and minimisation all
    // run on literal-valued reasons. Densities straddle the 2-SAT
    // SAT/UNSAT threshold (m/n = 1) to exercise both verdicts.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB1A2);
    for iter in 0..300 {
        let n = rng.gen_range(3..=14);
        let m = rng.gen_range(2..=(n as usize * 3));
        let f = random_cnf(&mut rng, n, m, 2);
        let expected = dpll_sat(&f);
        for cfg in [SolverConfig::kissat_like(), SolverConfig::cadical_like()] {
            let mut cfg = cfg;
            cfg.proof = true;
            let mut solver = Solver::from_cnf(&f, cfg);
            let res = solver.solve();
            solver.assert_integrity();
            assert_eq!(res.is_sat(), expected, "iter {iter}");
            if res.is_unsat() {
                // Binary-tier learnts (2-literal, inline) must show up in
                // the certificate like any other lemma.
                assert_certified_unsat(&solver, &[]);
            }
            if let SolveResult::Sat(model) = &res {
                assert!(f.eval(model), "iter {iter}: invalid model");
            }
        }
    }
}

#[test]
fn binary_tier_handles_chains_and_implication_cycles() {
    // Structured binary workloads: long implication chains, consistent
    // cycles (all-equal loops), and contradictory cycles (x -> ... -> ¬x
    // with x forced). Everything resolves inside the binary tier.
    let chain = |f: &mut Cnf, from: u32, to: u32| {
        f.add_clause(vec![CnfLit::neg(from), CnfLit::pos(to)]); // from -> to
    };

    // A 64-long chain forced from the front: SAT, fully propagated.
    let mut f = Cnf::new();
    for i in 1..64 {
        chain(&mut f, i, i + 1);
    }
    f.add_unit(CnfLit::pos(1));
    let mut s = Solver::from_cnf(&f, SolverConfig::default());
    let res = s.solve();
    s.assert_integrity();
    match res {
        SolveResult::Sat(m) => assert!(m[..64].iter().all(|&b| b), "chain forces all"),
        other => panic!("expected SAT, got {other:?}"),
    }

    // An implication cycle is consistent (all-equal) ...
    let mut g = Cnf::new();
    for i in 1..=8 {
        chain(&mut g, i, i % 8 + 1);
    }
    assert!(dpll_sat(&g));
    let (res, _) = solve_cnf(&g, SolverConfig::default(), Budget::UNLIMITED);
    assert!(res.is_sat());

    // ... until one edge is flipped into x1 -> ... -> ¬x1 and x1 is
    // forced: the strongly connected component is contradictory.
    g.add_clause(vec![CnfLit::neg(8), CnfLit::neg(1)]);
    g.add_unit(CnfLit::pos(1));
    assert!(!dpll_sat(&g));
    let cfg = SolverConfig {
        proof: true,
        ..Default::default()
    };
    let mut s = Solver::from_cnf(&g, cfg);
    let res = s.solve();
    s.assert_integrity();
    assert!(res.is_unsat(), "contradictory implication cycle");
    assert_certified_unsat(&s, &[]);
}

#[test]
fn mixed_binary_and_long_clauses_reduce_and_collect_soundly() {
    // Binary-heavy mixtures under an aggressive reduction cadence: learnt
    // twos go to the inline tier (never deleted), long learnts churn
    // through reduce + GC, and the verdict must still match DPLL.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x2B1D);
    let mut cfg = SolverConfig::kissat_like();
    cfg.reduce_first = 50;
    cfg.reduce_increment = 25;
    cfg.proof = true;
    for iter in 0..40 {
        let n = rng.gen_range(8..=16);
        let mut f = Cnf::new();
        f.ensure_vars(n);
        // ~2/3 binary clauses, ~1/3 ternary.
        for _ in 0..(n as usize * 4) {
            let len = if rng.gen_range(0..3) < 2 { 2 } else { 3 };
            let mut clause: Vec<CnfLit> = Vec::new();
            while clause.len() < len {
                let v = rng.gen_range(1..=n);
                if clause.iter().all(|l| l.var() != v) {
                    clause.push(CnfLit::new(v, rng.gen()));
                }
            }
            f.add_clause(clause);
        }
        let expected = dpll_sat(&f);
        let mut solver = Solver::from_cnf(&f, cfg.clone());
        let res = solver.solve();
        solver.assert_integrity();
        assert_eq!(res.is_sat(), expected, "iter {iter}");
        if res.is_unsat() {
            // The log must survive reduce_db churn: deletions are steps
            // too, and the checker replays them.
            assert_certified_unsat(&solver, &[]);
        }
        if let SolveResult::Sat(model) = &res {
            assert!(f.eval(model), "iter {iter}: invalid model");
        }
    }
}

#[test]
fn gc_under_load_keeps_watches_and_reasons_intact() {
    // An aggressive reduction cadence forces many delete + compact cycles
    // while the solver is mid-proof; interrupting on a conflict budget
    // lets us audit the watch lists and reason table between bursts.
    let mut cfg = SolverConfig::kissat_like();
    cfg.reduce_first = 60;
    cfg.reduce_increment = 30;
    cfg.proof = true;
    let mut solver = Solver::from_cnf(&pigeonhole(7), cfg);
    solver.assert_integrity();
    let mut verdict = None;
    for burst in 1..=400u64 {
        solver.set_budget(Budget::conflicts(burst * 120));
        let res = solver.solve();
        solver.assert_integrity();
        if res != SolveResult::Unknown {
            verdict = Some(res);
            break;
        }
    }
    assert_eq!(verdict, Some(SolveResult::Unsat), "php(7) is UNSAT");
    let stats = solver.stats();
    assert!(stats.gcs > 0, "reduction cadence must trigger arena GC");
    assert!(stats.deleted_clauses > 0, "reduction must delete clauses");
    // The certificate survived budget interruptions, reductions, AND
    // arena GC — the independent checker signs off on the whole history.
    assert_certified_unsat(&solver, &[]);
}

#[test]
fn gc_under_load_incremental_queries_stay_sound() {
    // GC between incremental queries with assumptions: learnt clauses are
    // reduced and compacted, later queries must still answer correctly.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x6C0D);
    let mut cfg = SolverConfig::cadical_like();
    cfg.reduce_first = 40;
    cfg.reduce_increment = 20;
    cfg.proof = true;
    let f = random_cnf(&mut rng, 16, 70, 3);
    let mut solver = Solver::from_cnf(&f, cfg);
    for iter in 0..30 {
        let a = CnfLit::new(rng.gen_range(1..=16), rng.gen());
        let b = CnfLit::new(rng.gen_range(1..=16), rng.gen());
        let assumptions = if b.var() == a.var() {
            vec![a]
        } else {
            vec![a, b]
        };
        let res = solver.solve_with_assumptions(&assumptions);
        solver.assert_integrity();
        // Reference: assumptions added as units to a copy.
        let mut f_units = f.clone();
        for &l in &assumptions {
            f_units.add_unit(l);
        }
        assert_eq!(res.is_sat(), dpll_sat(&f_units), "iter {iter}");
        if res.is_unsat() {
            // Assumption-UNSAT certificates: formula + assumption units
            // must refute, via the cumulative incremental log.
            assert_certified_unsat(&solver, &assumptions);
        }
        if let SolveResult::Sat(model) = &res {
            assert!(f_units.eval(model), "iter {iter}: model breaks assumptions");
        }
    }
}
