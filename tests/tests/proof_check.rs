//! Certificate round-trip suite: every UNSAT verdict the solver produces
//! must come with a proof the independent backward RUP checker accepts,
//! and corrupted certificates must be rejected.

use checker::{CheckError, CheckOutcome, Proof};
use cnf::{tseitin_sat_instance, Cnf};
use csat_tests::{cnf_clauses, proof_from_log, solve_certified};
use proptest::prelude::*;
use sat::{Solver, SolverConfig};
use workloads::cnf_gen::{pigeonhole, random_2sat, random_3sat};
use workloads::lec::adder_miter;

/// Solves with proof logging on; on UNSAT returns the certificate and its
/// (asserted-valid) check outcome.
fn certificate(f: &Cnf, mut config: SolverConfig) -> Option<(Vec<Vec<i32>>, Proof, CheckOutcome)> {
    config.proof = true;
    let mut solver = Solver::from_cnf(f, config);
    if !solver.solve().is_unsat() {
        return None;
    }
    let formula = cnf_clauses(f);
    let proof = proof_from_log(solver.proof().expect("logging on"));
    let outcome = checker::check(&formula, &proof)
        .expect("UNSAT verdict must carry a checker-accepted certificate");
    Some((formula, proof, outcome))
}

/// The proof with step `idx` removed.
fn drop_step(proof: &Proof, idx: usize) -> Proof {
    let mut p = proof.clone();
    p.steps.remove(idx);
    p
}

/// The proof with literal `li` of step `si` polarity-flipped.
fn flip_lit(proof: &Proof, si: usize, li: usize) -> Proof {
    let mut p = proof.clone();
    p.steps[si].lits[li] = -p.steps[si].lits[li];
    p
}

/// Index of the (single) empty-clause addition.
fn empty_step(proof: &Proof) -> usize {
    proof
        .steps
        .iter()
        .position(|s| !s.delete && s.lits.is_empty())
        .expect("a genuine UNSAT proof ends with the empty clause")
}

#[test]
fn pigeonhole_certificates_verify_under_both_presets() {
    for holes in 2..=5 {
        let f = pigeonhole(holes);
        for config in [SolverConfig::kissat_like(), SolverConfig::cadical_like()] {
            let (_, proof, outcome) =
                certificate(&f, config).expect("pigeonhole formulas are UNSAT");
            assert!(outcome.verified_adds >= 1);
            assert!(
                proof.steps.iter().any(|s| !s.delete && s.lits.is_empty()),
                "genuine UNSAT must log the empty clause"
            );
        }
    }
}

#[test]
fn adder_miter_certificates_verify() {
    for bits in [2, 4, 8] {
        let (f, _) = tseitin_sat_instance(&adder_miter(bits));
        let (_, _, outcome) =
            certificate(&f, SolverConfig::default()).expect("equal adders: miter is UNSAT");
        assert!(outcome.verified_adds >= 1);
    }
}

#[test]
fn stripping_the_empty_clause_is_always_rejected() {
    let f = pigeonhole(4);
    let (formula, proof, _) = certificate(&f, SolverConfig::default()).unwrap();
    let truncated = drop_step(&proof, empty_step(&proof));
    assert_eq!(
        checker::check(&formula, &truncated),
        Err(CheckError::EmptyClauseMissing)
    );
}

#[test]
fn mutated_certificates_are_rejected() {
    let f = pigeonhole(4);
    let (formula, proof, outcome) = certificate(&f, SolverConfig::default()).unwrap();
    let empty = empty_step(&proof);
    let core: Vec<usize> = outcome
        .core_steps
        .iter()
        .copied()
        .filter(|&si| si != empty)
        .collect();
    assert!(!core.is_empty(), "php(4) needs derived lemmas");
    let mut drop_rejects = 0usize;
    let mut flip_rejects = 0usize;
    for &si in &core {
        if checker::check(&formula, &drop_step(&proof, si)).is_err() {
            drop_rejects += 1;
        }
        if checker::check(&formula, &flip_lit(&proof, si, 0)).is_err() {
            flip_rejects += 1;
        }
    }
    // Not every mutant is rejectable — a backward checker may route the
    // refutation around a dropped or damaged lemma — but for php(4) the
    // bulk of the core is load-bearing (empirically 27/30 drops and
    // 22/30 flips reject; deterministic for a fixed instance + preset).
    assert!(
        drop_rejects >= core.len() / 2,
        "{drop_rejects}/{}",
        core.len()
    );
    assert!(
        flip_rejects >= core.len() / 2,
        "{flip_rejects}/{}",
        core.len()
    );
}

proptest! {
    // Case count follows PROPTEST_CASES (CI: 16 default, 48 certified job).

    #[test]
    fn random_3sat_unsat_verdicts_are_certified(
        n in 5u32..16,
        ratio_pct in 400u32..600,
        seed in 0u64..1_000_000,
    ) {
        let f = random_3sat(n, f64::from(ratio_pct) / 100.0, seed);
        // Certified against BOTH presets: any UNSAT answer panics inside
        // solve_certified unless the independent checker accepts it.
        let a = solve_certified(&f, SolverConfig::kissat_like());
        let b = solve_certified(&f, SolverConfig::cadical_like());
        prop_assert_eq!(a.is_sat(), b.is_sat(), "presets disagree on {:?}", f);
    }

    #[test]
    fn random_2sat_unsat_verdicts_are_certified(
        n in 4u32..40,
        ratio_pct in 150u32..300,
        seed in 0u64..1_000_000,
    ) {
        let f = random_2sat(n, f64::from(ratio_pct) / 100.0, seed);
        solve_certified(&f, SolverConfig::kissat_like());
        solve_certified(&f, SolverConfig::cadical_like());
    }

    #[test]
    fn unsat_certificates_survive_mutation_screening(
        n in 6u32..14,
        seed in 0u64..1_000_000,
    ) {
        let f = random_3sat(n, 5.5, seed);
        if let Some((formula, proof, _)) = certificate(&f, SolverConfig::default()) {
            // Guaranteed-reject mutation: a proof without its terminal
            // empty clause asserts nothing.
            let truncated = drop_step(&proof, empty_step(&proof));
            prop_assert_eq!(
                checker::check(&formula, &truncated),
                Err(CheckError::EmptyClauseMissing)
            );
        }
    }
}
