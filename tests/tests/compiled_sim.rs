//! Differential tests: compiled simulation programs vs the interpreter.
//!
//! The compiled engine ([`aig::SimProgram`]) lowers an AIG into a flat
//! levelized program of fused word-ops; the block interpreter
//! ([`aig::sim::random_columns_par`] and friends) walks the graph per
//! block. Both must produce *bit-identical* signature matrices from the
//! same per-block RNG streams — the sweeper's equivalence-class
//! refinement depends on it, and `FraigParams::compiled_sim` switches
//! engines on the promise that nothing downstream can tell. These tests
//! are the promise's enforcement:
//!
//! * random AIGs: compiled full-mode matrix == interpreter matrix,
//!   across thread counts (1/2/4), with equal whole-matrix checksums;
//! * adversarial edge shapes (constant POs, PI passthroughs, duplicated
//!   and complemented POs, deep fanout-free chains that the outputs-only
//!   compiler fuses into multi-input ops);
//! * counterexample-style replay columns: `simulate_columns_prog` ==
//!   `simulate_columns_par` on explicit PI patterns;
//! * the compiled sequential stepper: `SeqAig::simulate_words` lanes ==
//!   64 independent step-by-step bool simulations (`unroll` + `eval` is
//!   covered by `mc_differential`; here the oracle is per-frame `eval`
//!   of the core, which shares no code with the stepper).

use aig::seq::SeqAig;
use aig::sim::{
    random_columns_par, random_columns_prog, simulate_columns_par, simulate_columns_prog,
    SimVectors,
};
use aig::{Aig, Lit, SimProgram};
use proptest::prelude::*;
use workloads::random_aig::{random_aig, RandomAigParams};

fn random_graph(gates: usize, pis: usize, seed: u64) -> Aig {
    random_aig(
        &RandomAigParams {
            n_pis: pis,
            n_gates: gates,
            n_pos: 4,
            ..RandomAigParams::default()
        },
        seed,
    )
}

/// Interpreter and compiled matrices for the same (seed, width) fill,
/// asserting bit-identity and checksum equality across thread counts.
fn assert_fill_identical(g: &Aig, n_words: usize, seed: u64) {
    let prog = SimProgram::full(g);
    let mut reference = SimVectors::zero(g.num_nodes(), n_words);
    random_columns_par(g, &mut reference, 0, n_words, seed, 1);
    for threads in [1usize, 2, 4] {
        let mut compiled = SimVectors::zero(g.num_nodes(), n_words);
        random_columns_prog(&prog, &mut compiled, 0, n_words, seed, threads);
        for v in 0..g.num_nodes() {
            assert_eq!(
                compiled.row(v),
                reference.row(v),
                "node {v} differs at {threads} threads"
            );
        }
        assert_eq!(compiled.checksum(), reference.checksum());
    }
}

/// Edge shapes the fold/fusion paths must survive: constant POs, PI
/// passthroughs (plain and complemented), one PO repeated, and a deep
/// fanout-free AND chain (fused into multi-input ops by the
/// outputs-only compiler, node-per-node in full mode).
fn edge_shape() -> Aig {
    let mut g = Aig::new();
    let pis = g.add_pis(9);
    g.add_po(Lit::FALSE);
    g.add_po(Lit::TRUE);
    g.add_po(pis[0]);
    g.add_po(!pis[0]);
    let chain = g.and_many(&pis);
    g.add_po(chain);
    g.add_po(chain);
    g.add_po(!chain);
    let x = g.xor(pis[1], pis[2]);
    let gated = g.and(x, !pis[3]);
    g.add_po(gated);
    g
}

#[test]
fn edge_shapes_fill_identically() {
    assert_fill_identical(&edge_shape(), 8, 0xDEAD_BEEF);
}

#[test]
fn edge_shape_outputs_only_program_matches_eval() {
    let g = edge_shape();
    let prog = SimProgram::outputs_only(&g);
    assert_eq!(prog.num_outputs(), g.num_pos());
    let n = g.num_pis();
    for pattern in 0..1u32 << n {
        let ins: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
        let expect = g.eval(&ins);
        let pi_words: Vec<u64> = ins.iter().map(|&b| u64::from(b)).collect();
        let mut vals = Vec::new();
        prog.run_dense(&mut vals, 1, &pi_words);
        for (o, &e) in expect.iter().enumerate() {
            assert_eq!(
                prog.output(o).read(&vals, 1, 0) & 1 != 0,
                e,
                "PO {o} under pattern {pattern:#b}"
            );
        }
    }
}

proptest! {
    /// Compiled full-mode fills are bit-identical to the interpreter on
    /// random AIGs, at thread counts 1/2/4, including the whole-matrix
    /// checksum.
    #[test]
    fn compiled_matches_interpreter_on_random_aigs(
        gates in 1usize..120,
        pis in 1usize..12,
        words in 1usize..10,
        seed in any::<u64>(),
    ) {
        assert_fill_identical(&random_graph(gates, pis, seed), words, seed);
    }

    /// Replay columns (explicit PI words, the sweeper's counterexample
    /// path) agree between engines at every thread count.
    #[test]
    fn compiled_replay_matches_interpreter(
        gates in 1usize..80,
        pis in 1usize..8,
        seed in any::<u64>(),
        pi_fill in any::<u64>(),
    ) {
        let g = random_graph(gates, pis, seed);
        let prog = SimProgram::full(&g);
        let patterns: Vec<Vec<u64>> = (0..3u64)
            .map(|w| (0..pis as u64).map(|i| pi_fill.rotate_left((w * 13 + i * 7) as u32)).collect())
            .collect();
        let jobs: Vec<(usize, &[u64])> = patterns
            .iter()
            .enumerate()
            .map(|(w, p)| (w * 2, p.as_slice()))
            .collect();
        let mut reference = SimVectors::zero(g.num_nodes(), 6);
        simulate_columns_par(&g, &mut reference, &jobs, 1);
        for threads in [1usize, 2, 4] {
            let mut compiled = SimVectors::zero(g.num_nodes(), 6);
            simulate_columns_prog(&prog, &mut compiled, &jobs, threads);
            for v in 0..g.num_nodes() {
                prop_assert_eq!(compiled.row(v), reference.row(v));
            }
        }
    }

    /// Every lane of the compiled sequential stepper is an independent
    /// machine: `simulate_words` with 64 packed traces matches 64
    /// separate per-frame `eval` walks of the core.
    #[test]
    fn stepper_lanes_match_per_frame_eval(
        pis in 1usize..3,
        latches in 1usize..4,
        gates in 4usize..40,
        frames in 1usize..6,
        seed in any::<u64>(),
        stim in any::<u64>(),
    ) {
        let core = random_aig(
            &RandomAigParams {
                n_pis: pis + latches,
                n_gates: gates,
                n_pos: 2 + latches,
                ..RandomAigParams::default()
            },
            seed,
        );
        let m = SeqAig::new(core, pis, latches);
        // Frame-major word stimulus; lane `l` reads bit `l`.
        let stimulus: Vec<Vec<u64>> = (0..frames)
            .map(|t| (0..pis).map(|i| stim.rotate_left((t * pis + i) as u32 * 11)).collect())
            .collect();
        let outs = m.simulate_words(&stimulus);
        prop_assert_eq!(outs.len(), frames);
        for lane in [0usize, 1, 31, 63] {
            // Bool oracle: walk the core with `eval`, threading latch
            // state by hand.
            let mut state = vec![false; latches];
            for (t, frame) in stimulus.iter().enumerate() {
                let mut ins: Vec<bool> =
                    frame.iter().map(|&w| w >> lane & 1 != 0).collect();
                ins.extend(state.iter().copied());
                let full = m.comb().eval(&ins);
                for (o, &e) in full[..m.num_pos()].iter().enumerate() {
                    prop_assert_eq!(
                        outs[t][o] >> lane & 1 != 0,
                        e,
                        "lane {} frame {} PO {}",
                        lane,
                        t,
                        o
                    );
                }
                state = full[m.num_pos()..].to_vec();
            }
        }
    }
}
