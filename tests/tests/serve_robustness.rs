//! Robustness contract of the `serve` query engine under deterministic
//! fault injection, cancellation, and cache corruption:
//!
//! * **Exactly-once responses**: every admitted query yields one response —
//!   no losses, no duplicates — under seeded panic/Unknown storms, per-query
//!   cancellation, and engine shutdown with a populated queue.
//! * **Soundness under faults**: any `Sat`/`Unsat` verdict that survives the
//!   chaos matches the query's ground truth (constructed equivalent vs.
//!   bug-injected LEC pairs), and SAT witnesses replay on the original
//!   circuits. Faults degrade answers to `Unknown`/`Failed`, never corrupt
//!   them.
//! * **Schedule independence**: fault rolls are pure functions of
//!   `(attempt, query id)`, so a fixed chaos seed produces bit-identical
//!   verdicts (witnesses included) at any worker count.
//! * **Cache integrity**: cache-hit verdicts are bit-identical to fresh
//!   solves; a corrupted UNSAT certificate is rejected by the checker,
//!   evicted, and the query falls through to a live solve whose certificate
//!   then re-verifies on first reuse.

use proptest::prelude::*;
use serve::{Engine, EngineConfig, Query, QueryOpts, Verdict};
use std::collections::HashMap;
use std::time::Duration;
use sweep::ChaosPlan;
use workloads::lec::{inject_bug, restructure};
use workloads::random_aig::{random_aig, RandomAigParams};

fn small_aig(seed: u64, n_gates: usize) -> aig::Aig {
    random_aig(
        &RandomAigParams {
            n_pis: 6,
            n_gates,
            n_pos: 2,
            ..RandomAigParams::default()
        },
        seed,
    )
}

/// One LEC query with constructed ground truth (`true` = expect SAT, i.e.
/// the sides genuinely differ).
struct GroundTruth {
    a: aig::Aig,
    b: aig::Aig,
    expect_sat: bool,
}

impl GroundTruth {
    fn query(&self) -> Query {
        Query::Lec(self.a.clone(), self.b.clone())
    }

    /// The verdict is only *wrong* if it contradicts construction; chaos
    /// may legitimately degrade it to Unknown/Failed.
    fn check(&self, verdict: &Verdict) -> Result<(), String> {
        match verdict {
            Verdict::Sat(w) => {
                if !self.expect_sat {
                    return Err("SAT verdict for an equivalent pair".into());
                }
                if self.a.eval(w) == self.b.eval(w) {
                    return Err("witness does not distinguish the circuits".into());
                }
                Ok(())
            }
            Verdict::Unsat => {
                if self.expect_sat {
                    return Err("UNSAT verdict for a bug-injected pair".into());
                }
                Ok(())
            }
            Verdict::Unknown(_) | Verdict::Failed => Ok(()),
        }
    }
}

/// A deterministic stream of near-duplicate LEC queries: equivalent
/// (restructured) pairs expecting UNSAT interleaved with bug-injected pairs
/// expecting SAT.
fn query_stream(seed: u64, n: usize) -> Vec<GroundTruth> {
    (0..n)
        .map(|i| {
            let g = small_aig(seed ^ (0x51ab_ed00 + i as u64), 40);
            if i % 2 == 0 {
                GroundTruth {
                    b: restructure(&g, seed ^ (i as u64) << 8),
                    a: g,
                    expect_sat: false,
                }
            } else {
                match inject_bug(&g, seed ^ (i as u64) << 16, 16) {
                    Some(bad) => GroundTruth {
                        b: bad,
                        a: g,
                        expect_sat: true,
                    },
                    None => GroundTruth {
                        b: restructure(&g, seed ^ (i as u64) << 8),
                        a: g,
                        expect_sat: false,
                    },
                }
            }
        })
        .collect()
}

fn chaotic_config(workers: usize, seed: u64, unknown: u16, panic: u16) -> EngineConfig {
    EngineConfig {
        workers,
        max_attempts: 2,
        panic_retries: 1,
        backoff: Duration::from_micros(10),
        chaos: Some(ChaosPlan {
            seed,
            unknown_in_1024: unknown,
            panic_in_1024: panic,
            ..ChaosPlan::default()
        }),
        ..EngineConfig::default()
    }
}

/// Runs a stream to completion and returns `id -> response`.
fn collect(engine: &Engine, stream: &[GroundTruth]) -> HashMap<u64, serve::Response> {
    let ids: Vec<u64> = stream
        .iter()
        .map(|gt| {
            engine
                .submit(&gt.query(), QueryOpts::default())
                .expect("submit")
                .id
        })
        .collect();
    let mut responses = HashMap::new();
    for _ in 0..ids.len() {
        let r = engine
            .recv_timeout(Duration::from_secs(30))
            .expect("engine must answer every query");
        assert!(
            responses.insert(r.id, r).is_none(),
            "duplicate response for one query id"
        );
    }
    assert_eq!(
        responses.len(),
        ids.len(),
        "exactly one response per submitted query"
    );
    for id in ids {
        assert!(responses.contains_key(&id), "query {id} lost its response");
    }
    responses
}

proptest! {
    /// (a) Under a seeded panic/Unknown storm with a third of the queries
    /// cancelled mid-queue, every submitted query still gets exactly one
    /// response, and every decisive verdict matches ground truth.
    #[test]
    fn exactly_one_response_under_panic_storm_and_cancellation(
        seed in 0u64..5_000,
        unknown in 0u16..400,
        panic in 0u16..400,
    ) {
        let stream = query_stream(seed, 8);
        let engine = Engine::new(chaotic_config(3, seed, unknown, panic));
        let tickets: Vec<_> = stream
            .iter()
            .map(|gt| engine.submit(&gt.query(), QueryOpts::default()).expect("submit"))
            .collect();
        for t in tickets.iter().step_by(3) {
            t.cancel();
        }
        let mut responses = HashMap::new();
        for _ in 0..tickets.len() {
            let r = engine
                .recv_timeout(Duration::from_secs(30))
                .expect("engine must answer every query");
            prop_assert!(
                responses.insert(r.id, r).is_none(),
                "duplicate response for one query id"
            );
        }
        for (t, gt) in tickets.iter().zip(&stream) {
            let checked = gt.check(&responses[&t.id].verdict);
            prop_assert!(checked.is_ok(), "query {}: {:?}", t.id, checked);
        }
        // Nothing extra ever arrives.
        prop_assert!(engine.recv_timeout(Duration::from_millis(20)).is_none());
        let stats = engine.stats();
        prop_assert_eq!(stats.submitted, stream.len() as u64);
        prop_assert_eq!(stats.responded, stream.len() as u64);
        engine.shutdown();
    }

    /// Shutdown with a populated queue: the draining answers every pending
    /// query (as `Unknown(Cancelled)` or better), exactly once.
    #[test]
    fn shutdown_mid_queue_loses_nothing(seed in 0u64..5_000, panic in 0u16..600) {
        let stream = query_stream(seed, 6);
        let engine = Engine::new(chaotic_config(1, seed, 0, panic));
        let ids: Vec<u64> = stream
            .iter()
            .map(|gt| engine.submit(&gt.query(), QueryOpts::default()).expect("submit").id)
            .collect();
        engine.shutdown();
        let mut got = Vec::new();
        for _ in 0..ids.len() {
            let r = engine
                .recv_timeout(Duration::from_secs(30))
                .expect("drained queries must still be answered");
            got.push(r.id);
        }
        got.sort_unstable();
        prop_assert_eq!(got, ids, "every query answered exactly once across shutdown");
        prop_assert!(engine.recv_timeout(Duration::from_millis(20)).is_none());
    }

    /// (determinism) A fixed chaos seed yields bit-identical verdicts —
    /// witnesses and attempt counts included — at 1 and 4 workers: fault
    /// rolls are functions of (attempt, query id), never of the schedule.
    #[test]
    fn chaos_verdicts_are_worker_count_invariant(
        seed in 0u64..5_000,
        unknown in 0u16..400,
        panic in 0u16..400,
    ) {
        let stream = query_stream(seed, 6);
        let at1 = collect(&Engine::new(chaotic_config(1, seed, unknown, panic)), &stream);
        let at4 = collect(&Engine::new(chaotic_config(4, seed, unknown, panic)), &stream);
        prop_assert_eq!(at1.len(), at4.len());
        for (id, r1) in &at1 {
            let r4 = &at4[id];
            prop_assert_eq!(&r1.verdict, &r4.verdict, "verdict diverged for query {}", id);
            prop_assert_eq!(r1.attempts, r4.attempts, "attempts diverged for query {}", id);
        }
    }

    /// (b) Cache-hit verdicts are bit-identical to fresh-solve verdicts:
    /// the same query through a shared-cache engine (second submission is
    /// a guaranteed hit at one worker) and through a cold engine agree
    /// exactly, witness bits included.
    #[test]
    fn cache_hit_is_bit_identical_to_fresh_solve(seed in 0u64..5_000) {
        let stream = query_stream(seed, 2); // one UNSAT pair, one SAT pair
        for gt in &stream {
            let warm = Engine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
            let rs = warm.run_batch(&[
                (gt.query(), QueryOpts::default()),
                (gt.query(), QueryOpts::default()),
            ]);
            prop_assert!(rs[1].cache_hit, "identical cone must hit at one worker");
            prop_assert!(!rs[0].cache_hit);
            prop_assert_eq!(&rs[0].verdict, &rs[1].verdict, "hit diverged from its own miss");
            let cold = Engine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
            let fresh = cold.run_batch(&[(gt.query(), QueryOpts::default())]);
            prop_assert_eq!(&fresh[0].verdict, &rs[1].verdict, "hit diverged from fresh solve");
            prop_assert!(gt.check(&fresh[0].verdict).is_ok());
        }
    }

    /// (c) A corrupted cached certificate is rejected and evicted, the
    /// query falls through to a live solve with the right verdict, and the
    /// replacement certificate verifies on its first reuse.
    #[test]
    fn corrupted_certificate_falls_through_to_live_solve(seed in 0u64..5_000) {
        // Pigeonhole: UNSAT, and never refutable by unit propagation alone,
        // so an unsupported empty-clause "certificate" is guaranteed to be
        // rejected rather than accidentally RUP.
        let holes = 2 + (seed % 3) as u32;
        let q = Query::Solve(workloads::cnf_gen::pigeonhole_aig(holes));
        let engine = Engine::new(EngineConfig { workers: 1, ..EngineConfig::default() });
        // Corrupt cache entry: an empty-clause claim with no support.
        let mut bogus = checker::Proof::default();
        bogus.add(vec![]);
        engine.seed_cache_unsat(&q, bogus).expect("well-formed query");
        let rs = engine.run_batch(&[
            (q.clone(), QueryOpts::default()),
            (q, QueryOpts::default()),
        ]);
        prop_assert!(rs[0].verdict.is_unsat(), "live solve must still prove UNSAT");
        prop_assert!(!rs[0].cache_hit, "a rejected certificate is not a hit");
        prop_assert!(rs[1].verdict.is_unsat());
        prop_assert!(rs[1].cache_hit, "replacement entry serves the repeat");
        let stats = engine.stats();
        prop_assert_eq!(stats.cache.certs_rejected, 1);
        prop_assert_eq!(
            stats.cache.certs_verified, 1,
            "replacement certificate re-verified before first reuse"
        );
    }
}

/// Non-proptest sanity: a fault-free run decides every query and reports
/// zero sheds, failures, panics, and retries.
#[test]
fn clean_run_has_zero_sheds_and_failures() {
    let stream = query_stream(7, 6);
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    let responses = collect(&engine, &stream);
    for (_, r) in responses {
        assert!(r.verdict.is_sat() || r.verdict.is_unsat());
    }
    let stats = engine.stats();
    assert_eq!(stats.sheds, 0);
    assert_eq!(stats.failures, 0);
    assert_eq!(stats.panics_contained, 0);
    assert_eq!(stats.retries, 0);
}
