//! End-to-end equisatisfiability: every pipeline must agree with every
//! other on every instance, under both solver presets, and SAT models must
//! decode to genuine witnesses of the *original* circuit.

use csat_preproc::{BaselinePipeline, CompPipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use synth::Recipe;
use workloads::dataset::{generate, generate_extended, DatasetParams};

fn pipelines() -> Vec<Box<dyn Pipeline>> {
    vec![
        Box::new(BaselinePipeline),
        Box::new(CompPipeline::default()),
        Box::new(FrameworkPipeline::ours(RecipePolicy::Fixed(
            Recipe::size_script(),
        ))),
        Box::new(FrameworkPipeline::ours(RecipePolicy::Fixed(
            "rs;rs".parse::<Recipe>().expect("valid recipe"),
        ))),
        Box::new(FrameworkPipeline::without_rl(5, 4)),
        Box::new(FrameworkPipeline::conventional_mapper(RecipePolicy::Fixed(
            Recipe::size_script(),
        ))),
        Box::new(
            FrameworkPipeline::ours(RecipePolicy::Fixed(Recipe::size_script()))
                .with_sweep(sweep::FraigParams::default()),
        ),
    ]
}

#[test]
fn all_pipelines_agree_on_verdicts() {
    let set = generate(
        &DatasetParams {
            count: 8,
            min_bits: 4,
            max_bits: 7,
            hard_multipliers: false,
        },
        0xBEEF,
    );
    let pipes = pipelines();
    for inst in &set {
        let mut verdicts: Vec<bool> = Vec::new();
        for p in &pipes {
            let pre = p.preprocess(&inst.aig);
            for solver in [SolverConfig::kissat_like(), SolverConfig::cadical_like()] {
                let (res, _) = solve_cnf(&pre.cnf, solver, Budget::UNLIMITED);
                match res {
                    sat::SolveResult::Sat(model) => {
                        let ins = pre.decoder.decode_inputs(&model);
                        assert_eq!(
                            inst.aig.eval(&ins),
                            vec![true],
                            "{}: {} model is not a witness",
                            inst.name,
                            p.name()
                        );
                        verdicts.push(true);
                    }
                    sat::SolveResult::Unsat => verdicts.push(false),
                    sat::SolveResult::Unknown => panic!("unbudgeted solve returned unknown"),
                }
            }
        }
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "{}: pipelines disagree: {verdicts:?}",
            inst.name
        );
        if let Some(expected) = inst.expected {
            assert_eq!(verdicts[0], expected, "{}: wrong verdict", inst.name);
        }
    }
}

#[test]
fn all_pipelines_agree_on_extended_families() {
    let set = generate_extended(
        &DatasetParams {
            count: 7,
            min_bits: 4,
            max_bits: 8,
            hard_multipliers: false,
        },
        0xD00D,
    );
    let pipes = pipelines();
    for inst in &set {
        let mut verdicts: Vec<bool> = Vec::new();
        for p in &pipes {
            let pre = p.preprocess(&inst.aig);
            let (res, _) = solve_cnf(&pre.cnf, SolverConfig::kissat_like(), Budget::UNLIMITED);
            match res {
                sat::SolveResult::Sat(model) => {
                    let ins = pre.decoder.decode_inputs(&model);
                    assert_eq!(
                        inst.aig.eval(&ins),
                        vec![true],
                        "{}: {} model is not a witness",
                        inst.name,
                        p.name()
                    );
                    verdicts.push(true);
                }
                sat::SolveResult::Unsat => verdicts.push(false),
                sat::SolveResult::Unknown => panic!("unbudgeted solve returned unknown"),
            }
        }
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "{}: pipelines disagree: {verdicts:?}",
            inst.name
        );
        if let Some(expected) = inst.expected {
            assert_eq!(verdicts[0], expected, "{}: wrong verdict", inst.name);
        }
    }
}

#[test]
fn framework_cnf_is_smaller_in_variables() {
    // The LUT encoding must hide internal nodes on non-trivial instances.
    let set = generate(
        &DatasetParams {
            count: 6,
            min_bits: 8,
            max_bits: 12,
            hard_multipliers: false,
        },
        0xFACE,
    );
    let ours = FrameworkPipeline::ours(RecipePolicy::Fixed(Recipe::size_script()));
    for inst in &set {
        let base = BaselinePipeline.preprocess(&inst.aig);
        let pre = ours.preprocess(&inst.aig);
        assert!(
            pre.cnf.num_vars() < base.cnf.num_vars(),
            "{}: {} !< {}",
            inst.name,
            pre.cnf.num_vars(),
            base.cnf.num_vars()
        );
    }
}

#[test]
fn preprocessing_time_is_recorded() {
    let set = generate(
        &DatasetParams {
            count: 2,
            min_bits: 6,
            max_bits: 8,
            hard_multipliers: false,
        },
        0xAA,
    );
    let p = FrameworkPipeline::ours(RecipePolicy::Fixed(Recipe::size_script()));
    for inst in &set {
        let pre = p.preprocess(&inst.aig);
        assert!(pre.preprocess_time.as_nanos() > 0);
        assert!(!pre.recipe.is_empty());
    }
}
