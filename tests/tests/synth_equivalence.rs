//! Exact (SAT-miter) equivalence checks for every synthesis operation.
//!
//! The unit suites verify equivalence by exhaustive/random simulation; here
//! the full stack is closed: old-vs-new miters are built and *proved* UNSAT
//! with the CDCL solver, on random graphs and on real datapath circuits.

use aig::{Aig, Lit};
use cnf::tseitin_sat_instance;
use rand::{Rng, SeedableRng};
use sat::{solve_cnf, Budget, SolverConfig};
use synth::{apply_op, apply_recipe, Recipe, SynthOp};
use workloads::datapath::{alu, array_multiplier, carry_lookahead_adder, ripple_carry_adder};
use workloads::lec::miter;

fn random_aig(seed: u64, n_pis: usize, n_gates: usize) -> Aig {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut g = Aig::new();
    let pis = g.add_pis(n_pis);
    let mut pool: Vec<Lit> = pis;
    for _ in 0..n_gates {
        let a = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
        let b = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
        let l = match rng.gen_range(0..4) {
            0 | 1 => g.and(a, b),
            2 => g.or(a, b),
            _ => g.xor(a, b),
        };
        pool.push(l);
    }
    let n = pool.len();
    g.add_po(pool[n - 1]);
    g.add_po(pool[n - 2].xor_compl(true));
    g
}

/// Proves `a == b` by showing their miter is UNSAT.
fn prove_equivalent(a: &Aig, b: &Aig) -> bool {
    let m = miter(a, b);
    let (formula, _) = tseitin_sat_instance(&m);
    let (res, _) = solve_cnf(&formula, SolverConfig::kissat_like(), Budget::UNLIMITED);
    res.is_unsat()
}

#[test]
fn each_op_proved_equivalent_on_random_graphs() {
    for seed in 0..4 {
        let g = random_aig(seed, 10, 120);
        for op in SynthOp::ALL {
            let h = apply_op(&g, op);
            assert!(prove_equivalent(&g, &h), "seed {seed} op {op}");
        }
    }
}

#[test]
fn recipes_proved_equivalent_on_datapath() {
    let circuits: Vec<Aig> = vec![
        ripple_carry_adder(10).aig,
        carry_lookahead_adder(8).aig,
        alu(6).aig,
        array_multiplier(4).aig,
    ];
    for (i, c) in circuits.iter().enumerate() {
        let h = Recipe::size_script().apply(c);
        assert!(prove_equivalent(c, &h), "circuit {i} size_script");
        let h = apply_recipe(c, &[SynthOp::Resub, SynthOp::Resub, SynthOp::Rewrite]);
        assert!(prove_equivalent(c, &h), "circuit {i} rs;rs;rw");
    }
}

#[test]
fn long_random_recipes_proved_equivalent() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let g = random_aig(99, 12, 200);
    for trial in 0..3 {
        let ops: Vec<SynthOp> = (0..8)
            .map(|_| SynthOp::ALL[rng.gen_range(0..SynthOp::ALL.len())])
            .collect();
        let h = apply_recipe(&g, &ops);
        assert!(prove_equivalent(&g, &h), "trial {trial} ops {ops:?}");
    }
}

#[test]
fn fraig_proved_equivalent_on_random_graphs_and_datapath() {
    // SAT sweeping merges nodes based on its *own* SAT proofs; close the
    // loop by re-proving input/output equivalence with an independent
    // miter for every sweep.
    for seed in 0..4 {
        let g = random_aig(seed + 1000, 10, 150);
        let out = sweep::fraig(&g, &sweep::FraigParams::default());
        assert!(prove_equivalent(&g, &out.aig), "seed {seed}");
        assert!(out.aig.num_ands() <= g.num_ands(), "seed {seed}");
    }
    for c in [carry_lookahead_adder(8).aig, array_multiplier(4).aig] {
        let out = sweep::fraig(&c, &sweep::FraigParams::default());
        assert!(prove_equivalent(&c, &out.aig));
    }
}

#[test]
fn fraig_composes_with_synthesis_recipes() {
    // recipe ∘ fraig and fraig ∘ recipe both preserve the function.
    let g = random_aig(4242, 10, 140);
    let swept = sweep::fraig(&g, &sweep::FraigParams::default()).aig;
    let then_synth = Recipe::size_script().apply(&swept);
    assert!(prove_equivalent(&g, &then_synth));

    let synth_first = Recipe::size_script().apply(&g);
    let then_swept = sweep::fraig(&synth_first, &sweep::FraigParams::default()).aig;
    assert!(prove_equivalent(&g, &then_swept));
}

#[test]
fn fraig_collapses_datapath_equivalence_miters() {
    // An adder-architecture miter is UNSAT; sweeping must discover that
    // structurally (constant-false PO) on its own.
    let m = miter(&ripple_carry_adder(8).aig, &carry_lookahead_adder(8).aig);
    let out = sweep::fraig(&m, &sweep::FraigParams::default());
    assert_eq!(
        out.aig.pos()[0],
        Lit::FALSE,
        "miter must sweep to constant false"
    );
    assert_eq!(out.aig.num_ands(), 0);
}

#[test]
fn synthesis_reduces_datapath_size() {
    // The size script must shrink redundancy-heavy circuits.
    let base = carry_lookahead_adder(16).aig;
    let re = workloads::lec::restructure(&base, 5);
    assert!(re.num_ands() > base.num_ands());
    let opt = Recipe::size_script().apply(&re);
    assert!(
        opt.num_ands() < re.num_ands(),
        "synthesis should remove injected redundancy: {} -> {}",
        re.num_ands(),
        opt.num_ands()
    );
    assert!(prove_equivalent(&re, &opt));
}
