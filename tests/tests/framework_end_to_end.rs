//! Full-framework integration: a miniature version of the paper's entire
//! pipeline — train the agent, deploy it against the ablation arms, and
//! check the report machinery — in one deterministic test.

use csat_preproc::report::{cactus, run_campaign, total_runtime, Status};
use csat_preproc::{BaselinePipeline, FrameworkPipeline, Pipeline};
use rl::env::{measure_branchings, EnvConfig};
use rl::train::{train_agent, TrainConfig};
use rl::{DqnConfig, RecipePolicy};
use sat::{Budget, SolverConfig};
use workloads::dataset::{generate, generate_hard, DatasetParams};

#[test]
fn miniature_paper_run() {
    // Train on a handful of easy instances.
    let train = generate(
        &DatasetParams {
            count: 6,
            min_bits: 4,
            max_bits: 7,
            hard_multipliers: false,
        },
        11,
    );
    let instances: Vec<aig::Aig> = train.iter().map(|i| i.aig.clone()).collect();
    let cfg = TrainConfig {
        episodes: 20,
        env: EnvConfig {
            budget: Budget::conflicts(5_000),
            ..EnvConfig::default()
        },
        dqn: DqnConfig {
            eps_decay_steps: 100,
            ..DqnConfig::default()
        },
        seed: 3,
    };
    let (agent, stats) = train_agent(&instances, &cfg);
    assert_eq!(stats.episode_rewards.len(), 20);

    // Deploy all arms on a small test set.
    let test = generate(
        &DatasetParams {
            count: 6,
            min_bits: 5,
            max_bits: 8,
            hard_multipliers: false,
        },
        99,
    );
    let solver = SolverConfig::kissat_like();
    let budget = Budget::conflicts(100_000);
    let arms: Vec<Box<dyn Pipeline>> = vec![
        Box::new(BaselinePipeline),
        Box::new(FrameworkPipeline::ours(RecipePolicy::Agent(Box::new(
            agent,
        )))),
        Box::new(FrameworkPipeline::without_rl(1, 4)),
        Box::new(FrameworkPipeline::conventional_mapper(RecipePolicy::Fixed(
            synth::Recipe::size_script(),
        ))),
    ];
    for arm in &arms {
        let records = run_campaign(arm.as_ref(), &test, "kissat", &solver, budget.clone());
        assert_eq!(records.len(), test.len());
        // All models valid, no unexpected statuses.
        for r in &records {
            if let Status::Sat { model_valid } = r.status {
                assert!(
                    model_valid,
                    "{}: invalid model in {}",
                    r.instance,
                    arm.name()
                );
            }
        }
        // Cactus series is consistent with the record set.
        let series = cactus(&records);
        assert!(series.len() <= records.len());
        let total = total_runtime(&records, 10.0);
        assert!(total >= 0.0);
    }
}

#[test]
fn branching_measurement_improves_with_resub_on_redundant_logic() {
    // The quantity the RL reward is built on must respond to synthesis.
    let base = workloads::datapath::carry_lookahead_adder(12).aig;
    let redundant = workloads::lec::restructure(&base, 9);
    let inst = workloads::lec::miter(&base, &redundant);
    let env = EnvConfig::default();
    let before = measure_branchings(&inst, &env.mapper, &env.solver, Budget::conflicts(200_000));
    let optimised = synth::apply_recipe(&inst, &[synth::SynthOp::Resub, synth::SynthOp::Resub]);
    let after = measure_branchings(
        &optimised,
        &env.mapper,
        &env.solver,
        Budget::conflicts(200_000),
    );
    assert!(
        after <= before,
        "resub on a redundancy-miter must not increase branchings: {before} -> {after}"
    );
}

#[test]
fn hard_split_is_harder_than_easy_split() {
    let easy = generate(
        &DatasetParams {
            count: 4,
            min_bits: 4,
            max_bits: 6,
            hard_multipliers: false,
        },
        5,
    );
    let hard = generate_hard(4, 5, 1);
    let avg = |set: &[workloads::Instance]| {
        set.iter().map(|i| i.aig.num_ands()).sum::<usize>() / set.len()
    };
    assert!(
        avg(&hard) > 4 * avg(&easy),
        "hard split must be much larger: {} vs {}",
        avg(&hard),
        avg(&easy)
    );
}
