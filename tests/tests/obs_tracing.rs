//! Cross-crate contract of the `obs` tracing layer:
//!
//! * **Well-formedness under chaos**: the span stream a traced `serve`
//!   engine emits stays balanced and properly nested — every enter has
//!   one exit, children stay inside their parents, per-thread timestamps
//!   never go backwards — even under seeded worker-panic/Unknown storms,
//!   because the `serve.query` and `serve.solve` guards close during the
//!   contained unwind.
//! * **Span/counter agreement**: per-attempt `conflicts` recorded on
//!   `sat.solve` exits sum to the live `sat.conflicts` counter, chaos or
//!   not (injected panics fire *before* the solver runs, so they never
//!   tear a solve span).
//! * **Zero-cost when off**: the disabled registry's hot-path operations
//!   (counter/gauge/histogram updates, span open/record/event/close)
//!   perform no heap allocation at all, measured with a counting global
//!   allocator.

use proptest::prelude::*;
use serve::{Engine, EngineConfig, Query, QueryOpts};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;
use sweep::ChaosPlan;
use workloads::lec::restructure;
use workloads::random_aig::{random_aig, RandomAigParams};

// ---------------------------------------------------------------------
// Counting allocator: thread-local so the measurement ignores allocation
// traffic from concurrently running tests on other harness threads.
// ---------------------------------------------------------------------

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the only added
// behaviour is bumping a thread-local counter, which never allocates
// (const-initialised `Cell<u64>`, no destructor) and so cannot recurse.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_so_far() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn disabled_registry_allocates_nothing_on_hot_path() {
    let reg = obs::Registry::disabled();
    // Handles are created once at setup time, like instrumented code does.
    let counter = reg.counter("sat.conflicts");
    let gauge = reg.gauge("sat.trail");
    let hist = reg.histogram("sat.propagation_burst");
    let parent = reg.root();

    let before = allocations_so_far();
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(i);
        gauge.set(i);
        hist.observe(i);
        let span = parent.child_with("sat.solve", &[("i", i.into())]);
        span.event("restart", &[("conflicts", i.into())]);
        span.record("result", "unsat");
        let inner = span.child("inner");
        drop(inner);
        drop(span);
        // Re-registration and one-shot publication are hot-path-adjacent
        // (stats publish on every solve) — also must stay free.
        reg.set_gauge("sat.stats.decisions", i);
    }
    let after = allocations_so_far();
    assert_eq!(
        after - before,
        0,
        "disabled observability must cost one branch, zero allocations"
    );
    assert!(reg.drain_events().is_empty());
    assert!(reg.snapshot().is_empty());
}

// ---------------------------------------------------------------------
// Span-tree well-formedness under fault injection.
// ---------------------------------------------------------------------

/// A deterministic mixed stream: LEC pairs (restructured, UNSAT) and
/// pigeonhole instances (UNSAT, slow enough to span multiple restarts).
fn query_stream(seed: u64, n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                let g = random_aig(
                    &RandomAigParams {
                        n_pis: 6,
                        n_gates: 40,
                        n_pos: 2,
                        ..RandomAigParams::default()
                    },
                    seed ^ (0x0b5_7ace + i as u64),
                );
                Query::Lec(restructure(&g, seed ^ ((i as u64) << 8)), g)
            } else {
                Query::Solve(workloads::cnf_gen::pigeonhole_aig(3 + (i as u32 % 2)))
            }
        })
        .collect()
}

proptest! {
    /// Under a seeded panic/Unknown storm at 1–3 workers, the drained
    /// event stream validates (balanced, nested, monotone) and the
    /// per-attempt conflict fields sum to the live counter.
    #[test]
    fn span_stream_well_formed_under_panic_storm(
        seed in 0u64..5_000,
        unknown in 0u16..400,
        panic in 0u16..600,
        workers in 1usize..4,
    ) {
        let reg = obs::Registry::tracing();
        let engine = Engine::new(EngineConfig {
            workers,
            max_attempts: 2,
            panic_retries: 1,
            backoff: Duration::from_micros(10),
            chaos: Some(ChaosPlan {
                seed,
                unknown_in_1024: unknown,
                panic_in_1024: panic,
                ..ChaosPlan::default()
            }),
            obs: reg.clone(),
            ..EngineConfig::default()
        });
        let stream = query_stream(seed, 6);
        let ids: Vec<u64> = stream
            .iter()
            .map(|q| engine.submit(q, QueryOpts::default()).expect("submit").id)
            .collect();
        for _ in &ids {
            engine
                .recv_timeout(Duration::from_secs(30))
                .expect("engine answers every query");
        }
        engine.stats().publish(&reg);
        engine.shutdown(); // joins the workers: every span guard dropped

        prop_assert_eq!(reg.dropped_events(), 0, "ring must not overflow here");
        let events = reg.drain_events();
        let checked = obs::check::validate(&events);
        prop_assert!(checked.is_ok(), "invalid span stream: {:?}", checked);

        // One serve.query span per admission, each closed exactly once
        // (validate() above already guarantees enter/exit balance).
        let queries = events
            .iter()
            .filter(|e| e.kind == obs::EventKind::Enter && e.name == "serve.query")
            .count();
        prop_assert_eq!(queries, ids.len(), "one query span per submission");

        // Span tree sums to solver totals, chaos notwithstanding.
        let snap = reg.snapshot();
        prop_assert_eq!(
            obs::check::sum_field(&events, "sat.solve", "conflicts"),
            snap.value("sat.conflicts").unwrap_or(0),
            "per-attempt conflict fields must total the live counter"
        );
        // The final stats publication made it into the same registry.
        prop_assert_eq!(snap.value("serve.stats.submitted"), Some(ids.len() as u64));
        prop_assert_eq!(snap.value("serve.stats.responded"), Some(ids.len() as u64));
    }
}
