//! Mapping and encoding invariants across crates:
//! cover correctness, depth constraints, branching-complexity accounting,
//! and Tseitin-vs-LUT encoding equisatisfiability.

use aig::Aig;
use cnf::{lut_to_cnf, lut_to_cnf_sat_instance, tseitin_sat_instance};
use mapper::{map_luts, AreaCost, BranchingCost, CutCost, MapParams};
use sat::{solve_cnf, Budget, SolverConfig};
use workloads::datapath::{alu, array_multiplier, carry_lookahead_adder, parity};
use workloads::lec::{inject_bug, miter};

fn exhaustive_agree(aig: &Aig, net: &cnf::LutNetlist) {
    let n = aig.num_pis();
    assert!(n <= 14, "exhaustive check bound");
    for m in 0..(1usize << n) {
        let ins: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
        assert_eq!(aig.eval(&ins), net.eval(&ins), "m={m}");
    }
}

#[test]
fn mapping_equivalent_on_datapath_all_costs_and_k() {
    let circuits: Vec<Aig> = vec![
        alu(4).aig,
        array_multiplier(3).aig,
        carry_lookahead_adder(5).aig,
        parity(9).aig,
    ];
    for c in &circuits {
        for k in [3usize, 4, 6] {
            for slack in [Some(0), Some(2), None] {
                let params = MapParams {
                    k,
                    max_cuts: 8,
                    rounds: 2,
                    depth_slack: slack,
                };
                let a = map_luts(c, &params, &AreaCost);
                exhaustive_agree(c, &a);
                let b = map_luts(c, &params, &BranchingCost::new());
                exhaustive_agree(c, &b);
            }
        }
    }
}

#[test]
fn branching_cost_never_exceeds_area_cost_mapping() {
    // By construction the branching-cost mapper minimises total branching
    // complexity; the area mapper's netlist must not beat it on that metric.
    for c in [alu(8).aig, array_multiplier(5).aig, parity(16).aig] {
        let params = MapParams::default();
        let area = map_luts(&c, &params, &AreaCost);
        let br = map_luts(&c, &params, &BranchingCost::new());
        assert!(
            br.total_branching_complexity() <= area.total_branching_complexity(),
            "branching mapper must win its own metric: {} vs {}",
            br.total_branching_complexity(),
            area.total_branching_complexity()
        );
    }
}

#[test]
fn clause_count_equals_total_branching_complexity() {
    // The gate clauses of lut2cnf are exactly the netlist's branching
    // complexity — the invariant linking Sec. III-C to the CNF.
    for c in [alu(6).aig, carry_lookahead_adder(8).aig] {
        let net = map_luts(&c, &MapParams::default(), &BranchingCost::new());
        let (formula, _) = lut_to_cnf(&net);
        assert_eq!(formula.num_clauses(), net.total_branching_complexity());
    }
}

#[test]
fn encodings_equisatisfiable_on_miters() {
    let blk = array_multiplier(4);
    let buggy = inject_bug(&blk.aig, 3, 64).expect("bug");
    let sat_inst = miter(&blk.aig, &buggy);
    let unsat_inst = miter(&blk.aig, &workloads::datapath::column_multiplier(4).aig);
    for (inst, expect_sat) in [(&sat_inst, true), (&unsat_inst, false)] {
        let (tseitin, tmap) = tseitin_sat_instance(inst);
        let net = map_luts(inst, &MapParams::default(), &BranchingCost::new());
        let (lut, lmap) = lut_to_cnf_sat_instance(&net);
        for (formula, is_lut) in [(&tseitin, false), (&lut, true)] {
            let (res, _) = solve_cnf(formula, SolverConfig::cadical_like(), Budget::UNLIMITED);
            assert_eq!(res.is_sat(), expect_sat, "lut={is_lut}");
            if let sat::SolveResult::Sat(model) = res {
                let ins = if is_lut {
                    lmap.decode_inputs(&model)
                } else {
                    tmap.decode_inputs(&model)
                };
                assert_eq!(inst.eval(&ins), vec![true]);
            }
        }
    }
}

#[test]
fn depth_constraint_bounds_lut_levels() {
    let c = carry_lookahead_adder(12).aig;
    let k = 4;
    // Unconstrained mapping may be deeper than the constrained one.
    let tight = map_luts(
        &c,
        &MapParams {
            k,
            max_cuts: 8,
            rounds: 2,
            depth_slack: Some(0),
        },
        &BranchingCost::new(),
    );
    let loose = map_luts(
        &c,
        &MapParams {
            k,
            max_cuts: 8,
            rounds: 2,
            depth_slack: None,
        },
        &BranchingCost::new(),
    );
    assert!(
        net_depth(&tight) <= net_depth(&loose),
        "{} > {}",
        net_depth(&tight),
        net_depth(&loose)
    );
}

fn net_depth(net: &cnf::LutNetlist) -> u32 {
    let mut level = vec![0u32; net.num_inputs() + net.num_luts()];
    for (i, lut) in net.luts().iter().enumerate() {
        let l = 1 + lut
            .fanins
            .iter()
            .map(|f| level[f.node as usize])
            .max()
            .unwrap_or(0);
        level[net.num_inputs() + i] = l;
    }
    net.outputs()
        .iter()
        .map(|s| level[s.node as usize])
        .max()
        .unwrap_or(0)
}

#[test]
fn xor_cells_priced_higher_than_and_cells() {
    // Fig. 3 sanity at the trait level.
    let cost = BranchingCost::new();
    let and2 = aig::Tt::from_u64(2, 0x8);
    let xor2 = aig::Tt::from_u64(2, 0x6);
    assert_eq!(cost.cut_cost(&and2), 3.0);
    assert_eq!(cost.cut_cost(&xor2), 4.0);
}
