//! Parallel/sequential equivalence of the sweep engine.
//!
//! The fraig engine's concurrency contract is that for a pinned shard
//! count the thread count changes *nothing* about the result: candidate
//! pairs are assigned to logical oracle shards by index, every shard's
//! query sequence is fixed, and per-round answers are merged in pair
//! order. These tests check the contract the hard way — running the same
//! sweeps at 1 and 4 threads and demanding bit-identical
//! [`FraigOutcome`]s (same merges, same stats, same rebuilt graph) — and
//! keep the solver's two-tier watcher/reason integrity audit running on
//! every shard while they do (the oracle calls `Solver::assert_integrity`
//! after each query in debug builds, which is how `cargo test` and the CI
//! paranoia job run).

use aig::check::{exhaustive_equiv, sim_equiv};
use aig::Aig;
use proptest::prelude::*;
use sweep::{fraig, FraigOutcome, FraigParams};
use workloads::lec::{adder_miter, miter, restructure};
use workloads::random_aig::{random_aig, RandomAigParams};

/// Structural equality of two graphs, node for node.
fn same_aig(a: &Aig, b: &Aig) -> bool {
    a.num_nodes() == b.num_nodes()
        && a.pis() == b.pis()
        && a.pos() == b.pos()
        && a.iter_ands().zip(b.iter_ands()).all(|(va, vb)| {
            let (na, nb) = (a.node(va), b.node(vb));
            va == vb && na.fanin0() == nb.fanin0() && na.fanin1() == nb.fanin1()
        })
}

/// Asserts two outcomes are bit-identical; returns the shared outcome.
fn assert_identical(a: &FraigOutcome, b: &FraigOutcome) {
    assert_eq!(a.stats, b.stats, "run counters diverged");
    assert!(same_aig(&a.aig, &b.aig), "rebuilt graphs diverged");
}

proptest! {
    /// Random equivalence miters: a random graph against a functionally
    /// identical, structurally perturbed copy. Sequential and 4-thread
    /// sweeps must produce the same merges, the same counterexample
    /// trajectory (visible through the stats), and the same output graph —
    /// which must itself stay equivalent to the input.
    #[test]
    fn parallel_fraig_matches_sequential(seed in 0u64..10_000, n_gates in 20usize..100) {
        let g = random_aig(
            &RandomAigParams {
                n_pis: 7,
                n_gates,
                n_pos: 3,
                ..RandomAigParams::default()
            },
            seed,
        );
        let m = miter(&g, &restructure(&g, seed ^ 0xD1CE));
        // 17 sim words = 3 simulation blocks, so the parallel resimulation
        // path (not just the sharded oracles) is exercised; 4 pinned
        // shards make the outcome a pure function of the input.
        let base = FraigParams { sim_words: 17, shards: 4, ..FraigParams::default() };
        let seq = fraig(&m, &FraigParams { threads: 1, ..base.clone() });
        let par = fraig(&m, &FraigParams { threads: 4, ..base.clone() });
        assert_identical(&seq, &par);
        prop_assert!(exhaustive_equiv(&m, &par.aig), "sweep must preserve the function");
    }
}

proptest! {
    /// Tight budgets force `Unknown` answers and per-shard budget clocks
    /// into play; the outcome must still be thread-count-invariant.
    #[test]
    fn parallel_fraig_matches_sequential_under_budget_pressure(seed in 0u64..10_000) {
        let g = random_aig(
            &RandomAigParams {
                n_pis: 6,
                n_gates: 60,
                n_pos: 2,
                ..RandomAigParams::default()
            },
            seed,
        );
        let m = miter(&g, &restructure(&g, seed ^ 0xBEEF));
        let base = FraigParams { conflict_budget: 3, shards: 4, ..FraigParams::default() };
        let seq = fraig(&m, &FraigParams { threads: 1, ..base.clone() });
        let par = fraig(&m, &FraigParams { threads: 4, ..base.clone() });
        assert_identical(&seq, &par);
        prop_assert!(sim_equiv(&m, &par.aig, 8, 11));
    }
}

/// The adder miter at a size where every round carries real SAT work:
/// parallel sweeping must collapse it to constant false exactly like the
/// sequential engine, with the solver integrity audit live on every shard
/// (debug builds run `assert_integrity` after each oracle query).
#[test]
fn integrity_audited_parallel_sweep_collapses_adder_miter() {
    let m = adder_miter(8);
    let base = FraigParams {
        shards: 4,
        ..FraigParams::default()
    };
    let seq = fraig(
        &m,
        &FraigParams {
            threads: 1,
            ..base.clone()
        },
    );
    let par = fraig(
        &m,
        &FraigParams {
            threads: 4,
            ..base.clone()
        },
    );
    assert_identical(&seq, &par);
    assert_eq!(
        par.aig.pos()[0],
        aig::Lit::FALSE,
        "equivalent adders: miter is 0"
    );
    assert_eq!(par.aig.num_ands(), 0);
    assert!(par.stats.proved > 0);
}

/// Auto thread selection (`threads = 0`) must also match an explicit
/// thread count when the shard count is pinned — on any machine, with any
/// core count. (With the default `shards: 0` the shard count follows the
/// machine's parallelism, which is exactly the non-portable outcome this
/// pin avoids.)
#[test]
fn auto_threads_match_sequential_under_pinned_shards() {
    let m = adder_miter(6);
    let base = FraigParams {
        shards: 2,
        ..FraigParams::default()
    };
    let auto = fraig(&m, &base);
    let seq = fraig(
        &m,
        &FraigParams {
            threads: 1,
            ..base.clone()
        },
    );
    assert_identical(&auto, &seq);
}
