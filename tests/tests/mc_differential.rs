//! Differential tests for the `mc` model-checking subsystem.
//!
//! Two oracles keep the incremental engines honest:
//!
//! * `SeqAig::simulate` — step-by-step semantics. Time-frame expansion
//!   (`unroll`) plus combinational evaluation must agree with it on random
//!   machines, and every counterexample trace must replay to a violation.
//! * The monolithic pipeline — `SeqAig::bmc_instance(k)` through Tseitin
//!   and a fresh solver per bound. The incremental `mc::bmc` engine (one
//!   persistent solver, activation-literal-guarded frames) must reproduce
//!   its SAT/UNSAT-at-depth verdict at every bound.

use aig::seq::SeqAig;
use mc::{prove, BmcEngine, BmcOptions, BmcResult, KindOptions, KindResult, Preprocess};
use proptest::prelude::*;
use sat::{solve_cnf, Budget, SolverConfig};
use workloads::random_aig::{random_aig, RandomAigParams};
use workloads::seq::{counter, mod_counter, pattern_fsm, retimed_adder_lec};

/// Builds a random sequential machine: a layered random core with `pis`
/// real inputs, `latches` state bits, and one real PO as the bad signal.
fn random_machine(pis: usize, latches: usize, gates: usize, seed: u64) -> SeqAig {
    let core = random_aig(
        &RandomAigParams {
            n_pis: pis + latches,
            n_gates: gates,
            n_pos: 1 + latches,
            ..RandomAigParams::default()
        },
        seed,
    );
    SeqAig::new(core, pis, latches)
}

/// Monolithic BMC verdict at bound `k`: is some frame `0..k` violable?
fn monolithic_sat(seq: &SeqAig, k: usize) -> bool {
    let inst = seq.bmc_instance(k);
    let (f, _) = cnf::tseitin_sat_instance(&inst);
    let (res, _) = solve_cnf(&f, SolverConfig::default(), Budget::UNLIMITED);
    assert!(
        !matches!(res, sat::SolveResult::Unknown),
        "unbudgeted solve cannot be unknown"
    );
    res.is_sat()
}

/// Checks the incremental engine against the monolithic baseline for every
/// bound `1..=max_k`, and validates any counterexample trace end-to-end.
fn differential_bmc(seq: &SeqAig, max_k: usize) {
    let mut engine = BmcEngine::new(seq, BmcOptions::default());
    for k in 1..=max_k {
        let incremental = engine.check_frames(k);
        let mono_sat = monolithic_sat(seq, k);
        match incremental {
            BmcResult::Clean { frames } => {
                assert_eq!(frames, k);
                assert!(
                    !mono_sat,
                    "monolithic found a cex the engine missed at k={k}"
                );
            }
            BmcResult::Cex { depth, ref trace } => {
                assert!(
                    mono_sat,
                    "engine cex at depth {depth} but monolithic UNSAT at k={k}"
                );
                assert!(depth < k);
                assert_eq!(trace.len(), depth + 1);
                assert!(trace.iter().all(|f| f.len() == seq.num_pis()));
                let outs = seq.simulate(trace);
                assert!(
                    outs[depth].iter().any(|&o| o),
                    "trace must replay to a violation at its reported depth"
                );
                assert!(
                    outs[..depth].iter().all(|o| !o.iter().any(|&x| x)),
                    "reported depth must be minimal"
                );
            }
            BmcResult::Unknown { frame } => panic!("unbudgeted query unknown at frame {frame}"),
        }
    }
}

#[test]
fn fixed_workloads_match_monolithic_to_depth_12() {
    differential_bmc(&counter(3), 12); // cex at depth 7
    differential_bmc(&mod_counter(3, 6), 12); // clean forever
    differential_bmc(&pattern_fsm(&[true, false, true]), 12); // cex at depth 3
    differential_bmc(&retimed_adder_lec(2), 12); // clean forever
}

#[test]
fn preprocessed_engine_matches_monolithic() {
    // The synthesis front end must not change any verdict.
    let m = counter(3);
    let mut engine = BmcEngine::new(
        &m,
        BmcOptions {
            preprocess: Preprocess::Synth(synth::Recipe::size_script()),
            ..BmcOptions::default()
        },
    );
    for k in 1..=12 {
        let sat = engine.check_frames(k).is_cex();
        assert_eq!(sat, monolithic_sat(&m, k), "k={k}");
    }
}

#[test]
fn kind_proves_what_bmc_cannot_close() {
    // The modulo-6 counter's bad state is unreachable: BMC stays clean at
    // every tested bound (it can never *prove* anything), k-induction
    // closes the property outright.
    let m = mod_counter(3, 6);
    assert_eq!(
        BmcEngine::new(&m, BmcOptions::default()).check_frames(30),
        BmcResult::Clean { frames: 30 }
    );
    match prove(&m, 8, &KindOptions::default()) {
        KindResult::Proved { k } => assert!(k <= 3),
        other => panic!("expected proof, got {other:?}"),
    }
    // And on a falsifiable machine, kind degrades to exactly the BMC cex.
    match prove(&counter(3), 10, &KindOptions::default()) {
        KindResult::Cex { depth: 7, trace } => {
            assert!(counter(3).simulate(&trace)[7][0]);
        }
        other => panic!("expected the depth-7 counterexample, got {other:?}"),
    }
}

proptest! {
    /// Time-frame expansion is the machine: `unroll(k)` + combinational
    /// evaluation ≡ step-by-step simulation on random machines and random
    /// stimuli.
    #[test]
    fn unroll_matches_simulation(
        pis in 1usize..4,
        latches in 0usize..5,
        gates in 4usize..40,
        k in 1usize..7,
        seed in any::<u64>(),
        stimulus_bits in any::<u64>(),
    ) {
        let m = random_machine(pis, latches, gates, seed);
        let unrolled = m.unroll(k);
        prop_assert_eq!(unrolled.num_pis(), k * pis);
        prop_assert_eq!(unrolled.num_pos(), k * m.num_pos());
        let stimulus: Vec<Vec<bool>> = (0..k)
            .map(|t| (0..pis).map(|i| stimulus_bits >> ((t * pis + i) % 64) & 1 != 0).collect())
            .collect();
        let seq_out = m.simulate(&stimulus);
        let flat: Vec<bool> = stimulus.iter().flatten().copied().collect();
        let comb_out = unrolled.eval(&flat);
        let expect: Vec<bool> = seq_out.iter().flatten().copied().collect();
        prop_assert_eq!(comb_out, expect);
    }

    /// The incremental engine agrees with the monolithic baseline on
    /// random machines at every bound.
    #[test]
    fn incremental_bmc_matches_monolithic(
        pis in 1usize..3,
        latches in 0usize..4,
        gates in 4usize..30,
        seed in any::<u64>(),
    ) {
        let m = random_machine(pis, latches, gates, seed);
        differential_bmc(&m, 8);
    }

    /// Sequential AIGER round-trip: write + read preserves machine
    /// behaviour on random machines.
    #[test]
    fn seq_aiger_roundtrip(
        pis in 1usize..4,
        latches in 0usize..5,
        gates in 4usize..40,
        seed in any::<u64>(),
        stimulus_bits in any::<u64>(),
    ) {
        let m = random_machine(pis, latches, gates, seed);
        let text = aig::aiger::to_seq_aag_string(&m);
        let h = aig::aiger::read_seq_aag(text.as_bytes()).unwrap();
        prop_assert_eq!(h.num_pis(), m.num_pis());
        prop_assert_eq!(h.num_latches(), m.num_latches());
        let stimulus: Vec<Vec<bool>> = (0..6)
            .map(|t| (0..pis).map(|i| stimulus_bits >> ((t * pis + i) % 64) & 1 != 0).collect())
            .collect();
        prop_assert_eq!(m.simulate(&stimulus), h.simulate(&stimulus));
    }

    /// A k-induction proof is never wrong: whenever `prove` says Proved,
    /// deep BMC must stay clean well beyond the proof strength.
    #[test]
    fn kind_proofs_are_sound_on_random_machines(
        pis in 1usize..3,
        latches in 1usize..4,
        gates in 4usize..25,
        seed in any::<u64>(),
    ) {
        let m = random_machine(pis, latches, gates, seed);
        if let KindResult::Proved { k } = prove(&m, 5, &KindOptions::default()) {
            let frames = (k + 10).max(16);
            prop_assert_eq!(
                BmcEngine::new(&m, BmcOptions::default()).check_frames(frames),
                BmcResult::Clean { frames }
            );
        }
    }
}
