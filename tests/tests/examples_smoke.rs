//! Workspace smoke test: every example in `examples/` must build, and
//! `quickstart.rs` must run to completion.
//!
//! The examples are attached to the `bench` crate (the only member that
//! depends on every other member), so `cargo build --examples -p bench`
//! covers all of them. These tests shell out to the same cargo binary that
//! is running the test-suite; the workspace target-dir lock serialises the
//! nested invocations against any concurrently running cargo.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    // tests/ is a direct child of the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ has a parent")
}

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(workspace_root());
    cmd
}

const EXAMPLES: &[&str] = &[
    "quickstart",
    "lec_flow",
    "bmc_flow",
    "atpg_flow",
    "sweep_flow",
    "train_agent",
];

#[test]
fn all_examples_build() {
    let out = cargo()
        .args(["build", "--examples", "-p", "bench"])
        .output()
        .expect("cargo build --examples must spawn");
    assert!(
        out.status.success(),
        "examples failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Belt and braces: the list above must stay in sync with examples/.
    for example in EXAMPLES {
        let src = workspace_root()
            .join("examples")
            .join(format!("{example}.rs"));
        assert!(src.is_file(), "missing example source {}", src.display());
    }
    let on_disk = std::fs::read_dir(workspace_root().join("examples"))
        .expect("examples/ must exist")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "rs")
        })
        .count();
    assert_eq!(
        on_disk,
        EXAMPLES.len(),
        "examples/ and EXAMPLES list out of sync"
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let out = cargo()
        .args(["run", "-q", "--example", "quickstart", "-p", "bench"])
        .output()
        .expect("cargo run --example quickstart must spawn");
    assert!(
        out.status.success(),
        "quickstart exited nonzero:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("baseline") && stdout.contains("ours"),
        "quickstart output missing the baseline/ours comparison:\n{stdout}"
    );
}
