//! Integration test support crate (tests live in `tests/tests/`).
//!
//! The helpers here route UNSAT verdicts through the independent
//! `checker` crate: solve with proof logging on, rebuild the certificate
//! from the log, and demand the backward RUP checker accepts it. Test
//! suites use these instead of trusting the solver's (or the DPLL
//! reference's) word for unsatisfiability.

#![forbid(unsafe_code)]

use cnf::Cnf;
use sat::{ProofLog, SolveResult, Solver, SolverConfig};

/// A [`Cnf`] as the checker's plain DIMACS clause list.
pub fn cnf_clauses(f: &Cnf) -> Vec<Vec<i32>> {
    f.clauses()
        .iter()
        .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
        .collect()
}

/// Rebuilds a [`checker::Proof`] from a solver's proof log.
pub fn proof_from_log(log: &ProofLog) -> checker::Proof {
    checker::Proof::from_steps(log.steps().iter().map(|s| (s.delete, s.lits.clone())))
}

/// Asserts that a solver's UNSAT verdict — plain, or under `assumptions`
/// for the incremental path — is backed by a certificate the independent
/// checker accepts. The solver must have been constructed with
/// [`SolverConfig::proof`] on; call right after the UNSAT answer.
///
/// The formula checked is the log's own record of every original clause
/// (which is exactly what the solver was asked about), extended with one
/// unit per assumption; `checker::Proof::close` supplies the terminal
/// empty clause for assumption-UNSAT logs and is a no-op for genuine
/// UNSAT logs, which already contain one.
pub fn assert_certified_unsat(solver: &Solver, assumptions: &[cnf::CnfLit]) {
    let log = solver.proof().expect("proof logging must be enabled");
    let formula = log.originals().to_vec();
    let assumed: Vec<i32> = assumptions.iter().map(|l| l.to_dimacs()).collect();
    let proof = proof_from_log(log);
    let outcome = checker::check_with_assumptions(&formula, &assumed, &proof)
        .expect("UNSAT verdict must carry a checker-accepted certificate");
    assert!(outcome.verified_adds >= 1);
}

/// Solves `f` with proof logging forced on and, when the verdict is
/// UNSAT, verifies the certificate with the independent checker —
/// panicking if the checker rejects it. Returns the verdict so callers
/// can keep asserting against their own expectations.
pub fn solve_certified(f: &Cnf, config: SolverConfig) -> SolveResult {
    let mut config = config;
    config.proof = true;
    let mut solver = Solver::from_cnf(f, config);
    let result = solver.solve();
    if result.is_unsat() {
        let log = solver.proof().expect("proof logging was enabled");
        let outcome = checker::check(&cnf_clauses(f), &proof_from_log(log))
            .expect("UNSAT verdict must carry a checker-accepted certificate");
        assert!(
            outcome.verified_adds >= 1,
            "a refutation verifies at least the empty clause"
        );
    }
    result
}
