//! Quickstart: preprocess one CSAT instance with the framework and solve
//! it, comparing against the direct-Tseitin baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use csat_preproc::{BaselinePipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use synth::Recipe;
use workloads::datapath::{carry_lookahead_adder, ripple_carry_adder};
use workloads::lec::miter;

fn main() {
    // A classic LEC problem: are a ripple-carry adder and a carry-lookahead
    // adder the same circuit? (They are; the miter is UNSAT.)
    let rca = ripple_carry_adder(12);
    let cla = carry_lookahead_adder(12);
    let instance = miter(&rca.aig, &cla.aig);
    println!(
        "instance: {} vs {} — {} PIs, {} AND gates, depth {}",
        rca.name,
        cla.name,
        instance.num_pis(),
        instance.num_ands(),
        instance.depth()
    );

    let solver = SolverConfig::kissat_like();
    let budget = Budget::UNLIMITED;

    // Conventional pipeline: direct Tseitin encoding.
    let base = BaselinePipeline.preprocess(&instance);
    let (res, stats) = solve_cnf(&base.cnf, solver.clone(), budget.clone());
    println!(
        "baseline : {:>6} vars {:>7} clauses -> {:?}, {} decisions, {} conflicts",
        base.cnf.num_vars(),
        base.cnf.num_clauses(),
        verdict(&res),
        stats.decisions,
        stats.conflicts
    );

    // The paper's framework: synthesis recipe + branching-cost LUT mapping
    // + ISOP CNF encoding. (A fixed recipe here; see the `train_agent`
    // example for the RL-guided version.)
    let ours = FrameworkPipeline::ours(RecipePolicy::Fixed(Recipe::size_script()));
    let pre = ours.preprocess(&instance);
    let (res, stats) = solve_cnf(&pre.cnf, solver, budget);
    println!(
        "ours     : {:>6} vars {:>7} clauses -> {:?}, {} decisions, {} conflicts (recipe {})",
        pre.cnf.num_vars(),
        pre.cnf.num_clauses(),
        verdict(&res),
        stats.decisions,
        stats.conflicts,
        pre.recipe
    );
}

fn verdict(r: &sat::SolveResult) -> &'static str {
    match r {
        sat::SolveResult::Sat(_) => "SAT",
        sat::SolveResult::Unsat => "UNSAT",
        sat::SolveResult::Unknown => "TIMEOUT",
    }
}
