//! LEC flow: equivalence-check two multiplier architectures, with and
//! without a deliberately injected bug, through all three pipelines.
//!
//! ```text
//! cargo run --release --example lec_flow
//! ```

use csat_preproc::{BaselinePipeline, CompPipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use synth::Recipe;
use workloads::datapath::{array_multiplier, column_multiplier};
use workloads::lec::{inject_bug, miter};

fn main() {
    let n = 5;
    let a = array_multiplier(n);
    let b = column_multiplier(n);
    println!(
        "LEC: {} ({} gates) vs {} ({} gates)",
        a.name,
        a.aig.num_ands(),
        b.name,
        b.aig.num_ands()
    );

    // Case 1: the architectures are equivalent -> UNSAT proof.
    let eq_miter = miter(&a.aig, &b.aig);
    run_all("equivalent", &eq_miter);

    // Case 2: one side carries a bug -> SAT, and the model is a
    // counterexample distinguishing the two circuits.
    let buggy = inject_bug(&b.aig, 42, 100).expect("observable bug");
    let bug_miter = miter(&a.aig, &buggy);
    run_all("bug-injected", &bug_miter);
}

fn run_all(label: &str, instance: &aig::Aig) {
    println!(
        "\n== {label} miter: {} gates, {} PIs ==",
        instance.num_ands(),
        instance.num_pis()
    );
    let pipelines: Vec<Box<dyn Pipeline>> = vec![
        Box::new(BaselinePipeline),
        Box::new(CompPipeline::default()),
        Box::new(FrameworkPipeline::ours(RecipePolicy::Fixed(
            Recipe::size_script(),
        ))),
    ];
    for p in &pipelines {
        let pre = p.preprocess(instance);
        let t0 = std::time::Instant::now();
        let (res, stats) = solve_cnf(&pre.cnf, SolverConfig::cadical_like(), Budget::UNLIMITED);
        let dt = t0.elapsed();
        let verdict = match &res {
            sat::SolveResult::Sat(model) => {
                // Validate the counterexample against the original miter.
                let ins = pre.decoder.decode_inputs(model);
                assert_eq!(
                    instance.eval(&ins),
                    vec![true],
                    "model must be a real witness"
                );
                "SAT (witness validated)"
            }
            sat::SolveResult::Unsat => "UNSAT (equivalence proved)",
            sat::SolveResult::Unknown => "TIMEOUT",
        };
        println!(
            "{:>9}: {:>6} vars {:>7} clauses | {:>8} decisions | {:>7.1?} | {}",
            p.name(),
            pre.cnf.num_vars(),
            pre.cnf.num_clauses(),
            stats.decisions,
            dt,
            verdict
        );
    }
}
