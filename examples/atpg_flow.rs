//! ATPG flow: generate test patterns for stuck-at faults in an ALU by
//! solving fault miters, and report per-fault branching counts.
//!
//! ```text
//! cargo run --release --example atpg_flow
//! ```

use csat_preproc::{BaselinePipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use synth::Recipe;
use workloads::atpg::{atpg_miter, StuckAtFault};
use workloads::datapath::alu;

fn main() {
    let blk = alu(8);
    println!(
        "circuit: {} — {} gates, {} PIs",
        blk.name,
        blk.aig.num_ands(),
        blk.aig.num_pis()
    );

    let ours = FrameworkPipeline::ours(RecipePolicy::Fixed(Recipe::size_script()));
    let mut patterns = 0usize;
    let mut untestable = 0usize;
    let (mut base_decisions, mut ours_decisions) = (0u64, 0u64);

    // Walk a sample of fault sites.
    let sites: Vec<u32> = (1..blk.aig.num_nodes() as u32).step_by(37).collect();
    for &node in &sites {
        for value in [false, true] {
            let fault = StuckAtFault { node, value };
            let m = atpg_miter(&blk.aig, fault);

            // Baseline run (for the branching comparison).
            let pre = BaselinePipeline.preprocess(&m);
            let (res_b, stats_b) =
                solve_cnf(&pre.cnf, SolverConfig::kissat_like(), Budget::UNLIMITED);
            base_decisions += stats_b.decisions;

            // Framework run: same verdict, typically fewer branchings.
            let pre = ours.preprocess(&m);
            let (res, stats) = solve_cnf(&pre.cnf, SolverConfig::kissat_like(), Budget::UNLIMITED);
            ours_decisions += stats.decisions;
            assert_eq!(
                res.is_sat(),
                res_b.is_sat(),
                "pipelines must agree on testability"
            );

            match res {
                sat::SolveResult::Sat(model) => {
                    let ins = pre.decoder.decode_inputs(&model);
                    // The decoded assignment is a genuine test pattern: it
                    // distinguishes faulty from fault-free behaviour.
                    assert_eq!(m.eval(&ins), vec![true]);
                    patterns += 1;
                }
                sat::SolveResult::Unsat => untestable += 1,
                sat::SolveResult::Unknown => unreachable!("unbudgeted"),
            }
        }
    }

    println!(
        "{} faults: {} test patterns generated, {} untestable (redundant) sites",
        2 * sites.len(),
        patterns,
        untestable
    );
    println!("total branching decisions — baseline: {base_decisions}, framework: {ours_decisions}");
}
