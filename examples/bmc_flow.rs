//! Sequential circuits through the combinational framework — the paper's
//! stated future work. A bounded-model-checking (BMC) query on a latch
//! machine is unrolled into a combinational CSAT instance and preprocessed
//! like any other miter.
//!
//! The machine: an n-bit LFSR and an n-bit binary counter, with a property
//! PO that fires when the two state registers ever agree on the all-ones
//! pattern in the same cycle.
//!
//! ```text
//! cargo run --release --example bmc_flow
//! ```

use aig::seq::SeqAig;
use aig::{Aig, Lit};
use csat_preproc::{BaselinePipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use synth::Recipe;

/// Builds the product machine: counter ⊗ LFSR, property = both all-ones.
fn product_machine(n: usize) -> SeqAig {
    let mut g = Aig::new();
    let en = g.add_pi();
    let counter: Vec<Lit> = (0..n).map(|_| g.add_pi()).collect();
    let lfsr: Vec<Lit> = (0..n).map(|_| g.add_pi()).collect();

    // Counter next-state: state + en.
    let mut carry = en;
    let mut counter_next = Vec::with_capacity(n);
    for &s in &counter {
        counter_next.push(g.xor(s, carry));
        carry = g.and(s, carry);
    }
    // Fibonacci LFSR next-state: shift left, feedback = msb ^ bit0 ^ en.
    let fb1 = g.xor(lfsr[n - 1], lfsr[0]);
    let feedback = g.xor(fb1, en);
    let mut lfsr_next = vec![feedback];
    lfsr_next.extend_from_slice(&lfsr[..n - 1]);

    // Property: both registers all-ones simultaneously.
    let c_ones = g.and_many(&counter);
    let l_ones = g.and_many(&lfsr);
    let both = g.and(c_ones, l_ones);
    g.add_po(both);
    for nx in counter_next.into_iter().chain(lfsr_next) {
        g.add_po(nx);
    }
    SeqAig::new(g, 1, 2 * n)
}

fn main() {
    let n = 4;
    let machine = product_machine(n);
    println!(
        "product machine: {} PIs, {} latches, {} gates per frame",
        machine.num_pis(),
        machine.num_latches(),
        machine.comb().num_ands()
    );

    let pipelines: Vec<Box<dyn Pipeline>> = vec![
        Box::new(BaselinePipeline),
        Box::new(FrameworkPipeline::ours(RecipePolicy::Fixed(
            Recipe::size_script(),
        ))),
    ];

    println!(
        "\n{:>5} {:>7} {:>9} | {:>22} | {:>22}",
        "k", "gates", "verdict", "Baseline vars/decs", "Ours vars/decs"
    );
    for k in [4usize, 8, 16, 24] {
        let instance = machine.bmc_instance(k);
        let mut cells = Vec::new();
        let mut verdict = "?";
        for p in &pipelines {
            let pre = p.preprocess(&instance);
            let (res, stats) = solve_cnf(&pre.cnf, SolverConfig::kissat_like(), Budget::UNLIMITED);
            verdict = match &res {
                sat::SolveResult::Sat(model) => {
                    let ins = pre.decoder.decode_inputs(model);
                    assert_eq!(instance.eval(&ins), vec![true], "witness must replay");
                    "SAT"
                }
                sat::SolveResult::Unsat => "UNSAT",
                sat::SolveResult::Unknown => "TO",
            };
            cells.push(format!(
                "{:>10}/{:<11}",
                pre.cnf.num_vars(),
                stats.decisions
            ));
        }
        println!(
            "{:>5} {:>7} {:>9} | {} | {}",
            k,
            instance.num_ands(),
            verdict,
            cells[0],
            cells[1]
        );
    }
    println!("\nBMC verdicts agree across pipelines; SAT witnesses replayed on the unrolled AIG.");
}
