//! Train the RL agent on a small synthetic dataset and deploy it.
//!
//! Mirrors the paper's Sec. III-B at laptop scale: Deep-Q training over
//! easy LEC/ATPG instances with the branching-reduction reward, then a
//! greedy rollout on unseen instances compared against the random-recipe
//! ablation (*w/o RL*).
//!
//! ```text
//! cargo run --release --example train_agent
//! ```

use rl::env::{measure_branchings, EnvConfig};
use rl::train::{train_agent, RecipePolicy, TrainConfig};
use rl::DqnConfig;
use sat::Budget;
use workloads::dataset::{generate, DatasetParams};

fn main() {
    // Training split: easy instances (small widths).
    let train = generate(
        &DatasetParams {
            count: 12,
            min_bits: 4,
            max_bits: 8,
            hard_multipliers: false,
        },
        101,
    );
    let instances: Vec<aig::Aig> = train.iter().map(|i| i.aig.clone()).collect();
    println!("training on {} easy instances", instances.len());

    let cfg = TrainConfig {
        episodes: 40,
        env: EnvConfig {
            budget: Budget::conflicts(5_000),
            ..EnvConfig::default()
        },
        dqn: DqnConfig {
            eps_decay_steps: 200,
            ..DqnConfig::default()
        },
        seed: 7,
    };
    let (agent, stats) = train_agent(&instances, &cfg);
    println!(
        "trained {} episodes; mean terminal reward (last 10): {:+.3}",
        cfg.episodes,
        stats.recent_mean_reward(10)
    );

    // Deploy on unseen instances and compare against the random policy.
    let test = generate(
        &DatasetParams {
            count: 6,
            min_bits: 6,
            max_bits: 10,
            hard_multipliers: false,
        },
        999,
    );
    let env_cfg = EnvConfig::default();
    let agent_policy = RecipePolicy::Agent(Box::new(agent));
    let random_policy = RecipePolicy::Random { seed: 3, steps: 10 };

    println!(
        "\n{:<28} {:>10} {:>10} {:>10}",
        "instance", "initial", "agent", "random"
    );
    let (mut sum_a, mut sum_r, mut sum_0) = (0u64, 0u64, 0u64);
    for inst in &test {
        let budget = Budget::conflicts(50_000);
        let init = measure_branchings(&inst.aig, &env_cfg.mapper, &env_cfg.solver, budget.clone());
        let (ga, recipe) = agent_policy.run(&inst.aig, &env_cfg);
        let ba = measure_branchings(&ga, &env_cfg.mapper, &env_cfg.solver, budget.clone());
        let (gr, _) = random_policy.run(&inst.aig, &env_cfg);
        let br = measure_branchings(&gr, &env_cfg.mapper, &env_cfg.solver, budget.clone());
        println!(
            "{:<28} {:>10} {:>10} {:>10}   (recipe: {})",
            inst.name, init, ba, br, recipe
        );
        sum_0 += init;
        sum_a += ba;
        sum_r += br;
    }
    println!("\ntotal branchings — no recipe: {sum_0}, agent: {sum_a}, random: {sum_r}");
}
