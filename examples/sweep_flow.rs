//! SAT-sweeping (fraig) extension flow: preprocess instances from the
//! *extended* workload families — parallel-prefix adders, tree
//! multipliers, barrel shifters — with and without the fraig stage, and
//! compare the CNF the solver actually sees.
//!
//! ```text
//! cargo run --release --example sweep_flow
//! ```

use csat_preproc::{BaselinePipeline, FrameworkPipeline, Pipeline};
use rl::RecipePolicy;
use sat::{solve_cnf, Budget, SolverConfig};
use sweep::{fraig, FraigParams};
use synth::Recipe;
use workloads::dataset::{generate_extended, DatasetParams};

fn main() {
    // Direct fraig on a multiplier-equivalence miter: the classic victim.
    let w = workloads::wallace::wallace_multiplier(4);
    let d = workloads::wallace::dadda_multiplier(4);
    let m = workloads::lec::miter(&w.aig, &d.aig);
    let out = fraig(&m, &FraigParams::default());
    println!(
        "fraig on {}-gate wal4-vs-dad4 miter: {} gates left, {} proofs, {} SAT calls, {} cex",
        m.num_ands(),
        out.aig.num_ands(),
        out.stats.proved,
        out.stats.sat_calls,
        out.stats.cex_patterns,
    );

    // Pipeline comparison on a slice of the extended dataset.
    let params = DatasetParams {
        count: 6,
        min_bits: 8,
        max_bits: 16,
        hard_multipliers: false,
    };
    let set = generate_extended(&params, 2026);
    let policy = || RecipePolicy::Fixed(Recipe::size_script());
    let plain = FrameworkPipeline::ours(policy());
    let swept = FrameworkPipeline::ours(policy()).with_sweep(FraigParams::default());

    println!(
        "\n{:<34} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "instance", "base dec", "ours dec", "sweep dec", "base cls", "ours cls", "sweep cls"
    );
    for inst in &set {
        let mut decs = Vec::new();
        let mut clauses = Vec::new();
        for p in [&BaselinePipeline as &dyn Pipeline, &plain, &swept] {
            let pre = p.preprocess(&inst.aig);
            let (res, stats) = solve_cnf(&pre.cnf, SolverConfig::kissat_like(), Budget::UNLIMITED);
            if let Some(expected) = inst.expected {
                assert_eq!(
                    res.is_sat(),
                    expected,
                    "{}: {} broke the verdict",
                    inst.name,
                    p.name()
                );
            }
            if let sat::SolveResult::Sat(model) = &res {
                let ins = pre.decoder.decode_inputs(model);
                assert_eq!(inst.aig.eval(&ins), vec![true], "{}", inst.name);
            }
            decs.push(stats.decisions);
            clauses.push(pre.cnf.num_clauses());
        }
        println!(
            "{:<34} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            truncate(&inst.name, 34),
            decs[0],
            decs[1],
            decs[2],
            clauses[0],
            clauses[1],
            clauses[2],
        );
    }
    println!("\nAll verdicts preserved across pipelines; SAT witnesses validated.");
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}
