//! # `workloads` — synthetic CSAT benchmark generation
//!
//! Stand-in for the paper's industrial LEC/ATPG benchmark suite (see
//! DESIGN.md for the substitution argument). Construction follows the
//! paper's own recipe: datapath circuits are paired (different
//! architectures, or bug-injected copies) and their outputs XOR-connected
//! into single-output miters; stuck-at faults produce ATPG miters.
//!
//! * [`datapath`] — adders (3 architectures), multipliers (2), comparators,
//!   ALUs, MUX trees, parity trees,
//! * [`prefix_adders`] — Kogge–Stone, Brent–Kung, Sklansky parallel-prefix
//!   adders (three more adder architectures for LEC pairing),
//! * [`wallace`] — Wallace-tree and Dadda multipliers,
//! * [`shifters`] — logarithmic/decoded barrel shifters and rotators,
//! * [`encoders`] — priority encoders, popcount trees, Gray-code
//!   converters,
//! * [`lec`] — miter construction, bug injection, structural perturbation,
//! * [`atpg`] — stuck-at-fault injection and testability filtering,
//! * [`seq`] — sequential machines (counters, FSMs, retimed-adder product
//!   machines) with safety properties for the `mc` subsystem,
//! * [`random_aig`] — layered random graphs,
//! * [`dataset`] — seed-deterministic train/test splits with Table-I-style
//!   statistics.
//!
//! ```
//! use workloads::dataset::{generate, DatasetParams};
//! let set = generate(&DatasetParams::training(3), 42);
//! assert_eq!(set.len(), 3);
//! assert!(set.iter().all(|i| i.aig.num_pos() == 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atpg;
pub mod cnf_gen;
pub mod datapath;
pub mod dataset;
pub mod encoders;
pub mod lec;
pub mod prefix_adders;
pub mod random_aig;
pub mod seq;
pub mod shifters;
pub mod wallace;

pub use dataset::{generate, DatasetParams, Instance, InstanceKind};
