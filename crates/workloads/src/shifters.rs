//! Barrel shifters and rotators.
//!
//! Two architectures for the same shift function: the logarithmic barrel
//! shifter (one MUX stage per shift-amount bit) and the decoded shifter
//! (one-hot decode of the amount, then a wide OR of shifted copies). Their
//! miters exercise MUX-heavy control logic rather than arithmetic carries.

use crate::datapath::Block;
use aig::{Aig, Lit};

/// Logarithmic left-shifter: `2^k` data bits, `k` amount bits, `2^k`
/// outputs; vacated positions fill with zero.
pub fn barrel_shifter_log(k: usize) -> Block {
    let n = 1usize << k;
    let mut g = Aig::new();
    let data = g.add_pis(n);
    let amount = g.add_pis(k);
    let mut layer = data;
    for (stage, &s) in amount.iter().enumerate() {
        let shift = 1usize << stage;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let shifted = if i >= shift {
                layer[i - shift]
            } else {
                Lit::FALSE
            };
            next.push(g.mux(s, shifted, layer[i]));
        }
        layer = next;
    }
    for l in layer {
        g.add_po(l);
    }
    Block {
        aig: g,
        name: format!("bshl{n}"),
    }
}

/// Decoded left-shifter: one-hot decode of the amount, then
/// `out_i = OR_s (onehot_s & data_{i-s})` — flat, OR-heavy structure,
/// functionally identical to [`barrel_shifter_log`].
pub fn barrel_shifter_decoded(k: usize) -> Block {
    let n = 1usize << k;
    let mut g = Aig::new();
    let data = g.add_pis(n);
    let amount = g.add_pis(k);
    let onehot = decode_onehot(&mut g, &amount);
    for i in 0..n {
        let mut terms = Vec::new();
        for (s, &oh) in onehot.iter().enumerate() {
            if s <= i {
                terms.push(g.and(oh, data[i - s]));
            }
        }
        let out = g.or_many(&terms);
        g.add_po(out);
    }
    Block {
        aig: g,
        name: format!("bshd{n}"),
    }
}

/// Logarithmic left-rotator: like [`barrel_shifter_log`] but bits wrap
/// around instead of filling with zero.
pub fn rotator_log(k: usize) -> Block {
    let n = 1usize << k;
    let mut g = Aig::new();
    let data = g.add_pis(n);
    let amount = g.add_pis(k);
    let mut layer = data;
    for (stage, &s) in amount.iter().enumerate() {
        let shift = 1usize << stage;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let rotated = layer[(i + n - shift) % n];
            next.push(g.mux(s, rotated, layer[i]));
        }
        layer = next;
    }
    for l in layer {
        g.add_po(l);
    }
    Block {
        aig: g,
        name: format!("rotl{n}"),
    }
}

/// One-hot decoder of a `k`-bit binary amount into `2^k` lines.
fn decode_onehot(g: &mut Aig, amount: &[Lit]) -> Vec<Lit> {
    let n = 1usize << amount.len();
    (0..n)
        .map(|v| {
            let lits: Vec<Lit> = amount
                .iter()
                .enumerate()
                .map(|(bit, &l)| if v >> bit & 1 != 0 { l } else { !l })
                .collect();
            g.and_many(&lits)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::exhaustive_equiv;

    fn drive(blk: &Block, n: usize, k: usize, data: u64, amount: u64) -> u64 {
        let mut ins: Vec<bool> = (0..n).map(|i| data >> i & 1 != 0).collect();
        ins.extend((0..k).map(|i| amount >> i & 1 != 0));
        blk.aig
            .eval(&ins)
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn log_shifter_shifts() {
        let k = 3;
        let n = 1 << k;
        let blk = barrel_shifter_log(k);
        for data in [0u64, 1, 0x5a, 0xff, 0x81] {
            for amount in 0..(1u64 << k) {
                let expect = (data << amount) & ((1 << n) - 1);
                assert_eq!(
                    drive(&blk, n, k, data, amount),
                    expect,
                    "d={data:#x} a={amount}"
                );
            }
        }
    }

    #[test]
    fn decoded_shifter_matches_log_shifter() {
        for k in [1usize, 2, 3] {
            let a = barrel_shifter_log(k);
            let b = barrel_shifter_decoded(k);
            assert!(exhaustive_equiv(&a.aig, &b.aig), "k={k}");
        }
    }

    #[test]
    fn rotator_rotates() {
        let k = 3;
        let n = 1 << k;
        let blk = rotator_log(k);
        for data in [0x01u64, 0xa5, 0x80] {
            for amount in 0..(1u64 << k) {
                let expect = ((data << amount) | (data >> ((n as u64 - amount) % n as u64)))
                    & ((1 << n) - 1);
                assert_eq!(
                    drive(&blk, n, k, data, amount),
                    expect,
                    "d={data:#x} a={amount}"
                );
            }
        }
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        let k = 2;
        let n = 1 << k;
        let blk = rotator_log(k);
        for data in 0..(1u64 << n) {
            assert_eq!(drive(&blk, n, k, data, 0), data);
        }
    }

    #[test]
    fn onehot_decoder_is_onehot() {
        let mut g = Aig::new();
        let amount = g.add_pis(3);
        let lines = decode_onehot(&mut g, &amount);
        for l in lines {
            g.add_po(l);
        }
        for v in 0..8u64 {
            let ins: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
            let out = g.eval(&ins);
            assert_eq!(out.iter().filter(|&&b| b).count(), 1, "v={v}");
            assert!(out[v as usize], "line {v} must be hot");
        }
    }
}
