//! Datapath circuit generators.
//!
//! The paper builds its benchmark from industrial *datapath* circuits; we
//! generate the classic datapath blocks — adders in several architectures,
//! multipliers, comparators, ALUs, MUX trees, parity trees — so that LEC
//! miters can compare *architecturally different but functionally equal*
//! implementations (the hard, realistic case for equivalence checking).

use aig::{Aig, Lit};

/// A generated combinational block: the graph plus its I/O grouping.
#[derive(Clone, Debug)]
pub struct Block {
    /// The circuit.
    pub aig: Aig,
    /// Human-readable architecture tag (e.g. `"rca8"`).
    pub name: String,
}

/// Ripple-carry adder: `n`-bit a + b (+ cin), `n+1` outputs (sum, cout).
pub fn ripple_carry_adder(n: usize) -> Block {
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let mut carry = Lit::FALSE;
    for i in 0..n {
        let (s, c) = full_adder(&mut g, a[i], b[i], carry);
        g.add_po(s);
        carry = c;
    }
    g.add_po(carry);
    Block {
        aig: g,
        name: format!("rca{n}"),
    }
}

/// Carry-lookahead adder (block size 1, i.e. explicit generate/propagate
/// prefix chain): same function as [`ripple_carry_adder`], different
/// structure.
pub fn carry_lookahead_adder(n: usize) -> Block {
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    // Generate/propagate.
    let gen: Vec<Lit> = (0..n).map(|i| g.and(a[i], b[i])).collect();
    let prop: Vec<Lit> = (0..n).map(|i| g.xor(a[i], b[i])).collect();
    // Carries by lookahead expansion c[i+1] = g[i] | p[i] & c[i], flattened.
    let mut carries = vec![Lit::FALSE];
    for i in 0..n {
        // c_{i+1} = g_i | (p_i & g_{i-1}) | (p_i & p_{i-1} & g_{i-2}) | ...
        let mut terms = vec![gen[i]];
        let mut prefix = prop[i];
        for j in (0..i).rev() {
            terms.push(g.and(prefix, gen[j]));
            prefix = g.and(prefix, prop[j]);
        }
        let c = g.or_many(&terms);
        carries.push(c);
    }
    for i in 0..n {
        let s = g.xor(prop[i], carries[i]);
        g.add_po(s);
    }
    g.add_po(carries[n]);
    Block {
        aig: g,
        name: format!("cla{n}"),
    }
}

/// Carry-select adder with the given block width: a third adder structure.
pub fn carry_select_adder(n: usize, block: usize) -> Block {
    assert!(block >= 1, "block width must be positive");
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let mut carry = Lit::FALSE;
    let mut sums = Vec::with_capacity(n);
    let mut lo = 0;
    while lo < n {
        let hi = (lo + block).min(n);
        // Two speculative ripple blocks (cin = 0 and cin = 1).
        let mut c0 = Lit::FALSE;
        let mut c1 = Lit::TRUE;
        let mut s0 = Vec::new();
        let mut s1 = Vec::new();
        for i in lo..hi {
            let (s, c) = full_adder(&mut g, a[i], b[i], c0);
            s0.push(s);
            c0 = c;
            let (s, c) = full_adder(&mut g, a[i], b[i], c1);
            s1.push(s);
            c1 = c;
        }
        for (s0i, s1i) in s0.into_iter().zip(s1) {
            let s = g.mux(carry, s1i, s0i);
            sums.push(s);
        }
        carry = g.mux(carry, c1, c0);
        lo = hi;
    }
    for s in sums {
        g.add_po(s);
    }
    g.add_po(carry);
    Block {
        aig: g,
        name: format!("csel{n}x{block}"),
    }
}

/// Array multiplier: `n`-bit a × b, `2n` outputs, row-by-row accumulation.
pub fn array_multiplier(n: usize) -> Block {
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let mut acc: Vec<Lit> = vec![Lit::FALSE; 2 * n];
    for (i, &bi) in b.iter().enumerate() {
        // Partial product row i.
        let row: Vec<Lit> = a.iter().map(|&aj| g.and(aj, bi)).collect();
        // Add row into acc at offset i (ripple).
        let mut carry = Lit::FALSE;
        for (j, &r) in row.iter().enumerate() {
            let (s, c) = full_adder(&mut g, acc[i + j], r, carry);
            acc[i + j] = s;
            carry = c;
        }
        // Propagate remaining carry.
        let mut k = i + n;
        while carry != Lit::FALSE && k < 2 * n {
            let (s, c) = half_adder(&mut g, acc[k], carry);
            acc[k] = s;
            carry = c;
            k += 1;
        }
    }
    for s in acc {
        g.add_po(s);
    }
    Block {
        aig: g,
        name: format!("mul{n}"),
    }
}

/// Shift-and-add multiplier with column-wise (transposed) accumulation —
/// functionally identical to [`array_multiplier`], structurally different.
pub fn column_multiplier(n: usize) -> Block {
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    // Column k collects partial-product bits a[j] & b[k-j].
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); 2 * n];
    for i in 0..n {
        for j in 0..n {
            let p = g.and(a[j], b[i]);
            columns[i + j].push(p);
        }
    }
    // Carry-save column compression with full/half adders.
    let mut outputs = Vec::with_capacity(2 * n);
    for k in 0..2 * n {
        let mut col = std::mem::take(&mut columns[k]);
        while col.len() > 1 {
            if col.len() >= 3 {
                let (x, y, z) = (col.remove(0), col.remove(0), col.remove(0));
                let t = g.xor(x, y);
                let s = g.xor(t, z);
                let c1 = g.and(x, y);
                let c2 = g.and(t, z);
                let c = g.or(c1, c2);
                col.push(s);
                if k + 1 < 2 * n {
                    columns[k + 1].push(c);
                }
            } else {
                let (x, y) = (col.remove(0), col.remove(0));
                let s = g.xor(x, y);
                let c = g.and(x, y);
                col.push(s);
                if k + 1 < 2 * n {
                    columns[k + 1].push(c);
                }
            }
        }
        outputs.push(col.pop().unwrap_or(Lit::FALSE));
    }
    for s in outputs {
        g.add_po(s);
    }
    Block {
        aig: g,
        name: format!("cmul{n}"),
    }
}

/// Equality comparator (`a == b`, one output).
pub fn comparator_eq(n: usize) -> Block {
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let eqs: Vec<Lit> = (0..n).map(|i| g.xnor(a[i], b[i])).collect();
    let out = g.and_many(&eqs);
    g.add_po(out);
    Block {
        aig: g,
        name: format!("eq{n}"),
    }
}

/// Unsigned less-than comparator (`a < b`, one output).
pub fn comparator_lt(n: usize) -> Block {
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    // From LSB: lt = (!a & b) | (a==b) & lt_prev.
    let mut lt = Lit::FALSE;
    for i in 0..n {
        let bi_gt = g.and(!a[i], b[i]);
        let eq = g.xnor(a[i], b[i]);
        let keep = g.and(eq, lt);
        lt = g.or(bi_gt, keep);
    }
    g.add_po(lt);
    Block {
        aig: g,
        name: format!("lt{n}"),
    }
}

/// A small ALU: two `n`-bit operands, 2 select bits choosing between
/// `a + b`, `a & b`, `a | b`, `a ^ b`; `n` outputs.
pub fn alu(n: usize) -> Block {
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let s = g.add_pis(2);
    let mut carry = Lit::FALSE;
    for i in 0..n {
        let (sum, c) = full_adder(&mut g, a[i], b[i], carry);
        carry = c;
        let and = g.and(a[i], b[i]);
        let or = g.or(a[i], b[i]);
        let xor = g.xor(a[i], b[i]);
        let lo = g.mux(s[0], and, sum);
        let hi = g.mux(s[0], xor, or);
        let out = g.mux(s[1], hi, lo);
        g.add_po(out);
    }
    Block {
        aig: g,
        name: format!("alu{n}"),
    }
}

/// Balanced multiplexer tree: `2^k` data inputs, `k` selects, one output.
pub fn mux_tree(k: usize) -> Block {
    let mut g = Aig::new();
    let data = g.add_pis(1 << k);
    let sel = g.add_pis(k);
    let mut layer = data;
    for (level, &s) in sel.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(g.mux(s, pair[1], pair[0]));
        }
        layer = next;
        debug_assert_eq!(layer.len(), 1 << (k - level - 1));
    }
    g.add_po(layer[0]);
    Block {
        aig: g,
        name: format!("mux{}", 1 << k),
    }
}

/// Parity tree over `n` inputs (one output) — maximally XOR-heavy logic.
pub fn parity(n: usize) -> Block {
    let mut g = Aig::new();
    let pis = g.add_pis(n);
    let x = g.xor_many(&pis);
    g.add_po(x);
    Block {
        aig: g,
        name: format!("par{n}"),
    }
}

fn full_adder(g: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let t = g.xor(a, b);
    let s = g.xor(t, cin);
    let c1 = g.and(a, b);
    let c2 = g.and(t, cin);
    let c = g.or(c1, c2);
    (s, c)
}

fn half_adder(g: &mut Aig, a: Lit, b: Lit) -> (Lit, Lit) {
    (g.xor(a, b), g.and(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::exhaustive_equiv;

    fn num(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn adders_add() {
        for n in [2usize, 3, 4] {
            for blk in [
                ripple_carry_adder(n),
                carry_lookahead_adder(n),
                carry_select_adder(n, 2),
            ] {
                for av in 0..(1u64 << n) {
                    for bv in 0..(1u64 << n) {
                        let mut ins = Vec::new();
                        for i in 0..n {
                            ins.push(av >> i & 1 != 0);
                        }
                        for i in 0..n {
                            ins.push(bv >> i & 1 != 0);
                        }
                        let out = blk.aig.eval(&ins);
                        assert_eq!(num(&out), av + bv, "{} a={av} b={bv}", blk.name);
                    }
                }
            }
        }
    }

    #[test]
    fn adder_architectures_equivalent() {
        for n in [3usize, 5] {
            let r = ripple_carry_adder(n);
            let c = carry_lookahead_adder(n);
            let s = carry_select_adder(n, 2);
            assert!(exhaustive_equiv(&r.aig, &c.aig), "rca vs cla n={n}");
            assert!(exhaustive_equiv(&r.aig, &s.aig), "rca vs csel n={n}");
        }
    }

    #[test]
    fn multipliers_multiply_and_agree() {
        for n in [2usize, 3, 4] {
            let m1 = array_multiplier(n);
            let m2 = column_multiplier(n);
            for av in 0..(1u64 << n) {
                for bv in 0..(1u64 << n) {
                    let mut ins = Vec::new();
                    for i in 0..n {
                        ins.push(av >> i & 1 != 0);
                    }
                    for i in 0..n {
                        ins.push(bv >> i & 1 != 0);
                    }
                    assert_eq!(num(&m1.aig.eval(&ins)), av * bv, "mul n={n}");
                    assert_eq!(num(&m2.aig.eval(&ins)), av * bv, "cmul n={n}");
                }
            }
            assert!(exhaustive_equiv(&m1.aig, &m2.aig), "n={n}");
        }
    }

    #[test]
    fn comparators_compare() {
        let n = 4;
        let eq = comparator_eq(n);
        let lt = comparator_lt(n);
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let mut ins = Vec::new();
                for i in 0..n {
                    ins.push(av >> i & 1 != 0);
                }
                for i in 0..n {
                    ins.push(bv >> i & 1 != 0);
                }
                assert_eq!(eq.aig.eval(&ins), vec![av == bv]);
                assert_eq!(lt.aig.eval(&ins), vec![av < bv]);
            }
        }
    }

    #[test]
    fn alu_selects_operations() {
        let n = 3;
        let blk = alu(n);
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                for op in 0..4u64 {
                    let mut ins = Vec::new();
                    for i in 0..n {
                        ins.push(av >> i & 1 != 0);
                    }
                    for i in 0..n {
                        ins.push(bv >> i & 1 != 0);
                    }
                    ins.push(op & 1 != 0);
                    ins.push(op & 2 != 0);
                    let out = num(&blk.aig.eval(&ins));
                    let mask = (1u64 << n) - 1;
                    let expect = match op {
                        0 => (av + bv) & mask,
                        1 => av & bv,
                        2 => av | bv,
                        _ => av ^ bv,
                    };
                    assert_eq!(out, expect, "op={op} a={av} b={bv}");
                }
            }
        }
    }

    #[test]
    fn mux_tree_selects() {
        let k = 3;
        let blk = mux_tree(k);
        for data in 0..(1u32 << (1 << k)) {
            if data % 37 != 0 {
                continue; // sample the data space
            }
            for sel in 0..(1u32 << k) {
                let mut ins: Vec<bool> = (0..(1 << k)).map(|i| data >> i & 1 != 0).collect();
                for i in 0..k {
                    ins.push(sel >> i & 1 != 0);
                }
                let out = blk.aig.eval(&ins);
                assert_eq!(out, vec![data >> sel & 1 != 0], "data={data:#x} sel={sel}");
            }
        }
    }

    #[test]
    fn parity_counts_ones() {
        let blk = parity(5);
        for m in 0..32u32 {
            let ins: Vec<bool> = (0..5).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(blk.aig.eval(&ins), vec![m.count_ones() % 2 == 1]);
        }
    }
}
