//! Logic-equivalence-checking (LEC) instance construction.
//!
//! Following the paper's recipe verbatim: take two implementations of a
//! datapath circuit, "connect their primary outputs through XOR gates", and
//! OR the XORs into a single miter output. The miter is satisfiable iff the
//! two circuits differ — UNSAT for genuine equivalence proofs (the hard
//! case), SAT when one side carries an injected bug.

use aig::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the XOR-OR miter of two circuits with identical I/O shape.
///
/// The returned instance has the same PIs (shared by both sides) and one PO
/// that is 1 iff some output pair differs.
///
/// # Panics
/// Panics if PI or PO counts differ.
pub fn miter(a: &Aig, b: &Aig) -> Aig {
    assert_eq!(a.num_pis(), b.num_pis(), "PI count mismatch");
    assert_eq!(a.num_pos(), b.num_pos(), "PO count mismatch");
    let mut g = Aig::new();
    let pis = g.add_pis(a.num_pis());
    let outs_a = copy_into(a, &mut g, &pis);
    let outs_b = copy_into(b, &mut g, &pis);
    let xors: Vec<Lit> = outs_a
        .iter()
        .zip(&outs_b)
        .map(|(&x, &y)| g.xor(x, y))
        .collect();
    let out = g.or_many(&xors);
    g.add_po(out);
    g
}

/// Ripple-carry vs. carry-lookahead adder miter — the standard fraig
/// scaling workload. UNSAT by construction (the architectures are
/// equivalent), so sweeping collapses it to constant 0; at 24+ bits each
/// round carries hundreds of candidate pairs, enough SAT work per round
/// for multi-threaded sweeping to be measurable.
pub fn adder_miter(bits: usize) -> Aig {
    let a = crate::datapath::ripple_carry_adder(bits);
    let b = crate::datapath::carry_lookahead_adder(bits);
    miter(&a.aig, &b.aig)
}

/// Copies a circuit into `g`, driving its PIs from `pis`; returns its PO
/// literals inside `g`.
pub fn copy_into(src: &Aig, g: &mut Aig, pis: &[Lit]) -> Vec<Lit> {
    assert_eq!(pis.len(), src.num_pis(), "PI count mismatch");
    let mut map: Vec<Lit> = vec![Lit::FALSE; src.num_nodes()];
    for (i, &pi) in src.pis().iter().enumerate() {
        map[pi as usize] = pis[i];
    }
    for v in src.iter_ands() {
        let n = src.node(v);
        let f0 = map[n.fanin0().var() as usize].xor_compl(n.fanin0().is_compl());
        let f1 = map[n.fanin1().var() as usize].xor_compl(n.fanin1().is_compl());
        map[v as usize] = g.and(f0, f1);
    }
    src.pos()
        .iter()
        .map(|po| map[po.var() as usize].xor_compl(po.is_compl()))
        .collect()
}

/// Injects a random single-gate bug: one AND gate's fanin edge polarity is
/// flipped. Retries until the bug is observable on random patterns, so the
/// resulting miter against the original is satisfiable.
///
/// Returns `None` if the circuit has no AND gates or no injected bug became
/// observable after `tries` attempts.
pub fn inject_bug(src: &Aig, seed: u64, tries: usize) -> Option<Aig> {
    let mut rng = StdRng::seed_from_u64(seed);
    let and_vars: Vec<u32> = src.iter_ands().collect();
    if and_vars.is_empty() {
        return None;
    }
    for _ in 0..tries {
        let victim = and_vars[rng.gen_range(0..and_vars.len())];
        let flip_first: bool = rng.gen();
        let buggy = rebuild_with_flip(src, victim, flip_first);
        if !aig::check::sim_equiv(src, &buggy, 4, rng.gen()) {
            return Some(buggy);
        }
    }
    None
}

fn rebuild_with_flip(src: &Aig, victim: u32, flip_first: bool) -> Aig {
    let mut g = Aig::new();
    let pis = g.add_pis(src.num_pis());
    let mut map: Vec<Lit> = vec![Lit::FALSE; src.num_nodes()];
    for (i, &pi) in src.pis().iter().enumerate() {
        map[pi as usize] = pis[i];
    }
    for v in src.iter_ands() {
        let n = src.node(v);
        let mut f0 = map[n.fanin0().var() as usize].xor_compl(n.fanin0().is_compl());
        let mut f1 = map[n.fanin1().var() as usize].xor_compl(n.fanin1().is_compl());
        if v == victim {
            if flip_first {
                f0 = !f0;
            } else {
                f1 = !f1;
            }
        }
        map[v as usize] = g.and(f0, f1);
    }
    for po in src.pos() {
        let l = map[po.var() as usize].xor_compl(po.is_compl());
        g.add_po(l);
    }
    g
}

/// Structurally perturbs a circuit while preserving its function: AND trees
/// are randomly re-associated and a sprinkling of redundant gates is added.
/// Useful for equivalence pairs when only one architecture is available.
pub fn restructure(src: &Aig, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Aig::new();
    let pis = g.add_pis(src.num_pis());
    let mut map: Vec<Lit> = vec![Lit::FALSE; src.num_nodes()];
    for (i, &pi) in src.pis().iter().enumerate() {
        map[pi as usize] = pis[i];
    }
    for v in src.iter_ands() {
        let n = src.node(v);
        let f0 = map[n.fanin0().var() as usize].xor_compl(n.fanin0().is_compl());
        let f1 = map[n.fanin1().var() as usize].xor_compl(n.fanin1().is_compl());
        let mut l = g.and(f0, f1);
        // Occasionally add absorbing redundancy: x -> x & (x | y).
        if rng.gen_bool(0.08) {
            let other = if rng.gen() { f0 } else { f1 };
            let o = g.or(l, other.xor_compl(rng.gen()));
            let o2 = g.or(l, !other);
            let both = g.and(o, o2);
            l = g.and(l, both); // still equals l
        }
        map[v as usize] = l;
    }
    for po in src.pos() {
        let l = map[po.var() as usize].xor_compl(po.is_compl());
        g.add_po(l);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::{carry_lookahead_adder, ripple_carry_adder};
    use aig::check::exhaustive_equiv;

    #[test]
    fn miter_of_equivalent_is_const_false_function() {
        let a = ripple_carry_adder(3);
        let b = carry_lookahead_adder(3);
        let m = miter(&a.aig, &b.aig);
        assert_eq!(m.num_pos(), 1);
        for p in 0..64usize {
            let ins: Vec<bool> = (0..6).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(m.eval(&ins), vec![false], "p={p}");
        }
    }

    #[test]
    fn miter_of_buggy_is_satisfiable_somewhere() {
        let a = ripple_carry_adder(3);
        let buggy = inject_bug(&a.aig, 7, 50).expect("bug injectable");
        let m = miter(&a.aig, &buggy);
        let hit = (0..64usize).any(|p| {
            let ins: Vec<bool> = (0..6).map(|i| p >> i & 1 != 0).collect();
            m.eval(&ins)[0]
        });
        assert!(hit, "injected bug must be observable");
    }

    #[test]
    fn restructure_preserves_function() {
        let a = ripple_carry_adder(4);
        let r = restructure(&a.aig, 3);
        assert!(exhaustive_equiv(&a.aig, &r));
        assert!(
            r.num_ands() >= a.aig.num_ands(),
            "redundancy should not shrink"
        );
    }

    #[test]
    fn copy_into_respects_complemented_pos() {
        let mut src = Aig::new();
        let x = src.add_pi();
        src.add_po(!x);
        let mut g = Aig::new();
        let pis = g.add_pis(1);
        let outs = copy_into(&src, &mut g, &pis);
        g.add_po(outs[0]);
        assert_eq!(g.eval(&[true]), vec![false]);
        assert_eq!(g.eval(&[false]), vec![true]);
    }
}
