//! Parallel-prefix adders.
//!
//! Three classic prefix networks — Kogge–Stone, Brent–Kung, Sklansky — all
//! computing the same carry function through structurally different
//! generate/propagate trees. Mitred against each other (or against the
//! [`crate::datapath`] adders) they produce the deep, reconvergent UNSAT
//! instances that dominate industrial LEC suites.

use crate::datapath::Block;
use aig::{Aig, Lit};

/// One generate/propagate pair.
#[derive(Clone, Copy, Debug)]
struct Gp {
    g: Lit,
    p: Lit,
}

/// Prefix combine: `(g_hi, p_hi) ∘ (g_lo, p_lo)`.
fn combine(aig: &mut Aig, hi: Gp, lo: Gp) -> Gp {
    let t = aig.and(hi.p, lo.g);
    Gp {
        g: aig.or(hi.g, t),
        p: aig.and(hi.p, lo.p),
    }
}

/// Leaf generate/propagate terms for `a + b`.
fn leaves(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Gp> {
    a.iter()
        .zip(b)
        .map(|(&ai, &bi)| Gp {
            g: aig.and(ai, bi),
            p: aig.xor(ai, bi),
        })
        .collect()
}

/// Emits sum bits and the carry-out from prefix terms (`pre[i]` spans bits
/// `0..=i`).
fn emit_sums(aig: &mut Aig, leaf: &[Gp], pre: &[Gp]) {
    let n = leaf.len();
    for i in 0..n {
        let carry_in = if i == 0 { Lit::FALSE } else { pre[i - 1].g };
        let s = aig.xor(leaf[i].p, carry_in);
        aig.add_po(s);
    }
    aig.add_po(pre[n - 1].g);
}

/// Kogge–Stone adder: minimal depth, maximal wiring — `log2(n)` levels of
/// distance-doubling combines.
///
/// I/O shape matches [`crate::datapath::ripple_carry_adder`]: `2n` inputs,
/// `n+1` outputs (sum bits then carry-out).
pub fn kogge_stone_adder(n: usize) -> Block {
    assert!(n >= 1, "adder width must be positive");
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let leaf = leaves(&mut g, &a, &b);
    // pre[i] spans bits 0..=i; start at distance 1, double each level.
    let mut pre = leaf.clone();
    let mut dist = 1;
    while dist < n {
        let mut next = pre.clone();
        for (i, slot) in next.iter_mut().enumerate().skip(dist) {
            *slot = combine(&mut g, pre[i], pre[i - dist]);
        }
        pre = next;
        dist *= 2;
    }
    emit_sums(&mut g, &leaf, &pre);
    Block {
        aig: g,
        name: format!("ks{n}"),
    }
}

/// Brent–Kung adder: minimal wiring, ~`2·log2(n)` levels — an up-sweep
/// building power-of-two spans followed by a down-sweep filling the gaps.
pub fn brent_kung_adder(n: usize) -> Block {
    assert!(n >= 1, "adder width must be positive");
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let leaf = leaves(&mut g, &a, &b);
    let mut pre = leaf.clone();
    // Up-sweep: after level d, indices i ≡ 2^(d+1)-1 (mod 2^(d+1)) span
    // their full 2^(d+1) block.
    let mut span = 1;
    while span < n {
        let step = span * 2;
        let mut i = step - 1;
        while i < n {
            pre[i] = combine(&mut g, pre[i], pre[i - span]);
            i += step;
        }
        span = step;
    }
    // Down-sweep: fill in the remaining prefixes from the block roots.
    span /= 2;
    while span >= 1 {
        let step = span * 2;
        let mut i = step + span - 1;
        while i < n {
            pre[i] = combine(&mut g, pre[i], pre[i - span]);
            i += step;
        }
        span /= 2;
    }
    emit_sums(&mut g, &leaf, &pre);
    Block {
        aig: g,
        name: format!("bk{n}"),
    }
}

/// Sklansky (divide-and-conquer) adder: `log2(n)` levels with high-fanout
/// block roots.
pub fn sklansky_adder(n: usize) -> Block {
    assert!(n >= 1, "adder width must be positive");
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let leaf = leaves(&mut g, &a, &b);
    let mut pre = leaf.clone();
    let mut span = 1;
    while span < n {
        let step = span * 2;
        // Each block of `step` bits: the upper half combines with the
        // top of the lower half.
        let mut base = 0;
        while base + span < n {
            let root = base + span - 1;
            for i in (base + span)..(base + step).min(n) {
                pre[i] = combine(&mut g, pre[i], pre[root]);
            }
            base += step;
        }
        span = step;
    }
    emit_sums(&mut g, &leaf, &pre);
    Block {
        aig: g,
        name: format!("sk{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::ripple_carry_adder;
    use aig::check::exhaustive_equiv;

    fn num(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    fn check_adds(blk: &Block, n: usize) {
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let mut ins = Vec::new();
                for i in 0..n {
                    ins.push(av >> i & 1 != 0);
                }
                for i in 0..n {
                    ins.push(bv >> i & 1 != 0);
                }
                assert_eq!(
                    num(&blk.aig.eval(&ins)),
                    av + bv,
                    "{} a={av} b={bv}",
                    blk.name
                );
            }
        }
    }

    #[test]
    fn kogge_stone_adds() {
        for n in [1usize, 2, 3, 4, 5, 6] {
            check_adds(&kogge_stone_adder(n), n);
        }
    }

    #[test]
    fn brent_kung_adds() {
        for n in [1usize, 2, 3, 4, 5, 6, 7] {
            check_adds(&brent_kung_adder(n), n);
        }
    }

    #[test]
    fn sklansky_adds() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8] {
            check_adds(&sklansky_adder(n), n);
        }
    }

    #[test]
    fn prefix_families_mutually_equivalent() {
        for n in [4usize, 6, 7] {
            let ks = kogge_stone_adder(n);
            let bk = brent_kung_adder(n);
            let sk = sklansky_adder(n);
            let rca = ripple_carry_adder(n);
            assert!(exhaustive_equiv(&ks.aig, &bk.aig), "ks vs bk n={n}");
            assert!(exhaustive_equiv(&ks.aig, &sk.aig), "ks vs sk n={n}");
            assert!(exhaustive_equiv(&ks.aig, &rca.aig), "ks vs rca n={n}");
        }
    }

    #[test]
    fn kogge_stone_is_shallower_than_ripple() {
        let ks = kogge_stone_adder(16);
        let rca = ripple_carry_adder(16);
        assert!(
            ks.aig.depth() < rca.aig.depth(),
            "prefix depth {} must beat ripple depth {}",
            ks.aig.depth(),
            rca.aig.depth()
        );
    }
}
