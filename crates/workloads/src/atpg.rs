//! Automatic test-pattern-generation (ATPG) instance construction.
//!
//! Per the paper: "introduce stuck-at faults into industrial circuits and
//! connect the POs of faulty and fault-free circuits through XOR gates,
//! where satisfiable assignments serve as test patterns for fault
//! detection". A fault is *testable* iff the miter is SAT.

use crate::lec::miter;
use aig::{Aig, Lit, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single stuck-at fault site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StuckAtFault {
    /// The node whose output is stuck.
    pub node: Var,
    /// The stuck value.
    pub value: bool,
}

/// Builds the faulty version of a circuit: every consumer of `fault.node`
/// (including POs) reads the stuck constant instead.
///
/// # Panics
/// Panics if the fault site is the constant node.
pub fn inject_stuck_at(src: &Aig, fault: StuckAtFault) -> Aig {
    assert!(fault.node != 0, "cannot fault the constant node");
    let mut g = Aig::new();
    let pis = g.add_pis(src.num_pis());
    let mut map: Vec<Lit> = vec![Lit::FALSE; src.num_nodes()];
    for (i, &pi) in src.pis().iter().enumerate() {
        map[pi as usize] = pis[i];
    }
    let stuck = if fault.value { Lit::TRUE } else { Lit::FALSE };
    if (fault.node as usize) < map.len() && src.node(fault.node).is_pi() {
        map[fault.node as usize] = stuck;
    }
    for v in src.iter_ands() {
        let n = src.node(v);
        let f0 = map[n.fanin0().var() as usize].xor_compl(n.fanin0().is_compl());
        let f1 = map[n.fanin1().var() as usize].xor_compl(n.fanin1().is_compl());
        map[v as usize] = g.and(f0, f1);
        if v == fault.node {
            map[v as usize] = stuck;
        }
    }
    for po in src.pos() {
        let l = map[po.var() as usize].xor_compl(po.is_compl());
        g.add_po(l);
    }
    g
}

/// Builds the ATPG miter for one fault: SAT assignments are test patterns.
pub fn atpg_miter(src: &Aig, fault: StuckAtFault) -> Aig {
    let faulty = inject_stuck_at(src, fault);
    miter(src, &faulty)
}

/// Picks a random fault site that is observable on random simulation
/// (so the instance is satisfiable), retrying up to `tries` times.
///
/// Returns the fault and its miter, or `None` if nothing observable was
/// found (e.g. heavily redundant circuits).
pub fn random_testable_fault(src: &Aig, seed: u64, tries: usize) -> Option<(StuckAtFault, Aig)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sites: Vec<Var> = (1..src.num_nodes() as Var).collect();
    if sites.is_empty() {
        return None;
    }
    for _ in 0..tries {
        let fault = StuckAtFault {
            node: sites[rng.gen_range(0..sites.len())],
            value: rng.gen(),
        };
        let m = atpg_miter(src, fault);
        // Observable on random patterns? (Cheap SAT witness check.)
        let sigs = aig::sim::po_signatures(&m, 4, rng.gen());
        if sigs.row(0).iter().any(|&w| w != 0) {
            return Some((fault, m));
        }
    }
    None
}

/// Convenience: the ATPG miter with a hard (possibly untestable) random
/// fault — no observability filtering, mirrors redundancy-identification
/// workloads where UNSAT outcomes matter.
pub fn random_fault_miter(src: &Aig, seed: u64) -> (StuckAtFault, Aig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let node = rng.gen_range(1..src.num_nodes() as Var);
    let fault = StuckAtFault {
        node,
        value: rng.gen(),
    };
    let m = atpg_miter(src, fault);
    (fault, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::ripple_carry_adder;

    #[test]
    fn stuck_pi_forces_value() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        let fault = StuckAtFault {
            node: a.var(),
            value: true,
        };
        let f = inject_stuck_at(&g, fault);
        // With a stuck at 1, output equals b.
        assert_eq!(f.eval(&[false, true]), vec![true]);
        assert_eq!(f.eval(&[false, false]), vec![false]);
    }

    #[test]
    fn stuck_gate_forces_value() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.or(x, a);
        g.add_po(y);
        let fault = StuckAtFault {
            node: x.var(),
            value: true,
        };
        let f = inject_stuck_at(&g, fault);
        // y = 1 | a = 1 always.
        for ins in [[false, false], [true, false], [false, true]] {
            assert_eq!(f.eval(&ins), vec![true]);
        }
    }

    #[test]
    fn testable_fault_miter_is_satisfiable() {
        let blk = ripple_carry_adder(3);
        let (fault, m) = random_testable_fault(&blk.aig, 11, 100).expect("testable fault");
        // Exhaustive check: some input pattern detects the fault.
        let n = m.num_pis();
        let detected = (0..(1usize << n)).any(|p| {
            let ins: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            m.eval(&ins)[0]
        });
        assert!(detected, "fault {fault:?} must be detectable");
    }

    #[test]
    fn fault_free_miter_of_same_circuit_is_unsat() {
        // Stuck-at that does not change the function (redundant site):
        // build one artificially by faulting dead logic.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let live = g.and(a, b);
        let dead = g.xor(a, b);
        g.add_po(live);
        let fault = StuckAtFault {
            node: dead.var(),
            value: true,
        };
        let m = atpg_miter(&g, fault);
        let undetected = (0..4usize).all(|p| {
            let ins: Vec<bool> = (0..2).map(|i| p >> i & 1 != 0).collect();
            !m.eval(&ins)[0]
        });
        assert!(undetected, "dead-logic fault is untestable (UNSAT miter)");
    }
}
