//! Direct CNF workload generators (no circuit intermediary): canonical
//! solver stressors shared by the perf harness, the criterion benches,
//! and the differential test suites — one definition, one encoding.

use aig::{Aig, Lit};
use cnf::{Cnf, CnfLit};
use rand::{Rng, SeedableRng};

/// Pigeonhole principle PHP(n+1, n): `holes + 1` pigeons into `holes`
/// holes — the canonical propagation-heavy UNSAT family. Variable
/// `p * holes + h + 1` means "pigeon `p` sits in hole `h`".
pub fn pigeonhole(holes: u32) -> Cnf {
    let pigeons = holes + 1;
    let var = |p: u32, h: u32| p * holes + h + 1;
    let mut f = Cnf::new();
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| CnfLit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                f.add_clause(vec![CnfLit::neg(var(p1, h)), CnfLit::neg(var(p2, h))]);
            }
        }
    }
    f
}

/// The same pigeonhole family as [`pigeonhole`], but as a combinational
/// circuit: PI `p * holes + h` means "pigeon `p` sits in hole `h`", and
/// the single PO is the conjunction of every placement constraint — each
/// of the `holes + 1` pigeons in some hole, no hole holding two pigeons.
/// The PO is satisfiable iff a valid injection exists, i.e. never: the
/// instance is UNSAT, turning a CNF-only stressor into a front-door
/// workload for the full AIG → CNF pipeline (and the CLI's timeout path).
pub fn pigeonhole_aig(holes: u32) -> Aig {
    let pigeons = holes + 1;
    let mut g = Aig::new();
    let pis: Vec<Lit> = (0..pigeons * holes).map(|_| g.add_pi()).collect();
    let var = |p: u32, h: u32| pis[(p * holes + h) as usize];
    let mut constraints = Lit::TRUE;
    for p in 0..pigeons {
        let mut somewhere = Lit::FALSE;
        for h in 0..holes {
            somewhere = g.or(somewhere, var(p, h));
        }
        constraints = g.and(constraints, somewhere);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                let clash = g.and(var(p1, h), var(p2, h));
                constraints = g.and(constraints, !clash);
            }
        }
    }
    g.add_po(constraints);
    g
}

/// Uniform random 3-SAT over `n` variables at the given clause/variable
/// ratio (4.26 is the classic phase-transition point). Deterministic for
/// a fixed seed; clauses hold three distinct variables.
pub fn random_3sat(n: u32, ratio: f64, seed: u64) -> Cnf {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut f = Cnf::new();
    f.ensure_vars(n);
    for _ in 0..(n as f64 * ratio) as usize {
        let mut clause = Vec::new();
        while clause.len() < 3 {
            let v = rng.gen_range(1..=n);
            if clause.iter().all(|l: &CnfLit| l.var() != v) {
                clause.push(CnfLit::new(v, rng.gen()));
            }
        }
        f.add_clause(clause);
    }
    f
}

/// Uniform random 2-SAT over `n` variables at the given clause/variable
/// ratio (the SAT/UNSAT threshold sits at 1.0). Deterministic for a fixed
/// seed. Every clause is binary, so the whole instance lives in the
/// solver's inline binary tier — the canonical stressor for the
/// binary-watcher propagation path.
///
/// # Panics
/// Panics if `n < 2` (a binary clause needs two distinct variables).
pub fn random_2sat(n: u32, ratio: f64, seed: u64) -> Cnf {
    assert!(n >= 2, "binary clauses need two distinct variables");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut f = Cnf::new();
    f.ensure_vars(n);
    for _ in 0..(n as f64 * ratio) as usize {
        let a = rng.gen_range(1..=n);
        let mut b = rng.gen_range(1..=n);
        while b == a {
            b = rng.gen_range(1..=n);
        }
        f.add_clause(vec![CnfLit::new(a, rng.gen()), CnfLit::new(b, rng.gen())]);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_2sat_deterministic_and_all_binary() {
        let a = random_2sat(50, 1.5, 11);
        let b = random_2sat(50, 1.5, 11);
        assert_eq!(a, b);
        assert_eq!(a.num_clauses(), 75);
        for c in a.clauses() {
            assert_eq!(c.len(), 2);
            assert_ne!(c[0].var(), c[1].var());
        }
    }

    #[test]
    fn pigeonhole_shape() {
        let holes = 4u32;
        let f = pigeonhole(holes);
        let pigeons = holes + 1;
        let pair_clauses = holes * pigeons * (pigeons - 1) / 2;
        assert_eq!(f.num_vars(), pigeons * holes);
        assert_eq!(f.num_clauses() as u32, pigeons + pair_clauses);
    }

    #[test]
    fn pigeonhole_aig_is_exhaustively_unsat() {
        // holes+1 pigeons never fit: the PO must be false for every input
        // assignment (checked exhaustively at small sizes).
        for holes in [1u32, 2] {
            let g = pigeonhole_aig(holes);
            let n = ((holes + 1) * holes) as usize;
            assert_eq!(g.num_pis(), n);
            assert_eq!(g.num_pos(), 1);
            for bits in 0..(1u32 << n) {
                let ins: Vec<bool> = (0..n).map(|i| bits >> i & 1 != 0).collect();
                assert!(!g.eval(&ins)[0], "holes={holes} bits={bits:b}");
            }
        }
    }

    #[test]
    fn random_3sat_deterministic_and_well_formed() {
        let a = random_3sat(30, 4.26, 7);
        let b = random_3sat(30, 4.26, 7);
        assert_eq!(a.num_clauses(), b.num_clauses());
        assert_eq!(a.num_clauses(), (30.0 * 4.26) as usize);
        for c in a.clauses() {
            assert_eq!(c.len(), 3);
            let mut vars: Vec<u32> = c.iter().map(|l| l.var()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "distinct variables per clause");
        }
    }
}
