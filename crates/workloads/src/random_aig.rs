//! Random layered AIG generation — filler logic for dataset variety and
//! stress tests.

use aig::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomAigParams {
    /// Primary inputs.
    pub n_pis: usize,
    /// Gates to create.
    pub n_gates: usize,
    /// Primary outputs (taken from the last created gates).
    pub n_pos: usize,
    /// Probability that a new gate's operand is complemented.
    pub compl_prob: f64,
    /// Locality window: operands are drawn from the last `window` signals
    /// (0 = uniform over everything), giving layered, deep circuits.
    pub window: usize,
}

impl Default for RandomAigParams {
    fn default() -> RandomAigParams {
        RandomAigParams {
            n_pis: 16,
            n_gates: 200,
            n_pos: 2,
            compl_prob: 0.5,
            window: 32,
        }
    }
}

/// Generates a random AIG; deterministic for a fixed seed.
///
/// # Panics
/// Panics if `n_pis == 0` or `n_pos == 0`.
pub fn random_aig(params: &RandomAigParams, seed: u64) -> Aig {
    assert!(params.n_pis > 0, "need at least one PI");
    assert!(params.n_pos > 0, "need at least one PO");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Aig::new();
    let pis = g.add_pis(params.n_pis);
    let mut pool: Vec<Lit> = pis;
    while pool.len() < params.n_pis + params.n_gates {
        let lo = if params.window == 0 {
            0
        } else {
            pool.len().saturating_sub(params.window)
        };
        let pick = |rng: &mut StdRng, pool: &[Lit]| -> Lit {
            let i = rng.gen_range(lo.min(pool.len() - 1)..pool.len());
            pool[i]
        };
        let a = pick(&mut rng, &pool).xor_compl(rng.gen_bool(params.compl_prob));
        let b = pick(&mut rng, &pool).xor_compl(rng.gen_bool(params.compl_prob));
        let l = match rng.gen_range(0..4) {
            0 | 1 => g.and(a, b),
            2 => g.or(a, b),
            _ => g.xor(a, b),
        };
        if !l.is_const() {
            pool.push(l);
        }
    }
    let n = pool.len();
    for i in 0..params.n_pos {
        let idx = n - 1 - (i * 7) % (n.min(64));
        g.add_po(pool[idx].xor_compl(i % 2 == 1));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = RandomAigParams::default();
        let a = random_aig(&p, 9);
        let b = random_aig(&p, 9);
        assert_eq!(a.num_ands(), b.num_ands());
        assert!(aig::check::sim_equiv(&a, &b, 2, 3));
    }

    #[test]
    fn respects_shape() {
        let p = RandomAigParams {
            n_pis: 10,
            n_gates: 300,
            n_pos: 4,
            ..Default::default()
        };
        let g = random_aig(&p, 1);
        assert_eq!(g.num_pis(), 10);
        assert_eq!(g.num_pos(), 4);
        assert!(g.num_ands() >= 300, "xor/or expand to multiple ANDs");
    }

    #[test]
    fn windowed_generation_is_deep() {
        let deep = random_aig(
            &RandomAigParams {
                window: 4,
                n_gates: 300,
                ..Default::default()
            },
            5,
        );
        let shallow = random_aig(
            &RandomAigParams {
                window: 0,
                n_gates: 300,
                ..Default::default()
            },
            5,
        );
        assert!(
            deep.depth() > shallow.depth(),
            "{} vs {}",
            deep.depth(),
            shallow.depth()
        );
    }
}
