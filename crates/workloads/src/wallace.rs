//! Wallace-tree and Dadda multipliers.
//!
//! Both reduce the partial-product matrix with carry-save compressors, but
//! with different reduction schedules: Wallace compresses as aggressively
//! as possible at every level, Dadda delays compression to the latest
//! level that still meets the height sequence 2, 3, 4, 6, 9, 13, …
//! Against [`crate::datapath::array_multiplier`] they make the classic
//! "multiplier architecture equivalence" miters — the hardest family in
//! the paper's test set.

use crate::datapath::Block;
use aig::{Aig, Lit};

/// Full-adder compression of three bits into (sum, carry).
fn compress3(g: &mut Aig, x: Lit, y: Lit, z: Lit) -> (Lit, Lit) {
    let t = g.xor(x, y);
    let s = g.xor(t, z);
    let c1 = g.and(x, y);
    let c2 = g.and(t, z);
    let c = g.or(c1, c2);
    (s, c)
}

/// Half-adder compression of two bits into (sum, carry).
fn compress2(g: &mut Aig, x: Lit, y: Lit) -> (Lit, Lit) {
    (g.xor(x, y), g.and(x, y))
}

/// The partial-product matrix `columns[k] = { a_j & b_i | i + j = k }`.
fn partial_products(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Vec<Lit>> {
    let n = a.len();
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); 2 * n];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let p = g.and(aj, bi);
            columns[i + j].push(p);
        }
    }
    columns
}

/// Final carry-propagate addition of a two-row carry-save result.
fn final_ripple(g: &mut Aig, columns: Vec<Vec<Lit>>) {
    let width = columns.len();
    let mut carry = Lit::FALSE;
    for col in columns {
        debug_assert!(col.len() <= 2, "reduction must leave ≤ 2 rows");
        let x = col.first().copied().unwrap_or(Lit::FALSE);
        let y = col.get(1).copied().unwrap_or(Lit::FALSE);
        let (s, c) = compress3(g, x, y, carry);
        g.add_po(s);
        carry = c;
    }
    let _ = width;
}

/// Wallace-tree multiplier: `n`-bit × `n`-bit, `2n` outputs.
///
/// Every reduction level greedily applies full adders to triples and a
/// half adder to one leftover pair per column, until every column holds at
/// most two bits; a ripple adder finishes the job.
pub fn wallace_multiplier(n: usize) -> Block {
    assert!(n >= 1, "multiplier width must be positive");
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let mut columns = partial_products(&mut g, &a, &b);
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<Lit>> = vec![Vec::new(); columns.len()];
        for (k, col) in columns.iter().enumerate() {
            let mut it = col.iter().copied();
            loop {
                match (it.next(), it.next(), it.next()) {
                    (Some(x), Some(y), Some(z)) => {
                        let (s, c) = compress3(&mut g, x, y, z);
                        next[k].push(s);
                        if k + 1 < next.len() {
                            next[k + 1].push(c);
                        }
                    }
                    (Some(x), Some(y), None) => {
                        let (s, c) = compress2(&mut g, x, y);
                        next[k].push(s);
                        if k + 1 < next.len() {
                            next[k + 1].push(c);
                        }
                        break;
                    }
                    (Some(x), None, _) => {
                        next[k].push(x);
                        break;
                    }
                    _ => break,
                }
            }
        }
        columns = next;
    }
    final_ripple(&mut g, columns);
    Block {
        aig: g,
        name: format!("wal{n}"),
    }
}

/// Dadda-sequence heights: 2, 3, 4, 6, 9, 13, … (each ⌊3/2⌋× the last).
fn dadda_heights(max: usize) -> Vec<usize> {
    let mut hs = vec![2usize];
    while *hs.last().expect("non-empty") < max {
        let last = *hs.last().expect("non-empty");
        hs.push(last * 3 / 2);
    }
    hs
}

/// Dadda multiplier: like Wallace but compresses *just enough* per level
/// to reach the next height in the Dadda sequence — fewer adders, same
/// function.
pub fn dadda_multiplier(n: usize) -> Block {
    assert!(n >= 1, "multiplier width must be positive");
    let mut g = Aig::new();
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    let mut columns = partial_products(&mut g, &a, &b);
    let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
    let mut targets = dadda_heights(max_height.max(2));
    while let Some(&target) = targets.last() {
        targets.pop();
        // Reduce columns left-to-right until every column fits `target`,
        // counting carries that arrive from the previous column.
        let width = columns.len();
        for k in 0..width {
            while columns[k].len() > target {
                if columns[k].len() >= target + 2 {
                    // Full adder removes two bits from this column.
                    let x = columns[k].remove(0);
                    let y = columns[k].remove(0);
                    let z = columns[k].remove(0);
                    let (s, c) = compress3(&mut g, x, y, z);
                    columns[k].push(s);
                    if k + 1 < width {
                        columns[k + 1].push(c);
                    }
                } else {
                    // Half adder removes one bit.
                    let x = columns[k].remove(0);
                    let y = columns[k].remove(0);
                    let (s, c) = compress2(&mut g, x, y);
                    columns[k].push(s);
                    if k + 1 < width {
                        columns[k + 1].push(c);
                    }
                }
            }
        }
    }
    final_ripple(&mut g, columns);
    Block {
        aig: g,
        name: format!("dad{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::array_multiplier;
    use aig::check::exhaustive_equiv;

    fn num(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    fn check_multiplies(blk: &Block, n: usize) {
        for av in 0..(1u64 << n) {
            for bv in 0..(1u64 << n) {
                let mut ins = Vec::new();
                for i in 0..n {
                    ins.push(av >> i & 1 != 0);
                }
                for i in 0..n {
                    ins.push(bv >> i & 1 != 0);
                }
                assert_eq!(
                    num(&blk.aig.eval(&ins)),
                    av * bv,
                    "{} a={av} b={bv}",
                    blk.name
                );
            }
        }
    }

    #[test]
    fn wallace_multiplies() {
        for n in [1usize, 2, 3, 4, 5] {
            check_multiplies(&wallace_multiplier(n), n);
        }
    }

    #[test]
    fn dadda_multiplies() {
        for n in [1usize, 2, 3, 4, 5] {
            check_multiplies(&dadda_multiplier(n), n);
        }
    }

    #[test]
    fn tree_multipliers_match_array_multiplier() {
        for n in [3usize, 4] {
            let w = wallace_multiplier(n);
            let d = dadda_multiplier(n);
            let a = array_multiplier(n);
            assert!(exhaustive_equiv(&w.aig, &a.aig), "wal vs mul n={n}");
            assert!(exhaustive_equiv(&d.aig, &a.aig), "dad vs mul n={n}");
            assert!(exhaustive_equiv(&w.aig, &d.aig), "wal vs dad n={n}");
        }
    }

    #[test]
    fn dadda_uses_no_more_gates_than_wallace() {
        for n in [4usize, 6, 8] {
            let w = wallace_multiplier(n);
            let d = dadda_multiplier(n);
            assert!(
                d.aig.num_ands() <= w.aig.num_ands(),
                "n={n}: dadda {} vs wallace {}",
                d.aig.num_ands(),
                w.aig.num_ands()
            );
        }
    }

    #[test]
    fn dadda_height_sequence() {
        assert_eq!(dadda_heights(13), vec![2, 3, 4, 6, 9, 13]);
        assert_eq!(dadda_heights(2), vec![2]);
        assert_eq!(dadda_heights(5), vec![2, 3, 4, 6]);
    }

    #[test]
    fn wallace_is_shallower_than_array_multiplier() {
        let w = wallace_multiplier(8);
        let a = array_multiplier(8);
        assert!(
            w.aig.depth() < a.aig.depth(),
            "tree depth {} must beat array depth {}",
            w.aig.depth(),
            a.aig.depth()
        );
    }
}
