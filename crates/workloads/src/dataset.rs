//! Benchmark dataset generation mirroring the paper's Table I setup.
//!
//! The paper trains on 200 *easy* instances (0.04–6.68 s baseline solving
//! time) and tests on 300 *hard* ones, all "derived from both industrial
//! logic equivalence checking (LEC) and automatic test pattern generation
//! (ATPG) problems", at a 2:1 LEC:ATPG ratio. We synthesise the same mix
//! from generated datapath blocks: LEC miters compare architecturally
//! different implementations (or bug-injected copies), ATPG miters compare
//! fault-free and stuck-at-faulted copies. Difficulty is controlled by
//! operand width — multiplier equivalence miters are the hard core, exactly
//! as in real LEC suites.

use crate::atpg::{random_fault_miter, random_testable_fault};
use crate::datapath::{
    alu, array_multiplier, carry_lookahead_adder, carry_select_adder, column_multiplier,
    comparator_eq, comparator_lt, mux_tree, parity, ripple_carry_adder, Block,
};
use crate::lec::{inject_bug, miter, restructure};
use aig::Aig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Problem family of an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstanceKind {
    /// Logic equivalence checking miter.
    Lec,
    /// Stuck-at-fault test-generation miter.
    Atpg,
}

/// One CSAT benchmark instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Unique, descriptive name (seed-stable).
    pub name: String,
    /// Problem family.
    pub kind: InstanceKind,
    /// The single-PO miter.
    pub aig: Aig,
    /// Expected satisfiability if known by construction
    /// (`Some(true)` = SAT, `Some(false)` = UNSAT).
    pub expected: Option<bool>,
}

/// Size/difficulty profile of a generated dataset.
#[derive(Clone, Copy, Debug)]
pub struct DatasetParams {
    /// Number of instances.
    pub count: usize,
    /// Minimum operand width of the datapath blocks.
    pub min_bits: usize,
    /// Maximum operand width of the datapath blocks.
    pub max_bits: usize,
    /// Include the hard multiplier-equivalence family.
    pub hard_multipliers: bool,
}

impl DatasetParams {
    /// Profile resembling the paper's *training* split: easy instances.
    pub fn training(count: usize) -> DatasetParams {
        DatasetParams {
            count,
            min_bits: 4,
            max_bits: 12,
            hard_multipliers: false,
        }
    }

    /// Profile resembling the paper's *test* split: harder instances.
    pub fn test(count: usize) -> DatasetParams {
        DatasetParams {
            count,
            min_bits: 8,
            max_bits: 24,
            hard_multipliers: true,
        }
    }
}

/// Generates a deterministic dataset with the paper's 2:1 LEC:ATPG mix.
pub fn generate(params: &DatasetParams, seed: u64) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(params.count);
    let mut idx = 0usize;
    while out.len() < params.count {
        let inst_seed = rng.gen::<u64>();
        // 2 LEC : 1 ATPG, as in the paper (200 LEC / 100 ATPG).
        let inst = if idx % 3 == 2 {
            make_atpg(params, inst_seed, idx)
        } else {
            make_lec(params, inst_seed, idx)
        };
        if let Some(i) = inst {
            out.push(i);
        }
        idx += 1;
    }
    out
}

fn pick_bits(params: &DatasetParams, rng: &mut StdRng) -> usize {
    rng.gen_range(params.min_bits..=params.max_bits)
}

fn make_lec(params: &DatasetParams, seed: u64, idx: usize) -> Option<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = pick_bits(params, &mut rng);
    // Choose an architecture pair.
    let family = if params.hard_multipliers {
        rng.gen_range(0..6)
    } else {
        rng.gen_range(0..5)
    };
    let (a, b): (Block, Block) = match family {
        0 => (ripple_carry_adder(bits), carry_lookahead_adder(bits)),
        1 => (
            ripple_carry_adder(bits),
            carry_select_adder(bits, 2 + bits / 6),
        ),
        2 => (carry_lookahead_adder(bits), carry_select_adder(bits, 2)),
        3 => {
            let base = alu(bits.min(16));
            let re = restructure(&base.aig, rng.gen());
            (
                base.clone(),
                Block {
                    aig: re,
                    name: format!("{}r", base.name),
                },
            )
        }
        4 => {
            let base = match rng.gen_range(0..4) {
                0 => comparator_eq(bits),
                1 => comparator_lt(bits),
                2 => mux_tree(3 + bits % 3),
                _ => parity(bits + 4),
            };
            let re = restructure(&base.aig, rng.gen());
            (
                base.clone(),
                Block {
                    aig: re,
                    name: format!("{}r", base.name),
                },
            )
        }
        _ => {
            // Hard core: multiplier architecture equivalence.
            let mbits = (bits / 3).clamp(3, 8);
            (array_multiplier(mbits), column_multiplier(mbits))
        }
    };
    // Half the LEC instances get a bug (SAT), half stay equivalent (UNSAT).
    if rng.gen_bool(0.5) {
        let buggy = inject_bug(&b.aig, rng.gen(), 64)?;
        let m = miter(&a.aig, &buggy);
        Some(Instance {
            name: format!("lec_{:04}_{}_vs_{}_bug", idx, a.name, b.name),
            kind: InstanceKind::Lec,
            aig: m,
            expected: Some(true),
        })
    } else {
        let m = miter(&a.aig, &b.aig);
        Some(Instance {
            name: format!("lec_{:04}_{}_vs_{}", idx, a.name, b.name),
            kind: InstanceKind::Lec,
            aig: m,
            expected: Some(false),
        })
    }
}

fn make_atpg(params: &DatasetParams, seed: u64, idx: usize) -> Option<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = pick_bits(params, &mut rng);
    let base = match rng.gen_range(0..5) {
        0 => ripple_carry_adder(bits),
        1 => carry_lookahead_adder(bits),
        2 => alu(bits.min(16)),
        3 => comparator_lt(bits),
        _ => {
            let mbits = (bits / 3).clamp(3, 6);
            array_multiplier(mbits)
        }
    };
    // Mostly testable faults (SAT); occasionally an unfiltered fault whose
    // status is unknown a priori (mirrors redundancy identification).
    if rng.gen_bool(0.8) {
        let (fault, m) = random_testable_fault(&base.aig, rng.gen(), 64)?;
        Some(Instance {
            name: format!(
                "atpg_{:04}_{}_sa{}_{}",
                idx, base.name, fault.value as u8, fault.node
            ),
            kind: InstanceKind::Atpg,
            aig: m,
            expected: Some(true),
        })
    } else {
        let (fault, m) = random_fault_miter(&base.aig, rng.gen());
        Some(Instance {
            name: format!(
                "atpg_{:04}_{}_sa{}_{}_u",
                idx, base.name, fault.value as u8, fault.node
            ),
            kind: InstanceKind::Atpg,
            aig: m,
            expected: None,
        })
    }
}

/// Generates the *hard* test split the paper's Fig. 4/5 are measured on:
/// instances whose baseline solving time dominates preprocessing time.
///
/// The mix mirrors industrial LEC/ATPG suites: wide adder-architecture
/// equivalences and ALU cones form the bulk, multiplier-architecture
/// equivalences are the hard core, and a third of the set are SAT
/// (bug-injected or fault-detection) instances. `difficulty` scales the
/// operand widths (1 = minutes-per-campaign, 2+ = paper-shaped hours).
pub fn generate_hard(count: usize, seed: u64, difficulty: usize) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = difficulty.max(1);
    let mut out = Vec::with_capacity(count);
    let mut idx = 0usize;
    while out.len() < count {
        let kind_roll = idx % 3; // 2 LEC : 1 ATPG, as in the paper
        let fam = rng.gen_range(0..6);
        let inst = if kind_roll == 2 {
            hard_atpg(&mut rng, idx, fam, d)
        } else {
            hard_lec(&mut rng, idx, fam, d)
        };
        if let Some(i) = inst {
            out.push(i);
        }
        idx += 1;
    }
    out
}

fn hard_lec(rng: &mut StdRng, idx: usize, fam: usize, d: usize) -> Option<Instance> {
    let adder_bits = rng.gen_range(72..=96 + 48 * d);
    let mul_bits = rng.gen_range(5..=5 + d.min(4));
    let (a, b): (Block, Block) = match fam {
        0 => (
            ripple_carry_adder(adder_bits),
            carry_lookahead_adder(adder_bits),
        ),
        1 => (
            carry_lookahead_adder(adder_bits),
            carry_select_adder(adder_bits, 4),
        ),
        2 => (
            ripple_carry_adder(adder_bits),
            carry_select_adder(adder_bits, 3),
        ),
        3 => {
            let bits = rng.gen_range(24..=24 + 16 * d);
            let base = alu(bits);
            let re = restructure(&base.aig, rng.gen());
            (
                base.clone(),
                Block {
                    aig: re,
                    name: format!("{}r", base.name),
                },
            )
        }
        _ => (array_multiplier(mul_bits), column_multiplier(mul_bits)),
    };
    // One third of the LEC instances carry a bug (SAT witnesses exist).
    if rng.gen_bool(1.0 / 3.0) {
        let buggy = inject_bug(&b.aig, rng.gen(), 64)?;
        Some(Instance {
            name: format!("hlec_{:04}_{}_vs_{}_bug", idx, a.name, b.name),
            kind: InstanceKind::Lec,
            aig: miter(&a.aig, &buggy),
            expected: Some(true),
        })
    } else {
        Some(Instance {
            name: format!("hlec_{:04}_{}_vs_{}", idx, a.name, b.name),
            kind: InstanceKind::Lec,
            aig: miter(&a.aig, &b.aig),
            expected: Some(false),
        })
    }
}

fn hard_atpg(rng: &mut StdRng, idx: usize, fam: usize, d: usize) -> Option<Instance> {
    let base = match fam % 4 {
        0 => array_multiplier(rng.gen_range(5..=5 + d.min(3))),
        1 => alu(rng.gen_range(24..=24 + 16 * d)),
        2 => carry_lookahead_adder(rng.gen_range(64..=64 + 32 * d)),
        _ => {
            // Redundancy identification: faults inside restructured logic
            // are often untestable, yielding hard UNSAT ATPG instances.
            let b = comparator_lt(rng.gen_range(24..=24 + 16 * d));
            Block {
                aig: restructure(&b.aig, rng.gen()),
                name: format!("{}r", b.name),
            }
        }
    };
    let (fault, m) = random_fault_miter(&base.aig, rng.gen());
    Some(Instance {
        name: format!(
            "hatpg_{:04}_{}_sa{}_{}",
            idx, base.name, fault.value as u8, fault.node
        ),
        kind: InstanceKind::Atpg,
        aig: m,
        expected: None,
    })
}

/// Generates an *extended* dataset drawing on the full workload library:
/// parallel-prefix adders ([`crate::prefix_adders`]), tree multipliers
/// ([`crate::wallace`]), barrel shifters ([`crate::shifters`]) and
/// encoders ([`crate::encoders`]) in addition to the base families.
///
/// Kept separate from [`generate`]/[`generate_hard`] so the paper-shaped
/// experiment datasets stay byte-stable; use this profile to stress the
/// framework on a wider architecture mix (see the `extended_families`
/// example).
pub fn generate_extended(params: &DatasetParams, seed: u64) -> Vec<Instance> {
    use crate::encoders::{gray_roundtrip, popcount, priority_encoder};
    use crate::prefix_adders::{brent_kung_adder, kogge_stone_adder, sklansky_adder};
    use crate::shifters::{barrel_shifter_decoded, barrel_shifter_log, rotator_log};
    use crate::wallace::{dadda_multiplier, wallace_multiplier};

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(params.count);
    let mut idx = 0usize;
    while out.len() < params.count {
        let inst_seed: u64 = rng.gen();
        let mut irng = StdRng::seed_from_u64(inst_seed);
        let bits = pick_bits(params, &mut irng);
        let fam = idx % 7;
        let (a, b): (Block, Block) = match fam {
            0 => (kogge_stone_adder(bits), brent_kung_adder(bits)),
            1 => (sklansky_adder(bits), ripple_carry_adder(bits)),
            2 => {
                let k = (3 + bits % 3).min(5);
                (barrel_shifter_log(k), barrel_shifter_decoded(k))
            }
            3 => {
                let mbits = (bits / 3).clamp(3, 6);
                (wallace_multiplier(mbits), dadda_multiplier(mbits))
            }
            4 => {
                let mbits = (bits / 3).clamp(3, 6);
                (wallace_multiplier(mbits), array_multiplier(mbits))
            }
            5 => {
                let base = match irng.gen_range(0..3) {
                    0 => priority_encoder(bits.min(32)),
                    1 => popcount(bits.min(48)),
                    _ => gray_roundtrip(bits.min(48)),
                };
                let re = restructure(&base.aig, irng.gen());
                (
                    base.clone(),
                    Block {
                        aig: re,
                        name: format!("{}r", base.name),
                    },
                )
            }
            _ => {
                let k = (3 + bits % 2).min(5);
                let base = rotator_log(k);
                let re = restructure(&base.aig, irng.gen());
                (
                    base.clone(),
                    Block {
                        aig: re,
                        name: format!("{}r", base.name),
                    },
                )
            }
        };
        let inst = if irng.gen_bool(0.5) {
            inject_bug(&b.aig, irng.gen(), 64).map(|buggy| Instance {
                name: format!("xlec_{:04}_{}_vs_{}_bug", idx, a.name, b.name),
                kind: InstanceKind::Lec,
                aig: miter(&a.aig, &buggy),
                expected: Some(true),
            })
        } else {
            Some(Instance {
                name: format!("xlec_{:04}_{}_vs_{}", idx, a.name, b.name),
                kind: InstanceKind::Lec,
                aig: miter(&a.aig, &b.aig),
                expected: Some(false),
            })
        };
        if let Some(i) = inst {
            out.push(i);
        }
        idx += 1;
    }
    out
}

/// Summary statistics of an instance, as reported in the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceStats {
    /// Total gates (ANDs).
    pub gates: usize,
    /// Primary inputs.
    pub pis: usize,
    /// Logic depth.
    pub depth: u32,
}

/// Computes Table-I-style statistics for one instance.
pub fn instance_stats(aig: &Aig) -> InstanceStats {
    InstanceStats {
        gates: aig.num_ands(),
        pis: aig.num_pis(),
        depth: aig.depth(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let p = DatasetParams::training(12);
        let a = generate(&p, 77);
        let b = generate(&p, 77);
        assert_eq!(a.len(), 12);
        let names_a: Vec<&str> = a.iter().map(|i| i.name.as_str()).collect();
        let names_b: Vec<&str> = b.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn mix_is_two_to_one() {
        let p = DatasetParams::training(30);
        let set = generate(&p, 3);
        let lec = set.iter().filter(|i| i.kind == InstanceKind::Lec).count();
        let atpg = set.iter().filter(|i| i.kind == InstanceKind::Atpg).count();
        assert!(lec > atpg, "LEC should dominate 2:1 ({lec} vs {atpg})");
    }

    #[test]
    fn single_po_miters() {
        let set = generate(&DatasetParams::training(9), 5);
        for i in &set {
            assert_eq!(i.aig.num_pos(), 1, "{}", i.name);
            assert!(i.aig.num_pis() > 0, "{}", i.name);
        }
    }

    #[test]
    fn expected_sat_instances_have_witness() {
        // Verify via bounded exhaustive/random evaluation on small ones.
        let set = generate(
            &DatasetParams {
                count: 12,
                min_bits: 4,
                max_bits: 6,
                hard_multipliers: false,
            },
            9,
        );
        for inst in set.iter().filter(|i| i.expected == Some(true)) {
            let n = inst.aig.num_pis();
            if n <= 14 {
                let found = (0..(1usize << n)).any(|p| {
                    let ins: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
                    inst.aig.eval(&ins)[0]
                });
                assert!(found, "{} labelled SAT but no witness", inst.name);
            } else {
                let sigs = aig::sim::po_signatures(&inst.aig, 8, 1);
                assert!(sigs.row(0).iter().any(|&w| w != 0), "{}", inst.name);
            }
        }
    }

    #[test]
    fn extended_generation_is_deterministic_and_well_formed() {
        let p = DatasetParams {
            count: 14,
            min_bits: 6,
            max_bits: 12,
            hard_multipliers: false,
        };
        let a = generate_extended(&p, 123);
        let b = generate_extended(&p, 123);
        assert_eq!(a.len(), 14);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.aig.num_ands(), y.aig.num_ands());
            assert_eq!(x.aig.num_pos(), 1, "{}", x.name);
        }
        // The family rotation must actually reach the new generators.
        assert!(a
            .iter()
            .any(|i| i.name.contains("ks") || i.name.contains("bk")));
        assert!(a
            .iter()
            .any(|i| i.name.contains("wal") || i.name.contains("dad")));
        assert!(a.iter().any(|i| i.name.contains("bsh")));
    }

    #[test]
    fn extended_unsat_miters_verified_by_simulation() {
        let p = DatasetParams {
            count: 10,
            min_bits: 4,
            max_bits: 7,
            hard_multipliers: false,
        };
        let set = generate_extended(&p, 7);
        for inst in set.iter().filter(|i| i.expected == Some(false)) {
            // UNSAT miters must never fire under random simulation.
            let sigs = aig::sim::po_signatures(&inst.aig, 16, 99);
            assert!(sigs.row(0).iter().all(|&w| w == 0), "{} fired", inst.name);
        }
    }

    #[test]
    fn stats_reasonable() {
        let set = generate(&DatasetParams::training(6), 2);
        for i in &set {
            let s = instance_stats(&i.aig);
            assert!(s.gates > 0 && s.pis > 0 && s.depth > 0, "{}: {s:?}", i.name);
        }
    }
}
