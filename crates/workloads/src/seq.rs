//! Sequential workload generators for the model-checking subsystem.
//!
//! Each generator returns a [`SeqAig`] whose single real PO is the *bad*
//! signal of a safety property, so the machines plug directly into
//! `mc::bmc` / `mc::kind` and into [`SeqAig::bmc_instance`]:
//!
//! * [`counter`] — enable-gated binary counter whose bad signal fires at
//!   the all-ones state: falsifiable, with the counterexample depth
//!   controlled by the bit width (depth `2^bits - 1`).
//! * [`mod_counter`] — resettable (modulo-`m`) counter whose bad signal
//!   watches the *unreachable* all-ones state: a true safety property that
//!   bounded model checking can never close but k-induction proves.
//! * [`pattern_fsm`] — shift-register FSM that fires when the last `n`
//!   inputs match a pattern: shallow, input-driven counterexamples.
//! * [`retimed_adder_lec`] — product machine of two differently-retimed
//!   adder implementations (output register vs. input registers), bad =
//!   outputs differ: sequential LEC, UNSAT at every depth and 1-inductive.

use aig::seq::SeqAig;
use aig::{Aig, Lit};

/// Enable-gated `bits`-bit binary counter; the bad signal fires at the
/// all-ones state, first reachable at depth `2^bits - 1`.
///
/// # Panics
/// Panics if `bits == 0`.
pub fn counter(bits: usize) -> SeqAig {
    assert!(bits > 0, "counter needs at least one bit");
    let mut g = Aig::new();
    let en = g.add_pi();
    let state: Vec<Lit> = (0..bits).map(|_| g.add_pi()).collect();
    let (next, _) = increment(&mut g, &state, en);
    let bad = g.and_many(&state);
    g.add_po(bad);
    for nx in next {
        g.add_po(nx);
    }
    SeqAig::new(g, 1, bits)
}

/// Enable-gated resettable counter over `bits` bits counting
/// `0, 1, …, modulus-1, 0, …`; the bad signal watches the all-ones state.
///
/// With `modulus <= 2^bits - 1` the all-ones state is unreachable, making
/// the property a *true* invariant: plain BMC reports "clean" at every
/// bound without ever proving it, while k-induction (with simple-path
/// constraints) closes it at small k.
///
/// # Panics
/// Panics if `bits == 0` or `modulus` is not in `2..=2^bits`.
pub fn mod_counter(bits: usize, modulus: u64) -> SeqAig {
    assert!(bits > 0 && bits < 64, "bit width out of range");
    assert!(
        (2..=1u64 << bits).contains(&modulus),
        "modulus must fit the state space"
    );
    let mut g = Aig::new();
    let en = g.add_pi();
    let state: Vec<Lit> = (0..bits).map(|_| g.add_pi()).collect();
    let (inc, _) = increment(&mut g, &state, en);
    // Wrap detection: state == modulus - 1.
    let eq_bits: Vec<Lit> = state
        .iter()
        .enumerate()
        .map(|(i, &s)| if (modulus - 1) >> i & 1 != 0 { s } else { !s })
        .collect();
    let at_wrap = g.and_many(&eq_bits);
    let wrap = g.and(at_wrap, en);
    // next = wrap ? 0 : inc.
    let next: Vec<Lit> = inc.iter().map(|&b| g.and(b, !wrap)).collect();
    let bad = g.and_many(&state);
    g.add_po(bad);
    for nx in next {
        g.add_po(nx);
    }
    SeqAig::new(g, 1, bits)
}

/// Single-input FSM holding its last `pattern.len()` inputs in a shift
/// register; the bad signal fires when they match `pattern` (most recent
/// input last).
///
/// # Panics
/// Panics if the pattern is empty.
pub fn pattern_fsm(pattern: &[bool]) -> SeqAig {
    let n = pattern.len();
    assert!(n > 0, "pattern must be non-empty");
    let mut g = Aig::new();
    let input = g.add_pi();
    // regs[0] holds the most recent input, regs[i] the one i+1 steps back.
    let regs: Vec<Lit> = (0..n).map(|_| g.add_pi()).collect();
    let match_bits: Vec<Lit> = regs
        .iter()
        .enumerate()
        .map(|(i, &r)| if pattern[n - 1 - i] { r } else { !r })
        .collect();
    let bad = g.and_many(&match_bits);
    g.add_po(bad);
    g.add_po(input); // next regs[0]
    for &r in &regs[..n - 1] {
        g.add_po(r); // next regs[i+1] = regs[i]
    }
    SeqAig::new(g, 1, n)
}

/// Product machine for sequential LEC of two retimed `bits`-bit adders:
/// implementation A registers the combinational ripple-carry sum, B
/// registers the inputs and adds combinationally (majority-form carries).
/// Both have one cycle of latency, so the bad signal (some output pair
/// differs) never fires — a true invariant, and an inductive one.
///
/// # Panics
/// Panics if `bits == 0`.
pub fn retimed_adder_lec(bits: usize) -> SeqAig {
    assert!(bits > 0, "adder needs at least one bit");
    let mut g = Aig::new();
    let xs = g.add_pis(bits);
    let ys = g.add_pis(bits);
    // Latch order: A's output registers (bits+1), then B's input registers.
    let a_regs = g.add_pis(bits + 1);
    let bx = g.add_pis(bits);
    let by = g.add_pis(bits);

    // A: ripple-carry sum of the current inputs, to be registered.
    let a_next = ripple_sum(&mut g, &xs, &ys);
    // B: majority-carry sum of the registered inputs, output combinationally.
    let b_out = majority_sum(&mut g, &bx, &by);

    let diffs: Vec<Lit> = a_regs
        .iter()
        .zip(&b_out)
        .map(|(&a, &b)| g.xor(a, b))
        .collect();
    let bad = g.or_many(&diffs);
    g.add_po(bad);
    for nx in a_next.iter().chain(&xs).chain(&ys) {
        g.add_po(*nx);
    }
    SeqAig::new(g, 2 * bits, 3 * bits + 1)
}

/// Ripple increment of `state` by `en`; returns (next bits, carry out).
fn increment(g: &mut Aig, state: &[Lit], en: Lit) -> (Vec<Lit>, Lit) {
    let mut carry = en;
    let mut next = Vec::with_capacity(state.len());
    for &s in state {
        next.push(g.xor(s, carry));
        carry = g.and(s, carry);
    }
    (next, carry)
}

/// Ripple-carry adder: `bits + 1` sum literals (carry-out last).
fn ripple_sum(g: &mut Aig, xs: &[Lit], ys: &[Lit]) -> Vec<Lit> {
    let mut carry = Lit::FALSE;
    let mut sums = Vec::with_capacity(xs.len() + 1);
    for (&x, &y) in xs.iter().zip(ys) {
        let s = g.xor(x, y);
        sums.push(g.xor(s, carry));
        let c1 = g.and(x, y);
        let c2 = g.and(s, carry);
        carry = g.or(c1, c2);
    }
    sums.push(carry);
    sums
}

/// Structurally different adder: majority-form carry chain.
fn majority_sum(g: &mut Aig, xs: &[Lit], ys: &[Lit]) -> Vec<Lit> {
    let mut carry = Lit::FALSE;
    let mut sums = Vec::with_capacity(xs.len() + 1);
    for (&x, &y) in xs.iter().zip(ys) {
        let s1 = g.xor(x, y);
        sums.push(g.xor(s1, carry));
        let ab = g.and(x, y);
        let ac = g.and(x, carry);
        let bc = g.and(y, carry);
        let t = g.or(ab, ac);
        carry = g.or(t, bc);
    }
    sums.push(carry);
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates with the enable held high and returns the first step whose
    /// bad signal fires, if any.
    fn first_bad(m: &SeqAig, steps: usize) -> Option<usize> {
        let stimulus: Vec<Vec<bool>> = (0..steps).map(|_| vec![true; m.num_pis()]).collect();
        m.simulate(&stimulus).iter().position(|o| o[0])
    }

    #[test]
    fn counter_saturates_at_depth() {
        assert_eq!(first_bad(&counter(3), 12), Some(7));
        assert_eq!(first_bad(&counter(4), 20), Some(15));
    }

    #[test]
    fn mod_counter_never_reaches_all_ones() {
        let m = mod_counter(3, 6); // counts 0..=5, state 7 unreachable
        assert_eq!(first_bad(&m, 40), None);
        // Sanity: modulus 8 == full range does reach all-ones.
        assert_eq!(first_bad(&mod_counter(3, 8), 12), Some(7));
    }

    #[test]
    fn mod_counter_wraps() {
        let m = mod_counter(3, 6);
        // With en always on, next-state sequence is 0,1,2,3,4,5,0,1,...
        // Observe the wrap through the (bad-free) simulation of 13 steps.
        let stimulus: Vec<Vec<bool>> = (0..13).map(|_| vec![true]).collect();
        let outs = m.simulate(&stimulus);
        assert!(outs.iter().all(|o| !o[0]));
    }

    #[test]
    fn pattern_fsm_detects_its_pattern() {
        let pattern = [true, true, false, true];
        let m = pattern_fsm(&pattern);
        // Feed the pattern itself: bad fires once the register has it,
        // i.e. at the step *after* the last pattern bit was consumed.
        let mut stimulus: Vec<Vec<bool>> = pattern.iter().map(|&b| vec![b]).collect();
        stimulus.push(vec![false]);
        let outs = m.simulate(&stimulus);
        assert_eq!(outs.iter().position(|o| o[0]), Some(pattern.len()));
        // An all-ones stream never matches a pattern containing a zero.
        assert_eq!(first_bad(&m, 12), None);
    }

    #[test]
    fn retimed_adders_agree_on_random_streams() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = retimed_adder_lec(4);
        for _ in 0..10 {
            let stimulus: Vec<Vec<bool>> = (0..8)
                .map(|_| (0..m.num_pis()).map(|_| rng.gen()).collect())
                .collect();
            let outs = m.simulate(&stimulus);
            assert!(outs.iter().all(|o| !o[0]), "retimed adders must agree");
        }
    }
}
