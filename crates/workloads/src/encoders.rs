//! Encoders, counters, and code converters.
//!
//! Priority encoders, population counts, and Gray-code converters round
//! out the workload families: control-dominated logic (priority chains),
//! XOR-heavy arithmetic (popcount adder trees), and self-inverse code
//! pairs whose composition miters (`gray2bin(bin2gray(x)) == x`) are
//! natural UNSAT instances.

use crate::datapath::Block;
use aig::{Aig, Lit};

/// Priority encoder: `n` request lines in, `ceil(log2 n)` index bits of
/// the *highest-priority* (lowest-index) active line, plus a `valid` bit.
pub fn priority_encoder(n: usize) -> Block {
    assert!(n >= 1, "need at least one request line");
    let bits = n.next_power_of_two().trailing_zeros() as usize;
    let mut g = Aig::new();
    let req = g.add_pis(n);
    // grant[i] = req[i] & !req[0] & … & !req[i-1].
    let mut none_before = Lit::TRUE;
    let mut grants = Vec::with_capacity(n);
    for &r in &req {
        grants.push(g.and(r, none_before));
        none_before = g.and(none_before, !r);
    }
    // Index output: OR of grants whose index has the bit set.
    for bit in 0..bits {
        let terms: Vec<Lit> = grants
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> bit & 1 != 0)
            .map(|(_, &gr)| gr)
            .collect();
        let out = g.or_many(&terms);
        g.add_po(out);
    }
    let valid = g.or_many(&req);
    g.add_po(valid);
    Block {
        aig: g,
        name: format!("prio{n}"),
    }
}

/// Population count: `n` inputs, `ceil(log2(n+1))` output bits holding the
/// number of ones — a balanced tree of small adders, XOR-dominated.
pub fn popcount(n: usize) -> Block {
    assert!(n >= 1, "need at least one input");
    let mut g = Aig::new();
    let pis = g.add_pis(n);
    // Start with n one-bit numbers, then pairwise add until one remains.
    let mut numbers: Vec<Vec<Lit>> = pis.iter().map(|&p| vec![p]).collect();
    while numbers.len() > 1 {
        let mut next = Vec::with_capacity(numbers.len().div_ceil(2));
        let mut it = numbers.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(add_words(&mut g, &a, &b)),
                None => next.push(a),
            }
        }
        numbers = next;
    }
    // Pairwise addition over-provisions the top bits; the count never
    // exceeds n, so trim to the minimal width (the trimmed bits are
    // semantically constant false).
    let needed = (u64::BITS - (n as u64).leading_zeros()) as usize;
    let mut word = numbers.pop().expect("one number left");
    word.truncate(needed);
    for bit in word {
        g.add_po(bit);
    }
    Block {
        aig: g,
        name: format!("pop{n}"),
    }
}

/// Ripple addition of two little-endian words of possibly different width,
/// producing a word wide enough for the full sum.
fn add_words(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let width = a.len().max(b.len()) + 1;
    let mut out = Vec::with_capacity(width);
    let mut carry = Lit::FALSE;
    for i in 0..width - 1 {
        let x = a.get(i).copied().unwrap_or(Lit::FALSE);
        let y = b.get(i).copied().unwrap_or(Lit::FALSE);
        let t = g.xor(x, y);
        let s = g.xor(t, carry);
        let c1 = g.and(x, y);
        let c2 = g.and(t, carry);
        carry = g.or(c1, c2);
        out.push(s);
    }
    out.push(carry);
    out
}

/// Binary-to-Gray converter: `g_i = b_i ⊕ b_{i+1}` (`n` in, `n` out).
pub fn bin_to_gray(n: usize) -> Block {
    assert!(n >= 1, "need at least one bit");
    let mut g = Aig::new();
    let b = g.add_pis(n);
    for i in 0..n {
        let out = if i + 1 < n {
            g.xor(b[i], b[i + 1])
        } else {
            b[i]
        };
        g.add_po(out);
    }
    Block {
        aig: g,
        name: format!("b2g{n}"),
    }
}

/// Gray-to-binary converter: `b_i = g_i ⊕ g_{i+1} ⊕ … ⊕ g_{n-1}` —
/// the inverse of [`bin_to_gray`].
pub fn gray_to_bin(n: usize) -> Block {
    assert!(n >= 1, "need at least one bit");
    let mut g = Aig::new();
    let gr = g.add_pis(n);
    let mut suffix = Lit::FALSE;
    let mut outs = vec![Lit::FALSE; n];
    for i in (0..n).rev() {
        suffix = g.xor(gr[i], suffix);
        outs[i] = suffix;
    }
    for out in outs {
        g.add_po(out);
    }
    Block {
        aig: g,
        name: format!("g2b{n}"),
    }
}

/// The composition `gray_to_bin(bin_to_gray(x))`: functionally the
/// identity, structurally two XOR cascades — its miter against a plain
/// wire bundle is UNSAT and purely XOR-reasoning-bound.
pub fn gray_roundtrip(n: usize) -> Block {
    assert!(n >= 1, "need at least one bit");
    let mut g = Aig::new();
    let b = g.add_pis(n);
    // bin -> gray.
    let gray: Vec<Lit> = (0..n)
        .map(|i| {
            if i + 1 < n {
                g.xor(b[i], b[i + 1])
            } else {
                b[i]
            }
        })
        .collect();
    // gray -> bin.
    let mut suffix = Lit::FALSE;
    let mut outs = vec![Lit::FALSE; n];
    for i in (0..n).rev() {
        suffix = g.xor(gray[i], suffix);
        outs[i] = suffix;
    }
    for out in outs {
        g.add_po(out);
    }
    Block {
        aig: g,
        name: format!("grt{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn priority_encoder_reports_lowest_active() {
        let n = 6;
        let blk = priority_encoder(n);
        for mask in 0..(1u64 << n) {
            let ins: Vec<bool> = (0..n).map(|i| mask >> i & 1 != 0).collect();
            let out = blk.aig.eval(&ins);
            let (index_bits, valid) = out.split_at(out.len() - 1);
            assert_eq!(valid[0], mask != 0, "mask={mask:#b}");
            if mask != 0 {
                assert_eq!(
                    num(index_bits),
                    mask.trailing_zeros() as u64,
                    "mask={mask:#b}"
                );
            }
        }
    }

    #[test]
    fn popcount_counts() {
        for n in [1usize, 3, 5, 8] {
            let blk = popcount(n);
            for mask in 0..(1u64 << n) {
                let ins: Vec<bool> = (0..n).map(|i| mask >> i & 1 != 0).collect();
                assert_eq!(
                    num(&blk.aig.eval(&ins)),
                    mask.count_ones() as u64,
                    "n={n} mask={mask:#b}"
                );
            }
        }
    }

    #[test]
    fn gray_code_roundtrips() {
        let n = 6;
        let b2g = bin_to_gray(n);
        let g2b = gray_to_bin(n);
        for v in 0..(1u64 << n) {
            let ins: Vec<bool> = (0..n).map(|i| v >> i & 1 != 0).collect();
            let gray = b2g.aig.eval(&ins);
            let back = g2b.aig.eval(&gray);
            assert_eq!(num(&back), v, "v={v}");
        }
    }

    #[test]
    fn gray_neighbours_differ_in_one_bit() {
        let n = 5;
        let b2g = bin_to_gray(n);
        for v in 0..(1u64 << n) - 1 {
            let ins = |x: u64| -> Vec<bool> { (0..n).map(|i| x >> i & 1 != 0).collect() };
            let a = num(&b2g.aig.eval(&ins(v)));
            let b = num(&b2g.aig.eval(&ins(v + 1)));
            assert_eq!((a ^ b).count_ones(), 1, "v={v}");
        }
    }

    #[test]
    fn roundtrip_block_is_identity() {
        let n = 7;
        let blk = gray_roundtrip(n);
        for v in [0u64, 1, 42, 100, 127] {
            let ins: Vec<bool> = (0..n).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(num(&blk.aig.eval(&ins)), v, "v={v}");
        }
    }

    #[test]
    fn popcount_width_is_minimal() {
        assert_eq!(popcount(1).aig.num_pos(), 1);
        assert_eq!(popcount(3).aig.num_pos(), 2);
        assert_eq!(popcount(7).aig.num_pos(), 3);
        assert_eq!(popcount(8).aig.num_pos(), 4);
    }
}
