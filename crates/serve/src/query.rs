//! Query types and their normalization to a canonical combinational cone.
//!
//! Every query the engine accepts — plain circuit-SAT, logic equivalence
//! checking, bounded model checking — reduces to the same decision problem:
//! *is some primary output of a combinational AIG satisfiable?* Normalization
//! performs that reduction (LEC builds the XOR-OR miter, BMC unrolls the
//! transition relation), then strips every node and PI outside the output
//! cone with [`Aig::normalized_cone`] so that queries differing only in
//! dangling logic share one cache entry, and finally keys the result with
//! [`Aig::structural_hash`].

use aig::seq::SeqAig;
use aig::Aig;
use std::fmt;

/// A decision problem submitted to the engine.
#[derive(Clone, Debug)]
pub enum Query {
    /// Is some primary output of the circuit satisfiable?
    Solve(Aig),
    /// Are the two circuits functionally equivalent?
    /// SAT means *inequivalent* (the miter has a distinguishing input).
    Lec(Aig, Aig),
    /// Can the design reach a state asserting some output within `k`
    /// transitions? SAT means a counterexample trace exists.
    Bmc(SeqAig, usize),
}

/// The flavor of a [`Query`], kept on responses for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Plain circuit satisfiability.
    Solve,
    /// Logic equivalence check.
    Lec,
    /// Bounded model check.
    Bmc,
}

impl QueryKind {
    /// Stable lowercase name used in CLI result lines.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Solve => "solve",
            QueryKind::Lec => "lec",
            QueryKind::Bmc => "bmc",
        }
    }
}

/// Reasons a query is rejected before it ever reaches the queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The instance has no primary outputs, so there is nothing to decide.
    NoOutputs,
    /// The two LEC sides disagree on PI or PO counts.
    ShapeMismatch {
        /// `(PIs, POs)` of the left circuit.
        left: (usize, usize),
        /// `(PIs, POs)` of the right circuit.
        right: (usize, usize),
    },
    /// BMC with a bound of zero frames decides nothing.
    ZeroBound,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoOutputs => write!(f, "instance has no primary outputs"),
            QueryError::ShapeMismatch { left, right } => write!(
                f,
                "LEC shape mismatch: left has {}/{} PIs/POs, right has {}/{}",
                left.0, left.1, right.0, right.1
            ),
            QueryError::ZeroBound => write!(f, "BMC bound must be at least 1"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A query reduced to its canonical cached form: the dangling-free output
/// cone, the mapping from cone PIs back to instance PIs, and the structural
/// hash used as the cache key.
#[derive(Clone, Debug)]
pub struct NormalizedQuery {
    /// What kind of query this cone came from.
    pub kind: QueryKind,
    /// The normalized (PO-cone-only) combinational instance.
    pub cone: Aig,
    /// `pi_map[i]` = instance PI index that cone PI `i` corresponds to.
    pub pi_map: Vec<usize>,
    /// PI count of the original (pre-normalization) instance.
    pub num_instance_pis: usize,
    /// `cone.structural_hash()`, the cache key.
    pub key: u64,
}

impl Query {
    /// The flavor tag of this query.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::Solve(_) => QueryKind::Solve,
            Query::Lec(..) => QueryKind::Lec,
            Query::Bmc(..) => QueryKind::Bmc,
        }
    }

    /// Reduces the query to its canonical combinational cone.
    ///
    /// Shape defects (no outputs, mismatched LEC sides, zero BMC bound) are
    /// rejected here, synchronously, so the queue and the workers only ever
    /// see well-formed instances.
    pub fn normalize(&self) -> Result<NormalizedQuery, QueryError> {
        let instance = match self {
            Query::Solve(a) => a.clone(),
            Query::Lec(a, b) => {
                if a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos() {
                    return Err(QueryError::ShapeMismatch {
                        left: (a.num_pis(), a.num_pos()),
                        right: (b.num_pis(), b.num_pos()),
                    });
                }
                if a.num_pos() == 0 {
                    return Err(QueryError::NoOutputs);
                }
                workloads::lec::miter(a, b)
            }
            Query::Bmc(m, k) => {
                if *k == 0 {
                    return Err(QueryError::ZeroBound);
                }
                m.bmc_instance(*k)
            }
        };
        if instance.num_pos() == 0 {
            return Err(QueryError::NoOutputs);
        }
        let (cone, pi_map) = instance.normalized_cone();
        let key = cone.structural_hash();
        Ok(NormalizedQuery {
            kind: self.kind(),
            num_instance_pis: instance.num_pis(),
            cone,
            pi_map,
            key,
        })
    }
}

impl NormalizedQuery {
    /// Expands a witness over the cone's PIs back to the instance's full PI
    /// space; PIs outside the cone do not affect the outputs and are
    /// reported as `false`.
    pub fn expand_witness(&self, cone_witness: &[bool]) -> Vec<bool> {
        debug_assert_eq!(cone_witness.len(), self.pi_map.len());
        let mut full = vec![false; self.num_instance_pis];
        for (i, &inst) in self.pi_map.iter().enumerate() {
            full[inst] = cone_witness[i];
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_input_and() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        g
    }

    #[test]
    fn solve_normalizes_to_cone_with_key() {
        let g = two_input_and();
        let n = Query::Solve(g.clone()).normalize().unwrap();
        assert_eq!(n.kind, QueryKind::Solve);
        assert_eq!(n.num_instance_pis, 2);
        assert_eq!(n.pi_map, vec![0, 1]);
        assert!(n.cone.same_structure(&g));
        assert_eq!(n.key, g.structural_hash());
    }

    #[test]
    fn dangling_pi_does_not_change_the_key() {
        let mut g = two_input_and();
        g.add_pi(); // dangling
        let with = Query::Solve(g).normalize().unwrap();
        let without = Query::Solve(two_input_and()).normalize().unwrap();
        assert_eq!(with.key, without.key);
        assert!(with.cone.same_structure(&without.cone));
        // ...but the witness still expands to the instance's PI count.
        assert_eq!(with.expand_witness(&[true, true]), vec![true, true, false]);
    }

    #[test]
    fn lec_shape_mismatch_rejected() {
        let mut a = Aig::new();
        let p = a.add_pi();
        a.add_po(p);
        let b = two_input_and();
        let err = Query::Lec(a, b).normalize().unwrap_err();
        assert!(matches!(err, QueryError::ShapeMismatch { .. }));
    }

    #[test]
    fn no_outputs_rejected() {
        let mut g = Aig::new();
        g.add_pi();
        assert_eq!(
            Query::Solve(g).normalize().unwrap_err(),
            QueryError::NoOutputs
        );
    }

    #[test]
    fn lec_of_equivalent_circuits_keys_identically_regardless_of_side_names() {
        let g = two_input_and();
        let n1 = Query::Lec(g.clone(), g.clone()).normalize().unwrap();
        let n2 = Query::Lec(g.clone(), g).normalize().unwrap();
        assert_eq!(n1.key, n2.key);
        assert_eq!(n1.kind, QueryKind::Lec);
    }
}
