//! # `serve` — solver-as-a-service: a fault-tolerant concurrent query engine
//!
//! The workspace's batch pipelines (`csat`, `sweep`, `mc`) each drive one
//! solver to completion. This crate turns the same machinery into a
//! *service*: a bounded-queue worker pool that accepts a stream of
//! heterogeneous queries — plain circuit-SAT, LEC, BMC — and answers each
//! one exactly once, under overload, deadlines, cancellation, and even
//! worker panics.
//!
//! The design leans on three workspace primitives:
//!
//! - [`sat::Solver`]'s cheap [`Clone`]: every attempt runs on a fresh clone
//!   of one shared warm base solver, so a panicking or cancelled attempt
//!   can never corrupt anyone else's state — containment by construction,
//!   the same idiom as `sweep::pool`'s sharded oracles.
//! - [`sat::Cancellation`]'s token tree: one engine-root token fans out to
//!   per-query children, so shutdown interrupts everything while a single
//!   query can still be cancelled (or retried) alone.
//! - [`checker`]'s independence: cached UNSAT verdicts carry their DRAT
//!   certificate and must pass the checker before first reuse, so the
//!   cache can be warm-loaded (or corrupted) without ever compromising
//!   soundness — a bad certificate degrades to a live solve.
//!
//! Queries are normalized (LEC → miter, BMC → unrolling, then
//! [`aig::Aig::normalized_cone`]) and memoized by structural hash, so
//! repeated and dangling-logic-differing queries hit the cache; a hit
//! additionally requires exact structural identity, making 64-bit hash
//! collisions harmless. Fault injection reuses [`sweep::ChaosPlan`] keyed
//! by (attempt, query id): deterministic for a fixed seed at any worker
//! count.
//!
//! ```
//! use serve::{Engine, EngineConfig, Query, QueryOpts};
//!
//! let mut g = aig::Aig::new();
//! let a = g.add_pi();
//! let b = g.add_pi();
//! let x = g.and(a, b);
//! g.add_po(x);
//!
//! let engine = Engine::new(EngineConfig {
//!     workers: 1, // one worker: the repeat is guaranteed to hit the cache
//!     ..EngineConfig::default()
//! });
//! let responses = engine.run_batch(&[
//!     (Query::Solve(g.clone()), QueryOpts::default()),
//!     (Query::Solve(g), QueryOpts::default()), // same cone: cache hit
//! ]);
//! assert!(responses.iter().all(|r| r.verdict.is_sat()));
//! assert!(responses[1].cache_hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod engine;
mod query;

pub use cache::{CacheAnswer, CacheStats, VerdictCache};
pub use engine::{
    Admission, Engine, EngineConfig, EngineStats, QueryOpts, Response, SubmitError, Ticket,
    UnknownReason, Verdict,
};
pub use query::{NormalizedQuery, Query, QueryError, QueryKind};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn small_engine(workers: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    fn xor_pair() -> (aig::Aig, aig::Aig) {
        // Two structurally different XOR implementations: equivalent.
        let mut a = aig::Aig::new();
        let (p, q) = (a.add_pi(), a.add_pi());
        let x = a.xor(p, q);
        a.add_po(x);
        let mut b = aig::Aig::new();
        let (p, q) = (b.add_pi(), b.add_pi());
        let o = b.or(p, q);
        let n = b.and(p, q);
        let x = b.and(o, !n);
        b.add_po(x);
        (a, b)
    }

    #[test]
    fn lec_of_equivalent_circuits_is_unsat_and_caches() {
        let (a, b) = xor_pair();
        // One worker so the repeated query deterministically hits the cache.
        let engine = small_engine(1);
        let q = Query::Lec(a, b);
        let rs = engine.run_batch(&[(q.clone(), QueryOpts::default()), (q, QueryOpts::default())]);
        assert!(rs.iter().all(|r| r.verdict.is_unsat()));
        assert!(rs[1].cache_hit, "identical cone must hit the cache");
        let stats = engine.stats();
        assert_eq!(stats.unsat, 2);
        assert_eq!(stats.cache.certs_verified, 1, "cert checked on first reuse");
        assert_eq!(stats.sheds + stats.failures, 0);
    }

    #[test]
    fn lec_of_different_circuits_yields_validated_witness() {
        let (a, _) = xor_pair();
        let mut b = aig::Aig::new();
        let (p, q) = (b.add_pi(), b.add_pi());
        let x = b.and(p, q); // AND, not XOR
        b.add_po(x);
        let engine = small_engine(1);
        let rs = engine.run_batch(&[(Query::Lec(a.clone(), b.clone()), QueryOpts::default())]);
        let Verdict::Sat(w) = &rs[0].verdict else {
            panic!("expected SAT, got {:?}", rs[0].verdict);
        };
        // The witness distinguishes the two circuits.
        assert_ne!(a.eval(w), b.eval(w));
    }

    #[test]
    fn deadline_already_past_sheds_without_solving() {
        let engine = small_engine(1);
        let (a, b) = xor_pair();
        let opts = QueryOpts {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            conflicts: None,
        };
        let rs = engine.run_batch(&[(Query::Lec(a, b), QueryOpts::default()), {
            let (a, b) = xor_pair();
            (Query::Lec(a, b), opts)
        }]);
        assert!(rs[0].verdict.is_unsat());
        assert_eq!(rs[1].verdict, Verdict::Unknown(UnknownReason::Shed));
        assert_eq!(engine.stats().sheds, 1);
    }

    #[test]
    fn shutdown_drains_queue_with_cancelled_responses() {
        // Zero-ish workers is impossible (resolve_threads floors at 1), so
        // park the only worker on a query while more wait in the queue.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            base_conflicts: u64::MAX,
            max_attempts: 1,
            ..EngineConfig::default()
        });
        let ph = workloads::cnf_gen::pigeonhole_aig(7); // slow UNSAT
        let mut ids = vec![
            engine
                .submit(&Query::Solve(ph), QueryOpts::default())
                .unwrap()
                .id,
        ];
        for _ in 0..3 {
            let (a, b) = xor_pair();
            ids.push(
                engine
                    .submit(&Query::Lec(a, b), QueryOpts::default())
                    .unwrap()
                    .id,
            );
        }
        engine.shutdown();
        let mut got = Vec::new();
        while let Some(r) = engine.recv_timeout(Duration::from_secs(10)) {
            got.push(r.id);
            if got.len() == ids.len() {
                break;
            }
        }
        got.sort_unstable();
        ids.sort_unstable();
        assert_eq!(got, ids, "every submitted query answered exactly once");
        assert!(engine
            .submit(
                &Query::Solve(workloads::cnf_gen::pigeonhole_aig(3)),
                QueryOpts::default()
            )
            .is_err());
    }

    #[test]
    fn per_query_cancellation_leaves_neighbors_alone() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            base_conflicts: u64::MAX,
            max_attempts: 1,
            ..EngineConfig::default()
        });
        // Occupy the worker, then cancel a queued query.
        let busy = engine
            .submit(
                &Query::Solve(workloads::cnf_gen::pigeonhole_aig(7)),
                QueryOpts::default(),
            )
            .unwrap();
        let victim = {
            let (a, b) = xor_pair();
            engine
                .submit(&Query::Lec(a, b), QueryOpts::default())
                .unwrap()
        };
        let survivor = {
            let (a, b) = xor_pair();
            let mut b2 = b;
            // Distinct cone so it cannot ride the victim's cache entry.
            let extra = b2.pos()[0];
            b2.add_po(extra);
            let mut a2 = a;
            let extra = a2.pos()[0];
            a2.add_po(extra);
            engine
                .submit(&Query::Lec(a2, b2), QueryOpts::default())
                .unwrap()
        };
        victim.cancel();
        busy.cancel();
        let mut verdicts = std::collections::HashMap::new();
        for _ in 0..3 {
            let r = engine
                .recv_timeout(Duration::from_secs(60))
                .expect("response");
            verdicts.insert(r.id, r.verdict);
        }
        assert_eq!(
            verdicts[&victim.id],
            Verdict::Unknown(UnknownReason::Cancelled)
        );
        assert_eq!(
            verdicts[&busy.id],
            Verdict::Unknown(UnknownReason::Cancelled)
        );
        assert!(verdicts[&survivor.id].is_unsat(), "survivor unaffected");
    }

    #[test]
    fn corrupted_seeded_cert_falls_through_to_live_solve() {
        let (a, b) = xor_pair();
        let q = Query::Lec(a, b);
        let engine = small_engine(1);
        let mut bogus = checker::Proof::default();
        bogus.add(vec![]); // unsupported empty clause: checker must reject
        engine.seed_cache_unsat(&q, bogus).unwrap();
        let rs = engine.run_batch(&[(q, QueryOpts::default())]);
        assert!(rs[0].verdict.is_unsat(), "live solve still proves UNSAT");
        assert!(!rs[0].cache_hit, "rejected cert is not a hit");
        assert_eq!(engine.stats().cache.certs_rejected, 1);
    }

    #[test]
    fn traced_engine_emits_balanced_query_spans() {
        let reg = obs::Registry::tracing();
        let (a, b) = xor_pair();
        let engine = Engine::new(EngineConfig {
            workers: 2,
            obs: reg.clone(),
            ..EngineConfig::default()
        });
        let rs = engine.run_batch(&[
            (Query::Lec(a, b), QueryOpts::default()),
            (
                Query::Solve(workloads::cnf_gen::pigeonhole_aig(4)),
                QueryOpts::default(),
            ),
        ]);
        assert_eq!(rs.len(), 2);
        engine.stats().publish(&reg);
        engine.shutdown(); // workers joined: every span is closed
        let events = reg.drain_events();
        obs::check::validate(&events).expect("span stream well-formed");
        let queries = events
            .iter()
            .filter(|e| e.kind == obs::EventKind::Enter && e.name == "serve.query")
            .count();
        assert_eq!(queries, 2, "one serve.query span per submission");
        // Per-query conflict counts (summed over sat.solve exits) must
        // agree with the live counter — the acceptance criterion's "span
        // tree sums to solver totals" check at unit scale.
        let snap = reg.snapshot();
        assert_eq!(
            obs::check::sum_field(&events, "sat.solve", "conflicts"),
            snap.value("sat.conflicts").unwrap_or(0)
        );
        assert_eq!(snap.value("serve.stats.responded"), Some(2));
        assert!(snap.histogram("serve.queue_wait_us").is_some());
    }

    #[test]
    fn shed_admission_answers_overflow_immediately() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_capacity: 1,
            admission: Admission::Shed,
            base_conflicts: u64::MAX,
            max_attempts: 1,
            ..EngineConfig::default()
        });
        // One slow query occupies the worker; the queue holds one more;
        // everything past that sheds.
        let mut tickets = Vec::new();
        for holes in [7, 6, 5, 4] {
            tickets.push(
                engine
                    .submit(
                        &Query::Solve(workloads::cnf_gen::pigeonhole_aig(holes)),
                        QueryOpts::default(),
                    )
                    .unwrap(),
            );
        }
        let mut sheds = 0;
        for _ in 0..2 {
            let r = engine
                .recv_timeout(Duration::from_secs(10))
                .expect("shed response");
            assert_eq!(r.verdict, Verdict::Unknown(UnknownReason::Shed));
            sheds += 1;
        }
        assert_eq!(sheds, 2);
        engine.shutdown();
    }
}
