//! Structure-keyed verdict cache with lazily verified UNSAT certificates.
//!
//! Entries are keyed by [`Aig::structural_hash`] of the normalized query
//! cone, but a hit additionally requires [`Aig::same_structure`] on the
//! stored cone — a 64-bit hash collision can therefore never cross-pollute
//! verdicts between different formulas. The cached artifacts are themselves
//! re-validated before reuse:
//!
//! - **SAT** entries store a witness over the cone's PIs and replay it
//!   through [`Aig::eval`] on every hit (linear in the cone, vastly cheaper
//!   than a solve).
//! - **UNSAT** entries store the solver's DRAT certificate and are run
//!   through the independent [`checker`] against a *freshly re-derived*
//!   Tseitin encoding of the cone before their first reuse. Verification is
//!   lazy — inserting is free, the first hit pays — and sticky: once a
//!   certificate checks out, later hits skip the checker.
//!
//! A corrupted or forged artifact is evicted and the probe reports a miss,
//! so the engine falls through to a live solve; soundness never depends on
//! cache integrity.

use aig::hash::FastMap;
use aig::Aig;
use checker::Proof;

/// Counters describing cache effectiveness and certificate hygiene.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to a live solve.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// UNSAT certificates verified by the checker (first reuse).
    pub certs_verified: u64,
    /// Cached artifacts rejected on reuse (bad witness or refused
    /// certificate) and evicted.
    pub certs_rejected: u64,
}

/// Result of a cache probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheAnswer {
    /// Cached satisfiable verdict; the witness is over the cone's PIs and
    /// has been re-validated against the cone.
    Sat(Vec<bool>),
    /// Cached unsatisfiable verdict backed by a checker-verified
    /// certificate.
    Unsat,
    /// No usable entry; solve live.
    Miss,
}

enum CachedVerdict {
    /// Witness over the cone's PIs.
    Sat(Vec<bool>),
    /// DRAT certificate; `verified` flips true after the checker accepts it.
    Unsat { proof: Proof, verified: bool },
}

struct Entry {
    cone: Aig,
    verdict: CachedVerdict,
}

/// The verdict cache. Not internally synchronized — the engine guards it
/// with a mutex.
#[derive(Default)]
pub struct VerdictCache {
    buckets: FastMap<u64, Vec<Entry>>,
    stats: CacheStats,
}

impl std::fmt::Debug for VerdictCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerdictCache")
            .field("entries", &self.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl VerdictCache {
    /// An empty cache.
    pub fn new() -> VerdictCache {
        VerdictCache::default()
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when no verdict is cached.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Probes for a verdict on `cone` under `key`, re-validating the stored
    /// artifact as described in the module docs. Rejected artifacts are
    /// evicted and reported as a miss.
    pub fn lookup(&mut self, key: u64, cone: &Aig) -> CacheAnswer {
        let idx = self
            .buckets
            .get(&key)
            .and_then(|b| b.iter().position(|e| e.cone.same_structure(cone)));
        let Some(idx) = idx else {
            self.stats.misses += 1;
            return CacheAnswer::Miss;
        };

        // Re-validate the artifact; decide hit/evict without holding any
        // borrow across the stats updates.
        enum Probe {
            Hit(CacheAnswer),
            JustVerified,
            Evict,
        }
        let probe = {
            let entry = &mut self.buckets.get_mut(&key).expect("bucket exists")[idx];
            match &mut entry.verdict {
                CachedVerdict::Sat(w) => {
                    if entry.cone.eval(w).iter().any(|&b| b) {
                        Probe::Hit(CacheAnswer::Sat(w.clone()))
                    } else {
                        Probe::Evict
                    }
                }
                CachedVerdict::Unsat { proof, verified } => {
                    if *verified {
                        Probe::Hit(CacheAnswer::Unsat)
                    } else {
                        let (formula, _) = cnf::tseitin_sat_instance(&entry.cone);
                        let clauses: Vec<Vec<i32>> = formula
                            .clauses()
                            .iter()
                            .map(|c| c.iter().map(|&l| l.to_dimacs()).collect())
                            .collect();
                        if checker::check(&clauses, proof).is_ok() {
                            *verified = true;
                            Probe::JustVerified
                        } else {
                            Probe::Evict
                        }
                    }
                }
            }
        };
        match probe {
            Probe::Hit(answer) => {
                self.stats.hits += 1;
                answer
            }
            Probe::JustVerified => {
                self.stats.certs_verified += 1;
                self.stats.hits += 1;
                CacheAnswer::Unsat
            }
            Probe::Evict => {
                self.stats.certs_rejected += 1;
                self.stats.misses += 1;
                let bucket = self.buckets.get_mut(&key).expect("bucket exists");
                bucket.swap_remove(idx);
                if bucket.is_empty() {
                    self.buckets.remove(&key);
                }
                CacheAnswer::Miss
            }
        }
    }

    /// Caches a satisfiable verdict; `witness` is over `cone`'s PIs. A
    /// pre-existing entry for the same structure is left untouched.
    pub fn insert_sat(&mut self, key: u64, cone: Aig, witness: Vec<bool>) {
        self.insert(key, cone, CachedVerdict::Sat(witness));
    }

    /// Caches an unsatisfiable verdict with its DRAT certificate. Pass
    /// `verified = false` to defer checking to the first reuse (the normal
    /// path for freshly solved queries and warm-loaded certificates alike).
    pub fn insert_unsat(&mut self, key: u64, cone: Aig, proof: Proof, verified: bool) {
        self.insert(key, cone, CachedVerdict::Unsat { proof, verified });
    }

    fn insert(&mut self, key: u64, cone: Aig, verdict: CachedVerdict) {
        let bucket = self.buckets.entry(key).or_default();
        if bucket.iter().any(|e| e.cone.same_structure(&cone)) {
            return;
        }
        bucket.push(Entry { cone, verdict });
        self.stats.insertions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `a & !a`: UNSAT with a one-step certificate.
    fn contradiction() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let x = g.and(a, !a);
        g.add_po(x);
        g
    }

    /// `a & b`: SAT with witness `[true, true]`.
    fn conjunction() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        g
    }

    fn solve_unsat_proof(cone: &Aig) -> Proof {
        let (formula, _) = cnf::tseitin_sat_instance(cone);
        let cfg = sat::SolverConfig {
            proof: true,
            ..sat::SolverConfig::default()
        };
        let mut s = sat::Solver::from_cnf(&formula, cfg);
        assert!(s.solve().is_unsat());
        let log = s.proof().unwrap();
        Proof::from_steps(log.steps().iter().map(|st| (st.delete, st.lits.clone())))
    }

    #[test]
    fn sat_hit_replays_witness() {
        let g = conjunction();
        let key = g.structural_hash();
        let mut c = VerdictCache::new();
        assert_eq!(c.lookup(key, &g), CacheAnswer::Miss);
        c.insert_sat(key, g.clone(), vec![true, true]);
        assert_eq!(c.lookup(key, &g), CacheAnswer::Sat(vec![true, true]));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn corrupt_sat_witness_evicted() {
        let g = conjunction();
        let key = g.structural_hash();
        let mut c = VerdictCache::new();
        c.insert_sat(key, g.clone(), vec![true, false]); // does not satisfy
        assert_eq!(c.lookup(key, &g), CacheAnswer::Miss);
        assert_eq!(c.stats().certs_rejected, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn unsat_cert_verified_once_then_sticky() {
        let g = contradiction();
        let key = g.structural_hash();
        let proof = solve_unsat_proof(&g);
        let mut c = VerdictCache::new();
        c.insert_unsat(key, g.clone(), proof, false);
        assert_eq!(c.lookup(key, &g), CacheAnswer::Unsat);
        assert_eq!(c.stats().certs_verified, 1);
        assert_eq!(c.lookup(key, &g), CacheAnswer::Unsat);
        assert_eq!(c.stats().certs_verified, 1, "second hit skips the checker");
        assert_eq!(c.stats().hits, 2);
    }

    /// Miter of two XOR implementations: UNSAT, but *not* refutable by unit
    /// propagation alone — a bare empty-clause "certificate" is not RUP here
    /// (unlike for [`contradiction`], whose conflict UP finds directly).
    fn xor_miter() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x1 = g.xor(a, b);
        let o = g.or(a, b);
        let n = g.and(a, b);
        let x2 = g.and(o, !n);
        let m = g.xor(x1, x2);
        g.add_po(m);
        g
    }

    #[test]
    fn corrupt_unsat_cert_rejected_and_evicted() {
        let g = xor_miter();
        let key = g.structural_hash();
        // A "certificate" whose steps are garbage: claims the empty clause
        // without any RUP-derivable support.
        let mut bogus = Proof::default();
        bogus.add(vec![]);
        let mut c = VerdictCache::new();
        c.insert_unsat(key, g.clone(), bogus, false);
        assert_eq!(c.lookup(key, &g), CacheAnswer::Miss);
        assert_eq!(c.stats().certs_rejected, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn hash_collision_cannot_cross_pollute() {
        // Force both cones into the same bucket by using one key; the
        // structure check must still separate them.
        let sat_g = conjunction();
        let unsat_g = contradiction();
        let key = 42;
        let mut c = VerdictCache::new();
        c.insert_sat(key, sat_g.clone(), vec![true, true]);
        assert_eq!(c.lookup(key, &unsat_g), CacheAnswer::Miss);
        assert_eq!(c.lookup(key, &sat_g), CacheAnswer::Sat(vec![true, true]));
    }
}
