//! The bounded-queue worker-pool engine.
//!
//! ## Life of a query
//!
//! [`Engine::submit`] normalizes the query (rejecting malformed shapes
//! synchronously), derives a per-query child of the engine's root
//! [`Cancellation`] token, and admits the job into a bounded queue —
//! blocking for space under [`Admission::Block`] (backpressure) or
//! answering `Unknown(Shed)` immediately under [`Admission::Shed`]
//! (load shedding). Workers pull jobs **earliest-deadline-first** (FIFO
//! among equals), so under overload the engine finishes the queries that
//! can still make their deadlines and sheds the ones that already cannot:
//! a job whose deadline passed while queued is answered `Unknown(Shed)`
//! without wasting a solve on it.
//!
//! Each worker attempt clones the shared warm base solver (a `Solver`
//! clone is a flat memcpy of its arenas), loads the Tseitin encoding of
//! the normalized cone, and solves under the per-query budget. Verdicts
//! are memoized in the [`VerdictCache`]; SAT witnesses are replayed
//! through the cone and UNSAT certificates re-verified by the independent
//! checker before first reuse, so a corrupted cache entry degrades to a
//! live solve rather than an unsound answer.
//!
//! ## Fault tolerance
//!
//! - **Budget exhaustion** (`Unknown`): retried with a ×`budget_escalation`
//!   conflict budget after a deterministically jittered exponential
//!   backoff, up to `max_attempts`, then answered `Unknown(Budget)`.
//! - **Worker panic**: contained with `catch_unwind` exactly like
//!   `sweep::pool` shards; the job is retried on a fresh clone of the base
//!   solver up to `panic_retries`, then answered `Failed`. The panicking
//!   attempt can never corrupt other queries — solver state is per-attempt.
//! - **Cancellation**: one root token fans out to per-query children
//!   ([`sat::Cancellation::child`]); [`Engine::shutdown`] cancels the root,
//!   drains the queue as `Unknown(Cancelled)`, interrupts in-flight solves,
//!   and joins the workers. Individual queries are cancelled through their
//!   [`Ticket`] without disturbing neighbors.
//!
//! Every admitted query gets **exactly one** response: jobs are owned
//! linearly (queue → worker → response or requeue), requeue and shutdown
//! drain race under the same lock, and shed-at-submit responds before
//! returning. The chaos hooks reuse [`sweep::ChaosPlan`] with
//! `round = attempt` and `task = query id`, so injected faults are a pure
//! function of the query and schedule-independent — a fixed seed yields
//! identical verdicts for any worker count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use sat::{Budget, Cancellation, SolveResult, Solver, SolverConfig};
use sweep::{ChaosPlan, Fault};

use crate::cache::{CacheAnswer, CacheStats, VerdictCache};
use crate::query::{NormalizedQuery, Query, QueryError, QueryKind};

/// What to do when the queue is full at submission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Block the submitting thread until space frees up (backpressure).
    Block,
    /// Admit the query but immediately answer `Unknown(Shed)` (load
    /// shedding). The caller still receives exactly one response.
    Shed,
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads; `0` = one per available core (like
    /// `sweep::pool::resolve_threads`).
    pub workers: usize,
    /// Maximum queued (not yet running) queries before admission control
    /// kicks in.
    pub queue_capacity: usize,
    /// Full-queue policy.
    pub admission: Admission,
    /// Conflict budget of a query's first attempt (overridable per query).
    pub base_conflicts: u64,
    /// Conflict-budget multiplier applied on each retry of an `Unknown`.
    pub budget_escalation: u64,
    /// Total attempts for a query whose solves keep exhausting their
    /// budget; afterwards it is answered `Unknown(Budget)`.
    pub max_attempts: u32,
    /// Retries granted to a query whose worker panicked; afterwards it is
    /// answered `Failed`.
    pub panic_retries: u32,
    /// Base of the jittered exponential retry backoff.
    pub backoff: Duration,
    /// Solver preset for the shared warm base (proof logging is forced on —
    /// the cache stores certificates).
    pub solver: SolverConfig,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Deterministic fault injection for robustness tests: rolled per
    /// (attempt, query id), independent of worker count and schedule.
    pub chaos: Option<ChaosPlan>,
    /// Observability registry. Disabled by default; when tracing, each
    /// query runs under one `serve.query` span tree (admission →
    /// queue-wait → per-attempt solve → response).
    pub obs: obs::Registry,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 0,
            queue_capacity: 64,
            admission: Admission::Block,
            base_conflicts: 20_000,
            budget_escalation: 4,
            max_attempts: 3,
            panic_retries: 2,
            backoff: Duration::from_micros(500),
            solver: SolverConfig::default(),
            seed: 0x5e12_7e11,
            chaos: None,
            obs: obs::Registry::disabled(),
        }
    }
}

/// Why a query came back [`Verdict::Unknown`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownReason {
    /// Every attempt exhausted its conflict budget.
    Budget,
    /// The per-query deadline expired mid-solve.
    Deadline,
    /// The query (or the whole engine) was cancelled.
    Cancelled,
    /// Load-shed: queue full under [`Admission::Shed`], or the deadline
    /// passed while the query was still queued.
    Shed,
}

impl UnknownReason {
    /// Stable lowercase name used in CLI result lines.
    pub fn name(self) -> &'static str {
        match self {
            UnknownReason::Budget => "budget",
            UnknownReason::Deadline => "deadline",
            UnknownReason::Cancelled => "cancelled",
            UnknownReason::Shed => "shed",
        }
    }
}

/// Final verdict for one query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Satisfiable — counterexample / distinguishing input / reachable bad
    /// state. The witness is over the *instance's* PIs and has been
    /// replayed through the cone before being reported.
    Sat(Vec<bool>),
    /// Unsatisfiable — proved, with a DRAT certificate retained in the
    /// cache.
    Unsat,
    /// No verdict, for the given reason. Never silently dropped.
    Unknown(UnknownReason),
    /// Worker attempts kept panicking past the retry cap. A bug report,
    /// not an answer — but still exactly one response.
    Failed,
}

impl Verdict {
    /// True for [`Verdict::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Verdict::Sat(_))
    }

    /// True for [`Verdict::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, Verdict::Unsat)
    }

    /// Stable lowercase status used in CLI result lines.
    pub fn status(&self) -> &'static str {
        match self {
            Verdict::Sat(_) => "sat",
            Verdict::Unsat => "unsat",
            Verdict::Unknown(_) => "unknown",
            Verdict::Failed => "failed",
        }
    }
}

/// One response per submitted query — no losses, no duplicates.
#[derive(Clone, Debug)]
pub struct Response {
    /// Id returned by [`Engine::submit`].
    pub id: u64,
    /// Query flavor, echoed for reporting.
    pub kind: QueryKind,
    /// The verdict.
    pub verdict: Verdict,
    /// True when the verdict came from the cache rather than a live solve.
    pub cache_hit: bool,
    /// Solve attempts consumed (0 for cache hits and queue-time sheds).
    pub attempts: u32,
    /// Wall-clock time from submission to response.
    pub wall: Duration,
}

/// Per-query submission options.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryOpts {
    /// Wall-clock deadline; expiry answers `Unknown(Deadline)` (mid-solve)
    /// or `Unknown(Shed)` (still queued).
    pub deadline: Option<Instant>,
    /// First-attempt conflict budget override.
    pub conflicts: Option<u64>,
}

/// Submission errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The query failed shape validation; nothing was enqueued.
    Malformed(QueryError),
    /// The engine is shut down.
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Malformed(e) => write!(f, "malformed query: {e}"),
            SubmitError::ShutDown => write!(f, "engine is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handle to a submitted query: its id and its cancellation token (a child
/// of the engine's root token, so engine shutdown also cancels it).
#[derive(Clone, Debug)]
pub struct Ticket {
    /// Query id; responses carry it.
    pub id: u64,
    cancel: Cancellation,
}

impl Ticket {
    /// Cancels this query only: if still queued it answers
    /// `Unknown(Cancelled)` when popped; if mid-solve the solver interrupts
    /// at its next poll.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

/// Aggregate engine counters (monotonic snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries admitted (including shed-at-submit).
    pub submitted: u64,
    /// Responses emitted.
    pub responded: u64,
    /// `Sat` verdicts.
    pub sat: u64,
    /// `Unsat` verdicts.
    pub unsat: u64,
    /// `Unknown(Budget)` verdicts.
    pub unknown_budget: u64,
    /// `Unknown(Deadline)` verdicts.
    pub unknown_deadline: u64,
    /// `Unknown(Cancelled)` verdicts.
    pub cancelled: u64,
    /// `Unknown(Shed)` verdicts (submit-time and queue-time).
    pub sheds: u64,
    /// Budget-escalation retries scheduled.
    pub retries: u64,
    /// Worker panics contained (injected or real).
    pub panics_contained: u64,
    /// `Failed` verdicts (panic retry cap exhausted).
    pub failures: u64,
    /// Verdict-cache counters.
    pub cache: CacheStats,
}

impl EngineStats {
    /// Publishes every counter as a `serve.stats.*` gauge in `reg`
    /// (last-write-wins), so the CLI summary, the `stats` line-protocol
    /// command, and bench totals all read from one registry snapshot.
    pub fn publish(&self, reg: &obs::Registry) {
        if !reg.is_enabled() {
            return;
        }
        reg.set_gauge("serve.stats.submitted", self.submitted);
        reg.set_gauge("serve.stats.responded", self.responded);
        reg.set_gauge("serve.stats.sat", self.sat);
        reg.set_gauge("serve.stats.unsat", self.unsat);
        reg.set_gauge("serve.stats.unknown_budget", self.unknown_budget);
        reg.set_gauge("serve.stats.unknown_deadline", self.unknown_deadline);
        reg.set_gauge("serve.stats.cancelled", self.cancelled);
        reg.set_gauge("serve.stats.sheds", self.sheds);
        reg.set_gauge("serve.stats.retries", self.retries);
        reg.set_gauge("serve.stats.panics_contained", self.panics_contained);
        reg.set_gauge("serve.stats.failures", self.failures);
        reg.set_gauge("serve.stats.cache_hits", self.cache.hits);
        reg.set_gauge("serve.stats.cache_misses", self.cache.misses);
        reg.set_gauge("serve.stats.cache_insertions", self.cache.insertions);
        reg.set_gauge("serve.stats.certs_verified", self.cache.certs_verified);
        reg.set_gauge("serve.stats.certs_rejected", self.cache.certs_rejected);
    }
}

impl std::fmt::Display for EngineStats {
    /// Stable `key=value` rendering, same convention as [`sat::Stats`] —
    /// the `csat serve` shutdown summary line prints this.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} responded={} sat={} unsat={} unknown_budget={} unknown_deadline={} \
             cancelled={} sheds={} retries={} panics={} failures={} cache_hits={} \
             cache_misses={} certs_verified={} certs_rejected={}",
            self.submitted,
            self.responded,
            self.sat,
            self.unsat,
            self.unknown_budget,
            self.unknown_deadline,
            self.cancelled,
            self.sheds,
            self.retries,
            self.panics_contained,
            self.failures,
            self.cache.hits,
            self.cache.misses,
            self.cache.certs_verified,
            self.cache.certs_rejected
        )
    }
}

/// One queued query. Owned linearly: by the queue, then by exactly one
/// worker, until a response is emitted or it is requeued.
struct Job {
    id: u64,
    norm: NormalizedQuery,
    deadline: Option<Instant>,
    cancel: Cancellation,
    attempt: u32,
    panics: u32,
    next_conflicts: u64,
    not_before: Option<Instant>,
    submitted_at: Instant,
    /// The query's `serve.query` span, opened at admission. Travels with
    /// the job across requeues; closes (emitting its exit event) when the
    /// job is dropped after its single response — including drops during
    /// a worker panic unwind, which keeps the event stream balanced.
    span: obs::Span,
}

struct QueueState {
    queue: Vec<Job>,
    shutdown: bool,
}

#[derive(Default)]
struct Telemetry {
    submitted: AtomicU64,
    responded: AtomicU64,
    sat: AtomicU64,
    unsat: AtomicU64,
    unknown_budget: AtomicU64,
    unknown_deadline: AtomicU64,
    cancelled: AtomicU64,
    sheds: AtomicU64,
    retries: AtomicU64,
    panics_contained: AtomicU64,
    failures: AtomicU64,
}

struct Shared {
    cfg: EngineConfig,
    /// Warm base solver every attempt clones (proof logging on).
    base: Mutex<Solver>,
    state: Mutex<QueueState>,
    /// Signalled when work arrives or shutdown begins.
    work_cv: Condvar,
    /// Signalled when queue space frees up.
    space_cv: Condvar,
    cache: Mutex<VerdictCache>,
    root: Cancellation,
    tx: Mutex<Sender<Response>>,
    tel: Telemetry,
    /// Observability registry (clone of `cfg.obs`, hoisted for probe sites).
    obs: obs::Registry,
    /// Admission-to-first-dequeue wait, in microseconds.
    queue_wait: obs::Histogram,
}

/// The solver-as-a-service engine. See the [module docs](self).
pub struct Engine {
    shared: Arc<Shared>,
    rx: Mutex<Receiver<Response>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    next_id: AtomicU64,
    resolved_workers: usize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.resolved_workers)
            .field("stats", &self.stats())
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().expect("serve engine mutex poisoned")
}

/// Same mix as `sweep::pool` uses for chaos rolls; here it only feeds the
/// retry-backoff jitter, so determinism (not quality) is what matters.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Engine {
    /// Starts the worker pool. Workers idle until queries arrive.
    pub fn new(cfg: EngineConfig) -> Engine {
        let resolved_workers = sweep::pool::resolve_threads(cfg.workers);
        let mut solver_cfg = cfg.solver.clone();
        solver_cfg.proof = true;
        let base = Solver::from_cnf(&cnf::Cnf::new(), solver_cfg);
        let (tx, rx) = channel();
        let obs = cfg.obs.clone();
        let queue_wait = obs.histogram("serve.queue_wait_us");
        let shared = Arc::new(Shared {
            cfg,
            base: Mutex::new(base),
            state: Mutex::new(QueueState {
                queue: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            cache: Mutex::new(VerdictCache::new()),
            root: Cancellation::new(),
            tx: Mutex::new(tx),
            tel: Telemetry::default(),
            obs,
            queue_wait,
        });
        let workers = (0..resolved_workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&sh, i))
                    .expect("spawn serve worker")
            })
            .collect();
        Engine {
            shared,
            rx: Mutex::new(rx),
            workers: Mutex::new(workers),
            next_id: AtomicU64::new(0),
            resolved_workers,
        }
    }

    /// Number of worker threads actually running.
    pub fn workers(&self) -> usize {
        self.resolved_workers
    }

    /// Normalizes and admits a query. Returns once admission control lets
    /// it through (see [`Admission`]); the response arrives later through
    /// [`Engine::recv_timeout`].
    pub fn submit(&self, q: &Query, opts: QueryOpts) -> Result<Ticket, SubmitError> {
        let norm = q.normalize().map_err(SubmitError::Malformed)?;
        self.submit_normalized(norm, opts)
    }

    /// Admits an already-normalized query (lets callers amortize
    /// normalization across resubmissions).
    pub fn submit_normalized(
        &self,
        norm: NormalizedQuery,
        opts: QueryOpts,
    ) -> Result<Ticket, SubmitError> {
        let sh = &self.shared;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = sh.root.child();
        let span = sh.obs.span_with(
            "serve.query",
            &[("id", id.into()), ("kind", norm.kind.name().into())],
        );
        let job = Job {
            id,
            norm,
            deadline: opts.deadline,
            cancel: cancel.clone(),
            attempt: 0,
            panics: 0,
            next_conflicts: opts.conflicts.unwrap_or(sh.cfg.base_conflicts),
            not_before: None,
            submitted_at: Instant::now(),
            span,
        };
        let mut st = lock(&sh.state);
        if st.shutdown {
            return Err(SubmitError::ShutDown);
        }
        while st.queue.len() >= sh.cfg.queue_capacity {
            match sh.cfg.admission {
                Admission::Shed => {
                    sh.tel.submitted.fetch_add(1, Ordering::Relaxed);
                    drop(st);
                    sh.respond(&job, Verdict::Unknown(UnknownReason::Shed), false);
                    return Ok(Ticket { id, cancel });
                }
                Admission::Block => {
                    st = sh.space_cv.wait(st).expect("serve engine mutex poisoned");
                    if st.shutdown {
                        return Err(SubmitError::ShutDown);
                    }
                }
            }
        }
        sh.tel.submitted.fetch_add(1, Ordering::Relaxed);
        st.queue.push(job);
        drop(st);
        sh.work_cv.notify_one();
        Ok(Ticket { id, cancel })
    }

    /// Warm-loads an UNSAT certificate for a query's cone. The certificate
    /// is *not* trusted: like any cached certificate it must pass the
    /// independent checker before its first reuse, and is evicted (falling
    /// through to a live solve) if it does not. Returns the cache key.
    pub fn seed_cache_unsat(&self, q: &Query, proof: checker::Proof) -> Result<u64, QueryError> {
        let norm = q.normalize()?;
        lock(&self.shared.cache).insert_unsat(norm.key, norm.cone, proof, false);
        Ok(norm.key)
    }

    /// Receives the next response, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Response> {
        lock(&self.rx).recv_timeout(timeout).ok()
    }

    /// Receives a response if one is already pending.
    pub fn try_recv(&self) -> Option<Response> {
        lock(&self.rx).try_recv().ok()
    }

    /// Submits every query and blocks until all responses are in; returns
    /// them ordered by submission. Panics on malformed queries — validate
    /// with [`Query::normalize`] first when the input is untrusted — and
    /// assumes no other thread is consuming responses concurrently.
    pub fn run_batch(&self, queries: &[(Query, QueryOpts)]) -> Vec<Response> {
        let mut responses = Vec::with_capacity(queries.len());
        for (q, opts) in queries {
            self.submit(q, *opts)
                .expect("run_batch requires well-formed queries");
            // Drain eagerly to keep memory flat on very long batches.
            while let Some(r) = self.try_recv() {
                responses.push(r);
            }
        }
        while responses.len() < queries.len() {
            let r = self
                .recv_timeout(Duration::from_secs(300))
                .expect("engine guarantees one response per query");
            responses.push(r);
        }
        responses.sort_by_key(|r| r.id);
        responses
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        let t = &self.shared.tel;
        EngineStats {
            submitted: t.submitted.load(Ordering::Relaxed),
            responded: t.responded.load(Ordering::Relaxed),
            sat: t.sat.load(Ordering::Relaxed),
            unsat: t.unsat.load(Ordering::Relaxed),
            unknown_budget: t.unknown_budget.load(Ordering::Relaxed),
            unknown_deadline: t.unknown_deadline.load(Ordering::Relaxed),
            cancelled: t.cancelled.load(Ordering::Relaxed),
            sheds: t.sheds.load(Ordering::Relaxed),
            retries: t.retries.load(Ordering::Relaxed),
            panics_contained: t.panics_contained.load(Ordering::Relaxed),
            failures: t.failures.load(Ordering::Relaxed),
            cache: lock(&self.shared.cache).stats(),
        }
    }

    /// Cancels the root token (fanning out to every queued and in-flight
    /// query), answers all queued jobs `Unknown(Cancelled)`, and joins the
    /// workers. Idempotent; also runs on drop. Pending responses remain
    /// receivable afterwards.
    pub fn shutdown(&self) {
        let sh = &self.shared;
        sh.root.cancel();
        let drained: Vec<Job> = {
            let mut st = lock(&sh.state);
            st.shutdown = true;
            sh.work_cv.notify_all();
            sh.space_cv.notify_all();
            std::mem::take(&mut st.queue)
        };
        for job in &drained {
            sh.respond(job, Verdict::Unknown(UnknownReason::Cancelled), false);
        }
        let handles = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Index of the best eligible job (earliest deadline, then FIFO), or the
/// earliest `not_before` among backoff-parked jobs when none is eligible.
fn pick(queue: &[Job], now: Instant, shutdown: bool) -> (Option<usize>, Option<Instant>) {
    let mut best: Option<usize> = None;
    let mut next_ready: Option<Instant> = None;
    for (i, job) in queue.iter().enumerate() {
        // Backoff parking is void once shutdown begins — those jobs just
        // need their Cancelled response.
        if !shutdown {
            if let Some(t) = job.not_before {
                if t > now {
                    next_ready = Some(next_ready.map_or(t, |n| n.min(t)));
                    continue;
                }
            }
        }
        let better = match best {
            None => true,
            Some(b) => {
                let (bd, bi) = (&queue[b].deadline, queue[b].id);
                match (job.deadline, bd) {
                    (Some(a), Some(b)) => (a, job.id) < (*b, bi),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => job.id < bi,
                }
            }
        };
        if better {
            best = Some(i);
        }
    }
    (best, next_ready)
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    // One span per worker lifetime; query spans are parented to the
    // submitter, so this mostly anchors per-thread idle/busy boundaries.
    let _worker_span = shared
        .obs
        .span_with("serve.worker", &[("worker", index.into())]);
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                let now = Instant::now();
                let (best, next_ready) = pick(&st.queue, now, st.shutdown);
                if let Some(i) = best {
                    break Some(st.queue.swap_remove(i));
                }
                if st.shutdown {
                    break None;
                }
                st = match next_ready {
                    Some(t) => {
                        let wait = t.saturating_duration_since(now);
                        shared
                            .work_cv
                            .wait_timeout(st, wait)
                            .expect("serve engine mutex poisoned")
                            .0
                    }
                    None => shared
                        .work_cv
                        .wait(st)
                        .expect("serve engine mutex poisoned"),
                };
            }
        };
        let Some(job) = job else { return };
        shared.space_cv.notify_one();
        shared.process(job);
    }
}

/// Outcome of one live solve attempt.
enum AttemptOutcome {
    /// Witness over the cone's PIs.
    Sat(Vec<bool>),
    /// DRAT certificate for the cone's Tseitin encoding.
    Unsat(checker::Proof),
    /// Budget, deadline, or cancellation interrupt.
    Interrupted,
}

impl Shared {
    /// Runs one job to a response or a requeue. The only entry point that
    /// consumes jobs, so response-exactly-once follows from job ownership.
    fn process(&self, mut job: Job) {
        if job.attempt == 0 && job.panics == 0 {
            // First dequeue only: requeued jobs re-enter with backoff, and
            // their wait is retry policy, not queue pressure.
            let wait = job.submitted_at.elapsed();
            self.queue_wait.observe_micros(wait);
            job.span
                .event("dequeue", &[("wait_us", (wait.as_micros() as u64).into())]);
        }
        if job.cancel.is_cancelled() {
            self.respond(&job, Verdict::Unknown(UnknownReason::Cancelled), false);
            return;
        }
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            // Too late to be worth a solve: shed instead of burning a
            // worker on a query that already missed its deadline.
            self.respond(&job, Verdict::Unknown(UnknownReason::Shed), false);
            return;
        }
        job.attempt += 1;
        // Chaos rolls before the cache probe: a fault injected for
        // (attempt, id) must fire regardless of what other queries have
        // populated the cache with, or injected outcomes would depend on
        // the schedule.
        let fault = self
            .cfg
            .chaos
            .as_ref()
            .and_then(|c| c.roll(job.attempt as usize, job.id as usize));
        if matches!(fault, Some(Fault::Unknown)) {
            self.retry_or_unknown(job);
            return;
        }
        match lock(&self.cache).lookup(job.norm.key, &job.norm.cone) {
            CacheAnswer::Sat(w) => {
                let witness = job.norm.expand_witness(&w);
                self.respond(&job, Verdict::Sat(witness), true);
                return;
            }
            CacheAnswer::Unsat => {
                self.respond(&job, Verdict::Unsat, true);
                return;
            }
            CacheAnswer::Miss => {}
        }
        let inject_panic = matches!(fault, Some(Fault::Panic));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            assert!(!inject_panic, "chaos: injected serve worker panic");
            self.solve_attempt(&job)
        }));
        match outcome {
            Err(_) => {
                self.tel.panics_contained.fetch_add(1, Ordering::Relaxed);
                if job.panics >= self.cfg.panic_retries {
                    self.respond(&job, Verdict::Failed, false);
                } else {
                    job.panics += 1;
                    job.not_before = Some(Instant::now() + self.backoff_delay(&job));
                    self.requeue(job);
                }
            }
            Ok(AttemptOutcome::Sat(w)) => {
                // Soundness backstop: never report a witness the cone
                // itself rejects.
                if job.norm.cone.eval(&w).iter().any(|&b| b) {
                    lock(&self.cache).insert_sat(job.norm.key, job.norm.cone.clone(), w.clone());
                    let witness = job.norm.expand_witness(&w);
                    self.respond(&job, Verdict::Sat(witness), false);
                } else {
                    self.respond(&job, Verdict::Failed, false);
                }
            }
            Ok(AttemptOutcome::Unsat(proof)) => {
                lock(&self.cache).insert_unsat(job.norm.key, job.norm.cone.clone(), proof, false);
                self.respond(&job, Verdict::Unsat, false);
            }
            Ok(AttemptOutcome::Interrupted) => {
                if job.cancel.is_cancelled() {
                    self.respond(&job, Verdict::Unknown(UnknownReason::Cancelled), false);
                } else if job.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.respond(&job, Verdict::Unknown(UnknownReason::Deadline), false);
                } else {
                    self.retry_or_unknown(job);
                }
            }
        }
    }

    /// One solve on a fresh clone of the warm base under the job's budget.
    fn solve_attempt(&self, job: &Job) -> AttemptOutcome {
        // `serve.solve` child per attempt; the solver's own `sat.solve`
        // span nests under it via the observer. If this attempt panics,
        // the span closes during unwind, keeping the stream balanced.
        let attempt_span = job.span.child_with(
            "serve.solve",
            &[
                ("attempt", job.attempt.into()),
                ("conflicts_budget", job.next_conflicts.into()),
            ],
        );
        let (formula, vmap) = cnf::tseitin_sat_instance(&job.norm.cone);
        let mut solver = lock(&self.base).clone();
        solver.set_observer(attempt_span.handle());
        for clause in formula.clauses() {
            solver.add_clause_cnf(clause);
        }
        solver.set_budget(
            Budget::conflicts(job.next_conflicts)
                .with_deadline(job.deadline)
                .with_cancel(job.cancel.clone()),
        );
        match solver.solve() {
            SolveResult::Sat(model) => AttemptOutcome::Sat(vmap.decode_inputs(&model)),
            SolveResult::Unsat => {
                let log = solver.proof().expect("base solver logs proofs");
                AttemptOutcome::Unsat(checker::Proof::from_steps(
                    log.steps().iter().map(|s| (s.delete, s.lits.clone())),
                ))
            }
            SolveResult::Unknown => AttemptOutcome::Interrupted,
        }
    }

    /// Budget-exhausted attempt: escalate and requeue, or give up.
    fn retry_or_unknown(&self, mut job: Job) {
        if job.attempt >= self.cfg.max_attempts {
            self.respond(&job, Verdict::Unknown(UnknownReason::Budget), false);
            return;
        }
        self.tel.retries.fetch_add(1, Ordering::Relaxed);
        job.next_conflicts = job
            .next_conflicts
            .saturating_mul(self.cfg.budget_escalation.max(1));
        job.not_before = Some(Instant::now() + self.backoff_delay(&job));
        self.requeue(job);
    }

    /// Jittered exponential backoff, a pure function of (seed, id, attempt)
    /// so retry timing is reproducible.
    fn backoff_delay(&self, job: &Job) -> Duration {
        let exp = (job.attempt + job.panics).min(6);
        let base = self.cfg.backoff.saturating_mul(1u32 << exp);
        let j = splitmix64(
            self.cfg
                .seed
                .wrapping_add(job.id.wrapping_mul(0x9E37_79B9))
                .wrapping_add(u64::from(job.attempt) << 48),
        ) % 1024;
        base.mul_f64(0.5 + j as f64 / 1024.0)
    }

    /// Puts a retried job back in the queue — unless shutdown won the race,
    /// in which case it is answered like any other drained job.
    fn requeue(&self, job: Job) {
        let mut st = lock(&self.state);
        if st.shutdown {
            drop(st);
            self.respond(&job, Verdict::Unknown(UnknownReason::Cancelled), false);
            return;
        }
        st.queue.push(job);
        drop(st);
        self.work_cv.notify_one();
    }

    /// Emits the job's single response and accounts for it.
    fn respond(&self, job: &Job, verdict: Verdict, cache_hit: bool) {
        let counter = match &verdict {
            Verdict::Sat(_) => &self.tel.sat,
            Verdict::Unsat => &self.tel.unsat,
            Verdict::Unknown(UnknownReason::Budget) => &self.tel.unknown_budget,
            Verdict::Unknown(UnknownReason::Deadline) => &self.tel.unknown_deadline,
            Verdict::Unknown(UnknownReason::Cancelled) => &self.tel.cancelled,
            Verdict::Unknown(UnknownReason::Shed) => &self.tel.sheds,
            Verdict::Failed => &self.tel.failures,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.tel.responded.fetch_add(1, Ordering::Relaxed);
        let wall = job.submitted_at.elapsed();
        job.span.record("status", verdict.status());
        job.span.record("cache_hit", cache_hit);
        job.span.record("attempts", job.attempt);
        job.span.record("wall_us", wall.as_micros() as u64);
        // A receiver that hung up just discards responses; that is the
        // caller's prerogative, not an engine error.
        let _ = lock(&self.tx).send(Response {
            id: job.id,
            kind: job.norm.kind,
            verdict,
            cache_hit,
            attempts: job.attempt,
            wall,
        });
    }
}
