//! Maximum fanout-free cones (MFFCs).
//!
//! The MFFC of node `n` is the set of AND nodes that are used *only* on
//! paths into `n` — exactly the logic that disappears if `n` is replaced by
//! something else. Its size is the classic "gain denominator" of DAG-aware
//! rewriting: replacing `n` by a structure of `s` fresh nodes yields
//! `|MFFC(n)| - s` saved nodes.
//!
//! Sizes are computed with the standard dereference/re-reference walk over a
//! mutable copy of the fanout counts, so repeated queries are cheap and do
//! not disturb the graph.

use crate::aig::Aig;
use crate::lit::Var;

/// Reusable MFFC computer over a fixed graph.
#[derive(Clone, Debug)]
pub struct Mffc {
    refs: Vec<u32>,
}

impl Mffc {
    /// Prepares reference counts (fanout counts, POs included) for `aig`.
    pub fn new(aig: &Aig) -> Mffc {
        Mffc {
            refs: aig.fanout_counts(),
        }
    }

    /// Current reference count of a node.
    pub fn refs(&self, v: Var) -> u32 {
        self.refs[v as usize]
    }

    /// Size of the MFFC of `v` in AND nodes (0 if `v` is a PI/constant).
    pub fn size(&mut self, aig: &Aig, v: Var) -> usize {
        if !aig.node(v).is_and() {
            return 0;
        }
        let n = self.deref(aig, v);
        let m = self.reref(aig, v);
        debug_assert_eq!(n, m, "deref/reref mismatch");
        n
    }

    /// The AND nodes in the MFFC of `v`, in reverse topological order
    /// (`v` first). Empty if `v` is not an AND node.
    pub fn collect(&mut self, aig: &Aig, v: Var) -> Vec<Var> {
        if !aig.node(v).is_and() {
            return Vec::new();
        }
        let mut nodes = Vec::new();
        self.deref_collect(aig, v, &mut Some(&mut nodes));
        self.reref(aig, v);
        nodes
    }

    /// Size of the part of `v`'s MFFC that lies strictly above the given cut
    /// `leaves` — exactly the AND nodes that disappear when `v` is
    /// re-expressed as a structure over those leaves.
    ///
    /// This is the gain numerator of DAG-aware rewriting: nodes below or at
    /// a leaf survive because the replacement still references the leaf.
    pub fn cone_size(&mut self, aig: &Aig, v: Var, leaves: &[Var]) -> usize {
        self.cone_collect_impl(aig, v, leaves, &mut None)
    }

    /// The AND nodes counted by [`Mffc::cone_size`], `v` first.
    pub fn cone_collect(&mut self, aig: &Aig, v: Var, leaves: &[Var]) -> Vec<Var> {
        let mut nodes = Vec::new();
        self.cone_collect_impl(aig, v, leaves, &mut Some(&mut nodes));
        nodes
    }

    fn cone_collect_impl(
        &mut self,
        aig: &Aig,
        v: Var,
        leaves: &[Var],
        out: &mut Option<&mut Vec<Var>>,
    ) -> usize {
        if !aig.node(v).is_and() || leaves.contains(&v) {
            return 0;
        }
        let stop: crate::hash::FastSet<Var> = leaves.iter().copied().collect();
        let n = self.deref_cone(aig, v, &stop, out);
        self.reref_cone(aig, v, &stop);
        n
    }

    fn deref_cone(
        &mut self,
        aig: &Aig,
        v: Var,
        stop: &crate::hash::FastSet<Var>,
        out: &mut Option<&mut Vec<Var>>,
    ) -> usize {
        let mut count = 1;
        if let Some(list) = out.as_deref_mut() {
            list.push(v);
        }
        let node = *aig.node(v);
        for f in node.fanins() {
            let fv = f.var();
            debug_assert!(self.refs[fv as usize] > 0, "reference underflow");
            self.refs[fv as usize] -= 1;
            if self.refs[fv as usize] == 0 && aig.node(fv).is_and() && !stop.contains(&fv) {
                count += self.deref_cone(aig, fv, stop, out);
            }
        }
        count
    }

    fn reref_cone(&mut self, aig: &Aig, v: Var, stop: &crate::hash::FastSet<Var>) {
        let node = *aig.node(v);
        for f in node.fanins() {
            let fv = f.var();
            if self.refs[fv as usize] == 0 && aig.node(fv).is_and() && !stop.contains(&fv) {
                self.reref_cone(aig, fv, stop);
            }
            self.refs[fv as usize] += 1;
        }
    }

    /// Dereferences the cone of `v`: decrements fanin references transitively
    /// and returns how many AND nodes dropped to zero (the MFFC size).
    fn deref(&mut self, aig: &Aig, v: Var) -> usize {
        self.deref_collect(aig, v, &mut None)
    }

    fn deref_collect(&mut self, aig: &Aig, v: Var, out: &mut Option<&mut Vec<Var>>) -> usize {
        let mut count = 1;
        if let Some(list) = out.as_deref_mut() {
            list.push(v);
        }
        let node = *aig.node(v);
        for f in node.fanins() {
            let fv = f.var() as usize;
            debug_assert!(self.refs[fv] > 0, "reference underflow");
            self.refs[fv] -= 1;
            if self.refs[fv] == 0 && aig.node(f.var()).is_and() {
                count += self.deref_collect(aig, f.var(), out);
            }
        }
        count
    }

    /// Re-references the cone of `v`, undoing [`Mffc::deref`]. Returns the
    /// number of AND nodes whose count rose from zero.
    fn reref(&mut self, aig: &Aig, v: Var) -> usize {
        let mut count = 1;
        let node = *aig.node(v);
        for f in node.fanins() {
            let fv = f.var() as usize;
            if self.refs[fv] == 0 && aig.node(f.var()).is_and() {
                count += self.reref(aig, f.var());
            }
            self.refs[fv] += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fanout_chain_is_whole_cone() {
        let mut g = Aig::new();
        let pis = g.add_pis(4);
        let t0 = g.and(pis[0], pis[1]);
        let t1 = g.and(pis[2], pis[3]);
        let t2 = g.and(t0, t1);
        g.add_po(t2);
        let mut m = Mffc::new(&g);
        assert_eq!(m.size(&g, t2.var()), 3);
        assert_eq!(m.size(&g, t0.var()), 1);
        // Queries leave reference counts untouched.
        assert_eq!(m.refs, g.fanout_counts());
    }

    #[test]
    fn shared_node_excluded() {
        let mut g = Aig::new();
        let pis = g.add_pis(3);
        let shared = g.and(pis[0], pis[1]);
        let top = g.and(shared, pis[2]);
        let other = g.and(shared, !pis[2]);
        g.add_po(top);
        g.add_po(other);
        let mut m = Mffc::new(&g);
        // `shared` is referenced by `other`, so top's MFFC is just {top}.
        assert_eq!(m.size(&g, top.var()), 1);
        let nodes = m.collect(&g, top.var());
        assert_eq!(nodes, vec![top.var()]);
    }

    #[test]
    fn pi_has_empty_mffc() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(a);
        let mut m = Mffc::new(&g);
        assert_eq!(m.size(&g, a.var()), 0);
        assert!(m.collect(&g, a.var()).is_empty());
    }

    #[test]
    fn cone_size_stops_at_leaves() {
        // v = (a&b) & (c&d); cut leaves {a&b, c, d}: only v and (c&d) vanish.
        let mut g = Aig::new();
        let pis = g.add_pis(4);
        let t0 = g.and(pis[0], pis[1]);
        let t1 = g.and(pis[2], pis[3]);
        let v = g.and(t0, t1);
        g.add_po(v);
        let mut m = Mffc::new(&g);
        assert_eq!(m.size(&g, v.var()), 3);
        let leaves = [t0.var(), pis[2].var(), pis[3].var()];
        assert_eq!(m.cone_size(&g, v.var(), &leaves), 2);
        let nodes = m.cone_collect(&g, v.var(), &leaves);
        assert_eq!(nodes, vec![v.var(), t1.var()]);
        // Reference counts restored.
        assert_eq!(m.refs, g.fanout_counts());
    }

    #[test]
    fn cone_size_of_leaf_is_zero() {
        let mut g = Aig::new();
        let pis = g.add_pis(2);
        let t = g.and(pis[0], pis[1]);
        g.add_po(t);
        let mut m = Mffc::new(&g);
        assert_eq!(m.cone_size(&g, t.var(), &[t.var()]), 0);
    }

    #[test]
    fn collect_matches_size() {
        let mut g = Aig::new();
        let pis = g.add_pis(5);
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.and(acc, p);
        }
        // Add a side user of an interior node.
        let interior = g.and(pis[0], pis[1]);
        let side = g.and(interior, pis[4]);
        g.add_po(acc);
        g.add_po(side);
        let mut m = Mffc::new(&g);
        for v in g.iter_ands() {
            assert_eq!(m.collect(&g, v).len(), m.size(&g, v), "node {v}");
        }
    }
}
