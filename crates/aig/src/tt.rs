//! Multi-word truth tables and irredundant sum-of-products (ISOP) covers.
//!
//! A [`Tt`] stores the complete function table of an `n`-variable Boolean
//! function as packed 64-bit words, exactly like ABC/mockturtle truth tables:
//! bit `m` of the table is the function value on minterm `m`, and variable
//! `i` of minterm `m` is bit `i` of `m`.
//!
//! The [`Tt::isop`] method computes an irredundant SOP cover with the
//! Minato–Morreale algorithm; the cube counts of `f` and `!f` together form
//! the paper's *branching complexity* metric (Fig. 3) and the clause count of
//! the ISOP-based LUT-to-CNF encoding.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Patterns of the first six elementary variables within a single word.
pub(crate) const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A complete truth table over `nvars` variables.
///
/// ```
/// use aig::Tt;
/// let a = Tt::var(3, 0);
/// let b = Tt::var(3, 1);
/// let c = Tt::var(3, 2);
/// let maj = (a.clone() & b.clone()) | (b.clone() & c.clone()) | (a & c);
/// assert_eq!(maj.count_ones(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tt {
    nvars: usize,
    words: Vec<u64>,
}

fn n_words(nvars: usize) -> usize {
    if nvars <= 6 {
        1
    } else {
        1 << (nvars - 6)
    }
}

/// Mask selecting the valid bits of the (single) word of a small table.
fn word_mask(nvars: usize) -> u64 {
    if nvars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << nvars)) - 1
    }
}

impl Tt {
    /// Maximum supported variable count (table size 2^20 bits = 128 KiB).
    pub const MAX_VARS: usize = 20;

    /// The constant-false table over `nvars` variables.
    ///
    /// # Panics
    /// Panics if `nvars > Tt::MAX_VARS`.
    pub fn zero(nvars: usize) -> Tt {
        assert!(nvars <= Self::MAX_VARS, "too many truth-table variables");
        Tt {
            nvars,
            words: vec![0; n_words(nvars)],
        }
    }

    /// The constant-true table over `nvars` variables.
    pub fn one(nvars: usize) -> Tt {
        let mut t = Tt::zero(nvars);
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.mask_excess();
        t
    }

    /// The table of elementary variable `i` over `nvars` variables.
    ///
    /// # Panics
    /// Panics if `i >= nvars`.
    pub fn var(nvars: usize, i: usize) -> Tt {
        assert!(i < nvars, "variable index out of range");
        let mut t = Tt::zero(nvars);
        if i < 6 {
            for w in &mut t.words {
                *w = VAR_MASKS[i];
            }
        } else {
            let stride = 1 << (i - 6);
            for (wi, w) in t.words.iter_mut().enumerate() {
                if wi & stride != 0 {
                    *w = u64::MAX;
                }
            }
        }
        t.mask_excess();
        t
    }

    /// Builds a table from raw words (low minterms first).
    ///
    /// # Panics
    /// Panics if `words.len()` does not match `nvars`.
    pub fn from_words(nvars: usize, words: Vec<u64>) -> Tt {
        assert_eq!(words.len(), n_words(nvars), "word count mismatch");
        let mut t = Tt { nvars, words };
        t.mask_excess();
        t
    }

    /// Builds a 4-variable table from its 16-bit encoding.
    pub fn from_u16(bits: u16) -> Tt {
        Tt {
            nvars: 4,
            words: vec![bits as u64],
        }
    }

    /// The 16-bit encoding of a 4-variable table.
    ///
    /// # Panics
    /// Panics if the table does not have exactly four variables.
    pub fn to_u16(&self) -> u16 {
        assert_eq!(self.nvars, 4, "to_u16 requires a 4-variable table");
        (self.words[0] & 0xFFFF) as u16
    }

    /// Builds a table over at most six variables from a single word.
    pub fn from_u64(nvars: usize, bits: u64) -> Tt {
        assert!(nvars <= 6, "from_u64 supports at most 6 variables");
        let mut t = Tt {
            nvars,
            words: vec![bits],
        };
        t.mask_excess();
        t
    }

    /// The single-word encoding of a table over at most six variables.
    pub fn to_u64(&self) -> u64 {
        assert!(self.nvars <= 6, "to_u64 supports at most 6 variables");
        self.words[0]
    }

    /// Number of variables.
    #[inline]
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Raw words of the table.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn mask_excess(&mut self) {
        if self.nvars < 6 {
            self.words[0] &= word_mask(self.nvars);
        }
    }

    /// Value of the function on minterm `m`.
    #[inline]
    pub fn bit(&self, m: usize) -> bool {
        self.words[m >> 6] >> (m & 63) & 1 != 0
    }

    /// Sets the value of the function on minterm `m`.
    #[inline]
    pub fn set_bit(&mut self, m: usize, v: bool) {
        if v {
            self.words[m >> 6] |= 1u64 << (m & 63);
        } else {
            self.words[m >> 6] &= !(1u64 << (m & 63));
        }
    }

    /// Number of satisfying minterms.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// True if the function is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the function is constant true.
    pub fn is_one(&self) -> bool {
        let last_mask = word_mask(self.nvars);
        if self.words.len() == 1 {
            return self.words[0] == last_mask;
        }
        self.words.iter().all(|&w| w == u64::MAX)
    }

    /// Negative cofactor with respect to variable `i` (as a same-size table).
    pub fn cofactor0(&self, i: usize) -> Tt {
        assert!(i < self.nvars);
        let mut t = self.clone();
        if i < 6 {
            let shift = 1 << i;
            let mask = !VAR_MASKS[i];
            for w in &mut t.words {
                let lo = *w & mask;
                *w = lo | lo << shift;
            }
        } else {
            let stride = 1 << (i - 6);
            let n = t.words.len();
            let mut wi = 0;
            while wi < n {
                for k in 0..stride {
                    t.words[wi + stride + k] = t.words[wi + k];
                }
                wi += 2 * stride;
            }
        }
        t.mask_excess();
        t
    }

    /// Positive cofactor with respect to variable `i` (as a same-size table).
    pub fn cofactor1(&self, i: usize) -> Tt {
        assert!(i < self.nvars);
        let mut t = self.clone();
        if i < 6 {
            let shift = 1 << i;
            let mask = VAR_MASKS[i];
            for w in &mut t.words {
                let hi = *w & mask;
                *w = hi | hi >> shift;
            }
        } else {
            let stride = 1 << (i - 6);
            let n = t.words.len();
            let mut wi = 0;
            while wi < n {
                for k in 0..stride {
                    t.words[wi + k] = t.words[wi + stride + k];
                }
                wi += 2 * stride;
            }
        }
        t.mask_excess();
        t
    }

    /// True if the function depends on variable `i`.
    pub fn has_var(&self, i: usize) -> bool {
        self.cofactor0(i) != self.cofactor1(i)
    }

    /// The set of variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.nvars).filter(|&i| self.has_var(i)).collect()
    }

    /// Swaps the roles of variables `i` and `j`.
    pub fn swap_vars(&self, i: usize, j: usize) -> Tt {
        if i == j {
            return self.clone();
        }
        self.permute(&identity_swapped(self.nvars, i, j))
    }

    /// Reorders variables: new variable `perm[i]` takes the role of old
    /// variable `i` (i.e. minterm bit `i` moves to bit `perm[i]`).
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..nvars`.
    pub fn permute(&self, perm: &[usize]) -> Tt {
        assert_eq!(perm.len(), self.nvars, "permutation length mismatch");
        let mut seen = vec![false; self.nvars];
        for &p in perm {
            assert!(p < self.nvars && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut out = Tt::zero(self.nvars);
        let total = 1usize << self.nvars;
        for m in 0..total {
            if self.bit(m) {
                let mut mm = 0usize;
                for (i, &p) in perm.iter().enumerate() {
                    if m >> i & 1 != 0 {
                        mm |= 1 << p;
                    }
                }
                out.set_bit(mm, true);
            }
        }
        out
    }

    /// Complements the polarity of input variable `i`.
    pub fn flip_var(&self, i: usize) -> Tt {
        assert!(i < self.nvars);
        let mut t = self.clone();
        if i < 6 {
            let shift = 1 << i;
            for w in &mut t.words {
                let hi = *w & VAR_MASKS[i];
                let lo = *w & !VAR_MASKS[i];
                *w = hi >> shift | lo << shift;
            }
        } else {
            let stride = 1 << (i - 6);
            let n = t.words.len();
            let mut wi = 0;
            while wi < n {
                for k in 0..stride {
                    t.words.swap(wi + k, wi + stride + k);
                }
                wi += 2 * stride;
            }
        }
        t
    }

    /// Re-expresses the function over a larger variable set (the new
    /// variables are don't-cares).
    ///
    /// # Panics
    /// Panics if `nvars < self.nvars()`.
    pub fn extend_to(&self, nvars: usize) -> Tt {
        assert!(nvars >= self.nvars, "cannot shrink a table with extend_to");
        if nvars == self.nvars {
            return self.clone();
        }
        let mut t = Tt::zero(nvars);
        if self.nvars <= 6 {
            // Replicate the (padded) single word.
            let mut w = self.words[0];
            let mut bits = 1usize << self.nvars;
            while bits < 64 {
                w |= w << bits;
                bits <<= 1;
            }
            for out in &mut t.words {
                *out = w;
            }
        } else {
            let chunk = self.words.len();
            for (wi, out) in t.words.iter_mut().enumerate() {
                *out = self.words[wi % chunk];
            }
        }
        t.mask_excess();
        t
    }

    /// Projects the function onto the variables it actually depends on.
    ///
    /// Returns the shrunk table and the original indices of the kept
    /// variables (`kept[i]` is the old index of new variable `i`).
    pub fn shrink_to_support(&self) -> (Tt, Vec<usize>) {
        let sup = self.support();
        let mut t = Tt::zero(sup.len());
        let total = 1usize << sup.len();
        for m in 0..total {
            // Build a representative full minterm: support vars as in `m`,
            // other vars at 0.
            let mut full = 0usize;
            for (i, &v) in sup.iter().enumerate() {
                if m >> i & 1 != 0 {
                    full |= 1 << v;
                }
            }
            if self.bit(full) {
                t.set_bit(m, true);
            }
        }
        (t, sup)
    }
}

fn identity_swapped(n: usize, i: usize, j: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    p.swap(i, j);
    p
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Tt {
            type Output = Tt;
            fn $method(self, rhs: Tt) -> Tt { (&self).$method(&rhs) }
        }
        impl<'a> $trait<&'a Tt> for &'a Tt {
            type Output = Tt;
            fn $method(self, rhs: &'a Tt) -> Tt {
                assert_eq!(self.nvars, rhs.nvars, "truth-table arity mismatch");
                let words = self
                    .words
                    .iter()
                    .zip(&rhs.words)
                    .map(|(a, b)| a $op b)
                    .collect();
                Tt { nvars: self.nvars, words }
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &);
impl_binop!(BitOr, bitor, |);
impl_binop!(BitXor, bitxor, ^);

impl Not for Tt {
    type Output = Tt;
    fn not(self) -> Tt {
        !&self
    }
}

impl Not for &Tt {
    type Output = Tt;
    fn not(self) -> Tt {
        let mut t = Tt {
            nvars: self.nvars,
            words: self.words.iter().map(|w| !w).collect(),
        };
        t.mask_excess();
        t
    }
}

impl fmt::Debug for Tt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tt{}[", self.nvars)?;
        for w in self.words.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

// ---------------------------------------------------------------------------
// Cubes and ISOP
// ---------------------------------------------------------------------------

/// A product term (cube) over at most 32 variables.
///
/// Variable `i` appears in the cube iff bit `i` of `mask` is set; its
/// polarity is bit `i` of `vals` (1 = positive literal).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cube {
    /// Which variables appear in the cube.
    pub mask: u32,
    /// Polarity of each appearing variable.
    pub vals: u32,
}

impl Cube {
    /// The empty cube (constant true product).
    pub const TAUTOLOGY: Cube = Cube { mask: 0, vals: 0 };

    /// Adds literal `var` with polarity `positive` to the cube.
    pub fn with_lit(mut self, var: usize, positive: bool) -> Cube {
        self.mask |= 1 << var;
        if positive {
            self.vals |= 1 << var;
        } else {
            self.vals &= !(1 << var);
        }
        self
    }

    /// Number of literals in the cube.
    pub fn num_lits(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Iterates over `(var, positive)` pairs of the cube's literals.
    pub fn lits(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        (0..32usize)
            .filter(|i| self.mask >> i & 1 != 0)
            .map(|i| (i, self.vals >> i & 1 != 0))
    }

    /// Evaluates the cube on a minterm.
    pub fn eval(&self, minterm: u32) -> bool {
        minterm & self.mask == self.vals & self.mask
    }

    /// The characteristic truth table of the cube over `nvars` variables.
    pub fn to_tt(&self, nvars: usize) -> Tt {
        let mut t = Tt::one(nvars);
        for (v, pos) in self.lits() {
            let tv = Tt::var(nvars, v);
            t = if pos { t & tv } else { t & !tv };
        }
        t
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mask == 0 {
            return write!(f, "1");
        }
        for (v, pos) in self.lits() {
            write!(f, "{}x{}", if pos { "" } else { "!" }, v)?;
        }
        Ok(())
    }
}

impl Tt {
    /// Irredundant sum-of-products cover via Minato–Morreale.
    ///
    /// The returned cubes satisfy `OR(cubes) == self` exactly (verified in
    /// tests); the cover is irredundant in the ISOP sense (each cube contains
    /// a minterm covered by no other cube).
    pub fn isop(&self) -> Vec<Cube> {
        let mut cover = Vec::new();
        let f = isop_rec(self, self, self.nvars, &mut cover);
        debug_assert_eq!(&f, self, "ISOP cover must equal the function");
        cover
    }

    /// `|isop(f)| + |isop(!f)|` — the paper's *branching complexity* of a
    /// cell implementing this function, and simultaneously the number of
    /// clauses the ISOP LUT-to-CNF encoding produces for it.
    ///
    /// ```
    /// use aig::Tt;
    /// // Fig. 3 of the paper: 2-input AND has C = 3, 2-input XOR has C = 4.
    /// assert_eq!(Tt::from_u64(2, 0x8).branching_complexity(), 3);
    /// assert_eq!(Tt::from_u64(2, 0x6).branching_complexity(), 4);
    /// ```
    pub fn branching_complexity(&self) -> usize {
        self.isop().len() + (!self).isop().len()
    }
}

/// Computes an ISOP cover of some `f` with `lower <= f <= upper`, appending
/// cubes to `cover` and returning the function actually covered.
fn isop_rec(lower: &Tt, upper: &Tt, top: usize, cover: &mut Vec<Cube>) -> Tt {
    debug_assert_eq!(lower.nvars(), upper.nvars());
    if lower.is_zero() {
        return Tt::zero(lower.nvars());
    }
    if upper.is_one() {
        cover.push(Cube::TAUTOLOGY);
        return Tt::one(lower.nvars());
    }
    // Find the topmost variable either bound depends on.
    let mut v = top;
    loop {
        debug_assert!(v > 0, "non-constant function must have support");
        v -= 1;
        if lower.has_var(v) || upper.has_var(v) {
            break;
        }
    }
    let l0 = lower.cofactor0(v);
    let l1 = lower.cofactor1(v);
    let u0 = upper.cofactor0(v);
    let u1 = upper.cofactor1(v);

    // Cubes that must contain literal !v.
    let start0 = cover.len();
    let f0 = isop_rec(&(&l0 & &!&u1), &u0, v, cover);
    for c in &mut cover[start0..] {
        *c = c.with_lit(v, false);
    }
    // Cubes that must contain literal v.
    let start1 = cover.len();
    let f1 = isop_rec(&(&l1 & &!&u0), &u1, v, cover);
    for c in &mut cover[start1..] {
        *c = c.with_lit(v, true);
    }
    // Remaining minterms are covered without mentioning v.
    let lnew = (&(&l0 & &!&f0) | &(&l1 & &!&f1)).clone();
    let f2 = isop_rec(&lnew, &(&u0 & &u1), v, cover);

    let tv = Tt::var(lower.nvars(), v);
    (&(&f0 & &!&tv) | &(&f1 & &tv)) | f2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_to_tt(nvars: usize, cubes: &[Cube]) -> Tt {
        let mut acc = Tt::zero(nvars);
        for c in cubes {
            acc = acc | c.to_tt(nvars);
        }
        acc
    }

    #[test]
    fn elementary_vars() {
        for n in 1..=8 {
            for i in 0..n {
                let t = Tt::var(n, i);
                assert_eq!(t.count_ones(), 1u64 << (n - 1));
                assert!(t.has_var(i));
                for j in 0..n {
                    assert_eq!(t.has_var(j), i == j);
                }
            }
        }
    }

    #[test]
    fn cofactors() {
        let n = 7;
        let a = Tt::var(n, 2);
        let b = Tt::var(n, 6);
        let f = a.clone() & b.clone();
        assert!(f.cofactor0(6).is_zero());
        assert_eq!(f.cofactor1(6), a);
        assert!(f.cofactor0(2).is_zero());
        assert_eq!(f.cofactor1(2), b);
    }

    #[test]
    fn swap_and_flip() {
        let n = 5;
        let f = Tt::var(n, 0) & !Tt::var(n, 3);
        let g = f.swap_vars(0, 3);
        assert_eq!(g, Tt::var(n, 3) & !Tt::var(n, 0));
        let h = f.flip_var(3);
        assert_eq!(h, Tt::var(n, 0) & Tt::var(n, 3));
        assert_eq!(h.flip_var(3), f);
    }

    #[test]
    fn permute_roundtrip() {
        let n = 4;
        let f = (Tt::var(n, 0) & Tt::var(n, 1)) | (Tt::var(n, 2) ^ Tt::var(n, 3));
        let perm = [2usize, 0, 3, 1];
        let mut inv = [0usize; 4];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        assert_eq!(f.permute(&perm).permute(&inv), f);
    }

    #[test]
    fn extend_preserves_function() {
        let f = Tt::from_u64(2, 0x6); // xor
        let g = f.extend_to(8);
        assert_eq!(g.nvars(), 8);
        for m in 0..256usize {
            assert_eq!(g.bit(m), (m & 1 != 0) ^ (m >> 1 & 1 != 0), "m={m}");
        }
    }

    #[test]
    fn shrink_to_support_works() {
        let n = 6;
        let f = Tt::var(n, 1) ^ Tt::var(n, 4);
        let (s, kept) = f.shrink_to_support();
        assert_eq!(kept, vec![1, 4]);
        assert_eq!(s, Tt::from_u64(2, 0x6));
    }

    #[test]
    fn isop_covers_exactly_small() {
        // All 2- and 3-variable functions.
        for n in [2usize, 3] {
            let total = 1usize << (1 << n);
            for bits in 0..total as u64 {
                let f = Tt::from_u64(n, bits);
                let cover = f.isop();
                assert_eq!(cover_to_tt(n, &cover), f, "n={n} bits={bits:#x}");
            }
        }
    }

    #[test]
    fn isop_covers_exactly_random_4_to_9() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
        for n in 4..=9usize {
            for _ in 0..40 {
                let words = (0..(if n <= 6 { 1 } else { 1 << (n - 6) }))
                    .map(|_| rng.gen::<u64>())
                    .collect();
                let f = Tt::from_words(n, words);
                let cover = f.isop();
                assert_eq!(cover_to_tt(n, &cover), f, "n={n}");
            }
        }
    }

    #[test]
    fn paper_fig3_branching_complexity() {
        // L1 = AND: off-set splits into two cubes, on-set is one cube -> 3.
        let and2 = Tt::from_u64(2, 0x8);
        assert_eq!(and2.isop().len(), 1);
        assert_eq!((!&and2).isop().len(), 2);
        assert_eq!(and2.branching_complexity(), 3);
        // L2 = XOR: two cubes each side -> 4.
        let xor2 = Tt::from_u64(2, 0x6);
        assert_eq!(xor2.isop().len(), 2);
        assert_eq!((!&xor2).isop().len(), 2);
        assert_eq!(xor2.branching_complexity(), 4);
    }

    #[test]
    fn isop_constants() {
        assert!(Tt::zero(3).isop().is_empty());
        let ones = Tt::one(3).isop();
        assert_eq!(ones.len(), 1);
        assert_eq!(ones[0], Cube::TAUTOLOGY);
    }

    #[test]
    fn cube_eval_and_tt_agree() {
        let c = Cube::TAUTOLOGY.with_lit(0, true).with_lit(2, false);
        let t = c.to_tt(3);
        for m in 0..8u32 {
            assert_eq!(c.eval(m), t.bit(m as usize), "m={m}");
        }
    }

    #[test]
    fn xor4_isop_has_eight_cubes() {
        let n = 4;
        let f = Tt::var(n, 0) ^ Tt::var(n, 1) ^ Tt::var(n, 2) ^ Tt::var(n, 3);
        assert_eq!(f.isop().len(), 8);
        assert_eq!(f.branching_complexity(), 16);
    }
}
