//! Equivalence-checking helpers used throughout the test suites.
//!
//! Synthesis passes must preserve the function of every PO. This module
//! offers a cheap probabilistic check (bit-parallel random simulation) and
//! an exact check for small input counts (exhaustive simulation). Exact
//! SAT-based miter checking lives in the integration test-suite, where the
//! solver crate is available.

use crate::aig::Aig;
use crate::sim::{output_tts, po_signatures};

/// Probabilistic equivalence: compares PO signatures over
/// `n_words * 64` common random patterns.
///
/// A `false` answer is definitive (a counterexample pattern exists); `true`
/// means no difference was observed.
///
/// # Panics
/// Panics if the graphs differ in PI or PO count.
pub fn sim_equiv(a: &Aig, b: &Aig, n_words: usize, seed: u64) -> bool {
    assert_eq!(a.num_pis(), b.num_pis(), "PI count mismatch");
    assert_eq!(a.num_pos(), b.num_pos(), "PO count mismatch");
    po_signatures(a, n_words, seed) == po_signatures(b, n_words, seed)
}

/// Exact equivalence by exhaustive simulation (up to [`crate::Tt::MAX_VARS`]
/// PIs).
///
/// # Panics
/// Panics if the graphs differ in PI/PO count or have too many PIs.
pub fn exhaustive_equiv(a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.num_pis(), b.num_pis(), "PI count mismatch");
    assert_eq!(a.num_pos(), b.num_pos(), "PO count mismatch");
    output_tts(a) == output_tts(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_structures_detected() {
        // Two different constructions of XOR.
        let mut g1 = Aig::new();
        let a = g1.add_pi();
        let b = g1.add_pi();
        let x = g1.xor(a, b);
        g1.add_po(x);

        let mut g2 = Aig::new();
        let a = g2.add_pi();
        let b = g2.add_pi();
        let o = g2.or(a, b);
        let na = g2.and(a, b);
        let x = g2.and(o, !na);
        g2.add_po(x);

        assert!(exhaustive_equiv(&g1, &g2));
        assert!(sim_equiv(&g1, &g2, 4, 11));
    }

    #[test]
    fn inequivalent_detected() {
        let mut g1 = Aig::new();
        let a = g1.add_pi();
        let b = g1.add_pi();
        let x = g1.and(a, b);
        g1.add_po(x);

        let mut g2 = Aig::new();
        let a = g2.add_pi();
        let b = g2.add_pi();
        let x = g2.or(a, b);
        g2.add_po(x);

        assert!(!exhaustive_equiv(&g1, &g2));
        assert!(!sim_equiv(&g1, &g2, 4, 11));
    }
}
