//! # `aig` — And-Inverter Graphs for Circuit-SAT preprocessing
//!
//! This crate is the structural substrate of the `circuit-sat-preproc`
//! workspace (a reproduction of *"Logic Optimization Meets SAT"*, DAC 2025):
//! a compact AIG package in the spirit of ABC's, providing
//!
//! * the [`Aig`] container with structural hashing and constant folding,
//! * [`Lit`]/[`Var`] literal types in the AIGER encoding,
//! * AIGER ASCII/binary I/O ([`aiger`]),
//! * bit-parallel simulation ([`sim`]), compiled levelized simulation
//!   programs ([`compile`]), and equivalence checks ([`check`]),
//! * multi-word truth tables with ISOP covers ([`Tt`], [`tt::Cube`]) — the
//!   source of the paper's *branching complexity* metric,
//! * k-feasible cut enumeration ([`cut`]),
//! * exact NPN canonisation of 4-variable functions ([`npn`]),
//! * MFFC computation for rewriting gain ([`mffc`]).
//!
//! ## Quick example
//!
//! ```
//! use aig::{Aig, cut::{enumerate_cuts, CutParams}};
//!
//! let mut g = Aig::new();
//! let a = g.add_pi();
//! let b = g.add_pi();
//! let x = g.xor(a, b);
//! g.add_po(x);
//!
//! let cuts = enumerate_cuts(&g, &CutParams::default());
//! assert!(!cuts[x.var() as usize].is_empty());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aig;
pub mod aiger;
pub mod check;
pub mod compile;
pub mod cut;
pub mod dot;
pub mod hash;
mod lit;
pub mod mffc;
mod node;
pub mod npn;
pub mod seq;
pub mod sim;
pub mod tt;

pub use crate::aig::{Aig, GateList};
pub use crate::compile::{OutRef, SimProgram};
pub use crate::lit::{Lit, Var};
pub use crate::node::Node;
pub use crate::tt::{Cube, Tt};
