//! k-feasible cut enumeration.
//!
//! A *cut* of node `n` is a set of nodes (the *leaves*) such that every path
//! from a PI to `n` passes through a leaf; it is k-feasible when it has at
//! most `k` leaves. Cuts are the unit of work for both DAG-aware rewriting
//! (k = 4) and LUT mapping (k = 4..6): the function of `n` expressed over
//! the cut leaves is what gets replaced or mapped.
//!
//! The enumeration is the classic bottom-up merge with priority capping and
//! dominance filtering, as in ABC's cut package.

use crate::aig::Aig;
use crate::lit::Var;
use crate::tt::Tt;

/// Maximum number of leaves a [`Cut`] can hold.
pub const MAX_CUT_SIZE: usize = 8;

/// A cut: a sorted set of at most [`MAX_CUT_SIZE`] leaf nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cut {
    leaves: [Var; MAX_CUT_SIZE],
    len: u8,
    /// 64-bit Bloom-style signature for fast subset tests.
    sig: u64,
}

impl Cut {
    /// The trivial cut `{node}`.
    pub fn trivial(node: Var) -> Cut {
        let mut leaves = [0; MAX_CUT_SIZE];
        leaves[0] = node;
        Cut {
            leaves,
            len: 1,
            sig: 1u64 << (node % 64),
        }
    }

    /// Builds a cut from a sorted, deduplicated slice of leaves.
    ///
    /// # Panics
    /// Panics if the slice is longer than [`MAX_CUT_SIZE`] or not strictly
    /// sorted.
    pub fn from_sorted(leaves_in: &[Var]) -> Cut {
        assert!(leaves_in.len() <= MAX_CUT_SIZE, "cut too large");
        assert!(
            leaves_in.windows(2).all(|w| w[0] < w[1]),
            "leaves must be strictly sorted"
        );
        let mut leaves = [0; MAX_CUT_SIZE];
        leaves[..leaves_in.len()].copy_from_slice(leaves_in);
        let sig = leaves_in.iter().fold(0u64, |s, &l| s | 1u64 << (l % 64));
        Cut {
            leaves,
            len: leaves_in.len() as u8,
            sig,
        }
    }

    /// The leaves of the cut, sorted ascending.
    #[inline]
    pub fn leaves(&self) -> &[Var] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[inline]
    pub fn size(&self) -> usize {
        self.len as usize
    }

    /// True if `self`'s leaves are a subset of `other`'s.
    pub fn subset_of(&self, other: &Cut) -> bool {
        if self.len > other.len || self.sig & !other.sig != 0 {
            return false;
        }
        // Merge-style subset check on sorted arrays.
        let (a, b) = (self.leaves(), other.leaves());
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j == b.len() || b[j] != x {
                return false;
            }
        }
        true
    }

    /// Merges two cuts; `None` if the union exceeds `k` leaves.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        debug_assert!(k <= MAX_CUT_SIZE);
        let (a, b) = (self.leaves(), other.leaves());
        let mut out = [0 as Var; MAX_CUT_SIZE];
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() || j < b.len() {
            let take_a = j == b.len() || (i < a.len() && a[i] <= b[j]);
            let v = if take_a {
                let v = a[i];
                i += 1;
                if j < b.len() && b[j] == v {
                    j += 1;
                }
                v
            } else {
                let v = b[j];
                j += 1;
                v
            };
            if n == k {
                return None;
            }
            out[n] = v;
            n += 1;
        }
        Some(Cut {
            leaves: out,
            len: n as u8,
            sig: self.sig | other.sig,
        })
    }
}

/// Parameters for cut enumeration.
#[derive(Clone, Copy, Debug)]
pub struct CutParams {
    /// Maximum leaves per cut (`2..=MAX_CUT_SIZE`).
    pub k: usize,
    /// Maximum cuts kept per node (the trivial cut is kept in addition).
    pub max_cuts: usize,
}

impl Default for CutParams {
    fn default() -> CutParams {
        CutParams { k: 4, max_cuts: 8 }
    }
}

/// All k-feasible cuts of every node.
///
/// `cuts[v]` holds the priority cuts of node `v`, each list ending with the
/// trivial cut. PIs have just their trivial cut; the constant node has none
/// (structural hashing guarantees it never feeds an AND gate).
pub fn enumerate_cuts(aig: &Aig, p: &CutParams) -> Vec<Vec<Cut>> {
    assert!((2..=MAX_CUT_SIZE).contains(&p.k), "cut size out of range");
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    for v in 1..aig.num_nodes() as Var {
        let node = aig.node(v);
        if node.is_pi() {
            cuts[v as usize].push(Cut::trivial(v));
            continue;
        }
        let f0 = node.fanin0().var();
        let f1 = node.fanin1().var();
        let mut set: Vec<Cut> = Vec::with_capacity(p.max_cuts + 1);
        // Split borrows: the fanin cut lists are at smaller indices.
        let (c0, c1) = (&cuts[f0 as usize], &cuts[f1 as usize]);
        for a in c0 {
            for b in c1 {
                let Some(m) = a.merge(b, p.k) else { continue };
                insert_filtered(&mut set, m, p.max_cuts);
            }
        }
        set.push(Cut::trivial(v));
        cuts[v as usize] = set;
    }
    cuts
}

/// Inserts `c` into `set` unless dominated; removes cuts `c` dominates;
/// keeps the set sorted by size and capped at `cap`.
fn insert_filtered(set: &mut Vec<Cut>, c: Cut, cap: usize) {
    for existing in set.iter() {
        if existing.subset_of(&c) {
            return; // dominated by a smaller-or-equal cut
        }
    }
    set.retain(|existing| !c.subset_of(existing));
    let pos = set.partition_point(|e| e.size() <= c.size());
    set.insert(pos, c);
    if set.len() > cap {
        set.truncate(cap);
    }
}

/// Truth table of `root` expressed over the given cut leaves.
///
/// Every path from a PI to `root` must pass through a leaf (true for any
/// enumerated cut). Leaf `i` is mapped to elementary variable `i`.
///
/// # Panics
/// Panics if the cone is not closed under the leaves (i.e. the leaf set is
/// not a cut of `root`) or has more than [`Tt::MAX_VARS`] leaves.
pub fn cut_function(aig: &Aig, root: Var, leaves: &[Var]) -> Tt {
    let nv = leaves.len();
    let mut memo: crate::hash::FastMap<Var, Tt> = crate::hash::FastMap::default();
    for (i, &l) in leaves.iter().enumerate() {
        memo.insert(l, Tt::var(nv, i));
    }
    // Iterative post-order evaluation.
    let mut stack = vec![(root, false)];
    while let Some((v, expanded)) = stack.pop() {
        if memo.contains_key(&v) {
            continue;
        }
        let node = aig.node(v);
        assert!(node.is_and(), "cut leaves do not cover node {v}");
        let (a, b) = (node.fanin0(), node.fanin1());
        if expanded {
            let ta = memo[&a.var()].clone();
            let tb = memo[&b.var()].clone();
            let ta = if a.is_compl() { !ta } else { ta };
            let tb = if b.is_compl() { !tb } else { tb };
            memo.insert(v, ta & tb);
        } else {
            stack.push((v, true));
            if !memo.contains_key(&a.var()) {
                stack.push((a.var(), false));
            }
            if !memo.contains_key(&b.var()) {
                stack.push((b.var(), false));
            }
        }
    }
    memo.remove(&root).expect("root evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Lit;

    fn sample_aig() -> (Aig, Lit, Lit, Lit, Lit, Lit) {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let t = g.and(a, b);
        let u = g.or(t, c);
        g.add_po(u);
        (g, a, b, c, t, u)
    }

    #[test]
    fn trivial_and_merged_cuts() {
        let (g, a, b, c, t, u) = sample_aig();
        let cuts = enumerate_cuts(&g, &CutParams { k: 4, max_cuts: 8 });
        // PI cuts are trivial.
        assert_eq!(cuts[a.var() as usize], vec![Cut::trivial(a.var())]);
        // t has cut {a, b} and trivial.
        let ct = &cuts[t.var() as usize];
        assert!(ct.iter().any(|cut| cut.leaves() == [a.var(), b.var()]));
        assert!(ct.iter().any(|cut| cut.leaves() == [t.var()]));
        // u has cut {a, b, c}.
        let cu = &cuts[u.var() as usize];
        let mut want = [a.var(), b.var(), c.var()];
        want.sort_unstable();
        assert!(cu.iter().any(|cut| cut.leaves() == want));
    }

    #[test]
    fn cut_function_matches_eval() {
        let (g, a, b, c, _t, u) = sample_aig();
        let mut leaves = [a.var(), b.var(), c.var()];
        leaves.sort_unstable();
        let f = cut_function(&g, u.var(), &leaves);
        for m in 0..8usize {
            // leaf i value = bit i of m; map to PI values.
            let val = |v: Var| -> bool {
                let idx = leaves.iter().position(|&l| l == v).unwrap();
                m >> idx & 1 != 0
            };
            let ins = [val(a.var()), val(b.var()), val(c.var())];
            let po_val = g.eval(&ins)[0] ^ u.is_compl();
            // f is the function of node u.var() (regular polarity).
            assert_eq!(f.bit(m), po_val, "m={m}");
        }
    }

    #[test]
    fn dominance_filtering() {
        let mut set = Vec::new();
        let big = Cut::from_sorted(&[1, 2, 3]);
        let small = Cut::from_sorted(&[1, 2]);
        insert_filtered(&mut set, big, 8);
        insert_filtered(&mut set, small, 8);
        // The small cut dominates and evicts the big one.
        assert_eq!(set, vec![small]);
        // Re-inserting the dominated cut is a no-op.
        insert_filtered(&mut set, big, 8);
        assert_eq!(set, vec![small]);
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut::from_sorted(&[1, 2, 3]);
        let b = Cut::from_sorted(&[4, 5]);
        assert!(a.merge(&b, 4).is_none());
        let m = a.merge(&b, 5).unwrap();
        assert_eq!(m.leaves(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn merge_dedups_common_leaves() {
        let a = Cut::from_sorted(&[1, 2, 3]);
        let b = Cut::from_sorted(&[2, 3, 4]);
        let m = a.merge(&b, 4).unwrap();
        assert_eq!(m.leaves(), &[1, 2, 3, 4]);
    }

    #[test]
    fn subset_checks() {
        let a = Cut::from_sorted(&[1, 3]);
        let b = Cut::from_sorted(&[1, 2, 3]);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(a.subset_of(&a));
    }

    #[test]
    fn cuts_cap_respected() {
        // A chain of ANDs produces many cuts; ensure the cap holds.
        let mut g = Aig::new();
        let pis = g.add_pis(10);
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.and(acc, p);
        }
        g.add_po(acc);
        let cuts = enumerate_cuts(&g, &CutParams { k: 4, max_cuts: 5 });
        for set in &cuts {
            assert!(set.len() <= 6, "cap plus trivial cut");
        }
    }
}
