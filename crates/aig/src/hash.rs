//! A small, fast, deterministic hasher for graph-sized integer keys.
//!
//! The standard library's SipHash is DoS-resistant but noticeably slow for
//! the millions of structural-hash lookups a synthesis pass performs. This
//! module provides an FxHash-style multiplicative hasher plus convenience
//! aliases. Determinism also keeps every pass reproducible run-to-run.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher: fold every word in with a rotate-xor-multiply step.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FastMap<(u32, u32), u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(17, 18)), Some(&17));
        assert_eq!(m.get(&(17, 19)), None);
    }

    #[test]
    fn deterministic() {
        let mut h1 = FastHasher::default();
        let mut h2 = FastHasher::default();
        h1.write_u64(42);
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FastHasher::default();
        h3.write_u64(43);
        assert_ne!(h1.finish(), h3.finish());
    }
}
