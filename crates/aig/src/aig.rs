//! The And-Inverter Graph container.

use crate::hash::FastMap;
use crate::lit::{Lit, Var};
use crate::node::Node;

/// An And-Inverter Graph: a DAG of two-input AND gates with complemented
/// edges, plus primary inputs and primary outputs.
///
/// Invariants maintained by construction:
///
/// * node 0 is the constant-false node;
/// * fanin node indices are strictly smaller than the gate's own index, so
///   the node array is always in topological order;
/// * AND fanins are normalised (`fanin0 <= fanin1`) and structurally hashed,
///   so no two AND nodes have the same fanin pair;
/// * trivial ANDs (`x & 0`, `x & 1`, `x & x`, `x & !x`) are folded away.
///
/// ```
/// use aig::Aig;
/// let mut g = Aig::new();
/// let a = g.add_pi();
/// let b = g.add_pi();
/// let f = g.and(a, !b);
/// g.add_po(f);
/// assert_eq!(g.num_ands(), 1);
/// assert_eq!(g.num_pis(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    pub(crate) nodes: Vec<Node>,
    pub(crate) pis: Vec<Var>,
    pub(crate) pos: Vec<Lit>,
    strash: FastMap<(u32, u32), Var>,
}

impl Aig {
    /// Creates an empty graph containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node::CONST],
            pis: Vec::new(),
            pos: Vec::new(),
            strash: FastMap::default(),
        }
    }

    /// Creates an empty graph with capacity for roughly `n` nodes.
    pub fn with_capacity(n: usize) -> Aig {
        let mut g = Aig::new();
        g.nodes.reserve(n);
        g
    }

    /// Appends a fresh primary input and returns its (positive) literal.
    pub fn add_pi(&mut self) -> Lit {
        let var = self.nodes.len() as Var;
        self.nodes.push(Node::PI);
        self.pis.push(var);
        Lit::from_var(var, false)
    }

    /// Appends `n` fresh primary inputs.
    pub fn add_pis(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.add_pi()).collect()
    }

    /// Registers `lit` as a primary output and returns its output index.
    ///
    /// # Panics
    /// Panics if `lit` refers to a node outside the graph.
    pub fn add_po(&mut self, lit: Lit) -> usize {
        assert!(
            (lit.var() as usize) < self.nodes.len(),
            "PO literal out of range"
        );
        self.pos.push(lit);
        self.pos.len() - 1
    }

    /// Replaces the driver of output `idx`.
    ///
    /// # Panics
    /// Panics if `idx` or the literal is out of range.
    pub fn set_po(&mut self, idx: usize, lit: Lit) {
        assert!(
            (lit.var() as usize) < self.nodes.len(),
            "PO literal out of range"
        );
        self.pos[idx] = lit;
    }

    /// The structurally-hashed AND of two literals, folding constants and
    /// trivial cases.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (f0, f1) = if a <= b { (a, b) } else { (b, a) };
        let key = (f0.raw(), f1.raw());
        if let Some(&var) = self.strash.get(&key) {
            return Lit::from_var(var, false);
        }
        let var = self.nodes.len() as Var;
        self.nodes.push(Node::and(f0, f1));
        self.strash.insert(key, var);
        Lit::from_var(var, false)
    }

    /// The OR of two literals (`!( !a & !b )`).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// The XOR of two literals, built from two ANDs.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(a, !b);
        let t1 = self.and(!a, b);
        self.or(t0, t1)
    }

    /// The XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// The multiplexer `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// AND over an arbitrary set of literals (balanced tree; `TRUE` if empty).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_tree(lits, Lit::TRUE, Aig::and)
    }

    /// OR over an arbitrary set of literals (balanced tree; `FALSE` if empty).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_tree(lits, Lit::FALSE, Aig::or)
    }

    /// XOR over an arbitrary set of literals (balanced tree; `FALSE` if empty).
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_tree(lits, Lit::FALSE, Aig::xor)
    }

    fn reduce_tree(&mut self, lits: &[Lit], empty: Lit, op: fn(&mut Aig, Lit, Lit) -> Lit) -> Lit {
        match lits {
            [] => empty,
            [l] => *l,
            _ => {
                let mut layer = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            op(self, pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Looks up an existing AND node without creating one.
    ///
    /// Returns `Some(lit)` if the (normalised, folded) AND of `a` and `b`
    /// already exists structurally; `None` otherwise.
    pub fn find_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if b == Lit::TRUE || a == b {
            return Some(a);
        }
        let (f0, f1) = if a <= b { (a, b) } else { (b, a) };
        self.strash
            .get(&(f0.raw(), f1.raw()))
            .map(|&v| Lit::from_var(v, false))
    }

    /// Total number of nodes (constant + PIs + ANDs).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_pis(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Number of AND gates.
    #[inline]
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.pis.len()
    }

    /// The node at index `var`.
    #[inline]
    pub fn node(&self, var: Var) -> &Node {
        &self.nodes[var as usize]
    }

    /// Literal of the `i`-th primary input.
    #[inline]
    pub fn pi_lit(&self, i: usize) -> Lit {
        Lit::from_var(self.pis[i], false)
    }

    /// Node indices of the primary inputs, in creation order.
    #[inline]
    pub fn pis(&self) -> &[Var] {
        &self.pis
    }

    /// Primary-output literals, in creation order.
    #[inline]
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// If `var` is a primary input, its input index.
    pub fn pi_index(&self, var: Var) -> Option<usize> {
        if self.node(var).is_pi() {
            // PIs are appended in order, so binary search works.
            self.pis.binary_search(&var).ok()
        } else {
            None
        }
    }

    /// Iterates over all node indices in topological order (constant first).
    pub fn iter_vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.nodes.len() as Var).filter(move |_| true)
    }

    /// Iterates over the indices of AND nodes in topological order.
    pub fn iter_ands(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.nodes.len() as Var).filter(move |&v| self.nodes[v as usize].is_and())
    }

    /// Logic level of every node (PIs and constant at level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.nodes.len()];
        for v in 1..self.nodes.len() {
            let n = &self.nodes[v];
            if n.is_and() {
                lv[v] = 1 + lv[n.fanin0.var() as usize].max(lv[n.fanin1.var() as usize]);
            }
        }
        lv
    }

    /// Depth of the graph: the maximum level over PO drivers (0 if no POs).
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.pos
            .iter()
            .map(|l| lv[l.var() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Number of fanouts of every node, counting each PO as one fanout.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fc = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            if n.is_and() {
                fc[n.fanin0.var() as usize] += 1;
                fc[n.fanin1.var() as usize] += 1;
            }
        }
        for po in &self.pos {
            fc[po.var() as usize] += 1;
        }
        fc
    }

    /// Explicit fanout lists (AND-gate consumers only, no POs).
    pub fn fanout_lists(&self) -> Vec<Vec<Var>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for v in self.iter_ands() {
            let n = &self.nodes[v as usize];
            out[n.fanin0.var() as usize].push(v);
            if n.fanin1.var() != n.fanin0.var() {
                out[n.fanin1.var() as usize].push(v);
            }
        }
        out
    }

    /// Marks every node reachable from the POs (transitive fanin).
    pub fn reachable_from_pos(&self) -> Vec<bool> {
        let mut mark = vec![false; self.nodes.len()];
        mark[0] = true;
        let mut stack: Vec<Var> = self.pos.iter().map(|l| l.var()).collect();
        while let Some(v) = stack.pop() {
            if mark[v as usize] {
                continue;
            }
            mark[v as usize] = true;
            let n = &self.nodes[v as usize];
            if n.is_and() {
                stack.push(n.fanin0.var());
                stack.push(n.fanin1.var());
            }
        }
        mark
    }

    /// Rebuilds the graph keeping only nodes reachable from the POs.
    ///
    /// All PIs are kept (in order) even if dangling, so instance I/O shape is
    /// preserved. Returns the compacted graph and a map from old node index
    /// to new literal (entries for dropped nodes are `None`).
    pub fn compact(&self) -> (Aig, Vec<Option<Lit>>) {
        let mark = self.reachable_from_pos();
        let mut new = Aig::with_capacity(self.nodes.len());
        let mut map: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        map[0] = Some(Lit::FALSE);
        for &pi in &self.pis {
            map[pi as usize] = Some(new.add_pi());
        }
        for v in self.iter_ands() {
            if !mark[v as usize] {
                continue;
            }
            let n = &self.nodes[v as usize];
            let f0 = map[n.fanin0.var() as usize].expect("fanin of reachable node reachable");
            let f1 = map[n.fanin1.var() as usize].expect("fanin of reachable node reachable");
            map[v as usize] = Some(new.and(
                f0.xor_compl(n.fanin0.is_compl()),
                f1.xor_compl(n.fanin1.is_compl()),
            ));
        }
        for &po in &self.pos {
            let l = map[po.var() as usize].expect("PO driver reachable");
            new.add_po(l.xor_compl(po.is_compl()));
        }
        (new, map)
    }

    /// True if two graphs are structurally identical (same node array, PI
    /// order, and PO literals). Used by synthesis drivers to detect fixed
    /// points of deterministic passes.
    pub fn same_structure(&self, other: &Aig) -> bool {
        self.nodes == other.nodes && self.pis == other.pis && self.pos == other.pos
    }

    /// Extracts the **normalized query cone**: the PO-reachable subgraph
    /// rebuilt with dangling PIs dropped, kept PIs in their original
    /// relative order, and ANDs in the original topological order.
    ///
    /// This is the canonical form the serving layer keys its verdict cache
    /// on: two queries whose logic cones are structurally identical
    /// normalize to [`Aig::same_structure`]-equal graphs (and therefore
    /// equal [`Aig::structural_hash`] keys) even when they arrive embedded
    /// in different instances or padded with unused inputs.
    ///
    /// Returns the cone and a map from cone PI index to the original PI
    /// index, so witnesses found on the cone can be expanded back to the
    /// full input space.
    pub fn normalized_cone(&self) -> (Aig, Vec<usize>) {
        let mark = self.reachable_from_pos();
        let mut cone = Aig::with_capacity(self.nodes.len());
        let mut map: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        map[0] = Some(Lit::FALSE);
        let mut pi_map = Vec::new();
        for (i, &pi) in self.pis.iter().enumerate() {
            if mark[pi as usize] {
                map[pi as usize] = Some(cone.add_pi());
                pi_map.push(i);
            }
        }
        for v in self.iter_ands() {
            if !mark[v as usize] {
                continue;
            }
            let n = &self.nodes[v as usize];
            let f0 = map[n.fanin0.var() as usize].expect("fanin of reachable node reachable");
            let f1 = map[n.fanin1.var() as usize].expect("fanin of reachable node reachable");
            map[v as usize] = Some(cone.and(
                f0.xor_compl(n.fanin0.is_compl()),
                f1.xor_compl(n.fanin1.is_compl()),
            ));
        }
        for &po in &self.pos {
            let l = map[po.var() as usize].expect("PO driver reachable");
            cone.add_po(l.xor_compl(po.is_compl()));
        }
        (cone, pi_map)
    }

    /// Deterministic structural hash of the graph: a function of the PI
    /// count, the node array (fanin literals in index order), and the PO
    /// literals — exactly the fields [`Aig::same_structure`] compares, so
    /// structurally identical graphs always hash equal. Collisions are
    /// possible (it is a 64-bit digest); cache users must confirm a hit
    /// with `same_structure` before trusting it.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::Hasher;
        let lit_key = |l: Lit| ((l.var() as u64) << 1) | l.is_compl() as u64;
        let mut h = crate::hash::FastHasher::default();
        h.write_u64(self.pis.len() as u64);
        h.write_u64(self.nodes.len() as u64);
        for v in self.iter_vars() {
            let n = &self.nodes[v as usize];
            if n.is_and() {
                h.write_u64((lit_key(n.fanin0) << 32) | lit_key(n.fanin1));
            } else {
                // PI/constant marker: distinguishes a leaf at index v from
                // an AND whose fanin words happen to collide.
                h.write_u64(u64::MAX);
            }
        }
        for &po in &self.pos {
            h.write_u64(lit_key(po));
        }
        h.finish()
    }

    /// Evaluates the graph on one Boolean input assignment.
    ///
    /// Returns the value of every PO.
    ///
    /// # Panics
    /// Panics if `inputs.len() != self.num_pis()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_pis(), "wrong number of input values");
        let mut val = vec![false; self.nodes.len()];
        for (i, &pi) in self.pis.iter().enumerate() {
            val[pi as usize] = inputs[i];
        }
        for v in self.iter_ands() {
            let n = &self.nodes[v as usize];
            let a = val[n.fanin0.var() as usize] ^ n.fanin0.is_compl();
            let b = val[n.fanin1.var() as usize] ^ n.fanin1.is_compl();
            val[v as usize] = a & b;
        }
        self.pos
            .iter()
            .map(|l| val[l.var() as usize] ^ l.is_compl())
            .collect()
    }

    /// Value of a single literal under a full node-value vector
    /// (as produced by internal evaluation loops).
    #[inline]
    pub fn lit_value(values: &[bool], lit: Lit) -> bool {
        values[lit.var() as usize] ^ lit.is_compl()
    }
}

/// A small combinational structure expressed over abstract leaves.
///
/// `GateList` is the exchange format between resynthesis engines (rewrite,
/// refactor, resub, the NPN library) and graph reconstruction: a sequence of
/// AND gates whose operands refer either to one of `n_leaves` leaves or to an
/// earlier gate in the list, plus a root literal.
///
/// Signal encoding: signal `2*i + c` refers to leaf `i` (if `i < n_leaves`)
/// or gate `i - n_leaves`, complemented when `c = 1`. Signal `!0`/`!1`-style
/// constants use `u32::MAX - 1` (false) and `u32::MAX` (true).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateList {
    /// Number of leaf operands the structure expects.
    pub n_leaves: usize,
    /// AND gates as pairs of signal encodings.
    pub gates: Vec<(u32, u32)>,
    /// Root signal encoding.
    pub root: u32,
}

impl GateList {
    /// Signal encoding of constant false.
    pub const FALSE: u32 = u32::MAX - 1;
    /// Signal encoding of constant true.
    pub const TRUE: u32 = u32::MAX;

    /// Signal referring to leaf `i` (optionally complemented).
    pub fn leaf(i: usize, compl: bool) -> u32 {
        (i as u32) << 1 | compl as u32
    }

    /// Signal referring to gate `g` (optionally complemented); `g` counts
    /// from 0 within `gates`, after the leaves.
    pub fn gate(&self, g: usize, compl: bool) -> u32 {
        ((self.n_leaves + g) as u32) << 1 | compl as u32
    }

    /// A structure computing constant false.
    pub fn constant(value: bool) -> GateList {
        GateList {
            n_leaves: 0,
            gates: Vec::new(),
            root: if value { Self::TRUE } else { Self::FALSE },
        }
    }

    /// Number of AND gates in the structure.
    pub fn size(&self) -> usize {
        self.gates.len()
    }
}

impl Aig {
    /// Instantiates a [`GateList`] over concrete leaf literals, returning the
    /// literal of the structure's root. Structural hashing applies, so gates
    /// already present in the graph are reused for free.
    ///
    /// # Panics
    /// Panics if `leaves.len() != gl.n_leaves` or a gate refers forward.
    pub fn build_gatelist(&mut self, leaves: &[Lit], gl: &GateList) -> Lit {
        assert_eq!(leaves.len(), gl.n_leaves, "leaf count mismatch");
        let mut sigs: Vec<Lit> = Vec::with_capacity(gl.n_leaves + gl.gates.len());
        sigs.extend_from_slice(leaves);
        let decode = |sigs: &[Lit], s: u32| -> Lit {
            match s {
                GateList::FALSE => Lit::FALSE,
                GateList::TRUE => Lit::TRUE,
                _ => {
                    let idx = (s >> 1) as usize;
                    assert!(idx < sigs.len(), "gatelist refers forward");
                    sigs[idx].xor_compl(s & 1 != 0)
                }
            }
        };
        for &(a, b) in &gl.gates {
            let la = decode(&sigs, a);
            let lb = decode(&sigs, b);
            let l = self.and(la, lb);
            sigs.push(l);
        }
        decode(&sigs, gl.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strash_dedups() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn trivial_folding() {
        let mut g = Aig::new();
        let a = g.add_pi();
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn eval_gates() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        let m = g.mux(a, b, !b);
        g.add_po(x);
        g.add_po(m);
        for (ia, ib) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = g.eval(&[ia, ib]);
            assert_eq!(out[0], ia ^ ib, "xor({ia},{ib})");
            assert_eq!(out[1], if ia { ib } else { !ib }, "mux({ia},{ib})");
        }
    }

    #[test]
    fn many_ops_match_folds() {
        let mut g = Aig::new();
        let ls = g.add_pis(5);
        let and = g.and_many(&ls);
        let or = g.or_many(&ls);
        let xor = g.xor_many(&ls);
        g.add_po(and);
        g.add_po(or);
        g.add_po(xor);
        for pat in 0..32u32 {
            let ins: Vec<bool> = (0..5).map(|i| pat >> i & 1 != 0).collect();
            let out = g.eval(&ins);
            assert_eq!(out[0], ins.iter().all(|&x| x));
            assert_eq!(out[1], ins.iter().any(|&x| x));
            assert_eq!(out[2], ins.iter().filter(|&&x| x).count() % 2 == 1);
        }
    }

    #[test]
    fn empty_reduce_trees() {
        let mut g = Aig::new();
        assert_eq!(g.and_many(&[]), Lit::TRUE);
        assert_eq!(g.or_many(&[]), Lit::FALSE);
        assert_eq!(g.xor_many(&[]), Lit::FALSE);
    }

    #[test]
    fn levels_and_depth() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let t = g.and(a, b);
        let u = g.and(t, c);
        g.add_po(u);
        let lv = g.levels();
        assert_eq!(lv[t.var() as usize], 1);
        assert_eq!(lv[u.var() as usize], 2);
        assert_eq!(g.depth(), 2);
    }

    #[test]
    fn compact_drops_dead_logic() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let live = g.and(a, b);
        let _dead = g.or(a, b);
        g.add_po(live);
        assert_eq!(g.num_ands(), 2);
        let (c, map) = g.compact();
        assert_eq!(c.num_ands(), 1);
        assert_eq!(c.num_pis(), 2);
        assert!(map[_dead.var() as usize].is_none());
        // Behaviour is preserved.
        for (ia, ib) in [(false, false), (true, true), (true, false)] {
            assert_eq!(g.eval(&[ia, ib]), c.eval(&[ia, ib]));
        }
    }

    #[test]
    fn fanout_counts_include_pos() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        g.add_po(x);
        let fc = g.fanout_counts();
        assert_eq!(fc[x.var() as usize], 2);
        assert_eq!(fc[a.var() as usize], 1);
    }

    #[test]
    fn gatelist_builds_xor() {
        // XOR as a gatelist: g0 = a & !b, g1 = !a & b, root = !( !g0 & !g1 ).
        let gl = GateList {
            n_leaves: 2,
            gates: vec![
                (GateList::leaf(0, false), GateList::leaf(1, true)),
                (GateList::leaf(0, true), GateList::leaf(1, false)),
                (2 << 1 | 1, 3 << 1 | 1), // !g0 & !g1
            ],
            root: 4 << 1 | 1, // !(that)
        };
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.build_gatelist(&[a, b], &gl);
        let x2 = g.xor(a, b);
        assert_eq!(x, x2, "structural hashing should unify with xor()");
    }

    #[test]
    fn gatelist_constants() {
        let mut g = Aig::new();
        let t = g.build_gatelist(&[], &GateList::constant(true));
        let f = g.build_gatelist(&[], &GateList::constant(false));
        assert_eq!(t, Lit::TRUE);
        assert_eq!(f, Lit::FALSE);
    }

    #[test]
    fn find_and_matches_and() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        assert_eq!(g.find_and(a, b), None);
        let x = g.and(a, b);
        assert_eq!(g.find_and(b, a), Some(x));
        assert_eq!(g.find_and(a, Lit::TRUE), Some(a));
        assert_eq!(g.find_and(a, !a), Some(Lit::FALSE));
    }

    #[test]
    fn pi_index_lookup() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        assert_eq!(g.pi_index(a.var()), Some(0));
        assert_eq!(g.pi_index(b.var()), Some(1));
        assert_eq!(g.pi_index(x.var()), None);
    }

    #[test]
    fn normalized_cone_drops_dangling_pis_and_maps_back() {
        // g: 4 PIs, only PIs 1 and 3 feed the PO.
        let mut g = Aig::new();
        let pis = g.add_pis(4);
        let dead = g.and(pis[0], pis[2]); // unreachable from the PO
        let _ = dead;
        let f = g.and(pis[1], !pis[3]);
        g.add_po(f);
        let (cone, pi_map) = g.normalized_cone();
        assert_eq!(cone.num_pis(), 2);
        assert_eq!(pi_map, vec![1, 3]);
        assert_eq!(cone.num_ands(), 1);
        assert_eq!(cone.num_pos(), 1);
        // Same function over the kept inputs.
        for p in 0..4usize {
            let cone_ins = vec![p & 1 != 0, p & 2 != 0];
            let mut full_ins = vec![false; 4];
            full_ins[1] = cone_ins[0];
            full_ins[3] = cone_ins[1];
            assert_eq!(cone.eval(&cone_ins), g.eval(&full_ins));
        }
    }

    #[test]
    fn structural_hash_tracks_same_structure() {
        let build = |compl: bool| {
            let mut g = Aig::new();
            let a = g.add_pi();
            let b = g.add_pi();
            let f = g.and(a, b.xor_compl(compl));
            g.add_po(f);
            g
        };
        let g1 = build(false);
        let g2 = build(false);
        let g3 = build(true);
        assert!(g1.same_structure(&g2));
        assert_eq!(g1.structural_hash(), g2.structural_hash());
        assert!(!g1.same_structure(&g3));
        assert_ne!(g1.structural_hash(), g3.structural_hash());
        // Embedding the same cone among dangling PIs must not change the
        // normalized key.
        let mut padded = Aig::new();
        let _spare = padded.add_pi();
        let a = padded.add_pi();
        let b = padded.add_pi();
        let f = padded.and(a, b);
        padded.add_po(f);
        let (cone, pi_map) = padded.normalized_cone();
        assert!(cone.same_structure(&g1.normalized_cone().0));
        assert_eq!(
            cone.structural_hash(),
            g1.normalized_cone().0.structural_hash()
        );
        assert_eq!(pi_map, vec![1, 2]);
    }
}
