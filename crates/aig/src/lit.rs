//! Literals and variables.
//!
//! An AIG literal packs a node index ("variable") and a complement flag into
//! a single `u32`, following the AIGER convention: `lit = 2 * var + compl`.
//! Literal `0` is the constant **false**, literal `1` the constant **true**.

use std::fmt;
use std::ops::Not;

/// Index of an AIG node (primary input, AND gate, or the constant node 0).
pub type Var = u32;

/// A possibly-complemented reference to an AIG node.
///
/// `Lit` is a thin wrapper over the AIGER integer encoding: the low bit is
/// the complement flag, the remaining bits are the node index. The constant
/// node always has index 0, so [`Lit::FALSE`] is `0` and [`Lit::TRUE`] is `1`.
///
/// ```
/// use aig::Lit;
/// let a = Lit::from_var(3, false);
/// assert_eq!(a.var(), 3);
/// assert!(!a.is_compl());
/// assert_eq!((!a).var(), 3);
/// assert!((!a).is_compl());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The constant-false literal (node 0, non-complemented).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0, complemented).
    pub const TRUE: Lit = Lit(1);
    /// Sentinel used internally for "no literal" (e.g. PI fanin slots).
    pub(crate) const NONE: Lit = Lit(u32::MAX);

    /// Builds a literal from a node index and a complement flag.
    #[inline]
    pub fn from_var(var: Var, compl: bool) -> Lit {
        debug_assert!(var < u32::MAX / 2);
        Lit(var << 1 | compl as u32)
    }

    /// Builds a literal from its raw AIGER encoding (`2*var + compl`).
    #[inline]
    pub fn from_raw(raw: u32) -> Lit {
        Lit(raw)
    }

    /// The raw AIGER encoding of this literal.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The node index this literal refers to.
    #[inline]
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    #[inline]
    pub fn is_compl(self) -> bool {
        self.0 & 1 != 0
    }

    /// The non-complemented literal of the same node.
    #[inline]
    pub fn regular(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// This literal with its complement flag set to `compl`.
    #[inline]
    pub fn with_compl(self, compl: bool) -> Lit {
        Lit(self.0 & !1 | compl as u32)
    }

    /// XORs the complement flag with `compl` (no-op when `compl` is false).
    #[inline]
    pub fn xor_compl(self, compl: bool) -> Lit {
        Lit(self.0 ^ compl as u32)
    }

    /// True if this is one of the two constant literals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.var() == 0
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::NONE {
            return write!(f, "Lit(NONE)");
        }
        write!(
            f,
            "{}{}",
            if self.is_compl() { "!" } else { "" },
            self.var()
        )
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_var_compl() {
        for var in [0u32, 1, 2, 77, 1 << 20] {
            for compl in [false, true] {
                let l = Lit::from_var(var, compl);
                assert_eq!(l.var(), var);
                assert_eq!(l.is_compl(), compl);
                assert_eq!(Lit::from_raw(l.raw()), l);
            }
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Lit::FALSE.raw(), 0);
        assert_eq!(Lit::TRUE.raw(), 1);
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert!(Lit::FALSE.is_const() && Lit::TRUE.is_const());
        assert!(!Lit::from_var(1, false).is_const());
    }

    #[test]
    fn complement_ops() {
        let l = Lit::from_var(5, false);
        assert_eq!(!!l, l);
        assert_eq!(l.xor_compl(true), !l);
        assert_eq!(l.xor_compl(false), l);
        assert_eq!((!l).regular(), l);
        assert_eq!(l.with_compl(true), !l);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Lit::from_var(4, true)), "!4");
        assert_eq!(format!("{}", Lit::from_var(4, false)), "4");
    }
}
