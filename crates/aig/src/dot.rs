//! GraphViz (`dot`) export for debugging and documentation.
//!
//! Renders the AIG as a DAG: boxes for primary inputs, circles for AND
//! gates, double circles for primary outputs; complemented edges are
//! dashed (the classic AIG drawing convention).

use crate::aig::Aig;
use std::fmt::Write as _;

/// Renders the graph in GraphViz `dot` syntax.
///
/// Only logic reachable from the POs is drawn.
///
/// ```
/// use aig::Aig;
///
/// let mut g = Aig::new();
/// let a = g.add_pi();
/// let b = g.add_pi();
/// let x = g.xor(a, b);
/// g.add_po(x);
/// let dot = aig::dot::to_dot(&g);
/// assert!(dot.starts_with("digraph aig {"));
/// assert!(dot.contains("style=dashed"));
/// ```
pub fn to_dot(aig: &Aig) -> String {
    let reach = aig.reachable_from_pos();
    let mut out = String::from("digraph aig {\n  rankdir=BT;\n");
    // Constant node, if used.
    let const_used = aig.pos().iter().any(|l| l.is_const())
        || aig
            .iter_ands()
            .filter(|&v| reach[v as usize])
            .any(|v| aig.node(v).fanin0().is_const() || aig.node(v).fanin1().is_const());
    if const_used {
        out.push_str("  n0 [label=\"0\", shape=plaintext];\n");
    }
    for (i, &pi) in aig.pis().iter().enumerate() {
        if reach[pi as usize] {
            let _ = writeln!(out, "  n{pi} [label=\"x{i}\", shape=box];");
        }
    }
    for v in aig.iter_ands() {
        if !reach[v as usize] {
            continue;
        }
        let _ = writeln!(out, "  n{v} [label=\"∧\", shape=circle];");
        let n = aig.node(v);
        for fanin in [n.fanin0(), n.fanin1()] {
            let style = if fanin.is_compl() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{} -> n{v}{style};", fanin.var());
        }
    }
    for (i, &po) in aig.pos().iter().enumerate() {
        let _ = writeln!(out, "  o{i} [label=\"y{i}\", shape=doublecircle];");
        let style = if po.is_compl() { " [style=dashed]" } else { "" };
        let _ = writeln!(out, "  n{} -> o{i}{style};", po.var());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    #[test]
    fn xor_drawing_has_expected_shape() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let dot = to_dot(&g);
        assert_eq!(dot.matches("shape=box").count(), 2, "two PIs");
        assert_eq!(dot.matches("shape=circle").count(), 3, "XOR = 3 ANDs");
        assert_eq!(dot.matches("shape=doublecircle").count(), 1, "one PO");
        assert!(dot.contains("style=dashed"), "XOR has complemented edges");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn unreachable_logic_is_not_drawn() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let used = g.and(a, b);
        let _dangling = g.or(a, b);
        g.add_po(used);
        let dot = to_dot(&g);
        assert_eq!(dot.matches("shape=circle").count(), 1, "only the used AND");
    }

    #[test]
    fn constant_pos_reference_node_zero() {
        let mut g = Aig::new();
        g.add_po(crate::Lit::TRUE);
        let dot = to_dot(&g);
        assert!(dot.contains("n0 [label=\"0\""));
        assert!(dot.contains("n0 -> o0 [style=dashed]"), "TRUE is ¬const0");
    }
}
