//! AIG node representation.

use crate::lit::Lit;

/// A single AIG node.
///
/// Three kinds exist, distinguished without a tag byte to keep the node at
/// eight bytes:
///
/// * the **constant** node (index 0),
/// * **primary inputs**, whose fanin slots hold a sentinel,
/// * **AND gates**, whose fanin literals are stored with `fanin0 <= fanin1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    pub(crate) fanin0: Lit,
    pub(crate) fanin1: Lit,
}

impl Node {
    pub(crate) const CONST: Node = Node {
        fanin0: Lit::NONE,
        fanin1: Lit::FALSE,
    };
    pub(crate) const PI: Node = Node {
        fanin0: Lit::NONE,
        fanin1: Lit::TRUE,
    };

    #[inline]
    pub(crate) fn and(f0: Lit, f1: Lit) -> Node {
        debug_assert!(f0 <= f1);
        Node {
            fanin0: f0,
            fanin1: f1,
        }
    }

    /// True if this node is an AND gate.
    #[inline]
    pub fn is_and(&self) -> bool {
        self.fanin0 != Lit::NONE
    }

    /// True if this node is a primary input.
    #[inline]
    pub fn is_pi(&self) -> bool {
        self.fanin0 == Lit::NONE && self.fanin1 == Lit::TRUE
    }

    /// True if this node is the constant node.
    #[inline]
    pub fn is_const(&self) -> bool {
        self.fanin0 == Lit::NONE && self.fanin1 == Lit::FALSE
    }

    /// First fanin literal.
    ///
    /// # Panics
    /// Panics in debug builds if the node is not an AND gate.
    #[inline]
    pub fn fanin0(&self) -> Lit {
        debug_assert!(self.is_and());
        self.fanin0
    }

    /// Second fanin literal.
    ///
    /// # Panics
    /// Panics in debug builds if the node is not an AND gate.
    #[inline]
    pub fn fanin1(&self) -> Lit {
        debug_assert!(self.is_and());
        self.fanin1
    }

    /// Both fanin literals of an AND gate.
    #[inline]
    pub fn fanins(&self) -> [Lit; 2] {
        debug_assert!(self.is_and());
        [self.fanin0, self.fanin1]
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_const() {
            write!(f, "Const0")
        } else if self.is_pi() {
            write!(f, "Pi")
        } else {
            write!(f, "And({:?}, {:?})", self.fanin0, self.fanin1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let c = Node::CONST;
        let p = Node::PI;
        let a = Node::and(Lit::from_var(1, false), Lit::from_var(2, true));
        assert!(c.is_const() && !c.is_pi() && !c.is_and());
        assert!(p.is_pi() && !p.is_const() && !p.is_and());
        assert!(a.is_and() && !a.is_pi() && !a.is_const());
        assert_eq!(
            a.fanins(),
            [Lit::from_var(1, false), Lit::from_var(2, true)]
        );
    }

    #[test]
    fn node_is_small() {
        assert_eq!(std::mem::size_of::<Node>(), 8);
    }
}
