//! Sequential circuits via time-frame expansion — the paper's stated
//! future work ("extending this approach to sequential circuits").
//!
//! A [`SeqAig`] is a combinational core plus a latch boundary, using the
//! AIGER convention: the core's primary-input list is
//! `[real PIs..., latch outputs...]` and its primary-output list is
//! `[real POs..., latch next-state inputs...]`. Latches initialise to 0.
//!
//! [`SeqAig::unroll`] performs bounded time-frame expansion, turning a
//! k-step property check into a *combinational* CSAT instance that flows
//! through the preprocessing framework unchanged — exactly how bounded
//! model checking feeds sequential problems to a combinational engine.

use crate::aig::Aig;
use crate::compile::SimProgram;
use crate::lit::Lit;

/// A sequential AIG: combinational core + latch boundary.
#[derive(Clone, Debug)]
pub struct SeqAig {
    comb: Aig,
    num_pis: usize,
    num_latches: usize,
}

impl SeqAig {
    /// Wraps a combinational core.
    ///
    /// The core must have `num_pis + num_latches` primary inputs (real
    /// inputs first, then latch outputs) and at least `num_latches`
    /// primary outputs (real outputs first, then latch next-state
    /// functions last).
    ///
    /// # Panics
    /// Panics if the core's I/O shape does not match.
    pub fn new(comb: Aig, num_pis: usize, num_latches: usize) -> SeqAig {
        assert_eq!(
            comb.num_pis(),
            num_pis + num_latches,
            "core PIs must be real PIs then latch outputs"
        );
        assert!(
            comb.num_pos() >= num_latches,
            "core POs must end with {num_latches} latch next-state functions"
        );
        SeqAig {
            comb,
            num_pis,
            num_latches,
        }
    }

    /// The combinational core.
    pub fn comb(&self) -> &Aig {
        &self.comb
    }

    /// Real primary inputs per frame.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Latch count.
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Real primary outputs per frame.
    pub fn num_pos(&self) -> usize {
        self.comb.num_pos() - self.num_latches
    }

    /// Simulates the machine from the all-zero initial state, one input
    /// vector per step; returns the real-output vector of each step.
    ///
    /// Thin wrapper over [`SeqAig::simulate_words`]: each step runs one
    /// compiled program pass in bit 0 of the simulation words, instead of
    /// the old per-frame `Vec<bool>` clone/extend/eval storm.
    ///
    /// # Panics
    /// Panics if any input vector has the wrong width.
    pub fn simulate(&self, inputs: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let word_ins: Vec<Vec<u64>> = inputs
            .iter()
            .map(|ins| {
                assert_eq!(ins.len(), self.num_pis, "one value per real PI required");
                ins.iter().map(|&b| b as u64).collect()
            })
            .collect();
        self.simulate_words(&word_ins)
            .into_iter()
            .map(|ws| ws.into_iter().map(|w| w & 1 != 0).collect())
            .collect()
    }

    /// Word-level simulation from the all-zero initial state: each input
    /// word carries 64 independent traces in parallel (bit `i` of every
    /// word belongs to trace `i`), one vector of `num_pis` words per
    /// step. Returns the real-output words of each step.
    ///
    /// Built on the compiled stepper ([`SeqAig::stepper`]): the core is
    /// compiled once and the whole run is allocation-light — one program
    /// pass per frame over word-packed latch state.
    ///
    /// # Panics
    /// Panics if any input vector has the wrong width.
    pub fn simulate_words(&self, inputs: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let mut stepper = self.stepper();
        inputs
            .iter()
            .map(|ins| stepper.step_words(ins).to_vec())
            .collect()
    }

    /// Compiles the core into a reusable sequential stepper.
    pub fn stepper(&self) -> SeqStepper {
        SeqStepper::new(self)
    }

    /// Time-frame expansion over `k` frames.
    ///
    /// The result is a combinational AIG with `k * num_pis` primary inputs
    /// (frame-major) and `k * num_pos` primary outputs (frame-major);
    /// frame 0 sees the all-zero initial state, frame `t+1` sees frame
    /// `t`'s next-state functions.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn unroll(&self, k: usize) -> Aig {
        assert!(k > 0, "need at least one frame");
        let mut out = Aig::with_capacity(k * self.comb.num_nodes());
        // Frame-major real PIs.
        let frame_pis: Vec<Vec<Lit>> = (0..k).map(|_| out.add_pis(self.num_pis)).collect();
        let mut state: Vec<Lit> = vec![Lit::FALSE; self.num_latches];
        let mut outputs = Vec::with_capacity(k * self.num_pos());
        for pis in frame_pis.iter() {
            let mut map: Vec<Lit> = vec![Lit::FALSE; self.comb.num_nodes()];
            for (i, &pi_var) in self.comb.pis().iter().enumerate() {
                map[pi_var as usize] = if i < self.num_pis {
                    pis[i]
                } else {
                    state[i - self.num_pis]
                };
            }
            for v in self.comb.iter_ands() {
                let n = self.comb.node(v);
                let a = map[n.fanin0().var() as usize].xor_compl(n.fanin0().is_compl());
                let b = map[n.fanin1().var() as usize].xor_compl(n.fanin1().is_compl());
                map[v as usize] = out.and(a, b);
            }
            let resolve = |map: &[Lit], l: Lit| map[l.var() as usize].xor_compl(l.is_compl());
            for po in &self.comb.pos()[..self.num_pos()] {
                outputs.push(resolve(&map, *po));
            }
            state = self.comb.pos()[self.num_pos()..]
                .iter()
                .map(|&po| resolve(&map, po))
                .collect();
        }
        for o in outputs {
            out.add_po(o);
        }
        out
    }

    /// Bounded-model-checking instance: one PO that fires iff *any* real
    /// PO of *any* of the `k` frames fires — a single-output combinational
    /// CSAT miter ready for the preprocessing framework.
    ///
    /// # Panics
    /// Panics if `k == 0` or the machine has no real POs.
    pub fn bmc_instance(&self, k: usize) -> Aig {
        assert!(
            self.num_pos() > 0,
            "property check needs at least one real PO"
        );
        let mut unrolled = self.unroll(k);
        let pos: Vec<Lit> = unrolled.pos().to_vec();
        let any = unrolled.or_many(&pos);
        // Rebuild with a single PO in one pass over the unrolled graph.
        let mut single = Aig::with_capacity(unrolled.num_nodes());
        let mut map: Vec<Lit> = vec![Lit::FALSE; unrolled.num_nodes()];
        for &pi in unrolled.pis() {
            map[pi as usize] = single.add_pi();
        }
        for v in unrolled.iter_ands() {
            let n = unrolled.node(v);
            let a = map[n.fanin0().var() as usize].xor_compl(n.fanin0().is_compl());
            let b = map[n.fanin1().var() as usize].xor_compl(n.fanin1().is_compl());
            map[v as usize] = single.and(a, b);
        }
        single.add_po(map[any.var() as usize].xor_compl(any.is_compl()));
        single.compact().0
    }
}

/// A compiled sequential stepper: the machine's core lowered once into a
/// [`SimProgram`] (outputs-only mode, so dead logic is dropped and
/// fanout-free chains fuse), with latch state kept as packed words — bit
/// `i` of every state word belongs to simulation trace `i`, so one
/// [`SeqStepper::step_words`] call advances 64 traces at once.
///
/// Used for BMC counterexample replay (one trace in bit 0) and by
/// [`SeqAig::simulate_words`]; the interpreter path
/// ([`crate::aig::Aig::eval`] per frame) survives as a differential
/// oracle in the test suites.
#[derive(Clone, Debug)]
pub struct SeqStepper {
    prog: SimProgram,
    num_pis: usize,
    num_latches: usize,
    num_pos: usize,
    /// One word per latch: the current state of 64 parallel traces.
    state: Vec<u64>,
    /// Scratch: `[PI words..., latch state words...]` fed to the program.
    full_pi: Vec<u64>,
    /// Scratch: program value buffer, reused across frames.
    vals: Vec<u64>,
    /// Real-output words of the last step.
    out: Vec<u64>,
}

impl SeqStepper {
    /// Compiles `m`'s core and initialises the all-zero state.
    pub fn new(m: &SeqAig) -> SeqStepper {
        SeqStepper {
            prog: SimProgram::outputs_only(m.comb()),
            num_pis: m.num_pis(),
            num_latches: m.num_latches(),
            num_pos: m.num_pos(),
            state: vec![0; m.num_latches()],
            full_pi: vec![0; m.comb().num_pis()],
            vals: Vec::new(),
            out: vec![0; m.num_pos()],
        }
    }

    /// Resets every trace to the all-zero initial state.
    pub fn reset(&mut self) {
        self.state.fill(0);
    }

    /// Current latch state, one word per latch (trace `i` in bit `i`).
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// Advances all 64 traces by one step: runs the compiled core on
    /// `pi_words` (one word per real PI) plus the current latch state,
    /// latches the next state, and returns the real-output words.
    ///
    /// # Panics
    /// Panics if `pi_words.len()` is not the machine's real PI count.
    pub fn step_words(&mut self, pi_words: &[u64]) -> &[u64] {
        assert_eq!(pi_words.len(), self.num_pis, "one word per real PI");
        self.full_pi[..self.num_pis].copy_from_slice(pi_words);
        self.full_pi[self.num_pis..].copy_from_slice(&self.state);
        self.prog.run_dense(&mut self.vals, 1, &self.full_pi);
        for (o, w) in self.out.iter_mut().enumerate() {
            *w = self.prog.output(o).read(&self.vals, 1, 0);
        }
        debug_assert_eq!(self.state.len(), self.num_latches);
        for (l, s) in self.state.iter_mut().enumerate() {
            *s = self.prog.output(self.num_pos + l).read(&self.vals, 1, 0);
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n-bit binary counter with an enable input; real PO fires at the
    /// all-ones state.
    fn counter(n: usize) -> SeqAig {
        let mut g = Aig::new();
        let en = g.add_pi();
        let state: Vec<Lit> = (0..n).map(|_| g.add_pi()).collect();
        // next = state + en (ripple increment).
        let mut carry = en;
        let mut next = Vec::with_capacity(n);
        for &s in &state {
            next.push(g.xor(s, carry));
            carry = g.and(s, carry);
        }
        let all_ones = g.and_many(&state);
        g.add_po(all_ones); // real PO: saturation detector
        for nx in next {
            g.add_po(nx); // latch next-state functions
        }
        SeqAig::new(g, 1, n)
    }

    #[test]
    fn simulate_counts() {
        let m = counter(3);
        let steps: Vec<Vec<bool>> = (0..9).map(|_| vec![true]).collect();
        let outs = m.simulate(&steps);
        // All-ones (7) is visible at step 7 (state before the 8th tick).
        let fired: Vec<usize> = outs
            .iter()
            .enumerate()
            .filter(|(_, o)| o[0])
            .map(|(i, _)| i)
            .collect();
        assert_eq!(fired, vec![7], "3-bit counter saturates after 7 increments");
    }

    #[test]
    fn unroll_matches_sequential_simulation() {
        let m = counter(3);
        let k = 10;
        let unrolled = m.unroll(k);
        assert_eq!(unrolled.num_pis(), k * m.num_pis());
        assert_eq!(unrolled.num_pos(), k * m.num_pos());
        // Drive the same stimulus through both.
        for pattern in 0..32u32 {
            let stimulus: Vec<Vec<bool>> =
                (0..k).map(|t| vec![pattern >> (t % 5) & 1 != 0]).collect();
            let seq_out = m.simulate(&stimulus);
            let flat: Vec<bool> = stimulus.iter().flatten().copied().collect();
            let comb_out = unrolled.eval(&flat);
            let expect: Vec<bool> = seq_out.iter().flatten().copied().collect();
            assert_eq!(comb_out, expect, "pattern {pattern:#b}");
        }
    }

    #[test]
    fn bmc_instance_is_single_po_and_fires_correctly() {
        let m = counter(2);
        // 2-bit counter saturates at step 3: BMC at k=3 must be UNSAT-ish
        // (cannot fire), k=4 must have a witness.
        let short = m.bmc_instance(3);
        assert_eq!(short.num_pos(), 1);
        let n = short.num_pis();
        let fired = (0..1u32 << n).any(|p| {
            let ins: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            short.eval(&ins)[0]
        });
        assert!(!fired, "saturation cannot be reached in 3 steps");

        let long = m.bmc_instance(4);
        let n = long.num_pis();
        let fired = (0..1u32 << n).any(|p| {
            let ins: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            long.eval(&ins)[0]
        });
        assert!(fired, "4 enables reach the all-ones state");
    }

    #[test]
    fn simulate_words_lanes_match_unrolled_eval() {
        // 8 parallel traces in bits 0..8 of the words, checked lane by
        // lane against the independent unroll()+eval reference (not the
        // bool wrapper, which is itself built on simulate_words).
        let m = counter(3);
        let k = 6;
        let unrolled = m.unroll(k);
        // Trace `i` enables on steps where (i + t) % 3 != 0.
        let stimulus: Vec<Vec<u64>> = (0..k)
            .map(|t| {
                let mut w = 0u64;
                for i in 0..8u64 {
                    if !(i + t as u64).is_multiple_of(3) {
                        w |= 1 << i;
                    }
                }
                vec![w]
            })
            .collect();
        let outs = m.simulate_words(&stimulus);
        assert_eq!(outs.len(), k);
        for lane in 0..8 {
            let flat: Vec<bool> = stimulus.iter().map(|ws| ws[0] >> lane & 1 != 0).collect();
            let expect = unrolled.eval(&flat);
            for t in 0..k {
                assert_eq!(
                    outs[t][0] >> lane & 1 != 0,
                    expect[t],
                    "lane {lane} step {t}"
                );
            }
        }
    }

    #[test]
    fn stepper_reset_and_state() {
        let m = counter(2);
        let mut st = m.stepper();
        assert_eq!(st.state(), &[0, 0]);
        // Three enabled ticks reach state 3 (all ones) in trace 0.
        for _ in 0..3 {
            st.step_words(&[1]);
        }
        assert_eq!(st.state()[0] & 1, 1);
        assert_eq!(st.state()[1] & 1, 1);
        // Saturation PO fires on the step *observing* the all-ones state.
        let out = st.step_words(&[1]).to_vec();
        assert_eq!(out[0] & 1, 1);
        st.reset();
        assert_eq!(st.state(), &[0, 0]);
        let out = st.step_words(&[0]).to_vec();
        assert_eq!(out[0] & 1, 0);
    }

    #[test]
    fn zero_latch_machine_is_purely_combinational() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let m = SeqAig::new(g.clone(), 2, 0);
        let u = m.unroll(3);
        assert_eq!(u.num_pis(), 6);
        assert_eq!(u.num_pos(), 3);
        // Each frame computes an independent XOR.
        let out = u.eval(&[true, false, true, true, false, false]);
        assert_eq!(out, vec![true, false, false]);
    }

    #[test]
    #[should_panic(expected = "core PIs")]
    fn shape_mismatch_panics() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(a);
        let _ = SeqAig::new(g, 2, 1);
    }
}
