//! Bit-parallel simulation.
//!
//! Each `u64` word carries 64 independent input patterns, so one sweep over
//! the node array evaluates the circuit on 64 assignments at once. Random
//! simulation underpins probabilistic equivalence checking, resubstitution
//! filtering, and the structural embedding's functional signatures.

use crate::aig::Aig;
use crate::tt::Tt;
use rand::{Rng, SeedableRng};

/// Evaluates all nodes on one 64-pattern word per PI.
///
/// Returns one word per node, in node order (constant node first, value 0).
///
/// # Panics
/// Panics if `pi_words.len() != aig.num_pis()`.
pub fn simulate_words(aig: &Aig, pi_words: &[u64]) -> Vec<u64> {
    assert_eq!(
        pi_words.len(),
        aig.num_pis(),
        "one simulation word per PI required"
    );
    let mut val = vec![0u64; aig.num_nodes()];
    for (i, &pi) in aig.pis().iter().enumerate() {
        val[pi as usize] = pi_words[i];
    }
    for v in aig.iter_ands() {
        let n = aig.node(v);
        let a = word(&val, n.fanin0().var(), n.fanin0().is_compl());
        let b = word(&val, n.fanin1().var(), n.fanin1().is_compl());
        val[v as usize] = a & b;
    }
    val
}

#[inline]
fn word(val: &[u64], var: u32, compl: bool) -> u64 {
    let w = val[var as usize];
    if compl {
        !w
    } else {
        w
    }
}

/// Per-node signatures over `n_words * 64` uniformly random patterns.
///
/// `signatures[v][w]` is the simulation word `w` of node `v`. Deterministic
/// for a fixed seed.
pub fn random_signatures(aig: &Aig, n_words: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sigs = vec![vec![0u64; n_words]; aig.num_nodes()];
    for w in 0..n_words {
        let pi_words: Vec<u64> = (0..aig.num_pis()).map(|_| rng.gen()).collect();
        let vals = simulate_words(aig, &pi_words);
        for (v, &x) in vals.iter().enumerate() {
            sigs[v][w] = x;
        }
    }
    sigs
}

/// PO signatures over `n_words * 64` random patterns (complement applied).
pub fn po_signatures(aig: &Aig, n_words: usize, seed: u64) -> Vec<Vec<u64>> {
    let sigs = random_signatures(aig, n_words, seed);
    aig.pos()
        .iter()
        .map(|po| {
            sigs[po.var() as usize]
                .iter()
                .map(|&w| if po.is_compl() { !w } else { w })
                .collect()
        })
        .collect()
}

/// Complete truth tables of every PO over the PIs (exhaustive simulation).
///
/// # Panics
/// Panics if the graph has more than [`Tt::MAX_VARS`] primary inputs.
pub fn output_tts(aig: &Aig) -> Vec<Tt> {
    let n = aig.num_pis();
    assert!(n <= Tt::MAX_VARS, "too many PIs for exhaustive simulation");
    let n_words = if n <= 6 { 1 } else { 1 << (n - 6) };
    let mut po_words: Vec<Vec<u64>> = vec![vec![0u64; n_words]; aig.num_pos()];
    for w in 0..n_words {
        // PI i pattern within word w of the elementary table of variable i.
        let pi_words: Vec<u64> = (0..n)
            .map(|i| {
                if i < 6 {
                    crate::tt::VAR_MASKS[i]
                } else if w >> (i - 6) & 1 != 0 {
                    u64::MAX
                } else {
                    0
                }
            })
            .collect();
        let vals = simulate_words(aig, &pi_words);
        for (o, po) in aig.pos().iter().enumerate() {
            let x = vals[po.var() as usize];
            po_words[o][w] = if po.is_compl() { !x } else { x };
        }
    }
    po_words
        .into_iter()
        .map(|ws| Tt::from_words(n, ws))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_match_scalar_eval() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor(a, b);
        let y = g.mux(c, x, a);
        g.add_po(y);
        let pi_words = [0b1010u64, 0b1100, 0b1111_0000];
        let vals = simulate_words(&g, &pi_words);
        for bit in 0..8 {
            let ins: Vec<bool> = pi_words.iter().map(|w| w >> bit & 1 != 0).collect();
            let expect = g.eval(&ins)[0];
            let got = vals[y.var() as usize] >> bit & 1 != 0;
            assert_eq!(got ^ y.is_compl(), expect, "bit={bit}");
        }
    }

    #[test]
    fn output_tts_match_eval() {
        let mut g = Aig::new();
        let pis = g.add_pis(7); // crosses the one-word boundary
        let x = g.xor_many(&pis);
        let y = g.and_many(&pis[..3]);
        g.add_po(x);
        g.add_po(!y);
        let tts = output_tts(&g);
        for m in 0..128usize {
            let ins: Vec<bool> = (0..7).map(|i| m >> i & 1 != 0).collect();
            let out = g.eval(&ins);
            assert_eq!(tts[0].bit(m), out[0], "po0 m={m}");
            assert_eq!(tts[1].bit(m), out[1], "po1 m={m}");
        }
    }

    #[test]
    fn signatures_deterministic() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        let s1 = random_signatures(&g, 4, 42);
        let s2 = random_signatures(&g, 4, 42);
        assert_eq!(s1, s2);
        let s3 = random_signatures(&g, 4, 43);
        assert_ne!(s1, s3);
    }

    #[test]
    fn po_signature_applies_complement() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(a);
        g.add_po(!a);
        let sigs = po_signatures(&g, 2, 1);
        assert_eq!(sigs[0][0], !sigs[1][0]);
    }
}
