//! Bit-parallel simulation.
//!
//! Each `u64` word carries 64 independent input patterns, so one sweep over
//! the node array evaluates the circuit on 64 assignments at once. Random
//! simulation underpins probabilistic equivalence checking, resubstitution
//! filtering, and the structural embedding's functional signatures.
//!
//! Signatures live in a [`SimVectors`] matrix: one flat `Vec<u64>` holding
//! `n_words` words per row (row-major, stride `n_words`), one row per AIG
//! node. Simulation writes straight into the matrix column by column, so
//! neither the producer nor any consumer allocates per-node rows.
// The only unsafe code in this crate lives here (the parallel column-scatter writers);
// the crate root denies it everywhere else, and every block
// carries a `// SAFETY:` comment (clippy-enforced).
#![allow(unsafe_code)]

use crate::aig::Aig;
use crate::compile::SimProgram;
use crate::tt::Tt;
use rand::{Rng, SeedableRng};

/// A flat, strided matrix of simulation words: `n_rows` rows of `n_words`
/// `u64` words each, in one contiguous buffer.
///
/// Row `r` occupies `words[r * n_words .. (r + 1) * n_words]`. For
/// node-signature matrices the row index is the node id; for PO-signature
/// matrices it is the output index.
#[derive(Clone, Debug)]
pub struct SimVectors {
    words: Vec<u64>,
    n_words: usize,
    /// Dense per-node scratch column reused across simulations (excluded
    /// from equality; purely a cache).
    scratch: Vec<u64>,
}

impl Default for SimVectors {
    fn default() -> SimVectors {
        SimVectors::new()
    }
}

impl PartialEq for SimVectors {
    fn eq(&self, other: &SimVectors) -> bool {
        self.n_words == other.n_words && self.words == other.words
    }
}

impl Eq for SimVectors {}

impl SimVectors {
    /// An empty matrix; shape it with [`SimVectors::reset`].
    pub fn new() -> SimVectors {
        SimVectors {
            words: Vec::new(),
            n_words: 0,
            scratch: Vec::new(),
        }
    }

    /// An all-zero matrix of `n_rows * n_words` words.
    pub fn zero(n_rows: usize, n_words: usize) -> SimVectors {
        SimVectors {
            words: vec![0u64; n_rows * n_words],
            n_words,
            scratch: Vec::new(),
        }
    }

    /// Reshapes to `n_rows * n_words`, reusing the existing buffer —
    /// repeated simulations (e.g. one per sweep round) pay the matrix
    /// allocation once instead of remapping megabytes per call.
    ///
    /// Retained cells are *not* cleared: contents are unspecified until
    /// written. Every producer here overwrites whole columns (each column
    /// pass scatters every row), so no memset is needed between reuses.
    pub fn reshape(&mut self, n_rows: usize, n_words: usize) {
        self.n_words = n_words;
        self.words.resize(n_rows * n_words, 0);
    }

    /// Words per row (the stride).
    #[inline]
    pub fn n_words(&self) -> usize {
        self.n_words
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.words.len().checked_div(self.n_words).unwrap_or(0)
    }

    /// Row `r` as a word slice (borrow, no copy).
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.n_words..(r + 1) * self.n_words]
    }

    /// Mutable access to row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.words[r * self.n_words..(r + 1) * self.n_words]
    }

    /// Word `w` of row `r`.
    #[inline]
    pub fn word(&self, r: usize, w: usize) -> u64 {
        self.words[r * self.n_words + w]
    }

    /// The whole word buffer, for in-crate raw-pointer producers.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Order-sensitive checksum of the whole matrix.
    ///
    /// Every word of every row contributes, with a per-word and per-row
    /// rotation so that moving a word between columns or rows changes the
    /// result — unlike a plain XOR fold, where symmetric contents (or a
    /// row XORing to zero) make disagreement invisible. Used by the bench
    /// harness and CI to compare engines and thread counts.
    pub fn checksum(&self) -> u64 {
        let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (self.words.len() as u64);
        if self.n_words == 0 {
            return h;
        }
        for row in self.words.chunks_exact(self.n_words) {
            let mut x = 0u64;
            for (j, &w) in row.iter().enumerate() {
                x ^= w.rotate_left((j & 63) as u32);
            }
            h = h.rotate_left(7) ^ x;
        }
        h
    }

    /// Simulates the graph on one 64-pattern word per PI, writing node
    /// values into column `w` of the matrix (row = node id). The matrix
    /// must have one row per node; the constant node's column stays 0.
    ///
    /// # Panics
    /// Panics if `pi_words.len() != aig.num_pis()` or `w >= n_words`.
    pub fn simulate_column(&mut self, aig: &Aig, w: usize, pi_words: &[u64]) {
        self.simulate_block(aig, w, 1, pi_words);
    }

    /// Simulates `nb` consecutive columns (`w0 .. w0 + nb`) in one blocked
    /// pass. `pi_block` holds the input words PI-major: words `j` of PI `i`
    /// at `pi_block[i * nb + j]`.
    ///
    /// With `nb` sized to a cache line (8 words), the strided scatter into
    /// the matrix touches each row's line once per *block* instead of once
    /// per column — the main memory-traffic win of the flat layout.
    ///
    /// # Panics
    /// Panics if `pi_block.len() != aig.num_pis() * nb` or the column range
    /// is out of bounds.
    pub fn simulate_block(&mut self, aig: &Aig, w0: usize, nb: usize, pi_block: &[u64]) {
        assert!(w0 + nb <= self.n_words, "column range out of bounds");
        debug_assert_eq!(self.n_rows(), aig.num_nodes(), "one row per node");
        let mut val = std::mem::take(&mut self.scratch);
        sim_dense_block(aig, nb, pi_block, &mut val);
        let stride = self.n_words;
        for v in 0..aig.num_nodes() {
            self.words[v * stride + w0..v * stride + w0 + nb]
                .copy_from_slice(&val[v * nb..(v + 1) * nb]);
        }
        self.scratch = val;
    }
}

/// Evaluates every node on `nb` words per PI into a dense node-major buffer
/// (`val[v * nb + j]` = word `j` of node `v`), reusing `val`'s allocation.
///
/// This is the simulation kernel proper: fanin loads stay in a contiguous,
/// cache-resident buffer; scattering into a strided signature matrix is the
/// caller's (cheap, linear) job. Free-standing so parallel column workers
/// can run it on private buffers.
///
/// # Panics
/// Panics if `pi_block.len() != aig.num_pis() * nb`.
fn sim_dense_block(aig: &Aig, nb: usize, pi_block: &[u64], val: &mut Vec<u64>) {
    assert_eq!(
        pi_block.len(),
        aig.num_pis() * nb,
        "nb simulation words per PI required"
    );
    val.clear();
    val.resize(aig.num_nodes() * nb, 0);
    for (i, &pi) in aig.pis().iter().enumerate() {
        val[pi as usize * nb..(pi as usize + 1) * nb]
            .copy_from_slice(&pi_block[i * nb..(i + 1) * nb]);
    }
    for v in aig.iter_ands() {
        let node = aig.node(v);
        let (f0, f1) = (node.fanin0(), node.fanin1());
        let m0 = if f0.is_compl() { !0u64 } else { 0 };
        let m1 = if f1.is_compl() { !0u64 } else { 0 };
        let (i0, i1, iv) = (
            f0.var() as usize * nb,
            f1.var() as usize * nb,
            v as usize * nb,
        );
        for j in 0..nb {
            val[iv + j] = (val[i0 + j] ^ m0) & (val[i1 + j] ^ m1);
        }
    }
}

/// Evaluates all nodes on one 64-pattern word per PI.
///
/// Returns one word per node, in node order (constant node first, value 0).
/// One-shot convenience around [`SimVectors::simulate_column`]; batch
/// clients should simulate into a shared matrix instead.
///
/// # Panics
/// Panics if `pi_words.len() != aig.num_pis()`.
pub fn simulate_words(aig: &Aig, pi_words: &[u64]) -> Vec<u64> {
    let mut sv = SimVectors::zero(aig.num_nodes(), 1);
    sv.simulate_column(aig, 0, pi_words);
    sv.words
}

/// Per-node signatures over `n_words * 64` uniformly random patterns.
///
/// `row(v)[w]` is simulation word `w` of node `v`. Deterministic for a
/// fixed seed.
pub fn random_signatures(aig: &Aig, n_words: usize, seed: u64) -> SimVectors {
    let mut sigs = SimVectors::new();
    random_signatures_into(aig, n_words, seed, &mut sigs);
    sigs
}

/// Columns per blocked simulation pass: one 64-byte cache line of words.
const SIM_BLOCK: usize = 8;

/// [`random_signatures`] into a caller-owned matrix, reusing its buffer.
///
/// Wide fills (≥ 4 words) go through the compiled engine
/// ([`SimProgram::full`] + [`random_columns_prog`]), which amortises one
/// cheap compilation over many columns; narrow fills stay on the
/// interpreter. Both produce bit-identical matrices, so the routing is
/// invisible to callers.
pub fn random_signatures_into(aig: &Aig, n_words: usize, seed: u64, sigs: &mut SimVectors) {
    sigs.reshape(aig.num_nodes(), n_words);
    if n_words >= 4 {
        let prog = SimProgram::full(aig);
        random_columns_prog(&prog, sigs, 0, n_words, seed, 1);
    } else {
        random_columns(aig, sigs, 0, n_words, seed);
    }
}

/// Decorrelates a per-block random stream from the base seed (splitmix64
/// finalizer). Seeding every block independently — instead of drawing one
/// sequential stream — is what lets parallel workers produce the same
/// patterns as a sequential pass: block `b`'s words depend only on
/// `(seed, b)`, never on who simulated block `b - 1`.
#[inline]
fn block_seed(seed: u64, block: u64) -> u64 {
    let mut z = seed ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fills columns `w0 .. w0 + n_cols` of an already-shaped matrix with
/// uniformly random patterns, in blocked passes. Deterministic for a
/// fixed seed; shared by the signature producers and the sweep engine's
/// per-round resimulation. Equivalent to [`random_columns_par`] with one
/// thread.
pub fn random_columns(aig: &Aig, sigs: &mut SimVectors, w0: usize, n_cols: usize, seed: u64) {
    random_columns_par(aig, sigs, w0, n_cols, seed, 1);
}

/// Fills one random block's PI words from its private stream.
fn fill_pi_block(pi_block: &mut [u64], seed: u64, block: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(block_seed(seed, block));
    for p in pi_block.iter_mut() {
        *p = rng.gen();
    }
}

/// Shares the signature matrix's word buffer with column workers.
///
/// Safety contract (upheld by the producers below): every worker writes a
/// *disjoint* set of columns, all within the buffer, and the matrix is not
/// read until the scope joins — so the raw writes never alias.
struct ColumnCursor(*mut u64);
// SAFETY: per the contract above — workers write disjoint columns of a
// buffer that outlives the scope, and nothing reads it until the scoped
// threads join, so shared `&ColumnCursor` access never produces a data
// race.
unsafe impl Sync for ColumnCursor {}

/// [`random_columns`] split across up to `threads` worker threads.
///
/// Blocks of [`SIM_BLOCK`] columns are dealt round-robin to the workers;
/// each block's patterns come from a private RNG stream keyed by
/// `(seed, block index)`, and each worker simulates into a private dense
/// buffer before scattering into its own columns of the strided matrix.
/// The strided layout makes those writes disjoint, so the result is
/// bit-identical for every thread count, one included.
pub fn random_columns_par(
    aig: &Aig,
    sigs: &mut SimVectors,
    w0: usize,
    n_cols: usize,
    seed: u64,
    threads: usize,
) {
    // Block descriptors: (start column, width); the block index used for
    // seeding is the position in this list, so the stream layout is
    // independent of how the blocks are later scheduled.
    let blocks: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut w = w0;
        while w < w0 + n_cols {
            let nb = SIM_BLOCK.min(w0 + n_cols - w);
            v.push((w, nb));
            w += nb;
        }
        v
    };
    let n_pis = aig.num_pis();
    if threads <= 1 || blocks.len() <= 1 {
        let mut pi_block = vec![0u64; n_pis * SIM_BLOCK];
        for (b, &(w, nb)) in blocks.iter().enumerate() {
            fill_pi_block(&mut pi_block[..n_pis * nb], seed, b as u64);
            sigs.simulate_block(aig, w, nb, &pi_block[..n_pis * nb]);
        }
        return;
    }
    assert!(w0 + n_cols <= sigs.n_words, "column range out of bounds");
    assert_eq!(sigs.n_rows(), aig.num_nodes(), "one row per node");
    let n = aig.num_nodes();
    let stride = sigs.n_words;
    let workers = threads.min(blocks.len());
    let cursor = ColumnCursor(sigs.words.as_mut_ptr());
    std::thread::scope(|scope| {
        for t in 0..workers {
            let cursor = &cursor;
            let blocks = &blocks;
            scope.spawn(move || {
                let mut pi_block = vec![0u64; n_pis * SIM_BLOCK];
                let mut val: Vec<u64> = Vec::new();
                let mut b = t;
                while b < blocks.len() {
                    let (w, nb) = blocks[b];
                    fill_pi_block(&mut pi_block[..n_pis * nb], seed, b as u64);
                    sim_dense_block(aig, nb, &pi_block[..n_pis * nb], &mut val);
                    // SAFETY: this worker owns columns `w .. w + nb` of
                    // every row (blocks are disjoint, dealt round-robin),
                    // and `v * stride + w + nb <= words.len()` by the
                    // shape asserts above.
                    unsafe {
                        for v in 0..n {
                            std::ptr::copy_nonoverlapping(
                                val[v * nb..].as_ptr(),
                                cursor.0.add(v * stride + w),
                                nb,
                            );
                        }
                    }
                    b += workers;
                }
            });
        }
    });
}

/// [`random_columns_par`] driven by a compiled program instead of the
/// interpreter.
///
/// The block structure and per-block RNG streams are identical to the
/// interpreter producers', and a [`SimProgram::full`] program writes
/// every node row bit-identically to [`SimVectors::simulate_block`] — so
/// for any `(seed, column range)` this fills exactly the same matrix as
/// [`random_columns_par`], for every thread count of either engine. The
/// win is the run itself: one precompiled op sweep writing straight into
/// the strided matrix, instead of a dense interpreter pass plus a
/// row-by-row scatter.
///
/// # Panics
/// Panics if the matrix shape does not match the program
/// (`n_rows == prog.n_slots()`) or the column range is out of bounds.
pub fn random_columns_prog(
    prog: &SimProgram,
    sigs: &mut SimVectors,
    w0: usize,
    n_cols: usize,
    seed: u64,
    threads: usize,
) {
    assert!(w0 + n_cols <= sigs.n_words, "column range out of bounds");
    assert_eq!(sigs.n_rows(), prog.n_slots(), "one row per program slot");
    let blocks: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut w = w0;
        while w < w0 + n_cols {
            let nb = SIM_BLOCK.min(w0 + n_cols - w);
            v.push((w, nb));
            w += nb;
        }
        v
    };
    let n_pis = prog.n_pis();
    let stride = sigs.n_words;
    let workers = if blocks.len() <= 1 {
        1
    } else {
        threads.min(blocks.len())
    };
    let cursor = ColumnCursor(sigs.words.as_mut_ptr());
    if workers <= 1 {
        let mut pi_block = vec![0u64; n_pis * SIM_BLOCK];
        for (b, &(w, nb)) in blocks.iter().enumerate() {
            fill_pi_block(&mut pi_block[..n_pis * nb], seed, b as u64);
            // SAFETY: single-threaded; shape asserted above.
            unsafe { prog.run_all_raw(cursor.0, stride, w, nb, &pi_block[..n_pis * nb]) };
        }
        return;
    }
    std::thread::scope(|scope| {
        for t in 0..workers {
            let cursor = &cursor;
            let blocks = &blocks;
            scope.spawn(move || {
                let mut pi_block = vec![0u64; n_pis * SIM_BLOCK];
                let mut b = t;
                while b < blocks.len() {
                    let (w, nb) = blocks[b];
                    fill_pi_block(&mut pi_block[..n_pis * nb], seed, b as u64);
                    // SAFETY: this worker owns columns `w .. w + nb` of
                    // every row (blocks are disjoint, dealt round-robin),
                    // within bounds by the shape asserts above.
                    unsafe { prog.run_all_raw(cursor.0, stride, w, nb, &pi_block[..n_pis * nb]) };
                    b += workers;
                }
            });
        }
    });
}

/// [`simulate_columns_par`] driven by a compiled program: replays
/// `(column, PI words)` jobs through one [`SimProgram::full`] run per
/// job. Fills the same columns bit-identically to the interpreter
/// version, for every thread count.
///
/// # Panics
/// Panics if the matrix shape does not match the program, a column is
/// out of range, or (with multiple threads) columns are not distinct.
pub fn simulate_columns_prog(
    prog: &SimProgram,
    sigs: &mut SimVectors,
    jobs: &[(usize, &[u64])],
    threads: usize,
) {
    assert_eq!(sigs.n_rows(), prog.n_slots(), "one row per program slot");
    for &(w, _) in jobs {
        assert!(w < sigs.n_words, "column out of range");
    }
    let stride = sigs.n_words;
    let cursor = ColumnCursor(sigs.words.as_mut_ptr());
    if threads <= 1 || jobs.len() <= 1 {
        for &(w, pi_words) in jobs {
            // SAFETY: single-threaded; shape asserted above.
            unsafe { prog.run_all_raw(cursor.0, stride, w, 1, pi_words) };
        }
        return;
    }
    for (i, &(w, _)) in jobs.iter().enumerate() {
        // Hard assert (see `simulate_columns_par`): distinctness is the
        // disjointness guarantee the concurrent writes rely on.
        assert!(
            jobs[..i].iter().all(|&(prev, _)| prev != w),
            "replay columns must be distinct"
        );
    }
    let workers = threads.min(jobs.len());
    std::thread::scope(|scope| {
        for t in 0..workers {
            let cursor = &cursor;
            scope.spawn(move || {
                let mut j = t;
                while j < jobs.len() {
                    let (w, pi_words) = jobs[j];
                    // SAFETY: columns are distinct and dealt round-robin,
                    // so each worker's writes are disjoint and in bounds
                    // by the asserts above.
                    unsafe { prog.run_all_raw(cursor.0, stride, w, 1, pi_words) };
                    j += workers;
                }
            });
        }
    });
}

/// Simulates a set of independent replay columns — `(column, PI words)`
/// jobs — split across up to `threads` worker threads.
///
/// Used by the sweep engine to replay counterexample chunks: every job is
/// one dense pass over the graph, so jobs parallelise perfectly. Columns
/// must be distinct and in range; each worker scatters into its own
/// columns only, so the result is bit-identical to running the jobs
/// sequentially through [`SimVectors::simulate_column`].
pub fn simulate_columns_par(
    aig: &Aig,
    sigs: &mut SimVectors,
    jobs: &[(usize, &[u64])],
    threads: usize,
) {
    if threads <= 1 || jobs.len() <= 1 {
        for &(w, pi_words) in jobs {
            sigs.simulate_column(aig, w, pi_words);
        }
        return;
    }
    for (i, &(w, _)) in jobs.iter().enumerate() {
        assert!(w < sigs.n_words, "column out of range");
        // Hard assert: distinctness is the disjointness guarantee the
        // unsafe concurrent scatter below relies on — a duplicate column
        // in a release build would be a data race, not just a wrong
        // answer. One O(jobs²) scan is noise next to a dense simulation
        // pass per job.
        assert!(
            jobs[..i].iter().all(|&(prev, _)| prev != w),
            "replay columns must be distinct"
        );
    }
    assert_eq!(sigs.n_rows(), aig.num_nodes(), "one row per node");
    let n = aig.num_nodes();
    let stride = sigs.n_words;
    let workers = threads.min(jobs.len());
    let cursor = ColumnCursor(sigs.words.as_mut_ptr());
    std::thread::scope(|scope| {
        for t in 0..workers {
            let cursor = &cursor;
            scope.spawn(move || {
                let mut val: Vec<u64> = Vec::new();
                let mut j = t;
                while j < jobs.len() {
                    let (w, pi_words) = jobs[j];
                    sim_dense_block(aig, 1, pi_words, &mut val);
                    // SAFETY: columns are distinct and dealt round-robin,
                    // so this worker's writes are disjoint from every
                    // other's and in bounds by the asserts above.
                    unsafe {
                        for v in 0..n {
                            *cursor.0.add(v * stride + w) = val[v];
                        }
                    }
                    j += workers;
                }
            });
        }
    });
}

/// PO signatures over `n_words * 64` random patterns (complement applied).
///
/// Row `o` is the signature of output `o`. The node matrix is simulated
/// once; each output row is then produced by one flat copy that borrows
/// the source row in place and folds in the complement — no per-PO row
/// allocations.
pub fn po_signatures(aig: &Aig, n_words: usize, seed: u64) -> SimVectors {
    let sigs = random_signatures(aig, n_words, seed);
    let mut out = SimVectors::zero(aig.num_pos(), n_words);
    for (o, po) in aig.pos().iter().enumerate() {
        let src = sigs.row(po.var() as usize);
        for (d, &s) in out.row_mut(o).iter_mut().zip(src) {
            *d = if po.is_compl() { !s } else { s };
        }
    }
    out
}

/// Complete truth tables of every PO over the PIs (exhaustive simulation).
///
/// # Panics
/// Panics if the graph has more than [`Tt::MAX_VARS`] primary inputs.
pub fn output_tts(aig: &Aig) -> Vec<Tt> {
    let n = aig.num_pis();
    assert!(n <= Tt::MAX_VARS, "too many PIs for exhaustive simulation");
    let n_words = if n <= 6 { 1 } else { 1 << (n - 6) };
    // One reused node-wide column + the PO rows: memory stays
    // O(num_nodes + num_pos * n_words) even at 20 PIs, where a full
    // node-by-word matrix would be gigabytes.
    let mut col = SimVectors::zero(aig.num_nodes(), 1);
    let mut po_words = SimVectors::zero(aig.num_pos(), n_words);
    let mut pi_words = vec![0u64; n];
    for w in 0..n_words {
        // PI i pattern within word w of the elementary table of variable i.
        for (i, p) in pi_words.iter_mut().enumerate() {
            *p = if i < 6 {
                crate::tt::VAR_MASKS[i]
            } else if w >> (i - 6) & 1 != 0 {
                u64::MAX
            } else {
                0
            };
        }
        col.simulate_column(aig, 0, &pi_words);
        for (o, po) in aig.pos().iter().enumerate() {
            let x = col.word(po.var() as usize, 0);
            po_words.row_mut(o)[w] = if po.is_compl() { !x } else { x };
        }
    }
    (0..aig.num_pos())
        .map(|o| Tt::from_words(n, po_words.row(o).to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_match_scalar_eval() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor(a, b);
        let y = g.mux(c, x, a);
        g.add_po(y);
        let pi_words = [0b1010u64, 0b1100, 0b1111_0000];
        let vals = simulate_words(&g, &pi_words);
        for bit in 0..8 {
            let ins: Vec<bool> = pi_words.iter().map(|w| w >> bit & 1 != 0).collect();
            let expect = g.eval(&ins)[0];
            let got = vals[y.var() as usize] >> bit & 1 != 0;
            assert_eq!(got ^ y.is_compl(), expect, "bit={bit}");
        }
    }

    #[test]
    fn output_tts_match_eval() {
        let mut g = Aig::new();
        let pis = g.add_pis(7); // crosses the one-word boundary
        let x = g.xor_many(&pis);
        let y = g.and_many(&pis[..3]);
        g.add_po(x);
        g.add_po(!y);
        let tts = output_tts(&g);
        for m in 0..128usize {
            let ins: Vec<bool> = (0..7).map(|i| m >> i & 1 != 0).collect();
            let out = g.eval(&ins);
            assert_eq!(tts[0].bit(m), out[0], "po0 m={m}");
            assert_eq!(tts[1].bit(m), out[1], "po1 m={m}");
        }
    }

    #[test]
    fn signatures_deterministic() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        let s1 = random_signatures(&g, 4, 42);
        let s2 = random_signatures(&g, 4, 42);
        assert_eq!(s1, s2);
        let s3 = random_signatures(&g, 4, 43);
        assert_ne!(s1, s3);
    }

    #[test]
    fn po_signature_applies_complement() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(a);
        g.add_po(!a);
        let sigs = po_signatures(&g, 2, 1);
        assert_eq!(sigs.word(0, 0), !sigs.word(1, 0));
    }

    #[test]
    fn matrix_shape_and_rows() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        let sigs = random_signatures(&g, 3, 7);
        assert_eq!(sigs.n_words(), 3);
        assert_eq!(sigs.n_rows(), g.num_nodes());
        // Row of the AND node = AND of its (non-complemented) fanin rows.
        let (ra, rb): (Vec<u64>, Vec<u64>) = (
            sigs.row(a.var() as usize).to_vec(),
            sigs.row(b.var() as usize).to_vec(),
        );
        let rx = sigs.row(x.var() as usize);
        for w in 0..3 {
            assert_eq!(rx[w], ra[w] & rb[w]);
        }
        // Constant node's row is all-zero.
        assert!(sigs.row(0).iter().all(|&w| w == 0));
    }

    #[test]
    fn columns_are_independent() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.or(a, b);
        g.add_po(x);
        let mut sv = SimVectors::zero(g.num_nodes(), 2);
        sv.simulate_column(&g, 0, &[0b01, 0b10]);
        sv.simulate_column(&g, 1, &[0b11, 0b00]);
        // Complement of the OR literal folds back to the node row's value.
        let or_word = |w: usize| {
            let raw = sv.word(x.var() as usize, w);
            (if x.is_compl() { !raw } else { raw }) & 0b11
        };
        // Column 0: or(01,10) = 11; column 1: or(11,00) = 11.
        assert_eq!(or_word(0), 0b11);
        assert_eq!(or_word(1), 0b11);
        assert_eq!(sv.word(a.var() as usize, 1), 0b11);
        assert_eq!(sv.word(b.var() as usize, 1), 0);
    }

    /// A miter-ish graph big enough for several simulation blocks.
    fn wide_graph() -> Aig {
        let mut g = Aig::new();
        let pis = g.add_pis(12);
        let mut layer: Vec<crate::Lit> = pis.clone();
        for r in 0..6 {
            layer = layer
                .windows(2)
                .map(|w| {
                    if r % 2 == 0 {
                        g.and(w[0], !w[1])
                    } else {
                        g.xor(w[0], w[1])
                    }
                })
                .collect();
        }
        for &l in &layer {
            g.add_po(l);
        }
        g
    }

    #[test]
    fn parallel_random_columns_match_sequential() {
        let g = wide_graph();
        // 27 columns = 4 blocks (8+8+8+3): enough to spread across workers.
        let mut seq = SimVectors::zero(g.num_nodes(), 27);
        random_columns_par(&g, &mut seq, 0, 27, 0xFEED, 1);
        for threads in [2, 3, 8] {
            let mut par = SimVectors::zero(g.num_nodes(), 27);
            random_columns_par(&g, &mut par, 0, 27, 0xFEED, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
        // Offsets keep per-block streams: filling [3, 3+24) uses the same
        // block indices 0.. as filling from 0, applied at shifted columns.
        let mut off = SimVectors::zero(g.num_nodes(), 27);
        random_columns_par(&g, &mut off, 3, 24, 0xFEED, 2);
        for v in 0..g.num_nodes() {
            assert_eq!(off.row(v)[3..27], seq.row(v)[..24], "node {v}");
        }
    }

    #[test]
    fn compiled_random_columns_match_interpreter() {
        let g = wide_graph();
        let prog = SimProgram::full(&g);
        let mut interp = SimVectors::zero(g.num_nodes(), 27);
        random_columns_par(&g, &mut interp, 0, 27, 0xFEED, 1);
        for threads in [1, 2, 4] {
            let mut comp = SimVectors::zero(g.num_nodes(), 27);
            random_columns_prog(&prog, &mut comp, 0, 27, 0xFEED, threads);
            assert_eq!(comp, interp, "threads={threads}");
            assert_eq!(comp.checksum(), interp.checksum());
        }
    }

    #[test]
    fn compiled_replay_columns_match_interpreter() {
        let g = wide_graph();
        let prog = SimProgram::full(&g);
        let chunks: Vec<Vec<u64>> = (0..5)
            .map(|k| (0..g.num_pis() as u64).map(|i| i * 0xABCD + k).collect())
            .collect();
        let jobs: Vec<(usize, &[u64])> = chunks
            .iter()
            .enumerate()
            .map(|(k, c)| (k, c.as_slice()))
            .collect();
        let mut interp = SimVectors::zero(g.num_nodes(), 5);
        simulate_columns_par(&g, &mut interp, &jobs, 1);
        for threads in [1, 3] {
            let mut comp = SimVectors::zero(g.num_nodes(), 5);
            simulate_columns_prog(&prog, &mut comp, &jobs, threads);
            assert_eq!(comp, interp, "threads={threads}");
        }
    }

    #[test]
    fn signatures_into_routes_through_compiled_engine() {
        // Wide fills route through the compiled engine; the matrix must
        // be bit-identical to a pure interpreter fill of the same shape.
        let g = wide_graph();
        let mut routed = SimVectors::new();
        random_signatures_into(&g, 8, 99, &mut routed);
        let mut interp = SimVectors::zero(g.num_nodes(), 8);
        random_columns(&g, &mut interp, 0, 8, 99);
        assert_eq!(routed, interp);
    }

    #[test]
    fn checksum_is_not_vacuous() {
        let g = wide_graph();
        let a = random_signatures(&g, 4, 1);
        let b = random_signatures(&g, 4, 2);
        assert_ne!(a.checksum(), b.checksum(), "different contents differ");
        // Swapping two rows changes the checksum (order sensitivity) —
        // the old fold-one-row scheme XORed symmetric contents to zero.
        let mut swapped = a.clone();
        let (r0, r1): (Vec<u64>, Vec<u64>) = (a.row(1).to_vec(), a.row(2).to_vec());
        swapped.row_mut(1).copy_from_slice(&r1);
        swapped.row_mut(2).copy_from_slice(&r0);
        assert_ne!(a.checksum(), swapped.checksum(), "row order matters");
        // And a matrix XOR-symmetric per row still yields nonzero.
        let mut sym = SimVectors::zero(2, 2);
        sym.row_mut(0).copy_from_slice(&[0xFF, 0xFF]);
        assert_ne!(sym.checksum(), SimVectors::zero(2, 2).checksum());
    }

    #[test]
    fn parallel_replay_columns_match_sequential() {
        let g = wide_graph();
        let chunks: Vec<Vec<u64>> = (0..5)
            .map(|k| (0..g.num_pis() as u64).map(|i| i * 0x9E37 + k).collect())
            .collect();
        let jobs: Vec<(usize, &[u64])> = chunks
            .iter()
            .enumerate()
            .map(|(k, c)| (k, c.as_slice()))
            .collect();
        let mut seq = SimVectors::zero(g.num_nodes(), 5);
        simulate_columns_par(&g, &mut seq, &jobs, 1);
        let mut by_hand = SimVectors::zero(g.num_nodes(), 5);
        for &(w, pi) in &jobs {
            by_hand.simulate_column(&g, w, pi);
        }
        assert_eq!(seq, by_hand);
        for threads in [2, 4] {
            let mut par = SimVectors::zero(g.num_nodes(), 5);
            simulate_columns_par(&g, &mut par, &jobs, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }
}
