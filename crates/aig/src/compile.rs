//! Compiled simulation: levelized fused-op programs.
//!
//! The interpreter in [`crate::sim`] walks the node array per pass — for
//! every gate it re-loads the [`crate::Node`], re-derives the complement
//! masks, and pays a bounds check per word. A [`SimProgram`] does that work
//! **once, at compile time**: the graph is lowered into a flat bytecode of
//! fused ops whose operand slots are pre-resolved row indices and whose
//! fanin complements are baked into the opcode, so the run loop is a tight,
//! branch-light, allocation-free sweep over a contiguous op array writing
//! straight into the strided [`SimVectors`] matrix (no dense-buffer +
//! scatter second pass).
//!
//! Two lowering modes exist:
//!
//! * [`SimProgram::full`] materialises **every** node's value row — the
//!   engine behind signature matrices, where consumers (the SAT sweeper's
//!   candidate classes, resubstitution filters) read arbitrary node rows.
//!   Output is bit-identical to the interpreter's.
//! * [`SimProgram::outputs_only`] keeps only the cone of the outputs and
//!   **fuses fanout-free AND chains into multi-input ops** (`AndN`),
//!   dropping dead and folded nodes — the engine behind the compiled
//!   sequential stepper ([`crate::seq::SeqStepper`]) and BMC trace replay,
//!   where only POs and latch next-states matter.
//!
//! Ops are **levelized**: sorted by logic level with recorded level
//! boundaries, so each level is an embarrassingly parallel strip —
//! [`SimProgram::run_strided_par`] splits every strip across scoped worker
//! threads writing disjoint rows (the same discipline as
//! [`crate::sim::random_columns_par`]'s disjoint-column writes), and the
//! result is bit-identical for any thread count.
// The only unsafe code in this crate lives here (the parallel level-strip executor);
// the crate root denies it everywhere else, and every block
// carries a `// SAFETY:` comment (clippy-enforced).
#![allow(unsafe_code)]

use crate::aig::Aig;
use crate::lit::Lit;
use crate::sim::SimVectors;

/// Maximum operand count of a fused multi-input AND.
const MAX_FUSE: usize = 8;

/// One bytecode op. Operand fields are value-buffer *slots* (row indices);
/// fanin complements are part of the opcode, not a runtime mask load.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `dst = a & b`.
    And { dst: u32, a: u32, b: u32 },
    /// `dst = a & !b`.
    AndC { dst: u32, a: u32, b: u32 },
    /// `dst = !a & !b`.
    Nor { dst: u32, a: u32, b: u32 },
    /// `dst = AND over operand refs` (`operands[start .. start + len]`,
    /// each encoded `slot << 1 | compl`) — a fused fanout-free chain.
    AndN { dst: u32, start: u32, len: u32 },
    /// `dst = word block of primary input pi`.
    Load { dst: u32, pi: u32 },
    /// `dst = 0` or `dst = !0`.
    Const { dst: u32, ones: bool },
    /// `dst = src value` (`src = slot << 1 | compl`) — a gate folded to a
    /// passthrough whose row must still be materialised.
    Copy { dst: u32, src: u32 },
}

impl Op {
    fn dst(&self) -> u32 {
        match *self {
            Op::And { dst, .. }
            | Op::AndC { dst, .. }
            | Op::Nor { dst, .. }
            | Op::AndN { dst, .. }
            | Op::Load { dst, .. }
            | Op::Const { dst, .. }
            | Op::Copy { dst, .. } => dst,
        }
    }
}

/// Where an output's value lives after a program run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutRef {
    /// The output is a compile-time constant.
    Const(bool),
    /// The output is row `slot`, complemented if `compl`.
    Slot {
        /// Value-buffer row holding the output.
        slot: u32,
        /// Whether the stored value must be complemented.
        compl: bool,
    },
}

impl OutRef {
    /// Reads word `w` of this output from a dense value buffer with
    /// `stride` words per slot.
    #[inline]
    pub fn read(&self, vals: &[u64], stride: usize, w: usize) -> u64 {
        match *self {
            OutRef::Const(ones) => {
                if ones {
                    !0
                } else {
                    0
                }
            }
            OutRef::Slot { slot, compl } => {
                let v = vals[slot as usize * stride + w];
                if compl {
                    !v
                } else {
                    v
                }
            }
        }
    }
}

/// A node's resolved value source during compilation: constant folds and
/// passthrough chains are looked through, so consumers always reference
/// the canonical producer.
#[derive(Clone, Copy, Debug)]
enum NRef {
    Const(bool),
    Slot(u32, bool),
}

impl NRef {
    fn xor(self, compl: bool) -> NRef {
        match self {
            NRef::Const(b) => NRef::Const(b ^ compl),
            NRef::Slot(s, c) => NRef::Slot(s, c ^ compl),
        }
    }
}

/// Geometry of one program run: destination buffer, words per row, column
/// offset, and block width.
#[derive(Clone, Copy)]
struct Frame {
    base: *mut u64,
    stride: usize,
    w0: usize,
    nb: usize,
}

/// Shares the destination buffer with level-strip workers. Writes are
/// disjoint by construction (each op owns its `dst` row and strips never
/// split an op), so the raw pointer is never written concurrently by two
/// workers.
struct FrameCursor(Frame);
// SAFETY: the wrapped pointer is only dereferenced through `run_ops`,
// whose callers hand each worker a disjoint op range writing disjoint
// `dst` rows (see the doc comment above); no two threads ever write the
// same word and the buffer outlives the scoped threads.
unsafe impl Sync for FrameCursor {}

/// A compiled simulation program: flat fused-op bytecode over a dense or
/// strided word matrix, levelized for parallel strip execution.
///
/// ```
/// use aig::{Aig, compile::SimProgram, sim::SimVectors};
/// let mut g = Aig::new();
/// let a = g.add_pi();
/// let b = g.add_pi();
/// let x = g.xor(a, b);
/// g.add_po(x);
///
/// let prog = SimProgram::full(&g);
/// let mut sigs = SimVectors::zero(g.num_nodes(), 1);
/// prog.run_strided(&mut sigs, 0, 1, &[0b0011, 0b0101]);
/// // The top node's row matches the interpreter's conventions: the PO
/// // complement is *not* folded into the matrix.
/// let raw = sigs.word(x.var() as usize, 0);
/// let xor = if x.is_compl() { !raw } else { raw };
/// assert_eq!(xor & 0b1111, 0b0011 ^ 0b0101);
/// ```
#[derive(Clone, Debug)]
pub struct SimProgram {
    ops: Vec<Op>,
    /// Operand pool for `AndN` ops (`slot << 1 | compl` each).
    operands: Vec<u32>,
    /// Op-index ranges of each logic level (ops are stored level-major).
    levels: Vec<(u32, u32)>,
    n_slots: usize,
    n_pis: usize,
    outputs: Vec<OutRef>,
    fused: usize,
}

impl SimProgram {
    /// Compiles a program that materialises **every** node: slot `v` is
    /// node `v`, so a run writes exactly the rows the interpreter
    /// ([`SimVectors::simulate_block`]) would, bit for bit. No chain
    /// fusion (every intermediate row is demanded); constant and
    /// passthrough folds still compile to cheap `Const`/`Copy` ops and
    /// are looked through by consumers.
    pub fn full(aig: &Aig) -> SimProgram {
        compile(aig, true)
    }

    /// Compiles a program that computes only the cone of the outputs
    /// (`aig.pos()`), with fanout-free non-complemented AND chains fused
    /// into multi-input ops and dead or folded nodes dropped. Slots are
    /// compacted; read results through [`SimProgram::output`] /
    /// [`OutRef::read`].
    pub fn outputs_only(aig: &Aig) -> SimProgram {
        compile(aig, false)
    }

    /// Rows a run writes (the required value-buffer row count).
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Primary inputs the program loads (`pi_block` is `n_pis * nb` words).
    pub fn n_pis(&self) -> usize {
        self.n_pis
    }

    /// Total op count.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Logic levels (parallel strips) in the program.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Fused multi-input ops emitted ([`SimProgram::outputs_only`] only).
    pub fn fused_ops(&self) -> usize {
        self.fused
    }

    /// Output count (mirrors `aig.num_pos()`).
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Where output `o`'s value lives after a run.
    pub fn output(&self, o: usize) -> OutRef {
        self.outputs[o]
    }

    /// Runs the program into columns `w0 .. w0 + nb` of a strided matrix
    /// (row = slot), reading `nb` words per PI from `pi_block` (PI-major:
    /// word `j` of PI `i` at `pi_block[i * nb + j]`).
    ///
    /// # Panics
    /// Panics if the matrix has the wrong row count, the column range is
    /// out of bounds, or `pi_block` has the wrong length.
    pub fn run_strided(&self, sigs: &mut SimVectors, w0: usize, nb: usize, pi_block: &[u64]) {
        self.check_run(sigs, w0, nb, pi_block);
        let frame = Frame {
            stride: sigs.n_words(),
            base: sigs.words_mut().as_mut_ptr(),
            w0,
            nb,
        };
        // SAFETY: `check_run` validated the matrix shape against
        // `n_slots`/stride, and compilation validated every op's slots;
        // see `run_ops` for the offset bound argument.
        unsafe { self.run_ops(0, self.ops.len(), frame, pi_block) }
    }

    /// [`SimProgram::run_strided`] with each logic level split across up
    /// to `threads` scoped worker threads (one barrier per level).
    ///
    /// Within a level no op depends on another, and every op writes its
    /// own row, so the strips write disjoint memory and read only rows
    /// completed before the previous barrier — the result is bit-identical
    /// to the sequential run for every thread count.
    ///
    /// # Panics
    /// Same contract as [`SimProgram::run_strided`].
    pub fn run_strided_par(
        &self,
        sigs: &mut SimVectors,
        w0: usize,
        nb: usize,
        pi_block: &[u64],
        threads: usize,
    ) {
        // A strip is worth a barrier only when levels are wide; tiny
        // programs (or a single worker) run inline.
        let workers = threads.min(self.ops.len() / 64).max(1);
        if workers <= 1 {
            self.run_strided(sigs, w0, nb, pi_block);
            return;
        }
        self.check_run(sigs, w0, nb, pi_block);
        let cursor = FrameCursor(Frame {
            stride: sigs.n_words(),
            base: sigs.words_mut().as_mut_ptr(),
            w0,
            nb,
        });
        let barrier = std::sync::Barrier::new(workers);
        std::thread::scope(|scope| {
            for t in 0..workers {
                let cursor = &cursor;
                let barrier = &barrier;
                scope.spawn(move || {
                    for &(s, e) in &self.levels {
                        let (s, e) = (s as usize, e as usize);
                        // Contiguous chunk of this level's strip; chunk
                        // boundaries depend only on (level width, workers),
                        // never on scheduling.
                        let chunk = (e - s).div_ceil(workers);
                        let cs = (s + t * chunk).min(e);
                        let ce = (cs + chunk).min(e);
                        if cs < ce {
                            // SAFETY: shape checked above; ops in a level
                            // have pairwise distinct `dst` rows (disjoint
                            // writes) and read only strictly-lower-level
                            // rows, all written before the last barrier.
                            unsafe { self.run_ops(cs, ce, cursor.0, pi_block) };
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    /// Runs the program into a dense slot-major buffer (`nb` words per
    /// slot, word `j` of slot `s` at `vals[s * nb + j]`), resizing `vals`
    /// as needed. This is the sequential stepper's per-frame kernel.
    ///
    /// # Panics
    /// Panics if `pi_block.len() != n_pis * nb`.
    pub fn run_dense(&self, vals: &mut Vec<u64>, nb: usize, pi_block: &[u64]) {
        assert_eq!(pi_block.len(), self.n_pis * nb, "nb words per PI required");
        vals.clear();
        vals.resize(self.n_slots * nb, 0);
        let frame = Frame {
            base: vals.as_mut_ptr(),
            stride: nb,
            w0: 0,
            nb,
        };
        // SAFETY: the buffer is exactly `n_slots * nb` words and every
        // op's slots were validated at compile time.
        unsafe { self.run_ops(0, self.ops.len(), frame, pi_block) }
    }

    /// Runs all ops against a raw strided buffer: `base` points at a
    /// matrix of `n_slots` rows of `stride` words, and the program writes
    /// columns `w0 .. w0 + nb` of every row.
    ///
    /// # Safety
    /// `base` must stay valid for `n_slots * stride` words for the whole
    /// call, `w0 + nb <= stride` must hold, `pi_block` must hold
    /// `n_pis * nb` words, and no other thread may concurrently access
    /// columns `w0 .. w0 + nb` of any row. Used by the producers in
    /// [`crate::sim`] to run disjoint column blocks from parallel workers.
    pub(crate) unsafe fn run_all_raw(
        &self,
        base: *mut u64,
        stride: usize,
        w0: usize,
        nb: usize,
        pi_block: &[u64],
    ) {
        debug_assert!(w0 + nb <= stride);
        debug_assert_eq!(pi_block.len(), self.n_pis * nb);
        self.run_ops(
            0,
            self.ops.len(),
            Frame {
                base,
                stride,
                w0,
                nb,
            },
            pi_block,
        )
    }

    /// Shared entry validation for the strided runners.
    fn check_run(&self, sigs: &SimVectors, w0: usize, nb: usize, pi_block: &[u64]) {
        assert_eq!(pi_block.len(), self.n_pis * nb, "nb words per PI required");
        assert!(w0 + nb <= sigs.n_words(), "column range out of bounds");
        assert_eq!(sigs.n_rows(), self.n_slots, "one row per program slot");
    }

    /// Executes ops `s .. e` against a frame.
    ///
    /// # Safety
    /// `frame.base` must point at a buffer of at least
    /// `n_slots * frame.stride` words with `frame.w0 + frame.nb <=
    /// frame.stride`, `pi_block` must hold `n_pis * frame.nb` words, and
    /// no other thread may concurrently write any row an op in `s .. e`
    /// reads or writes. Compilation guarantees every op's `dst < n_slots`
    /// and every operand slot `< dst` (topological emission), so all
    /// touched offsets `slot * stride + w0 + j` (`j < nb`) are in bounds
    /// and no op's destination aliases its operands.
    unsafe fn run_ops(&self, s: usize, e: usize, f: Frame, pi_block: &[u64]) {
        let nb = f.nb;
        let at = |slot: u32| slot as usize * f.stride + f.w0;
        for op in &self.ops[s..e] {
            match *op {
                Op::And { dst, a, b } => {
                    let d = f.base.add(at(dst));
                    let x = f.base.add(at(a)) as *const u64;
                    let y = f.base.add(at(b)) as *const u64;
                    for j in 0..nb {
                        *d.add(j) = *x.add(j) & *y.add(j);
                    }
                }
                Op::AndC { dst, a, b } => {
                    let d = f.base.add(at(dst));
                    let x = f.base.add(at(a)) as *const u64;
                    let y = f.base.add(at(b)) as *const u64;
                    for j in 0..nb {
                        *d.add(j) = *x.add(j) & !*y.add(j);
                    }
                }
                Op::Nor { dst, a, b } => {
                    let d = f.base.add(at(dst));
                    let x = f.base.add(at(a)) as *const u64;
                    let y = f.base.add(at(b)) as *const u64;
                    for j in 0..nb {
                        *d.add(j) = !(*x.add(j) | *y.add(j));
                    }
                }
                Op::AndN { dst, start, len } => {
                    // Accumulate in the dst row: the first operand seeds
                    // it, the rest AND into it. The dst row is strictly
                    // above every operand row, so nothing aliases.
                    let d = f.base.add(at(dst));
                    let refs = &self.operands[start as usize..(start + len) as usize];
                    let (first, rest) = refs.split_first().expect("fused op has operands");
                    let m = ((first & 1) as u64).wrapping_neg();
                    let p = f.base.add(at(first >> 1)) as *const u64;
                    for j in 0..nb {
                        *d.add(j) = *p.add(j) ^ m;
                    }
                    for &r in rest {
                        let m = ((r & 1) as u64).wrapping_neg();
                        let p = f.base.add(at(r >> 1)) as *const u64;
                        for j in 0..nb {
                            *d.add(j) &= *p.add(j) ^ m;
                        }
                    }
                }
                Op::Load { dst, pi } => {
                    let d = f.base.add(at(dst));
                    let src = &pi_block[pi as usize * nb..(pi as usize + 1) * nb];
                    for (j, &w) in src.iter().enumerate() {
                        *d.add(j) = w;
                    }
                }
                Op::Const { dst, ones } => {
                    let d = f.base.add(at(dst));
                    let w = if ones { !0u64 } else { 0 };
                    for j in 0..nb {
                        *d.add(j) = w;
                    }
                }
                Op::Copy { dst, src } => {
                    let d = f.base.add(at(dst));
                    let m = ((src & 1) as u64).wrapping_neg();
                    let p = f.base.add(at(src >> 1)) as *const u64;
                    for j in 0..nb {
                        *d.add(j) = *p.add(j) ^ m;
                    }
                }
            }
        }
    }
}

/// Resolves a fanin literal through the per-node canonical refs.
fn resolve(refs: &[Option<NRef>], lit: Lit) -> NRef {
    refs[lit.var() as usize]
        .expect("fanin precedes its gate in topological order")
        .xor(lit.is_compl())
}

/// One AND gate's resolved shape: a constant fold, a passthrough of one
/// operand, or a real two-input AND.
enum Lowered {
    Const(bool),
    Pass(u32, bool),
    Gate((u32, bool), (u32, bool)),
}

fn lower_and(ra: NRef, rb: NRef) -> Lowered {
    match (ra, rb) {
        (NRef::Const(false), _) | (_, NRef::Const(false)) => Lowered::Const(false),
        (NRef::Const(true), NRef::Const(true)) => Lowered::Const(true),
        (NRef::Const(true), NRef::Slot(s, c)) | (NRef::Slot(s, c), NRef::Const(true)) => {
            Lowered::Pass(s, c)
        }
        (NRef::Slot(s0, c0), NRef::Slot(s1, c1)) => {
            if s0 == s1 {
                if c0 == c1 {
                    Lowered::Pass(s0, c0)
                } else {
                    Lowered::Const(false)
                }
            } else {
                Lowered::Gate((s0, c0), (s1, c1))
            }
        }
    }
}

/// Emits the two-input op for a real gate, complements baked into the
/// opcode (`!a & b` normalises to `AndC` by swapping the operands).
fn two_input_op(dst: u32, a: (u32, bool), b: (u32, bool)) -> Op {
    match (a.1, b.1) {
        (false, false) => Op::And {
            dst,
            a: a.0,
            b: b.0,
        },
        (false, true) => Op::AndC {
            dst,
            a: a.0,
            b: b.0,
        },
        (true, false) => Op::AndC {
            dst,
            a: b.0,
            b: a.0,
        },
        (true, true) => Op::Nor {
            dst,
            a: a.0,
            b: b.0,
        },
    }
}

fn compile(aig: &Aig, materialize_all: bool) -> SimProgram {
    let n = aig.num_nodes();
    // Node index -> PI index, for Load ops.
    let mut pi_of: Vec<u32> = vec![u32::MAX; n];
    for (i, &pi) in aig.pis().iter().enumerate() {
        pi_of[pi as usize] = i as u32;
    }

    // Pass 1: resolve every node to its canonical source (in node-id
    // space), folding constants and looking through passthrough gates.
    // Public-API graphs never contain foldable gates (`Aig::and` folds at
    // construction), but the lowering stays total for robustness.
    let mut refs: Vec<Option<NRef>> = vec![None; n];
    refs[0] = Some(NRef::Const(false));
    // Real (unfolded) gates keep their resolved operand pair here: each
    // operand is a (source node, complemented) edge.
    type GatePair = ((u32, bool), (u32, bool));
    let mut gate_ops: Vec<Option<GatePair>> = vec![None; n];
    for v in 1..n as u32 {
        let node = aig.node(v);
        if node.is_pi() {
            refs[v as usize] = Some(NRef::Slot(v, false));
            continue;
        }
        let ra = resolve(&refs, node.fanin0());
        let rb = resolve(&refs, node.fanin1());
        refs[v as usize] = Some(match lower_and(ra, rb) {
            Lowered::Const(b) => NRef::Const(b),
            Lowered::Pass(s, c) => NRef::Slot(s, c),
            Lowered::Gate(a, b) => {
                gate_ops[v as usize] = Some((a, b));
                NRef::Slot(v, false)
            }
        });
    }

    let mut ops: Vec<Op> = Vec::new();
    let mut op_level: Vec<u32> = Vec::new();
    let mut operands: Vec<u32> = Vec::new();
    let mut level: Vec<u32> = vec![0; n];
    let mut fused = 0usize;

    if materialize_all {
        // Slot v = node v; every node gets exactly one op.
        ops.reserve(n);
        for v in 0..n as u32 {
            let node = aig.node(v);
            let (op, lv) = if node.is_const() {
                (
                    Op::Const {
                        dst: v,
                        ones: false,
                    },
                    0,
                )
            } else if node.is_pi() {
                (
                    Op::Load {
                        dst: v,
                        pi: pi_of[v as usize],
                    },
                    0,
                )
            } else if let Some((a, b)) = gate_ops[v as usize] {
                let lv = 1 + level[a.0 as usize].max(level[b.0 as usize]);
                (two_input_op(v, a, b), lv)
            } else {
                // Folded gate: its row is still demanded (the sweeper
                // reads every row), but consumers reference the canonical
                // source directly.
                match refs[v as usize].expect("resolved above") {
                    NRef::Const(b) => (Op::Const { dst: v, ones: b }, 0),
                    NRef::Slot(s, c) => (
                        Op::Copy {
                            dst: v,
                            src: s << 1 | c as u32,
                        },
                        1 + level[s as usize],
                    ),
                }
            };
            level[v as usize] = lv;
            op_level.push(lv);
            ops.push(op);
        }
        let outputs = aig
            .pos()
            .iter()
            .map(|&po| match resolve(&refs, po) {
                NRef::Const(b) => OutRef::Const(b),
                NRef::Slot(s, c) => OutRef::Slot { slot: s, compl: c },
            })
            .collect();
        return finish(ops, op_level, operands, n, aig.num_pis(), outputs, fused);
    }

    // Live cone of the outputs over the *resolved* operand graph.
    let mut live = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mark = |s: u32, live: &mut Vec<bool>, stack: &mut Vec<u32>| {
        if !live[s as usize] {
            live[s as usize] = true;
            stack.push(s);
        }
    };
    for &po in aig.pos() {
        if let NRef::Slot(s, _) = resolve(&refs, po) {
            mark(s, &mut live, &mut stack);
        }
    }
    while let Some(v) = stack.pop() {
        if let Some((a, b)) = gate_ops[v as usize] {
            mark(a.0, &mut live, &mut stack);
            mark(b.0, &mut live, &mut stack);
        }
    }
    // Fanout counts over the live resolved graph (outputs included),
    // deciding which chains are fusable.
    let mut fan = vec![0u32; n];
    for v in 0..n {
        if live[v] {
            if let Some((a, b)) = gate_ops[v] {
                fan[a.0 as usize] += 1;
                fan[b.0 as usize] += 1;
            }
        }
    }
    for &po in aig.pos() {
        if let NRef::Slot(s, _) = resolve(&refs, po) {
            fan[s as usize] += 1;
        }
    }
    // Gather per-gate operand lists (node-id refs, `id << 1 | compl`),
    // inlining single-fanout, non-complemented fanin gates up to MAX_FUSE
    // operands. Topological order guarantees a fanin's list is final
    // before its consumer looks at it.
    let mut gathered: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut absorbed = vec![false; n];
    for v in 0..n {
        if !live[v] || gate_ops[v].is_none() {
            continue;
        }
        let (a, b) = gate_ops[v].expect("checked above");
        let mut list: Vec<u32> = Vec::with_capacity(2);
        for (s, c) in [a, b] {
            let s_us = s as usize;
            let fusable = !c
                && gate_ops[s_us].is_some()
                && fan[s_us] == 1
                && list.len() + gathered[s_us].len() < MAX_FUSE;
            if fusable {
                absorbed[s_us] = true;
                let inner = std::mem::take(&mut gathered[s_us]);
                list.extend(inner);
            } else {
                list.push(s << 1 | c as u32);
            }
        }
        gathered[v] = list;
    }
    // Slot assignment (topological, compacted) and op emission. Only PIs
    // and un-absorbed real gates survive: folded and constant nodes are
    // looked through by `resolve`, so they are never marked live.
    let mut slot_of: Vec<u32> = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if !live[v] || absorbed[v] {
            continue;
        }
        let dst = next;
        next += 1;
        slot_of[v] = dst;
        if aig.node(v as u32).is_pi() {
            op_level.push(0);
            ops.push(Op::Load { dst, pi: pi_of[v] });
            continue;
        }
        debug_assert!(gate_ops[v].is_some(), "live non-PI node must be a gate");
        let list = &gathered[v];
        let lv = 1 + list
            .iter()
            .map(|&r| level[(r >> 1) as usize])
            .max()
            .expect("a gate has operands");
        let mapped: Vec<u32> = list
            .iter()
            .map(|&r| slot_of[(r >> 1) as usize] << 1 | (r & 1))
            .collect();
        debug_assert!(mapped.iter().all(|&r| r >> 1 < dst));
        let op = if mapped.len() == 2 {
            two_input_op(
                dst,
                (mapped[0] >> 1, mapped[0] & 1 != 0),
                (mapped[1] >> 1, mapped[1] & 1 != 0),
            )
        } else {
            fused += 1;
            let start = operands.len() as u32;
            operands.extend_from_slice(&mapped);
            Op::AndN {
                dst,
                start,
                len: mapped.len() as u32,
            }
        };
        level[v] = lv;
        op_level.push(lv);
        ops.push(op);
    }
    let outputs = aig
        .pos()
        .iter()
        .map(|&po| match resolve(&refs, po) {
            NRef::Const(b) => OutRef::Const(b),
            NRef::Slot(s, c) => OutRef::Slot {
                slot: slot_of[s as usize],
                compl: c,
            },
        })
        .collect();
    finish(
        ops,
        op_level,
        operands,
        next as usize,
        aig.num_pis(),
        outputs,
        fused,
    )
}

/// Levelizes the op list (stable sort by level, so emission order breaks
/// ties deterministically) and records the level strip boundaries.
fn finish(
    ops: Vec<Op>,
    op_level: Vec<u32>,
    operands: Vec<u32>,
    n_slots: usize,
    n_pis: usize,
    outputs: Vec<OutRef>,
    fused: usize,
) -> SimProgram {
    let mut order: Vec<u32> = (0..ops.len() as u32).collect();
    order.sort_by_key(|&i| op_level[i as usize]);
    let sorted: Vec<Op> = order.iter().map(|&i| ops[i as usize]).collect();
    let mut levels: Vec<(u32, u32)> = Vec::new();
    let mut start = 0usize;
    while start < sorted.len() {
        let lv = op_level[order[start] as usize];
        let mut end = start + 1;
        while end < sorted.len() && op_level[order[end] as usize] == lv {
            end += 1;
        }
        levels.push((start as u32, end as u32));
        start = end;
    }
    debug_assert!(sorted.iter().all(|op| (op.dst() as usize) < n_slots));
    SimProgram {
        ops: sorted,
        operands,
        levels,
        n_slots,
        n_pis,
        outputs,
        fused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    /// A graph exercising every two-input opcode and both output
    /// complements.
    fn mixed_graph() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.and(a, b); // And
        let y = g.and(a, !b); // AndC
        let z = g.and(!a, !c); // Nor
        let t = g.xor(x, z);
        let u = g.mux(y, t, !x);
        g.add_po(u);
        g.add_po(!t);
        g.add_po(a);
        g
    }

    fn run_full(g: &Aig, pi_words: &[u64]) -> SimVectors {
        let prog = SimProgram::full(g);
        let mut sv = SimVectors::zero(g.num_nodes(), 1);
        prog.run_strided(&mut sv, 0, 1, pi_words);
        sv
    }

    #[test]
    fn full_matches_interpreter() {
        let g = mixed_graph();
        let pi_words = [0xDEAD_BEEF_0123_4567u64, 0xA5A5_5A5A_FF00_0F0F, 0x1357];
        let compiled = run_full(&g, &pi_words);
        let mut interp = SimVectors::zero(g.num_nodes(), 1);
        interp.simulate_column(&g, 0, &pi_words);
        assert_eq!(compiled, interp);
    }

    #[test]
    fn outputs_only_matches_eval() {
        let g = mixed_graph();
        let prog = SimProgram::outputs_only(&g);
        assert!(prog.n_slots() <= g.num_nodes());
        let pi_words = [0b1100_1010u64, 0b1111_0000, 0b0110_0110];
        let mut vals = Vec::new();
        prog.run_dense(&mut vals, 1, &pi_words);
        for bit in 0..8 {
            let ins: Vec<bool> = pi_words.iter().map(|w| w >> bit & 1 != 0).collect();
            let expect = g.eval(&ins);
            for (o, &e) in expect.iter().enumerate() {
                let got = prog.output(o).read(&vals, 1, 0) >> bit & 1 != 0;
                assert_eq!(got, e, "po {o} bit {bit}");
            }
        }
    }

    #[test]
    fn fusion_collapses_and_chains() {
        // and_many over 6 PIs builds a balanced, fanout-free AND tree:
        // outputs_only must fuse it into a single multi-input op.
        let mut g = Aig::new();
        let pis = g.add_pis(6);
        let all = g.and_many(&pis);
        g.add_po(all);
        let prog = SimProgram::outputs_only(&g);
        assert_eq!(prog.fused_ops(), 1, "one fused op for the whole tree");
        assert_eq!(prog.num_ops(), 6 + 1, "6 loads + 1 fused AND");
        let pi_words: Vec<u64> = (0..6).map(|i| !(1u64 << i)).collect();
        let mut vals = Vec::new();
        prog.run_dense(&mut vals, 1, &pi_words);
        // Bit j of the AND is 0 iff some PI has bit j = 0: bits 0..6 zero.
        let out = prog.output(0).read(&vals, 1, 0);
        assert_eq!(out & 0xFF, 0b1100_0000);
    }

    #[test]
    fn dead_logic_is_dropped() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let live = g.and(a, b);
        let _dead = g.or(a, b);
        g.add_po(live);
        let prog = SimProgram::outputs_only(&g);
        assert_eq!(prog.num_ops(), 3, "2 loads + 1 AND; the OR is dead");
    }

    #[test]
    fn constant_and_passthrough_outputs() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(Lit::FALSE);
        g.add_po(Lit::TRUE);
        g.add_po(!a);
        let prog = SimProgram::outputs_only(&g);
        assert_eq!(prog.output(0), OutRef::Const(false));
        assert_eq!(prog.output(1), OutRef::Const(true));
        let mut vals = Vec::new();
        prog.run_dense(&mut vals, 1, &[0b01]);
        assert_eq!(prog.output(2).read(&vals, 1, 0), !0b01);
    }

    /// Injects raw nodes to exercise the defensive fold paths that
    /// `Aig::and`'s construction-time folding makes unreachable from the
    /// public API: gates with constant, duplicate, and complementary
    /// fanins must still compile to rows bit-identical to the
    /// interpreter's.
    #[test]
    fn degenerate_gates_match_interpreter() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let f = Lit::from_var(0, false); // const false literal
        let t = Lit::from_var(0, true); // const true literal
        let push = |g: &mut Aig, f0: Lit, f1: Lit| {
            let v = g.num_nodes() as u32;
            g.nodes.push(Node::and(f0.min(f1), f0.max(f1)));
            Lit::from_var(v, false)
        };
        let z = push(&mut g, f, a); // 0 & a  -> const 0
        let o = push(&mut g, t, a); // 1 & a  -> copy a
        let d = push(&mut g, a, a); // a & a  -> copy a
        let x = push(&mut g, a, !a); // a & !a -> const 0
        let chain = push(&mut g, o, !x); // copy(a) & !const0 -> copy a
        for l in [z, o, d, x, chain] {
            g.add_po(l);
        }
        let pi_words = [0xF0F0_1234_5678_9ABCu64];
        let compiled = run_full(&g, &pi_words);
        let mut interp = SimVectors::zero(g.num_nodes(), 1);
        interp.simulate_column(&g, 0, &pi_words);
        assert_eq!(compiled, interp);
        // outputs_only folds them away entirely: only the PI load remains,
        // and the fold-through outputs resolve to the PI's slot.
        let prog = SimProgram::outputs_only(&g);
        assert_eq!(prog.num_ops(), 1);
        assert_eq!(prog.output(0), OutRef::Const(false));
        assert_eq!(
            prog.output(1),
            OutRef::Slot {
                slot: 0,
                compl: false
            }
        );
    }

    #[test]
    fn strided_runs_only_touch_their_columns() {
        let g = mixed_graph();
        let prog = SimProgram::full(&g);
        let mut sv = SimVectors::zero(g.num_nodes(), 3);
        for r in 0..g.num_nodes() {
            sv.row_mut(r).fill(0x5555_5555_5555_5555);
        }
        let pi_words = [1u64, 2, 3];
        prog.run_strided(&mut sv, 1, 1, &pi_words);
        for r in 0..g.num_nodes() {
            assert_eq!(sv.word(r, 0), 0x5555_5555_5555_5555, "row {r} col 0");
            assert_eq!(sv.word(r, 2), 0x5555_5555_5555_5555, "row {r} col 2");
        }
        let mut one = SimVectors::zero(g.num_nodes(), 1);
        prog.run_strided(&mut one, 0, 1, &pi_words);
        for r in 0..g.num_nodes() {
            assert_eq!(sv.word(r, 1), one.word(r, 0), "row {r}");
        }
    }

    #[test]
    fn parallel_strips_are_bit_identical() {
        // Wide ragged graph: enough ops per level to engage real strips.
        let mut g = Aig::new();
        let pis = g.add_pis(16);
        let mut layer = pis.clone();
        let mut i = 0u32;
        while layer.len() > 1 {
            layer = layer
                .windows(2)
                .map(|w| {
                    i += 1;
                    match i % 3 {
                        0 => g.and(w[0], w[1]),
                        1 => g.xor(w[0], w[1]),
                        _ => g.or(w[0], !w[1]),
                    }
                })
                .collect();
        }
        g.add_po(layer[0]);
        let prog = SimProgram::full(&g);
        let pi_block: Vec<u64> = (0..16 * 4).map(|i| 0x9E37_79B9u64 * (i + 1)).collect();
        let mut seq = SimVectors::zero(g.num_nodes(), 4);
        prog.run_strided(&mut seq, 0, 4, &pi_block);
        for threads in [2, 3, 8] {
            let mut par = SimVectors::zero(g.num_nodes(), 4);
            prog.run_strided_par(&mut par, 0, 4, &pi_block, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn levels_partition_ops() {
        let g = mixed_graph();
        let prog = SimProgram::full(&g);
        assert!(prog.num_levels() >= 2);
        let total: u32 = prog.levels.iter().map(|&(s, e)| e - s).sum();
        assert_eq!(total as usize, prog.num_ops());
        // Level ranges are contiguous and ordered.
        let mut expect = 0;
        for &(s, e) in &prog.levels {
            assert_eq!(s, expect);
            assert!(e > s);
            expect = e;
        }
    }
}
