//! AIGER format I/O (ASCII `aag` and binary `aig`, combinational subset).
//!
//! The AIGER format (Biere, 2006) is the de-facto interchange format for
//! AIGs and the input format of the paper's benchmark instances. Latches are
//! rejected: the framework targets combinational CSAT instances.

use crate::aig::Aig;
use crate::lit::Lit;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Errors produced while parsing AIGER files.
#[derive(Debug)]
pub enum ParseAigerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed header or body with a human-readable description.
    Malformed(String),
    /// The file contains latches, which are not supported.
    Sequential,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Io(e) => write!(f, "i/o error while reading aiger: {e}"),
            ParseAigerError::Malformed(m) => write!(f, "malformed aiger file: {m}"),
            ParseAigerError::Sequential => write!(f, "sequential aiger files are not supported"),
        }
    }
}

impl std::error::Error for ParseAigerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseAigerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseAigerError {
    fn from(e: io::Error) -> Self {
        ParseAigerError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ParseAigerError {
    ParseAigerError::Malformed(msg.into())
}

/// Reads an ASCII AIGER (`aag`) file.
///
/// # Errors
/// Returns [`ParseAigerError`] on I/O failure, malformed input, or if the
/// file declares latches.
pub fn read_aag<R: BufRead>(mut reader: R) -> Result<Aig, ParseAigerError> {
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("aag") {
        return Err(malformed("expected 'aag' magic"));
    }
    let nums: Vec<u32> = parts
        .map(|p| p.parse().map_err(|_| malformed("non-numeric header field")))
        .collect::<Result<_, _>>()?;
    if nums.len() < 5 {
        return Err(malformed("header needs five fields M I L O A"));
    }
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if l != 0 {
        return Err(ParseAigerError::Sequential);
    }
    if m < i + a {
        return Err(malformed("M smaller than I + A"));
    }

    let mut lines = reader.lines();
    let mut next_line = || -> Result<String, ParseAigerError> {
        lines
            .next()
            .ok_or_else(|| malformed("unexpected end of file"))?
            .map_err(ParseAigerError::Io)
    };

    // AIGER var -> our literal.
    let mut map: Vec<Option<Lit>> = vec![None; m as usize + 1];
    map[0] = Some(Lit::FALSE);
    let mut g = Aig::with_capacity(m as usize + 1);

    let mut pi_vars = Vec::with_capacity(i as usize);
    for _ in 0..i {
        let line = next_line()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| malformed("bad input literal"))?;
        if !lit.is_multiple_of(2) || lit == 0 {
            return Err(malformed("input literal must be positive and even"));
        }
        pi_vars.push(lit / 2);
    }
    for &v in &pi_vars {
        if map[v as usize].is_some() {
            return Err(malformed("duplicate variable definition"));
        }
        map[v as usize] = Some(g.add_pi());
    }

    let mut po_lits = Vec::with_capacity(o as usize);
    for _ in 0..o {
        let line = next_line()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| malformed("bad output literal"))?;
        po_lits.push(lit);
    }

    // AND definitions may reference later definitions in pathological files;
    // standard AIGER requires lhs > rhs, so a single pass suffices and we
    // reject forward references.
    for _ in 0..a {
        let line = next_line()?;
        let mut it = line.split_whitespace();
        let mut field = || -> Result<u32, ParseAigerError> {
            it.next()
                .ok_or_else(|| malformed("and line too short"))?
                .parse()
                .map_err(|_| malformed("bad and literal"))
        };
        let (lhs, rhs0, rhs1) = (field()?, field()?, field()?);
        if lhs % 2 != 0 || lhs == 0 {
            return Err(malformed("and lhs must be positive and even"));
        }
        let v = lhs / 2;
        if v as usize >= map.len() || map[v as usize].is_some() {
            return Err(malformed("and lhs redefined or out of range"));
        }
        let lookup = |raw: u32, map: &[Option<Lit>]| -> Result<Lit, ParseAigerError> {
            let var = raw / 2;
            let base = map
                .get(var as usize)
                .copied()
                .flatten()
                .ok_or_else(|| malformed(format!("reference to undefined variable {var}")))?;
            Ok(base.xor_compl(raw % 2 == 1))
        };
        let f0 = lookup(rhs0, &map)?;
        let f1 = lookup(rhs1, &map)?;
        map[v as usize] = Some(g.and(f0, f1));
    }

    for raw in po_lits {
        let var = raw / 2;
        let base = map
            .get(var as usize)
            .copied()
            .flatten()
            .ok_or_else(|| malformed(format!("output references undefined variable {var}")))?;
        g.add_po(base.xor_compl(raw % 2 == 1));
    }
    Ok(g)
}

/// Writes the graph in ASCII AIGER (`aag`) format.
///
/// Nodes are renumbered densely: PIs get AIGER variables `1..=I`, AND gates
/// follow in topological order.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_aag<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let renum = renumber(aig);
    let i = aig.num_pis() as u32;
    let a = aig.num_ands() as u32;
    let m = i + a;
    writeln!(w, "aag {m} {i} 0 {} {a}", aig.num_pos())?;
    for k in 0..aig.num_pis() {
        writeln!(w, "{}", 2 * (k as u32 + 1))?;
    }
    for po in aig.pos() {
        writeln!(w, "{}", encode(&renum, *po))?;
    }
    for v in aig.iter_ands() {
        let n = aig.node(v);
        writeln!(
            w,
            "{} {} {}",
            2 * renum[v as usize],
            encode(&renum, n.fanin0()),
            encode(&renum, n.fanin1())
        )?;
    }
    Ok(())
}

/// Writes the graph in binary AIGER (`aig`) format.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_aig_binary<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let renum = renumber(aig);
    let i = aig.num_pis() as u32;
    let a = aig.num_ands() as u32;
    let m = i + a;
    writeln!(w, "aig {m} {i} 0 {} {a}", aig.num_pos())?;
    for po in aig.pos() {
        writeln!(w, "{}", encode(&renum, *po))?;
    }
    for v in aig.iter_ands() {
        let n = aig.node(v);
        let lhs = 2 * renum[v as usize];
        let mut r0 = encode(&renum, n.fanin0());
        let mut r1 = encode(&renum, n.fanin1());
        if r0 < r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        debug_assert!(lhs > r0 && r0 >= r1);
        write_delta(&mut w, lhs - r0)?;
        write_delta(&mut w, r0 - r1)?;
    }
    Ok(())
}

/// Reads a binary AIGER (`aig`) file.
///
/// # Errors
/// Returns [`ParseAigerError`] on I/O failure, malformed input, or latches.
pub fn read_aig_binary<R: BufRead>(mut reader: R) -> Result<Aig, ParseAigerError> {
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("aig") {
        return Err(malformed("expected 'aig' magic"));
    }
    let nums: Vec<u32> = parts
        .map(|p| p.parse().map_err(|_| malformed("non-numeric header field")))
        .collect::<Result<_, _>>()?;
    if nums.len() < 5 {
        return Err(malformed("header needs five fields M I L O A"));
    }
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if l != 0 {
        return Err(ParseAigerError::Sequential);
    }
    if m != i + a {
        return Err(malformed("binary aiger requires M = I + A"));
    }
    let mut po_lits = Vec::with_capacity(o as usize);
    for _ in 0..o {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        po_lits.push(
            line.trim()
                .parse::<u32>()
                .map_err(|_| malformed("bad output literal"))?,
        );
    }
    let mut g = Aig::with_capacity(m as usize + 1);
    let mut map: Vec<Lit> = Vec::with_capacity(m as usize + 1);
    map.push(Lit::FALSE);
    for _ in 0..i {
        map.push(g.add_pi());
    }
    for k in 0..a {
        let lhs = 2 * (i + k + 1);
        let d0 = read_delta(&mut reader)?;
        let d1 = read_delta(&mut reader)?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| malformed("delta underflow"))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| malformed("delta underflow"))?;
        let decode = |raw: u32, map: &[Lit]| -> Result<Lit, ParseAigerError> {
            let var = (raw / 2) as usize;
            if var >= map.len() {
                return Err(malformed("forward reference in binary aiger"));
            }
            Ok(map[var].xor_compl(raw % 2 == 1))
        };
        let f0 = decode(r0, &map)?;
        let f1 = decode(r1, &map)?;
        map.push(g.and(f0, f1));
    }
    for raw in po_lits {
        let var = (raw / 2) as usize;
        if var >= map.len() {
            return Err(malformed("output references undefined variable"));
        }
        g.add_po(map[var].xor_compl(raw % 2 == 1));
    }
    Ok(g)
}

fn write_delta<W: Write>(w: &mut W, mut delta: u32) -> io::Result<()> {
    loop {
        let byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_delta<R: Read>(r: &mut R) -> Result<u32, ParseAigerError> {
    let mut out = 0u32;
    let mut shift = 0;
    loop {
        let mut byte = [0u8];
        r.read_exact(&mut byte)?;
        out |= ((byte[0] & 0x7F) as u32) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 28 {
            return Err(malformed("delta too large"));
        }
    }
}

/// Dense renumbering: our node index -> AIGER variable.
fn renumber(aig: &Aig) -> Vec<u32> {
    let mut renum = vec![0u32; aig.num_nodes()];
    let mut next = 1u32;
    for &pi in aig.pis() {
        renum[pi as usize] = next;
        next += 1;
    }
    for v in aig.iter_ands() {
        renum[v as usize] = next;
        next += 1;
    }
    renum
}

fn encode(renum: &[u32], lit: Lit) -> u32 {
    2 * renum[lit.var() as usize] + lit.is_compl() as u32
}

/// Serialises to an in-memory `aag` string (convenience for tests/examples).
pub fn to_aag_string(aig: &Aig) -> String {
    let mut buf = Vec::new();
    write_aag(aig, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("aag output is ASCII")
}

/// Parses an in-memory `aag` string.
///
/// # Errors
/// Same as [`read_aag`].
pub fn from_aag_str(s: &str) -> Result<Aig, ParseAigerError> {
    read_aag(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor(a, b);
        let y = g.mux(c, x, !a);
        g.add_po(y);
        g.add_po(!x);
        g
    }

    #[test]
    fn aag_roundtrip_preserves_function() {
        let g = sample();
        let text = to_aag_string(&g);
        let h = from_aag_str(&text).unwrap();
        assert_eq!(h.num_pis(), g.num_pis());
        assert_eq!(h.num_pos(), g.num_pos());
        for m in 0..8usize {
            let ins: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(g.eval(&ins), h.eval(&ins), "m={m}");
        }
    }

    #[test]
    fn binary_roundtrip_preserves_function() {
        let g = sample();
        let mut buf = Vec::new();
        write_aig_binary(&g, &mut buf).unwrap();
        let h = read_aig_binary(std::io::Cursor::new(buf)).unwrap();
        for m in 0..8usize {
            let ins: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(g.eval(&ins), h.eval(&ins), "m={m}");
        }
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(
            from_aag_str(text),
            Err(ParseAigerError::Sequential)
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_aag_str("not an aiger file").is_err());
        assert!(from_aag_str("aag 1 1").is_err());
        assert!(
            from_aag_str("aag 1 1 0 0 0\n3\n").is_err(),
            "odd input literal"
        );
    }

    #[test]
    fn constant_outputs() {
        let mut g = Aig::new();
        g.add_po(Lit::TRUE);
        g.add_po(Lit::FALSE);
        let text = to_aag_string(&g);
        let h = from_aag_str(&text).unwrap();
        assert_eq!(h.eval(&[]), vec![true, false]);
    }

    #[test]
    fn parses_known_example() {
        // AND of two inputs, from the AIGER spec.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let g = from_aag_str(text).unwrap();
        assert_eq!(g.num_pis(), 2);
        assert_eq!(g.num_ands(), 1);
        assert_eq!(g.eval(&[true, true]), vec![true]);
        assert_eq!(g.eval(&[true, false]), vec![false]);
    }
}
