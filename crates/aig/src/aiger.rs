//! AIGER format I/O (ASCII `aag` and binary `aig`).
//!
//! The AIGER format (Biere, 2006) is the de-facto interchange format for
//! AIGs and the input format of the paper's benchmark instances. The
//! combinational readers ([`read_aag`], [`read_aig_binary`]) reject latches
//! — the preprocessing framework targets combinational CSAT instances —
//! while [`read_seq_aag`]/[`write_seq_aag`] handle the sequential subset
//! (zero-initialised latches) as [`SeqAig`] machines for the model-checking
//! subsystem.

use crate::aig::Aig;
use crate::lit::Lit;
use crate::seq::SeqAig;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Errors produced while parsing AIGER files.
#[derive(Debug)]
pub enum ParseAigerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed header or body with a human-readable description.
    Malformed(String),
    /// The file contains latches, which are not supported.
    Sequential,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Io(e) => write!(f, "i/o error while reading aiger: {e}"),
            ParseAigerError::Malformed(m) => write!(f, "malformed aiger file: {m}"),
            ParseAigerError::Sequential => write!(f, "sequential aiger files are not supported"),
        }
    }
}

impl std::error::Error for ParseAigerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseAigerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseAigerError {
    fn from(e: io::Error) -> Self {
        ParseAigerError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ParseAigerError {
    ParseAigerError::Malformed(msg.into())
}

/// Plausibility cap on the header's maximum variable index `M`. The
/// variable map is sized from `M`, so an adversarial header (`aag
/// 4000000000 ...` in a ten-byte file) must not translate into a
/// multi-gigabyte allocation or an overflowing index computation. 2^26
/// variables is far beyond every benchmark family in this workspace while
/// keeping the worst-case map at a few hundred megabytes.
const MAX_HEADER_VARS: u32 = 1 << 26;

/// Bounds an eager `Vec::with_capacity` reservation taken from an
/// untrusted header count: the vector still grows to the real size on
/// demand, but a lying header can no longer pre-allocate gigabytes.
fn cap_hint(declared: u32) -> usize {
    declared.min(1 << 16) as usize
}

/// Reads an ASCII AIGER (`aag`) file.
///
/// # Errors
/// Returns [`ParseAigerError`] on I/O failure, malformed input, or if the
/// file declares latches.
pub fn read_aag<R: BufRead>(reader: R) -> Result<Aig, ParseAigerError> {
    parse_aag(reader, false).map(|p| p.core)
}

/// Reads an ASCII AIGER (`aag`) file that may declare latches, producing a
/// [`SeqAig`] (latch current-state variables become trailing core PIs,
/// next-state literals trailing core POs, AIGER's zero-initialisation
/// convention).
///
/// A combinational file (`L = 0`) parses to a zero-latch machine.
///
/// # Errors
/// Returns [`ParseAigerError`] on I/O failure, malformed input, or a latch
/// with a non-zero (AIGER 1.9) reset value — only the zero-initialised
/// subset is supported.
pub fn read_seq_aag<R: BufRead>(reader: R) -> Result<SeqAig, ParseAigerError> {
    let p = parse_aag(reader, true)?;
    Ok(SeqAig::new(p.core, p.inputs, p.latches))
}

/// Parse result of [`parse_aag`]: the combinational core in [`SeqAig`]
/// layout (real PIs then latch outputs; real POs then latch next-states).
struct ParsedAag {
    core: Aig,
    inputs: usize,
    latches: usize,
}

fn parse_aag<R: BufRead>(mut reader: R, allow_latches: bool) -> Result<ParsedAag, ParseAigerError> {
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("aag") {
        return Err(malformed("expected 'aag' magic"));
    }
    let nums: Vec<u32> = parts
        .map(|p| p.parse().map_err(|_| malformed("non-numeric header field")))
        .collect::<Result<_, _>>()?;
    if nums.len() < 5 {
        return Err(malformed("header needs five fields M I L O A"));
    }
    if nums.len() > 5 {
        return Err(malformed(
            "extended header fields (B C J F sections) are not supported",
        ));
    }
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if l != 0 && !allow_latches {
        return Err(ParseAigerError::Sequential);
    }
    if m > MAX_HEADER_VARS {
        return Err(malformed(format!(
            "header M = {m} exceeds the supported maximum {MAX_HEADER_VARS}"
        )));
    }
    // Checked: `I + L + A` near u32::MAX must be an error, not a wrap.
    let declared = i
        .checked_add(l)
        .and_then(|x| x.checked_add(a))
        .ok_or_else(|| malformed("header counts I + L + A overflow"))?;
    if m < declared {
        return Err(malformed("M smaller than I + L + A"));
    }

    let mut lines = reader.lines();
    let mut next_line = || -> Result<String, ParseAigerError> {
        lines
            .next()
            .ok_or_else(|| malformed("unexpected end of file"))?
            .map_err(ParseAigerError::Io)
    };

    // AIGER var -> our literal. Grown lazily towards `m + 1` as variables
    // are defined, so memory tracks the definitions actually present in
    // the file rather than the header's claim.
    let mut map: Vec<Option<Lit>> = vec![None; (m as usize + 1).min(4096)];
    map[0] = Some(Lit::FALSE);
    let mut g = Aig::with_capacity(cap_hint(m) + 1);

    let mut pi_vars = Vec::with_capacity(cap_hint(i));
    for _ in 0..i {
        let line = next_line()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| malformed("bad input literal"))?;
        if !lit.is_multiple_of(2) || lit == 0 {
            return Err(malformed("input literal must be positive and even"));
        }
        pi_vars.push(lit / 2);
    }

    // Latch lines: `current next [init]`. The current-state literal defines
    // a variable (a core PI after the real inputs); the next-state literal
    // is resolved after the AND section like an output.
    let mut latch_next = Vec::with_capacity(cap_hint(l));
    for _ in 0..l {
        let line = next_line()?;
        let mut it = line.split_whitespace();
        let mut field = || -> Result<u32, ParseAigerError> {
            it.next()
                .ok_or_else(|| malformed("latch line too short"))?
                .parse()
                .map_err(|_| malformed("bad latch literal"))
        };
        let (cur, next) = (field()?, field()?);
        if cur % 2 != 0 || cur == 0 {
            return Err(malformed("latch literal must be positive and even"));
        }
        if let Some(init) = it.next() {
            // AIGER 1.9 reset value; only the default 0 is supported.
            if init != "0" {
                return Err(malformed("only zero-initialised latches are supported"));
            }
        }
        if it.next().is_some() {
            return Err(malformed("trailing tokens on latch line"));
        }
        pi_vars.push(cur / 2);
        latch_next.push(next);
    }
    for &v in &pi_vars {
        // `v <= m` is a header promise, not a fact about the body.
        if v > m {
            return Err(malformed(format!(
                "variable {v} exceeds the header maximum"
            )));
        }
        if v as usize >= map.len() {
            map.resize(v as usize + 1, None);
        }
        let slot = &mut map[v as usize];
        if slot.is_some() {
            return Err(malformed("duplicate variable definition"));
        }
        *slot = Some(g.add_pi());
    }

    let mut po_lits = Vec::with_capacity(cap_hint(o));
    for _ in 0..o {
        let line = next_line()?;
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| malformed("bad output literal"))?;
        po_lits.push(lit);
    }

    // AND definitions may reference later definitions in pathological files;
    // standard AIGER requires lhs > rhs, so a single pass suffices and we
    // reject forward references.
    for _ in 0..a {
        let line = next_line()?;
        let mut it = line.split_whitespace();
        let mut field = || -> Result<u32, ParseAigerError> {
            it.next()
                .ok_or_else(|| malformed("and line too short"))?
                .parse()
                .map_err(|_| malformed("bad and literal"))
        };
        let (lhs, rhs0, rhs1) = (field()?, field()?, field()?);
        if lhs % 2 != 0 || lhs == 0 {
            return Err(malformed("and lhs must be positive and even"));
        }
        let v = lhs / 2;
        if v > m {
            return Err(malformed("and lhs redefined or out of range"));
        }
        if v as usize >= map.len() {
            map.resize(v as usize + 1, None);
        }
        if map[v as usize].is_some() {
            return Err(malformed("and lhs redefined or out of range"));
        }
        let lookup = |raw: u32, map: &[Option<Lit>]| -> Result<Lit, ParseAigerError> {
            let var = raw / 2;
            let base = map
                .get(var as usize)
                .copied()
                .flatten()
                .ok_or_else(|| malformed(format!("reference to undefined variable {var}")))?;
            Ok(base.xor_compl(raw % 2 == 1))
        };
        let f0 = lookup(rhs0, &map)?;
        let f1 = lookup(rhs1, &map)?;
        map[v as usize] = Some(g.and(f0, f1));
    }

    // Real POs first, then latch next-state functions (SeqAig layout).
    for raw in po_lits.into_iter().chain(latch_next) {
        let var = raw / 2;
        let base = map
            .get(var as usize)
            .copied()
            .flatten()
            .ok_or_else(|| malformed(format!("output references undefined variable {var}")))?;
        g.add_po(base.xor_compl(raw % 2 == 1));
    }
    Ok(ParsedAag {
        core: g,
        inputs: i as usize,
        latches: l as usize,
    })
}

/// Writes the graph in ASCII AIGER (`aag`) format.
///
/// Nodes are renumbered densely: PIs get AIGER variables `1..=I`, AND gates
/// follow in topological order.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_aag<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let renum = renumber(aig);
    let i = aig.num_pis() as u32;
    let a = aig.num_ands() as u32;
    let m = i + a;
    writeln!(w, "aag {m} {i} 0 {} {a}", aig.num_pos())?;
    for k in 0..aig.num_pis() {
        writeln!(w, "{}", 2 * (k as u32 + 1))?;
    }
    for po in aig.pos() {
        writeln!(w, "{}", encode(&renum, *po))?;
    }
    for v in aig.iter_ands() {
        let n = aig.node(v);
        writeln!(
            w,
            "{} {} {}",
            2 * renum[v as usize],
            encode(&renum, n.fanin0()),
            encode(&renum, n.fanin1())
        )?;
    }
    Ok(())
}

/// Writes a sequential machine in ASCII AIGER (`aag`) format.
///
/// Inverse of [`read_seq_aag`]: real PIs get AIGER variables `1..=I`, latch
/// current-state variables `I+1..=I+L`, AND gates follow in topological
/// order. Latches are written zero-initialised (no explicit reset field).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_seq_aag<W: Write>(seq: &SeqAig, mut w: W) -> io::Result<()> {
    let core = seq.comb();
    let renum = renumber(core);
    let i = seq.num_pis() as u32;
    let l = seq.num_latches() as u32;
    let o = seq.num_pos() as u32;
    let a = core.num_ands() as u32;
    let m = i + l + a;
    writeln!(w, "aag {m} {i} {l} {o} {a}")?;
    // `renumber` assigns core PIs 1..=(I+L) in order: real inputs first,
    // then latch outputs — exactly the header's variable layout.
    for k in 0..i {
        writeln!(w, "{}", 2 * (k + 1))?;
    }
    for j in 0..l {
        let cur = 2 * (i + j + 1);
        let next = encode(&renum, core.pos()[(o + j) as usize]);
        writeln!(w, "{cur} {next}")?;
    }
    for po in &core.pos()[..o as usize] {
        writeln!(w, "{}", encode(&renum, *po))?;
    }
    for v in core.iter_ands() {
        let n = core.node(v);
        writeln!(
            w,
            "{} {} {}",
            2 * renum[v as usize],
            encode(&renum, n.fanin0()),
            encode(&renum, n.fanin1())
        )?;
    }
    Ok(())
}

/// Serialises a sequential machine to an in-memory `aag` string.
pub fn to_seq_aag_string(seq: &SeqAig) -> String {
    let mut buf = Vec::new();
    write_seq_aag(seq, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("aag output is ASCII")
}

/// Parses an in-memory `aag` string as a sequential machine.
///
/// # Errors
/// Same as [`read_seq_aag`].
pub fn from_seq_aag_str(s: &str) -> Result<SeqAig, ParseAigerError> {
    read_seq_aag(s.as_bytes())
}

/// Writes the graph in binary AIGER (`aig`) format.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_aig_binary<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let renum = renumber(aig);
    let i = aig.num_pis() as u32;
    let a = aig.num_ands() as u32;
    let m = i + a;
    writeln!(w, "aig {m} {i} 0 {} {a}", aig.num_pos())?;
    for po in aig.pos() {
        writeln!(w, "{}", encode(&renum, *po))?;
    }
    for v in aig.iter_ands() {
        let n = aig.node(v);
        let lhs = 2 * renum[v as usize];
        let mut r0 = encode(&renum, n.fanin0());
        let mut r1 = encode(&renum, n.fanin1());
        if r0 < r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        debug_assert!(lhs > r0 && r0 >= r1);
        write_delta(&mut w, lhs - r0)?;
        write_delta(&mut w, r0 - r1)?;
    }
    Ok(())
}

/// Reads a binary AIGER (`aig`) file.
///
/// # Errors
/// Returns [`ParseAigerError`] on I/O failure, malformed input, or latches.
pub fn read_aig_binary<R: BufRead>(mut reader: R) -> Result<Aig, ParseAigerError> {
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("aig") {
        return Err(malformed("expected 'aig' magic"));
    }
    let nums: Vec<u32> = parts
        .map(|p| p.parse().map_err(|_| malformed("non-numeric header field")))
        .collect::<Result<_, _>>()?;
    if nums.len() < 5 {
        return Err(malformed("header needs five fields M I L O A"));
    }
    if nums.len() > 5 {
        return Err(malformed(
            "extended header fields (B C J F sections) are not supported",
        ));
    }
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if l != 0 {
        return Err(ParseAigerError::Sequential);
    }
    if m > MAX_HEADER_VARS {
        return Err(malformed(format!(
            "header M = {m} exceeds the supported maximum {MAX_HEADER_VARS}"
        )));
    }
    if i.checked_add(a) != Some(m) {
        return Err(malformed("binary aiger requires M = I + A"));
    }
    let mut po_lits = Vec::with_capacity(cap_hint(o));
    for _ in 0..o {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        po_lits.push(
            line.trim()
                .parse::<u32>()
                .map_err(|_| malformed("bad output literal"))?,
        );
    }
    let mut g = Aig::with_capacity(cap_hint(m) + 1);
    let mut map: Vec<Lit> = Vec::with_capacity(cap_hint(m) + 1);
    map.push(Lit::FALSE);
    for _ in 0..i {
        map.push(g.add_pi());
    }
    for k in 0..a {
        let lhs = 2 * (i + k + 1);
        let d0 = read_delta(&mut reader)?;
        let d1 = read_delta(&mut reader)?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| malformed("delta underflow"))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| malformed("delta underflow"))?;
        let decode = |raw: u32, map: &[Lit]| -> Result<Lit, ParseAigerError> {
            let var = (raw / 2) as usize;
            if var >= map.len() {
                return Err(malformed("forward reference in binary aiger"));
            }
            Ok(map[var].xor_compl(raw % 2 == 1))
        };
        let f0 = decode(r0, &map)?;
        let f1 = decode(r1, &map)?;
        map.push(g.and(f0, f1));
    }
    for raw in po_lits {
        let var = (raw / 2) as usize;
        if var >= map.len() {
            return Err(malformed("output references undefined variable"));
        }
        g.add_po(map[var].xor_compl(raw % 2 == 1));
    }
    Ok(g)
}

fn write_delta<W: Write>(w: &mut W, mut delta: u32) -> io::Result<()> {
    loop {
        let byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_delta<R: Read>(r: &mut R) -> Result<u32, ParseAigerError> {
    let mut out = 0u32;
    let mut shift = 0;
    loop {
        let mut byte = [0u8];
        r.read_exact(&mut byte)?;
        out |= ((byte[0] & 0x7F) as u32) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 28 {
            return Err(malformed("delta too large"));
        }
    }
}

/// Dense renumbering: our node index -> AIGER variable.
fn renumber(aig: &Aig) -> Vec<u32> {
    let mut renum = vec![0u32; aig.num_nodes()];
    let mut next = 1u32;
    for &pi in aig.pis() {
        renum[pi as usize] = next;
        next += 1;
    }
    for v in aig.iter_ands() {
        renum[v as usize] = next;
        next += 1;
    }
    renum
}

fn encode(renum: &[u32], lit: Lit) -> u32 {
    2 * renum[lit.var() as usize] + lit.is_compl() as u32
}

/// Serialises to an in-memory `aag` string (convenience for tests/examples).
pub fn to_aag_string(aig: &Aig) -> String {
    let mut buf = Vec::new();
    write_aag(aig, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("aag output is ASCII")
}

/// Parses an in-memory `aag` string.
///
/// # Errors
/// Same as [`read_aag`].
pub fn from_aag_str(s: &str) -> Result<Aig, ParseAigerError> {
    read_aag(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor(a, b);
        let y = g.mux(c, x, !a);
        g.add_po(y);
        g.add_po(!x);
        g
    }

    #[test]
    fn aag_roundtrip_preserves_function() {
        let g = sample();
        let text = to_aag_string(&g);
        let h = from_aag_str(&text).unwrap();
        assert_eq!(h.num_pis(), g.num_pis());
        assert_eq!(h.num_pos(), g.num_pos());
        for m in 0..8usize {
            let ins: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(g.eval(&ins), h.eval(&ins), "m={m}");
        }
    }

    #[test]
    fn binary_roundtrip_preserves_function() {
        let g = sample();
        let mut buf = Vec::new();
        write_aig_binary(&g, &mut buf).unwrap();
        let h = read_aig_binary(std::io::Cursor::new(buf)).unwrap();
        for m in 0..8usize {
            let ins: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(g.eval(&ins), h.eval(&ins), "m={m}");
        }
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(
            from_aag_str(text),
            Err(ParseAigerError::Sequential)
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_aag_str("not an aiger file").is_err());
        assert!(from_aag_str("aag 1 1").is_err());
        assert!(
            from_aag_str("aag 1 1 0 0 0\n3\n").is_err(),
            "odd input literal"
        );
    }

    #[test]
    fn constant_outputs() {
        let mut g = Aig::new();
        g.add_po(Lit::TRUE);
        g.add_po(Lit::FALSE);
        let text = to_aag_string(&g);
        let h = from_aag_str(&text).unwrap();
        assert_eq!(h.eval(&[]), vec![true, false]);
    }

    /// Enable-gated n-bit counter machine (for sequential I/O tests).
    fn counter(n: usize) -> SeqAig {
        let mut g = Aig::new();
        let en = g.add_pi();
        let state: Vec<Lit> = (0..n).map(|_| g.add_pi()).collect();
        let mut carry = en;
        let mut next = Vec::with_capacity(n);
        for &s in &state {
            next.push(g.xor(s, carry));
            carry = g.and(s, carry);
        }
        let all_ones = g.and_many(&state);
        g.add_po(all_ones);
        for nx in next {
            g.add_po(nx);
        }
        SeqAig::new(g, 1, n)
    }

    #[test]
    fn seq_roundtrip_preserves_behaviour() {
        let m = counter(3);
        let text = to_seq_aag_string(&m);
        let h = from_seq_aag_str(&text).unwrap();
        assert_eq!(h.num_pis(), 1);
        assert_eq!(h.num_latches(), 3);
        assert_eq!(h.num_pos(), 1);
        for pattern in 0..64u32 {
            let stimulus: Vec<Vec<bool>> =
                (0..10).map(|t| vec![pattern >> (t % 6) & 1 != 0]).collect();
            assert_eq!(
                m.simulate(&stimulus),
                h.simulate(&stimulus),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn parses_toggle_flip_flop() {
        // The AIGER spec's toggle flip-flop: one latch, next = ¬current,
        // outputs Q and ¬Q.
        let text = "aag 1 0 1 2 0\n2 3\n2\n3\n";
        let m = from_seq_aag_str(text).unwrap();
        assert_eq!((m.num_pis(), m.num_latches(), m.num_pos()), (0, 1, 2));
        let outs = m.simulate(&[vec![], vec![], vec![]]);
        assert_eq!(outs[0], vec![false, true]);
        assert_eq!(outs[1], vec![true, false]);
        assert_eq!(outs[2], vec![false, true]);
    }

    #[test]
    fn seq_reader_accepts_combinational_files() {
        let g = sample();
        let text = to_aag_string(&g);
        let m = from_seq_aag_str(&text).unwrap();
        assert_eq!(m.num_latches(), 0);
        assert_eq!(m.num_pis(), g.num_pis());
        let outs = m.simulate(&[vec![true, false, true]]);
        assert_eq!(outs[0], g.eval(&[true, false, true]));
    }

    #[test]
    fn out_of_range_variables_are_errors_not_panics() {
        // Input and latch variables above the header's M must fail
        // gracefully (regression: these used to index out of bounds).
        assert!(matches!(
            from_aag_str("aag 1 1 0 0 0\n4\n"),
            Err(ParseAigerError::Malformed(_))
        ));
        assert!(matches!(
            from_seq_aag_str("aag 1 0 1 0 0\n4 2\n"),
            Err(ParseAigerError::Malformed(_))
        ));
    }

    #[test]
    fn seq_reader_rejects_nonzero_reset() {
        // AIGER 1.9 reset fields: 0 accepted, anything else rejected.
        assert!(from_seq_aag_str("aag 1 0 1 0 0\n2 3 0\n").is_ok());
        assert!(matches!(
            from_seq_aag_str("aag 1 0 1 0 0\n2 3 1\n"),
            Err(ParseAigerError::Malformed(_))
        ));
        assert!(from_seq_aag_str("aag 1 0 1 0 0\n2 3 0 7\n").is_err());
        assert!(
            from_seq_aag_str("aag 1 0 1 0 0\n3 2\n").is_err(),
            "odd latch literal"
        );
    }

    #[test]
    fn combinational_reader_still_rejects_latches() {
        // The latch file parses sequentially but stays rejected by the
        // combinational entry point.
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(from_seq_aag_str(text).is_ok());
        assert!(matches!(
            from_aag_str(text),
            Err(ParseAigerError::Sequential)
        ));
    }

    #[test]
    fn parses_known_example() {
        // AND of two inputs, from the AIGER spec.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let g = from_aag_str(text).unwrap();
        assert_eq!(g.num_pis(), 2);
        assert_eq!(g.num_ands(), 1);
        assert_eq!(g.eval(&[true, true]), vec![true]);
        assert_eq!(g.eval(&[true, false]), vec![false]);
    }
}
