//! Exact NPN canonisation of 4-variable functions.
//!
//! Two functions are NPN-equivalent when one can be obtained from the other
//! by Negating inputs, Permuting inputs, and/or Negating the output. The
//! 65 536 four-variable functions fall into 222 NPN classes; DAG-aware
//! rewriting keeps one pre-computed optimal structure per class and
//! instantiates it through the recorded transform.

use crate::lit::Lit;
use std::sync::{Mutex, OnceLock};

/// An NPN transform `T` acting on 4-variable functions.
///
/// Semantics (with `fl_i` = bit `i` of `flips`):
///
/// ```text
/// (T·F)(x0, x1, x2, x3) = out ⊕ F(x_{p[0]} ⊕ fl_0, ..., x_{p[3]} ⊕ fl_3)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NpnTransform {
    /// Input permutation: variable `i` of `F` reads `x_{perm[i]}`.
    pub perm: [u8; 4],
    /// Input complementations, one bit per variable of `F`.
    pub flips: u8,
    /// Output complementation.
    pub out: bool,
}

impl NpnTransform {
    /// The identity transform.
    pub const IDENTITY: NpnTransform = NpnTransform {
        perm: [0, 1, 2, 3],
        flips: 0,
        out: false,
    };

    /// Applies the transform to a truth table.
    pub fn apply(&self, f: u16) -> u16 {
        let mut g = 0u16;
        for m in 0..16u32 {
            // y_i = x_{p[i]} ^ fl_i, where x bits come from m.
            let mut y = 0u32;
            for i in 0..4 {
                let xb = m >> self.perm[i] & 1;
                y |= (xb ^ (self.flips as u32 >> i & 1)) << i;
            }
            if f >> y & 1 != 0 {
                g |= 1 << m;
            }
        }
        if self.out {
            g = !g;
        }
        g
    }

    /// Given concrete leaf literals for `F`'s inputs, produces the leaf
    /// literals (and output complement) with which a structure implementing
    /// `T·F` realises `F(leaves)`:
    ///
    /// ```text
    /// F(l_0..l_3) = out ⊕ (T·F)(w_0..w_3)   with  w_j = l_{p⁻¹(j)} ⊕ fl_{p⁻¹(j)}
    /// ```
    pub fn instantiate(&self, leaves: &[Lit; 4]) -> ([Lit; 4], bool) {
        let mut pinv = [0usize; 4];
        for (i, &p) in self.perm.iter().enumerate() {
            pinv[p as usize] = i;
        }
        let mut w = [Lit::FALSE; 4];
        for (j, wj) in w.iter_mut().enumerate() {
            let i = pinv[j];
            *wj = leaves[i].xor_compl(self.flips >> i & 1 != 0);
        }
        (w, self.out)
    }
}

/// All 24 permutations of four elements.
fn permutations4() -> &'static [[u8; 4]; 24] {
    static PERMS: OnceLock<[[u8; 4]; 24]> = OnceLock::new();
    PERMS.get_or_init(|| {
        let mut out = [[0u8; 4]; 24];
        let mut idx = 0;
        for a in 0..4u8 {
            for b in 0..4u8 {
                if b == a {
                    continue;
                }
                for c in 0..4u8 {
                    if c == a || c == b {
                        continue;
                    }
                    let d = (0..4u8).find(|&d| d != a && d != b && d != c).unwrap();
                    out[idx] = [a, b, c, d];
                    idx += 1;
                }
            }
        }
        debug_assert_eq!(idx, 24);
        out
    })
}

/// Minterm-mapping tables for every (perm, flips) pair: `maps[p][fl][m]`
/// is the source minterm `F` is read at when producing bit `m` of `T·F`.
fn minterm_maps() -> &'static Vec<[[u8; 16]; 16]> {
    static MAPS: OnceLock<Vec<[[u8; 16]; 16]>> = OnceLock::new();
    MAPS.get_or_init(|| {
        let perms = permutations4();
        let mut all = Vec::with_capacity(24);
        for perm in perms.iter() {
            let mut per_flip = [[0u8; 16]; 16];
            for (fl, row) in per_flip.iter_mut().enumerate() {
                for (m, slot) in row.iter_mut().enumerate() {
                    let mut y = 0usize;
                    for i in 0..4 {
                        let xb = m >> perm[i] & 1;
                        y |= (xb ^ (fl >> i & 1)) << i;
                    }
                    *slot = y as u8;
                }
            }
            all.push(per_flip);
        }
        all
    })
}

fn apply_with_map(f: u16, map: &[u8; 16], out: bool) -> u16 {
    let mut g = 0u16;
    for (m, &src) in map.iter().enumerate() {
        if f >> src & 1 != 0 {
            g |= 1 << m;
        }
    }
    if out {
        !g
    } else {
        g
    }
}

/// Computes the NPN-canonical representative of `f` and a transform with
/// `canon == transform.apply(f)`.
///
/// The canonical form is the numerically smallest table reachable by any of
/// the 768 NPN transforms, so all members of a class share one canon.
///
/// ```
/// use aig::npn::npn_canon;
/// let (c1, _) = npn_canon(0x8888); // x0 & x1
/// let (c2, _) = npn_canon(0xEEEE); // x0 | x1  (NPN-equivalent to AND)
/// assert_eq!(c1, c2);
/// ```
pub fn npn_canon(f: u16) -> (u16, NpnTransform) {
    let perms = permutations4();
    let maps = minterm_maps();
    let mut best = u16::MAX;
    let mut best_t = NpnTransform::IDENTITY;
    for (pi, perm) in perms.iter().enumerate() {
        for fl in 0..16u8 {
            let map = &maps[pi][fl as usize];
            for out in [false, true] {
                let g = apply_with_map(f, map, out);
                if g < best {
                    best = g;
                    best_t = NpnTransform {
                        perm: *perm,
                        flips: fl,
                        out,
                    };
                }
            }
        }
    }
    (best, best_t)
}

/// Memoised variant of [`npn_canon`]; the cache is global and thread-safe.
pub fn npn_canon_cached(f: u16) -> (u16, NpnTransform) {
    static CACHE: OnceLock<Mutex<crate::hash::FastMap<u16, (u16, NpnTransform)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(crate::hash::FastMap::default()));
    {
        let guard = cache.lock().unwrap();
        if let Some(&hit) = guard.get(&f) {
            return hit;
        }
    }
    let res = npn_canon(f);
    cache.lock().unwrap().insert(f, res);
    res
}

/// Enumerates one representative per NPN class of 4-variable functions.
///
/// There are exactly 222 classes; this is used to pre-build the rewriting
/// library and verified in tests.
pub fn npn_class_representatives() -> Vec<u16> {
    let mut seen = crate::hash::FastSet::default();
    let mut reps = Vec::new();
    for f in 0..=u16::MAX {
        let (c, _) = npn_canon_cached(f);
        if seen.insert(c) {
            reps.push(c);
        }
    }
    reps.sort_unstable();
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identity_applies_trivially() {
        for f in [0x0000u16, 0xFFFF, 0x8888, 0x6666, 0xCAFE] {
            assert_eq!(NpnTransform::IDENTITY.apply(f), f);
        }
    }

    #[test]
    fn canon_is_invariant_under_transforms() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let f: u16 = rng.gen();
            let (c, _) = npn_canon(f);
            // Apply a random transform, canonise again: same canon.
            let t = NpnTransform {
                perm: *rand_perm(&mut rng),
                flips: rng.gen::<u8>() & 0xF,
                out: rng.gen(),
            };
            let g = t.apply(f);
            let (c2, _) = npn_canon(g);
            assert_eq!(c, c2, "f={f:#06x} g={g:#06x}");
        }
    }

    fn rand_perm(rng: &mut impl Rng) -> &'static [u8; 4] {
        &permutations4()[rng.gen_range(0..24usize)]
    }

    #[test]
    fn transform_reaches_canon() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let f: u16 = rng.gen();
            let (c, t) = npn_canon(f);
            assert_eq!(t.apply(f), c);
        }
    }

    #[test]
    fn exactly_222_classes() {
        assert_eq!(npn_class_representatives().len(), 222);
    }

    #[test]
    fn instantiate_consistency() {
        // Semantic check of `instantiate`: evaluate F on random leaf values
        // and check out ^ (T·F)(w) matches, where w is built per instantiate.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let f: u16 = rng.gen();
            let t = NpnTransform {
                perm: *rand_perm(&mut rng),
                flips: rng.gen::<u8>() & 0xF,
                out: rng.gen(),
            };
            let g = t.apply(f);
            // Represent leaf literals as plain booleans with optional
            // complement: leaf i has value v[i]; Lit complement = XOR.
            let vals: [bool; 4] = [rng.gen(), rng.gen(), rng.gen(), rng.gen()];
            let leaves = [
                Lit::from_var(10, false),
                Lit::from_var(11, false),
                Lit::from_var(12, false),
                Lit::from_var(13, false),
            ];
            let (w, out) = t.instantiate(&leaves);
            // Evaluate F(vals).
            let mf = (0..4).fold(0u16, |acc, i| acc | (vals[i] as u16) << i);
            let lhs = f >> mf & 1 != 0;
            // Evaluate out ^ G(w-values).
            let wval = |l: Lit| -> bool {
                let base = vals[(l.var() - 10) as usize];
                base ^ l.is_compl()
            };
            let mg = (0..4).fold(0u16, |acc, j| acc | (wval(w[j]) as u16) << j);
            let rhs = out ^ (g >> mg & 1 != 0);
            assert_eq!(lhs, rhs, "f={f:#06x} t={t:?}");
        }
    }

    #[test]
    fn cached_matches_uncached() {
        for f in [0u16, 1, 0x1234, 0xFFFF, 0x8000] {
            assert_eq!(npn_canon_cached(f), npn_canon(f));
        }
    }
}
