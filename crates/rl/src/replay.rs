//! Experience replay buffer.

use rand::rngs::StdRng;
use rand::Rng;

/// One transition `(s, a, r, s', done)`.
#[derive(Clone, Debug)]
pub struct Transition {
    /// State vector.
    pub state: Vec<f64>,
    /// Action index.
    pub action: usize,
    /// Reward received.
    pub reward: f64,
    /// Next state (unused when `done`).
    pub next_state: Vec<f64>,
    /// Episode terminated after this transition.
    pub done: bool,
}

/// Fixed-capacity ring buffer with uniform sampling.
#[derive(Clone, Debug)]
pub struct ReplayBuffer {
    buf: Vec<Transition>,
    capacity: usize,
    next: usize,
}

impl ReplayBuffer {
    /// A buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> ReplayBuffer {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Inserts a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.next] = t;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Samples `n` transitions uniformly with replacement.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    pub fn sample<'a>(&'a self, n: usize, rng: &mut StdRng) -> Vec<&'a Transition> {
        assert!(!self.buf.is_empty(), "cannot sample from an empty buffer");
        (0..n)
            .map(|_| &self.buf[rng.gen_range(0..self.buf.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition {
            state: vec![r],
            action: 0,
            reward: r,
            next_state: vec![r],
            done: false,
        }
    }

    #[test]
    fn ring_eviction() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        // Oldest two evicted: remaining rewards are 2, 3, 4.
        let rewards: Vec<f64> = b.buf.iter().map(|x| x.reward).collect();
        let mut sorted = rewards.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sampling() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(4);
        let s = b.sample(32, &mut rng);
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|x| x.reward >= 0.0 && x.reward < 10.0));
    }
}
