//! Dense row-major matrices — the minimal linear algebra the DQN needs.

use rand::rngs::StdRng;
use rand::Rng;

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialised matrix.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Flat parameter view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable parameter view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = self * x` for a column vector `x` (`len == cols`).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// `y = selfᵀ * x` for a column vector `x` (`len == rows`).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &w) in row.iter().enumerate() {
                y[c] += w * x[r];
            }
        }
        y
    }

    /// Accumulates the outer product `out += a * bᵀ` into `self`
    /// (`a.len() == rows`, `b.len() == cols`).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), self.rows, "outer product rows mismatch");
        assert_eq!(b.len(), self.cols, "outer product cols mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (c, w) in row.iter_mut().enumerate() {
                *w += a[r] * b[c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_basics() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn xavier_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0f64 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&w| w.abs() <= bound));
        assert!(m.as_slice().iter().any(|&w| w != 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_shape_checked() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
