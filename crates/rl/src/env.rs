//! The synthesis MDP environment (Sec. III-B1/III-B4/III-B5).
//!
//! State: the six circuit features of the current netlist concatenated with
//! the fixed embedding of the initial netlist (Eq. 2). Actions: the four
//! synthesis operations plus `end`. Reward: zero until termination, then
//! the reduction in SAT-solver branching decisions between the initial and
//! final instance, both measured through the full preprocessing tail
//! (cost-customised LUT mapping + `lut2cnf`) — Eq. (3).

use crate::embedding::{instance_embedding, EMB_DIM};
use crate::features::{circuit_features, FeatureBaseline};
use aig::Aig;
use cnf::lut_to_cnf_sat_instance;
use mapper::{map_luts, BranchingCost, MapParams};
use sat::{solve_cnf, Budget, SolverConfig};
use synth::{apply_op, SynthOp};

/// Number of discrete actions (four operations + `end`).
pub const NUM_ACTIONS: usize = 5;
/// Dimension of the state vector.
pub const STATE_DIM: usize = 6 + EMB_DIM;

/// Maps an action index to a synthesis operation (`None` = `end`).
pub fn action_op(action: usize) -> Option<SynthOp> {
    match action {
        0 => Some(SynthOp::Balance),
        1 => Some(SynthOp::Rewrite),
        2 => Some(SynthOp::Refactor),
        3 => Some(SynthOp::Resub),
        4 => None,
        _ => panic!("action index {action} out of range"),
    }
}

/// Environment configuration.
#[derive(Clone, Debug)]
pub struct EnvConfig {
    /// Maximum episode length `T` (the paper uses 10).
    pub max_steps: usize,
    /// LUT-mapping parameters used by the reward tail.
    pub mapper: MapParams,
    /// Solver preset used to count branchings.
    pub solver: SolverConfig,
    /// Budget applied to reward-measurement solves (keeps training cheap).
    pub budget: Budget,
    /// Scale the terminal reward by the initial branching count
    /// (stabilises Q-learning; the argmax over recipes is unchanged).
    pub normalize_reward: bool,
}

impl Default for EnvConfig {
    fn default() -> EnvConfig {
        EnvConfig {
            max_steps: 10,
            mapper: MapParams::default(),
            solver: SolverConfig::kissat_like(),
            budget: Budget::conflicts(20_000),
            normalize_reward: true,
        }
    }
}

/// Counts SAT branching decisions for an AIG through the framework's tail:
/// branching-cost LUT mapping, ISOP CNF encoding, one (budgeted) solve.
pub fn measure_branchings(
    aig: &Aig,
    mapper_params: &MapParams,
    solver: &SolverConfig,
    budget: Budget,
) -> u64 {
    let net = map_luts(aig, mapper_params, &BranchingCost::new());
    let (formula, _) = lut_to_cnf_sat_instance(&net);
    let (_, stats) = solve_cnf(&formula, solver.clone(), budget);
    stats.decisions
}

/// Result of one environment step.
#[derive(Clone, Debug)]
pub struct Step {
    /// State after the transition.
    pub state: Vec<f64>,
    /// Reward (non-zero only on the terminal step).
    pub reward: f64,
    /// Episode finished.
    pub done: bool,
}

/// One episode's environment around a single CSAT instance.
#[derive(Clone, Debug)]
pub struct SynthEnv {
    cfg: EnvConfig,
    baseline: FeatureBaseline,
    embedding: Vec<f64>,
    current: Aig,
    steps: usize,
    init_branchings: u64,
    /// When false, terminal rewards are not computed (deployment rollouts).
    training: bool,
}

impl SynthEnv {
    /// Starts a *training* episode: the initial branching count is measured
    /// up front so the terminal reward can be computed.
    pub fn new_training(instance: &Aig, cfg: EnvConfig) -> SynthEnv {
        let init = measure_branchings(instance, &cfg.mapper, &cfg.solver, cfg.budget.clone());
        SynthEnv {
            baseline: FeatureBaseline::of(instance),
            embedding: instance_embedding(instance),
            current: instance.clone(),
            steps: 0,
            init_branchings: init,
            training: true,
            cfg,
        }
    }

    /// Starts a *deployment* episode: no reward measurement (no solving).
    pub fn new_rollout(instance: &Aig, cfg: EnvConfig) -> SynthEnv {
        SynthEnv {
            baseline: FeatureBaseline::of(instance),
            embedding: instance_embedding(instance),
            current: instance.clone(),
            steps: 0,
            init_branchings: 0,
            training: false,
            cfg,
        }
    }

    /// The current state vector `s_t = [E(G_t), D(G_0)]`.
    pub fn state(&self) -> Vec<f64> {
        let mut s = Vec::with_capacity(STATE_DIM);
        s.extend_from_slice(&circuit_features(&self.current, &self.baseline));
        s.extend_from_slice(&self.embedding);
        s
    }

    /// The current netlist.
    pub fn current(&self) -> &Aig {
        &self.current
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps
    }

    /// Initial branching count (training episodes only).
    pub fn initial_branchings(&self) -> u64 {
        self.init_branchings
    }

    /// Applies one action.
    ///
    /// # Panics
    /// Panics if called after the episode finished.
    pub fn step(&mut self, action: usize) -> Step {
        assert!(self.steps < self.cfg.max_steps, "episode already finished");
        let op = action_op(action);
        let done = match op {
            None => true,
            Some(op) => {
                self.current = apply_op(&self.current, op);
                self.steps += 1;
                self.steps >= self.cfg.max_steps
            }
        };
        let reward = if done && self.training {
            let fin = measure_branchings(
                &self.current,
                &self.cfg.mapper,
                &self.cfg.solver,
                self.cfg.budget.clone(),
            );
            let delta = self.init_branchings as f64 - fin as f64;
            if self.cfg.normalize_reward {
                delta / (self.init_branchings.max(1) as f64)
            } else {
                delta
            }
        } else {
            0.0
        };
        Step {
            state: self.state(),
            reward,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::datapath::ripple_carry_adder;
    use workloads::lec::{inject_bug, miter};

    fn small_instance() -> Aig {
        let a = ripple_carry_adder(4);
        let buggy = inject_bug(&a.aig, 3, 50).expect("bug");
        miter(&a.aig, &buggy)
    }

    #[test]
    fn state_has_fixed_dim() {
        let inst = small_instance();
        let env = SynthEnv::new_rollout(&inst, EnvConfig::default());
        assert_eq!(env.state().len(), STATE_DIM);
    }

    #[test]
    fn end_action_terminates_immediately() {
        let inst = small_instance();
        let mut env = SynthEnv::new_training(&inst, EnvConfig::default());
        let step = env.step(4);
        assert!(step.done);
        // End with no ops: zero improvement => zero reward.
        assert_eq!(step.reward, 0.0);
    }

    #[test]
    fn episode_caps_at_max_steps() {
        let inst = small_instance();
        let cfg = EnvConfig {
            max_steps: 2,
            ..EnvConfig::default()
        };
        let mut env = SynthEnv::new_rollout(&inst, cfg);
        let s1 = env.step(0);
        assert!(!s1.done);
        let s2 = env.step(1);
        assert!(s2.done);
    }

    #[test]
    fn ops_preserve_instance_function() {
        let inst = small_instance();
        let mut env = SynthEnv::new_rollout(&inst, EnvConfig::default());
        env.step(0);
        env.step(1);
        env.step(3);
        assert!(aig::check::sim_equiv(&inst, env.current(), 8, 3));
    }

    #[test]
    fn measure_branchings_is_finite_and_deterministic() {
        let inst = small_instance();
        let cfg = EnvConfig::default();
        let a = measure_branchings(&inst, &cfg.mapper, &cfg.solver, cfg.budget.clone());
        let b = measure_branchings(&inst, &cfg.mapper, &cfg.solver, cfg.budget);
        assert_eq!(a, b);
    }
}
