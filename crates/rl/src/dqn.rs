//! Deep Q-learning agent (Sec. III-B6).
//!
//! Standard DQN: an MLP Q-network, a periodically synchronised target
//! network (Eq. 5), ε-greedy exploration with linear decay, uniform
//! experience replay, and Adam updates on the squared TD error.

use crate::adam::Adam;
use crate::mlp::Mlp;
use crate::replay::{ReplayBuffer, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DQN hyper-parameters.
#[derive(Clone, Debug)]
pub struct DqnConfig {
    /// State dimensionality.
    pub state_dim: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Number of actions.
    pub num_actions: usize,
    /// Discount factor γ (the paper uses 0.98).
    pub gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Replay batch size (the paper uses 32).
    pub batch_size: usize,
    /// Gradient steps between target-network syncs.
    pub target_sync: u64,
    /// Initial exploration rate.
    pub eps_start: f64,
    /// Final exploration rate.
    pub eps_end: f64,
    /// Environment steps over which ε decays linearly.
    pub eps_decay_steps: u64,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// RNG / initialisation seed.
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> DqnConfig {
        DqnConfig {
            state_dim: crate::env::STATE_DIM,
            hidden: vec![64, 64],
            num_actions: crate::env::NUM_ACTIONS,
            gamma: 0.98,
            lr: 1e-3,
            batch_size: 32,
            target_sync: 100,
            eps_start: 1.0,
            eps_end: 0.05,
            eps_decay_steps: 2_000,
            replay_capacity: 10_000,
            seed: 0,
        }
    }
}

/// The Q-learning agent.
#[derive(Clone, Debug)]
pub struct DqnAgent {
    cfg: DqnConfig,
    q: Mlp,
    target: Mlp,
    opt: Adam,
    replay: ReplayBuffer,
    rng: StdRng,
    env_steps: u64,
    train_steps: u64,
}

impl DqnAgent {
    /// Creates an agent with freshly initialised networks.
    pub fn new(cfg: DqnConfig) -> DqnAgent {
        assert!(cfg.target_sync > 0, "target_sync must be at least 1 step");
        let mut sizes = vec![cfg.state_dim];
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(cfg.num_actions);
        let q = Mlp::new(&sizes, cfg.seed);
        let mut target = Mlp::new(&sizes, cfg.seed.wrapping_add(1));
        target.copy_from(&q);
        let opt = Adam::new(&q, cfg.lr);
        let replay = ReplayBuffer::new(cfg.replay_capacity);
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
        DqnAgent {
            cfg,
            q,
            target,
            opt,
            replay,
            rng,
            env_steps: 0,
            train_steps: 0,
        }
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        let t = (self.env_steps as f64 / self.cfg.eps_decay_steps as f64).min(1.0);
        self.cfg.eps_start + t * (self.cfg.eps_end - self.cfg.eps_start)
    }

    /// ε-greedy action selection (advances the exploration schedule).
    pub fn select_action(&mut self, state: &[f64]) -> usize {
        self.env_steps += 1;
        if self.rng.gen::<f64>() < self.epsilon() {
            self.rng.gen_range(0..self.cfg.num_actions)
        } else {
            self.greedy(state)
        }
    }

    /// Greedy (deployment) action: `argmax_a Q(s, a)` — Eq. (4).
    pub fn greedy(&self, state: &[f64]) -> usize {
        let qvals = self.q.infer(state);
        argmax(&qvals)
    }

    /// Q-values of a state (for inspection/diagnostics).
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.q.infer(state)
    }

    /// Stores one transition.
    pub fn remember(&mut self, t: Transition) {
        self.replay.push(t);
    }

    /// One gradient step on a replay batch; returns the batch TD loss, or
    /// `None` while the buffer is smaller than the batch size.
    pub fn train_step(&mut self) -> Option<f64> {
        if self.replay.len() < self.cfg.batch_size {
            return None;
        }
        let batch: Vec<Transition> = self
            .replay
            .sample(self.cfg.batch_size, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();
        let mut grads = self.q.zero_grads();
        let mut loss = 0.0;
        let inv = 1.0 / batch.len() as f64;
        for t in &batch {
            // TD target via the frozen network (Eq. 5).
            let y = if t.done {
                t.reward
            } else {
                let next_q = self.target.infer(&t.next_state);
                t.reward + self.cfg.gamma * next_q[argmax(&next_q)]
            };
            let acts = self.q.forward(&t.state);
            let qsa = acts.output()[t.action];
            let err = qsa - y;
            loss += err * err * inv;
            let mut dl = vec![0.0; self.cfg.num_actions];
            dl[t.action] = 2.0 * err * inv;
            self.q.backward(&acts, &dl, &mut grads);
        }
        self.opt.step(&mut self.q, &grads);
        self.train_steps += 1;
        if self.train_steps.is_multiple_of(self.cfg.target_sync) {
            self.target.copy_from(&self.q);
        }
        Some(loss)
    }

    /// Hyper-parameters.
    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    /// Total environment steps taken through [`DqnAgent::select_action`].
    pub fn env_steps(&self) -> u64 {
        self.env_steps
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-state bandit-style MDP the agent must solve: action 1 in state
    /// [1,0] and action 0 in state [0,1] give reward 1, else 0.
    #[test]
    fn learns_contextual_bandit() {
        let cfg = DqnConfig {
            state_dim: 2,
            hidden: vec![16],
            num_actions: 2,
            gamma: 0.0,
            lr: 5e-3,
            batch_size: 16,
            target_sync: 20,
            eps_start: 1.0,
            eps_end: 0.1,
            eps_decay_steps: 300,
            replay_capacity: 1_000,
            seed: 9,
        };
        let mut agent = DqnAgent::new(cfg);
        let states = [vec![1.0, 0.0], vec![0.0, 1.0]];
        for i in 0..1200 {
            let s = states[i % 2].clone();
            let a = agent.select_action(&s);
            let r = if (i % 2 == 0 && a == 1) || (i % 2 == 1 && a == 0) {
                1.0
            } else {
                0.0
            };
            agent.remember(Transition {
                state: s.clone(),
                action: a,
                reward: r,
                next_state: s,
                done: true,
            });
            agent.train_step();
        }
        assert_eq!(
            agent.greedy(&states[0]),
            1,
            "Q {:?}",
            agent.q_values(&states[0])
        );
        assert_eq!(
            agent.greedy(&states[1]),
            0,
            "Q {:?}",
            agent.q_values(&states[1])
        );
    }

    #[test]
    fn epsilon_decays() {
        let mut agent = DqnAgent::new(DqnConfig {
            eps_decay_steps: 10,
            ..Default::default()
        });
        let e0 = agent.epsilon();
        for _ in 0..20 {
            agent.select_action(&vec![0.0; agent.config().state_dim]);
        }
        assert!(agent.epsilon() < e0);
        assert!((agent.epsilon() - agent.config().eps_end).abs() < 1e-9);
    }

    #[test]
    fn train_step_needs_batch() {
        let mut agent = DqnAgent::new(DqnConfig::default());
        assert!(agent.train_step().is_none());
    }
}
