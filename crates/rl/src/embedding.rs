//! Structural-functional instance embedding — the DeepGate2 substitute.
//!
//! The paper feeds the RL state the primary-output embeddings of the
//! *initial* netlist produced by a pre-trained DeepGate2 model, which we do
//! not have. Following DESIGN.md, we substitute a **training-free
//! random-projection GNN**: per-node structural/functional features
//! (simulation statistics, level, fanout) are propagated through fixed,
//! seed-deterministic projection matrices along the DAG and pooled over the
//! POs. Like DeepGate2's output, the result is a fixed-length vector that
//! (a) is deterministic per instance, (b) reflects both structure and
//! sampled functionality, and (c) separates structurally different
//! instances — which is all the Q-network consumes it for.

use crate::matrix::Matrix;
use aig::sim::random_signatures;
use aig::Aig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Embedding dimensionality.
pub const EMB_DIM: usize = 32;

/// Per-node raw feature count fed to the projection.
const NODE_FEATS: usize = 6;
/// Simulation words per node for the functional statistics.
const SIM_WORDS: usize = 4;
/// Seed of the fixed projection matrices (never trained).
const PROJ_SEED: u64 = 0xDEE9_6A7E;

/// Computes the instance embedding `D(G0)` (pooled PO embeddings).
pub fn instance_embedding(g: &Aig) -> Vec<f64> {
    let (w_in, w_prop) = projections();
    let sigs = random_signatures(g, SIM_WORDS, 0xE3B0);
    let levels = g.levels();
    let max_level = levels.iter().copied().max().unwrap_or(0).max(1) as f64;
    let fanouts = g.fanout_counts();
    let max_fanout = fanouts.iter().copied().max().unwrap_or(0).max(1) as f64;

    let mut h: Vec<Vec<f64>> = vec![vec![0.0; EMB_DIM]; g.num_nodes()];
    for v in 0..g.num_nodes() as u32 {
        let node = g.node(v);
        // Functional statistics from simulation signatures.
        let ones: u32 = sigs.row(v as usize).iter().map(|w| w.count_ones()).sum();
        let total_bits = (SIM_WORDS * 64) as f64;
        let density = ones as f64 / total_bits;
        let feats = [
            node.is_pi() as u8 as f64,
            node.is_and() as u8 as f64,
            levels[v as usize] as f64 / max_level,
            fanouts[v as usize] as f64 / max_fanout,
            density,
            (density * (1.0 - density)) * 4.0, // activity proxy
        ];
        let mut acc = w_in.matvec(&feats);
        if node.is_and() {
            // Message passing: complemented edges contribute negated states,
            // mirroring DeepGate2's polarity-aware aggregation.
            let mut msg = vec![0.0; EMB_DIM];
            for f in node.fanins() {
                let sign = if f.is_compl() { -1.0 } else { 1.0 };
                for (m, x) in msg.iter_mut().zip(&h[f.var() as usize]) {
                    *m += sign * x * 0.5;
                }
            }
            let prop = w_prop.matvec(&msg);
            for (a, p) in acc.iter_mut().zip(&prop) {
                *a += p;
            }
        }
        for a in &mut acc {
            *a = a.tanh();
        }
        h[v as usize] = acc;
    }

    // Mean-pool the PO embeddings (polarity-aware).
    let mut pooled = vec![0.0; EMB_DIM];
    let npos = g.num_pos().max(1) as f64;
    for po in g.pos() {
        let sign = if po.is_compl() { -1.0 } else { 1.0 };
        for (p, x) in pooled.iter_mut().zip(&h[po.var() as usize]) {
            *p += sign * x / npos;
        }
    }
    pooled
}

fn projections() -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(PROJ_SEED);
    let w_in = Matrix::xavier(EMB_DIM, NODE_FEATS, &mut rng);
    let w_prop = Matrix::xavier(EMB_DIM, EMB_DIM, &mut rng);
    (w_in, w_prop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain(n: usize) -> Aig {
        let mut g = Aig::new();
        let pis = g.add_pis(n);
        let x = g.xor_many(&pis);
        g.add_po(x);
        g
    }

    fn and_chain(n: usize) -> Aig {
        let mut g = Aig::new();
        let pis = g.add_pis(n);
        let x = g.and_many(&pis);
        g.add_po(x);
        g
    }

    #[test]
    fn deterministic() {
        let g = xor_chain(8);
        assert_eq!(instance_embedding(&g), instance_embedding(&g));
    }

    #[test]
    fn dimension_fixed() {
        assert_eq!(instance_embedding(&xor_chain(4)).len(), EMB_DIM);
        assert_eq!(instance_embedding(&and_chain(12)).len(), EMB_DIM);
    }

    #[test]
    fn bounded_by_tanh() {
        let e = instance_embedding(&xor_chain(10));
        assert!(e.iter().all(|x| x.abs() <= 1.0));
    }

    #[test]
    fn distinguishes_structures() {
        let a = instance_embedding(&xor_chain(8));
        let b = instance_embedding(&and_chain(8));
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!(
            dist > 1e-3,
            "structurally different circuits must separate: {dist}"
        );
    }

    #[test]
    fn sensitive_to_size() {
        let a = instance_embedding(&and_chain(4));
        let b = instance_embedding(&and_chain(16));
        assert_ne!(a, b);
    }
}
