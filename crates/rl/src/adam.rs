//! Adam optimiser over an [`crate::mlp::Mlp`]'s parameters.

use crate::mlp::{Gradients, Mlp};

/// Adam state (first/second moments per parameter).
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m_w: Vec<Vec<f64>>,
    v_w: Vec<Vec<f64>>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an optimiser for `net` with learning rate `lr` (the paper
    /// trains with `1e-5`).
    pub fn new(net: &Mlp, lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m_w: net
                .layers()
                .iter()
                .map(|l| vec![0.0; l.w.as_slice().len()])
                .collect(),
            v_w: net
                .layers()
                .iter()
                .map(|l| vec![0.0; l.w.as_slice().len()])
                .collect(),
            m_b: net.layers().iter().map(|l| vec![0.0; l.b.len()]).collect(),
            v_b: net.layers().iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Applies one Adam update with the given (summed) gradients.
    ///
    /// # Panics
    /// Panics if `grads` does not match the network shape.
    pub fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            update(
                layer.w.as_mut_slice(),
                grads.w[li].as_slice(),
                &mut self.m_w[li],
                &mut self.v_w[li],
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                bc1,
                bc2,
            );
            update(
                &mut layer.b,
                &grads.b[li],
                &mut self.m_b[li],
                &mut self.v_b[li],
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                bc1,
                bc2,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn update(
    params: &mut [f64],
    grads: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    lr: f64,
    b1: f64,
    b2: f64,
    eps: f64,
    bc1: f64,
    bc2: f64,
) {
    assert_eq!(params.len(), grads.len(), "gradient shape mismatch");
    for i in 0..params.len() {
        m[i] = b1 * m[i] + (1.0 - b1) * grads[i];
        v[i] = b2 * v[i] + (1.0 - b2) * grads[i] * grads[i];
        let mh = m[i] / bc1;
        let vh = v[i] / bc2;
        params[i] -= lr * mh / (vh.sqrt() + eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam must drive a simple quadratic regression to low loss.
    #[test]
    fn fits_linear_function() {
        let mut net = Mlp::new(&[2, 16, 1], 5);
        let mut opt = Adam::new(&net, 0.01);
        let samples: Vec<([f64; 2], f64)> = (0..50)
            .map(|i| {
                let x = [(i % 7) as f64 / 7.0, (i % 5) as f64 / 5.0];
                (x, 2.0 * x[0] - x[1] + 0.5)
            })
            .collect();
        let loss_of = |net: &Mlp| -> f64 {
            samples
                .iter()
                .map(|(x, y)| (net.infer(x)[0] - y).powi(2))
                .sum::<f64>()
                / samples.len() as f64
        };
        let initial = loss_of(&net);
        for _ in 0..400 {
            let mut grads = net.zero_grads();
            for (x, y) in &samples {
                let acts = net.forward(x);
                let d = 2.0 * (acts.output()[0] - y) / samples.len() as f64;
                net.backward(&acts, &[d], &mut grads);
            }
            opt.step(&mut net, &grads);
        }
        let fin = loss_of(&net);
        assert!(fin < initial * 0.01, "loss {initial} -> {fin}");
        assert!(fin < 1e-3, "final loss {fin}");
    }
}
