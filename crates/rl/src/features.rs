//! The paper's circuit feature vector `E(Gt)` (Sec. III-B2).
//!
//! Six scalar features describe the current netlist relative to the initial
//! one: area/depth/wire ratios, AND/NOT gate proportions, and the average
//! balance ratio of Eq. (1).

use aig::Aig;

/// Reference quantities of the initial netlist `G0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeatureBaseline {
    /// AND-gate count of `G0`.
    pub area: f64,
    /// Depth of `G0`.
    pub depth: f64,
    /// Wire count of `G0`.
    pub wires: f64,
}

impl FeatureBaseline {
    /// Captures the baseline from the initial netlist.
    pub fn of(g0: &Aig) -> FeatureBaseline {
        FeatureBaseline {
            area: g0.num_ands().max(1) as f64,
            depth: g0.depth().max(1) as f64,
            wires: wire_count(g0).max(1) as f64,
        }
    }
}

/// Wires: two fanin edges per AND gate plus one per PO.
fn wire_count(g: &Aig) -> usize {
    2 * g.num_ands() + g.num_pos()
}

/// Number of NOT "gates": complemented edges, as an inverter count.
fn not_count(g: &Aig) -> usize {
    let mut n = 0;
    for v in g.iter_ands() {
        let node = g.node(v);
        n += node.fanin0().is_compl() as usize + node.fanin1().is_compl() as usize;
    }
    n + g.pos().iter().filter(|l| l.is_compl()).count()
}

/// The six features of Eq. (1)/(2):
/// `[area_ratio, depth_ratio, wire_ratio, and_prop, not_prop, balance]`.
pub fn circuit_features(gt: &Aig, base: &FeatureBaseline) -> [f64; 6] {
    let ands = gt.num_ands();
    let nots = not_count(gt);
    let total_gates = (ands + nots).max(1);
    let levels = gt.levels();
    // Average balance ratio (Eq. 1).
    let mut br_sum = 0.0;
    for v in gt.iter_ands() {
        let n = gt.node(v);
        let d0 = levels[n.fanin0().var() as usize] as f64;
        let d1 = levels[n.fanin1().var() as usize] as f64;
        let m = d0.max(d1);
        if m > 0.0 {
            br_sum += (d0 - d1).abs() / m;
        }
    }
    let br = if ands > 0 { br_sum / ands as f64 } else { 0.0 };
    [
        ands as f64 / base.area,
        gt.depth() as f64 / base.depth,
        wire_count(gt) as f64 / base.wires,
        ands as f64 / total_gates as f64,
        nots as f64 / total_gates as f64,
        br,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Aig {
        let mut g = Aig::new();
        let pis = g.add_pis(n);
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.and(acc, p);
        }
        g.add_po(acc);
        g
    }

    #[test]
    fn identity_ratios_are_one() {
        let g = chain(8);
        let base = FeatureBaseline::of(&g);
        let f = circuit_features(&g, &base);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[1] - 1.0).abs() < 1e-12);
        assert!((f[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_is_maximally_unbalanced() {
        // In a pure chain, every gate (after the first) joins a depth-k
        // subtree with a depth-0 leaf: balance ratio 1 for those gates.
        let g = chain(10);
        let f = circuit_features(&g, &FeatureBaseline::of(&g));
        assert!(f[5] > 0.85, "balance ratio {}", f[5]);
        // A balanced tree has much lower imbalance.
        let mut g2 = Aig::new();
        let pis = g2.add_pis(8);
        let t = g2.and_many(&pis);
        g2.add_po(t);
        let f2 = circuit_features(&g2, &FeatureBaseline::of(&g2));
        assert!(f2[5] < 0.2, "balanced tree ratio {}", f2[5]);
    }

    #[test]
    fn gate_proportions_sum_to_one() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(!x);
        let f = circuit_features(&g, &FeatureBaseline::of(&g));
        assert!((f[3] + f[4] - 1.0).abs() < 1e-12);
        assert!(f[4] > 0.0, "xor uses complemented edges");
    }

    #[test]
    fn shrinking_reduces_area_ratio() {
        let g = chain(16);
        let base = FeatureBaseline::of(&g);
        let smaller = chain(8);
        let f = circuit_features(&smaller, &base);
        assert!(f[0] < 1.0);
    }
}
