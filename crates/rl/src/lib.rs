//! # `rl` — the Deep-Q reinforcement-learning stack
//!
//! Everything the paper's Sec. III-B needs, built from scratch:
//!
//! * [`matrix`]/[`mlp`]/[`adam`] — a small dense-NN library with manual
//!   backprop (gradient-checked) and Adam,
//! * [`replay`] — uniform experience replay,
//! * [`features`] — the six circuit features of Eq. (1)/(2),
//! * [`embedding`] — the DeepGate2-substitute instance embedding (see
//!   DESIGN.md for the substitution argument),
//! * [`env`] — the synthesis MDP: actions `{balance, rewrite, refactor,
//!   resub, end}`, terminal reward `-Δ#Branching` (Eq. 3) measured through
//!   cost-customised LUT mapping + `lut2cnf` + a budgeted CDCL run,
//! * [`dqn`] — the Q-network with target network and ε-greedy exploration,
//! * [`train`] — the episode loop and the deployable [`RecipePolicy`]
//!   (trained / random / fixed — the arms of the paper's Fig. 5 ablation).
//!
//! ```no_run
//! use rl::env::EnvConfig;
//! use rl::train::{train_agent, TrainConfig};
//! use workloads::dataset::{generate, DatasetParams};
//!
//! let set = generate(&DatasetParams::training(8), 1);
//! let instances: Vec<aig::Aig> = set.into_iter().map(|i| i.aig).collect();
//! let (agent, stats) = train_agent(&instances, &TrainConfig::default());
//! println!("mean reward {}", stats.recent_mean_reward(50));
//! # let _ = agent;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adam;
pub mod dqn;
pub mod embedding;
pub mod env;
pub mod features;
pub mod matrix;
pub mod mlp;
pub mod replay;
pub mod train;

pub use dqn::{DqnAgent, DqnConfig};
pub use env::{EnvConfig, SynthEnv, NUM_ACTIONS, STATE_DIM};
pub use train::{train_agent, RecipePolicy, TrainConfig, TrainStats};
