//! Multilayer perceptron with ReLU activations and manual backprop.
//!
//! The paper's Q-function is an MLP over the concatenated circuit features
//! and instance embedding (Eq. 4). This implementation keeps parameters in
//! plain vectors so the Adam optimiser can treat the whole network as one
//! flat parameter list.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One affine layer.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weights (`out × in`).
    pub w: Matrix,
    /// Biases (`out`).
    pub b: Vec<f64>,
}

/// An MLP: affine layers with ReLU between (none after the last layer).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Cached forward-pass activations, consumed by [`Mlp::backward`].
#[derive(Clone, Debug)]
pub struct Activations {
    /// Input and post-activation output of every layer (len = layers + 1).
    acts: Vec<Vec<f64>>,
    /// Pre-activation values per layer.
    pre: Vec<Vec<f64>>,
}

impl Activations {
    /// The network output.
    pub fn output(&self) -> &[f64] {
        self.acts.last().expect("non-empty")
    }
}

/// Gradients with the same shape as the network parameters.
#[derive(Clone, Debug)]
pub struct Gradients {
    /// Per-layer weight gradients.
    pub w: Vec<Matrix>,
    /// Per-layer bias gradients.
    pub b: Vec<Vec<f64>>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[38, 64, 64, 5]`.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], seed: u64) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| Linear {
                w: Matrix::xavier(w[1], w[0], &mut rng),
                b: vec![0.0; w[1]],
            })
            .collect();
        Mlp { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").w.rows()
    }

    /// Forward pass returning all activations (for training).
    pub fn forward(&self, x: &[f64]) -> Activations {
        let mut acts = vec![x.to_vec()];
        let mut pre = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.w.matvec(acts.last().expect("non-empty"));
            for (zj, bj) in z.iter_mut().zip(&layer.b) {
                *zj += bj;
            }
            pre.push(z.clone());
            if i + 1 < self.layers.len() {
                for zj in &mut z {
                    *zj = zj.max(0.0);
                }
            }
            acts.push(z);
        }
        Activations { acts, pre }
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        self.forward(x).output().to_vec()
    }

    /// Backward pass: given `dL/d(output)`, accumulates parameter gradients
    /// into `grads` and returns nothing (input gradients are not needed).
    ///
    /// # Panics
    /// Panics if shapes disagree with the forward pass.
    pub fn backward(&self, acts: &Activations, dl_dout: &[f64], grads: &mut Gradients) {
        assert_eq!(dl_dout.len(), self.output_dim(), "output gradient shape");
        let mut delta = dl_dout.to_vec();
        for i in (0..self.layers.len()).rev() {
            // delta is dL/d(post-activation of layer i); convert to
            // dL/d(pre-activation) through the ReLU (identity on last layer).
            if i + 1 < self.layers.len() {
                for (d, &z) in delta.iter_mut().zip(&acts.pre[i]) {
                    if z <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            grads.w[i].add_outer(&delta, &acts.acts[i]);
            for (gb, d) in grads.b[i].iter_mut().zip(&delta) {
                *gb += d;
            }
            if i > 0 {
                delta = self.layers[i].w.matvec_t(&delta);
            }
        }
    }

    /// Zero-filled gradients matching this network.
    pub fn zero_grads(&self) -> Gradients {
        Gradients {
            w: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            b: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Immutable layer access (for the optimiser and target-network sync).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable layer access.
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Copies all parameters from another, identically shaped network.
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn copy_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(dst.w.rows(), src.w.rows());
            assert_eq!(dst.w.cols(), src.w.cols());
            dst.w = src.w.clone();
            dst.b = src.b.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let net = Mlp::new(&[4, 8, 3], 0);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        let y = net.infer(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn relu_applied_between_layers_only() {
        // A 1-layer net is affine: negative outputs possible.
        let mut net = Mlp::new(&[1, 1], 3);
        net.layers_mut()[0].w = Matrix::from_vec(1, 1, vec![-2.0]);
        net.layers_mut()[0].b = vec![0.0];
        assert_eq!(net.infer(&[1.0]), vec![-2.0]);
    }

    /// Finite-difference gradient check: the backprop gradients must match
    /// numerical derivatives of a scalar loss.
    #[test]
    fn gradient_check() {
        let mut net = Mlp::new(&[3, 5, 2], 7);
        let x = [0.3, -0.7, 1.1];
        let target = [0.5, -0.25];
        let loss = |net: &Mlp| -> f64 {
            let y = net.infer(&x);
            y.iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        // Analytic gradients.
        let acts = net.forward(&x);
        let dl: Vec<f64> = acts
            .output()
            .iter()
            .zip(&target)
            .map(|(a, b)| 2.0 * (a - b))
            .collect();
        let mut grads = net.zero_grads();
        net.backward(&acts, &dl, &mut grads);
        // Numeric check on a sample of weights in each layer.
        let eps = 1e-6;
        for li in 0..net.layers().len() {
            let n = net.layers()[li].w.as_slice().len();
            for k in (0..n).step_by(3) {
                let orig = net.layers()[li].w.as_slice()[k];
                net.layers_mut()[li].w.as_mut_slice()[k] = orig + eps;
                let lp = loss(&net);
                net.layers_mut()[li].w.as_mut_slice()[k] = orig - eps;
                let lm = loss(&net);
                net.layers_mut()[li].w.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads.w[li].as_slice()[k];
                assert!(
                    (numeric - analytic).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "layer {li} w[{k}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            for k in 0..net.layers()[li].b.len() {
                let orig = net.layers()[li].b[k];
                net.layers_mut()[li].b[k] = orig + eps;
                let lp = loss(&net);
                net.layers_mut()[li].b[k] = orig - eps;
                let lm = loss(&net);
                net.layers_mut()[li].b[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads.b[li][k];
                assert!(
                    (numeric - analytic).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "layer {li} b[{k}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn copy_from_syncs() {
        let a = Mlp::new(&[2, 4, 2], 1);
        let mut b = Mlp::new(&[2, 4, 2], 2);
        assert_ne!(a.infer(&[1.0, 2.0]), b.infer(&[1.0, 2.0]));
        b.copy_from(&a);
        assert_eq!(a.infer(&[1.0, 2.0]), b.infer(&[1.0, 2.0]));
    }
}
