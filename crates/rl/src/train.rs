//! Training loop and deployment policies.
//!
//! [`train_agent`] runs the paper's episode loop: each episode samples one
//! training instance, the agent picks synthesis operations until `end` or
//! `T` steps, the terminal reward is the branching reduction, and the DQN
//! is updated from replay after every step. [`RecipePolicy`] then packages
//! the trained agent — or the ablation policies (random, fixed recipe) —
//! behind one interface for the preprocessing pipelines.

use crate::dqn::{DqnAgent, DqnConfig};
use crate::env::{action_op, EnvConfig, SynthEnv, NUM_ACTIONS};
use crate::replay::Transition;
use aig::Aig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synth::{apply_op, Recipe, SynthOp};

/// Training-run configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of episodes (the paper runs 10 000).
    pub episodes: usize,
    /// Environment settings.
    pub env: EnvConfig,
    /// Agent hyper-parameters.
    pub dqn: DqnConfig,
    /// Seed for instance sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            episodes: 200,
            env: EnvConfig::default(),
            dqn: DqnConfig::default(),
            seed: 0,
        }
    }
}

/// Per-episode training telemetry.
#[derive(Clone, Debug, Default)]
pub struct TrainStats {
    /// Terminal reward of each episode.
    pub episode_rewards: Vec<f64>,
    /// TD losses observed (one average per episode, when available).
    pub episode_losses: Vec<f64>,
}

impl TrainStats {
    /// Mean reward over the last `n` episodes.
    pub fn recent_mean_reward(&self, n: usize) -> f64 {
        let tail = &self.episode_rewards[self.episode_rewards.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Trains a DQN agent on the given instances.
///
/// # Panics
/// Panics if `instances` is empty.
pub fn train_agent(instances: &[Aig], cfg: &TrainConfig) -> (DqnAgent, TrainStats) {
    assert!(
        !instances.is_empty(),
        "training needs at least one instance"
    );
    let mut agent = DqnAgent::new(cfg.dqn.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = TrainStats::default();

    for _ in 0..cfg.episodes {
        let inst = &instances[rng.gen_range(0..instances.len())];
        let mut env = SynthEnv::new_training(inst, cfg.env.clone());
        let mut state = env.state();
        let terminal_reward;
        let mut losses = Vec::new();
        loop {
            let action = agent.select_action(&state);
            let step = env.step(action);
            agent.remember(Transition {
                state: std::mem::take(&mut state),
                action,
                reward: step.reward,
                next_state: step.state.clone(),
                done: step.done,
            });
            if let Some(l) = agent.train_step() {
                losses.push(l);
            }
            state = step.state;
            if step.done {
                terminal_reward = step.reward;
                break;
            }
        }
        stats.episode_rewards.push(terminal_reward);
        if !losses.is_empty() {
            stats
                .episode_losses
                .push(losses.iter().sum::<f64>() / losses.len() as f64);
        }
    }
    (agent, stats)
}

/// A deployable recipe-selection policy.
#[derive(Clone, Debug)]
pub enum RecipePolicy {
    /// The trained agent, rolled out greedily (the paper's *Ours*).
    Agent(Box<DqnAgent>),
    /// Uniformly random operations for `T` steps (the *w/o RL* ablation).
    Random {
        /// Sampling seed.
        seed: u64,
        /// Episode length `T`.
        steps: usize,
    },
    /// A fixed recipe (baseline scripts).
    Fixed(Recipe),
    /// No synthesis at all (identity).
    None,
}

impl RecipePolicy {
    /// Applies the policy to an instance, returning the transformed graph
    /// and the recipe actually executed.
    pub fn run(&self, instance: &Aig, env_cfg: &EnvConfig) -> (Aig, Recipe) {
        match self {
            RecipePolicy::Agent(agent) => rollout_greedy(agent, instance, env_cfg),
            RecipePolicy::Random { seed, steps } => {
                // Mix per-instance structure into the seed so different
                // instances draw different random recipes.
                let salt = instance.num_nodes() as u64 ^ ((instance.num_pis() as u64) << 32);
                let mut rng = StdRng::seed_from_u64(seed ^ salt);
                let ops: Vec<SynthOp> = (0..*steps)
                    .map(|_| {
                        // The paper's random agent draws operations only
                        // (never `end`).
                        action_op(rng.gen_range(0..NUM_ACTIONS - 1)).expect("op action")
                    })
                    .collect();
                let mut g = instance.clone();
                for &op in &ops {
                    g = apply_op(&g, op);
                }
                (g, Recipe::from_ops(ops))
            }
            RecipePolicy::Fixed(recipe) => (recipe.apply(instance), recipe.clone()),
            RecipePolicy::None => (instance.clone(), Recipe::new()),
        }
    }
}

/// Greedy rollout of a trained agent (no reward evaluation, no solving).
///
/// Terminates early when an operation reaches a fixed point: the greedy
/// policy is deterministic, so an unchanged graph (hence unchanged state)
/// would repeat the same action until the step cap — pure wasted work.
pub fn rollout_greedy(agent: &DqnAgent, instance: &Aig, env_cfg: &EnvConfig) -> (Aig, Recipe) {
    let mut env = SynthEnv::new_rollout(instance, env_cfg.clone());
    let mut recipe = Recipe::new();
    loop {
        let action = agent.greedy(&env.state());
        match action_op(action) {
            None => break,
            Some(op) => recipe.push(op),
        }
        let before = env.current().clone();
        let step = env.step(action);
        if step.done || env.current().same_structure(&before) {
            break;
        }
    }
    (env.current().clone(), recipe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::datapath::ripple_carry_adder;
    use workloads::lec::{inject_bug, miter};

    fn tiny_instances() -> Vec<Aig> {
        (0..3)
            .map(|s| {
                let a = ripple_carry_adder(3 + s);
                let b = inject_bug(&a.aig, s as u64, 50).expect("bug");
                miter(&a.aig, &b)
            })
            .collect()
    }

    #[test]
    fn short_training_run_completes() {
        let instances = tiny_instances();
        let cfg = TrainConfig {
            episodes: 4,
            env: EnvConfig {
                max_steps: 2,
                ..EnvConfig::default()
            },
            dqn: DqnConfig {
                batch_size: 4,
                eps_decay_steps: 8,
                ..DqnConfig::default()
            },
            seed: 1,
        };
        let (agent, stats) = train_agent(&instances, &cfg);
        assert_eq!(stats.episode_rewards.len(), 4);
        assert!(agent.env_steps() >= 4);
    }

    #[test]
    fn policies_preserve_function() {
        let inst = &tiny_instances()[0];
        let env_cfg = EnvConfig {
            max_steps: 3,
            ..EnvConfig::default()
        };
        let policies = [
            RecipePolicy::Random { seed: 5, steps: 3 },
            RecipePolicy::Fixed(Recipe::size_script()),
            RecipePolicy::None,
        ];
        for p in policies {
            let (g, _) = p.run(inst, &env_cfg);
            assert!(aig::check::sim_equiv(inst, &g, 8, 2), "{p:?}");
        }
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let inst = &tiny_instances()[1];
        let env_cfg = EnvConfig::default();
        let p = RecipePolicy::Random { seed: 11, steps: 4 };
        let (_, r1) = p.run(inst, &env_cfg);
        let (_, r2) = p.run(inst, &env_cfg);
        assert_eq!(r1, r2);
    }

    #[test]
    fn greedy_rollout_bounded_by_max_steps() {
        let inst = &tiny_instances()[2];
        let agent = DqnAgent::new(DqnConfig::default());
        let env_cfg = EnvConfig {
            max_steps: 3,
            ..EnvConfig::default()
        };
        let (g, recipe) = rollout_greedy(&agent, inst, &env_cfg);
        assert!(recipe.len() <= 3);
        assert!(aig::check::sim_equiv(inst, &g, 8, 9));
    }
}
