//! Incremental Tseitin encoding of time frames into a live solver.
//!
//! Both engines share one primitive: encode the machine's combinational
//! core once per time frame *directly into a persistent [`Solver`]*, with
//! constant folding over the stitched state values, so frame 0's all-zero
//! initial state (and anything it implies) never reaches the CNF at all.

use aig::seq::SeqAig;
use aig::Lit;
use cnf::CnfLit;
use sat::{Solver, SolverConfig};

/// Value of an AIG node inside the live solver: folded to a constant or
/// carried by a CNF literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Val {
    /// Constant-folded node.
    Const(bool),
    /// Node carried by a solver literal.
    Lit(CnfLit),
}

impl Val {
    /// Complements the value when `c` is true.
    pub(crate) fn xor_compl(self, c: bool) -> Val {
        if !c {
            return self;
        }
        match self {
            Val::Const(b) => Val::Const(!b),
            Val::Lit(l) => Val::Lit(!l),
        }
    }
}

/// A persistent solver plus its fresh-variable high-water mark.
#[derive(Debug)]
pub(crate) struct Enc {
    pub(crate) solver: Solver,
    next_var: u32,
}

/// Re-checks an assumption-UNSAT answer of `solver` against the
/// independent backward RUP checker: the solver's cumulative DRAT log,
/// closed under the assumption units, must refute the original clause
/// set. Used by the engines' certified mode (the solver must have been
/// built with proof logging on).
///
/// # Panics
/// Panics if the certificate is rejected — a certified engine never
/// reports an unverified UNSAT verdict.
pub(crate) fn certify_unsat(solver: &Solver, assumptions: &[CnfLit]) {
    let log = solver
        .proof()
        .expect("certified mode constructs solvers with proof logging on");
    let formula = log.originals().to_vec();
    let assumed: Vec<i32> = assumptions.iter().map(|&l| l.to_dimacs()).collect();
    let proof = checker::Proof::from_steps(log.steps().iter().map(|s| (s.delete, s.lits.clone())));
    if let Err(e) = checker::check_with_assumptions(&formula, &assumed, &proof) {
        panic!("model-checking UNSAT verdict failed certification: {e}");
    }
}

impl Enc {
    pub(crate) fn new(config: SolverConfig) -> Enc {
        Enc {
            solver: Solver::new(config),
            next_var: 0,
        }
    }

    /// Allocates a fresh solver variable.
    pub(crate) fn fresh(&mut self) -> u32 {
        self.next_var += 1;
        self.next_var
    }

    /// Allocates a fresh positive literal.
    pub(crate) fn fresh_lit(&mut self) -> CnfLit {
        CnfLit::pos(self.fresh())
    }

    /// AND of two values with constant folding; allocates a gate variable
    /// (three clauses) only when both sides stay symbolic.
    pub(crate) fn and_val(&mut self, a: Val, b: Val) -> Val {
        match (a, b) {
            (Val::Const(false), _) | (_, Val::Const(false)) => Val::Const(false),
            (Val::Const(true), x) | (x, Val::Const(true)) => x,
            (Val::Lit(p), Val::Lit(q)) => {
                if p == q {
                    return Val::Lit(p);
                }
                if p == !q {
                    return Val::Const(false);
                }
                let y = self.fresh_lit();
                self.solver.add_clause_cnf(&[!y, p]);
                self.solver.add_clause_cnf(&[!y, q]);
                self.solver.add_clause_cnf(&[y, !p, !q]);
                Val::Lit(y)
            }
        }
    }

    /// OR of two values (De Morgan over [`Enc::and_val`]).
    pub(crate) fn or_val(&mut self, a: Val, b: Val) -> Val {
        self.and_val(a.xor_compl(true), b.xor_compl(true))
            .xor_compl(true)
    }

    /// Fresh literal `d` with `d -> (p XOR q)`.
    ///
    /// One-sided on purpose: the caller only ever asserts `d` positively
    /// (inside state-distinctness clauses), so the reverse implication
    /// would be dead weight.
    pub(crate) fn implies_xor(&mut self, p: CnfLit, q: CnfLit) -> CnfLit {
        let d = self.fresh_lit();
        self.solver.add_clause_cnf(&[!d, p, q]);
        self.solver.add_clause_cnf(&[!d, !p, !q]);
        d
    }

    /// Encodes one time frame of `seq` into the live solver.
    ///
    /// `ins` supplies a value per core PI (real frame inputs first, then
    /// the incoming state); `reach` is the core's PO-reachability mask.
    /// Returns the real-PO values and the outgoing state values.
    pub(crate) fn encode_frame(
        &mut self,
        seq: &SeqAig,
        reach: &[bool],
        ins: &[Val],
    ) -> (Vec<Val>, Vec<Val>) {
        let comb = seq.comb();
        debug_assert_eq!(ins.len(), comb.num_pis());
        let mut map: Vec<Val> = vec![Val::Const(false); comb.num_nodes()];
        for (i, &pi) in comb.pis().iter().enumerate() {
            map[pi as usize] = ins[i];
        }
        for v in comb.iter_ands() {
            if !reach[v as usize] {
                continue;
            }
            let n = comb.node(v);
            let a = resolve(&map, n.fanin0());
            let b = resolve(&map, n.fanin1());
            map[v as usize] = self.and_val(a, b);
        }
        let pos = comb.pos()[..seq.num_pos()]
            .iter()
            .map(|&po| resolve(&map, po))
            .collect();
        let next = comb.pos()[seq.num_pos()..]
            .iter()
            .map(|&po| resolve(&map, po))
            .collect();
        (pos, next)
    }

    /// Folds the real-PO values of a frame into one *bad* value (their OR).
    pub(crate) fn bad_of(&mut self, pos: Vec<Val>) -> Val {
        let mut bad = Val::Const(false);
        for p in pos {
            bad = self.or_val(bad, p);
        }
        bad
    }
}

fn resolve(map: &[Val], l: Lit) -> Val {
    map[l.var() as usize].xor_compl(l.is_compl())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_val_folds_constants() {
        let mut e = Enc::new(SolverConfig::default());
        let p = Val::Lit(e.fresh_lit());
        assert_eq!(e.and_val(Val::Const(false), p), Val::Const(false));
        assert_eq!(e.and_val(Val::Const(true), p), p);
        assert_eq!(e.and_val(p, p), p);
        assert_eq!(e.and_val(p, p.xor_compl(true)), Val::Const(false));
        // No gate variable was allocated by any of the folds.
        assert_eq!(e.fresh(), 2);
    }

    #[test]
    fn or_val_de_morgan() {
        let mut e = Enc::new(SolverConfig::default());
        let p = Val::Lit(e.fresh_lit());
        assert_eq!(e.or_val(Val::Const(true), p), Val::Const(true));
        assert_eq!(e.or_val(Val::Const(false), p), p);
    }
}
