//! k-induction: proving safety, not just falsifying it.
//!
//! For strength `k` the method discharges two obligations:
//!
//! * **Base**: no counterexample within `k` frames from the initial state
//!   — delegated to the incremental [`BmcEngine`].
//! * **Step**: no *simple path* `s_0 → … → s_k` with the property holding
//!   at frames `0..k` and failing at frame `k`, where `s_0` is fully
//!   symbolic and the states are constrained pairwise distinct
//!   (simple-path / state-uniqueness constraints).
//!
//! If both hold, the property is invariant: a minimal-depth violation at
//! depth `d ≥ k` would end in a k-suffix whose states are distinct (a
//! repeated state would shortcut to a shallower violation, contradicting
//! minimality) and whose prefix satisfies the property (minimality again)
//! — exactly a witness the step query proved impossible. The base case
//! covers `d < k`. The uniqueness constraints also make the method
//! complete on finite machines: once `k` exceeds the longest simple path,
//! the step query becomes vacuously UNSAT.
//!
//! The step solver is as incremental as the base engine: each strength
//! adds one frame, the new state's distinctness clauses, the previous
//! frame's property assertion, and a fresh activation literal — nothing is
//! re-encoded, every learnt clause survives.

use crate::bmc::{BmcEngine, BmcOptions, BmcResult, Preprocess};
use crate::enc::{certify_unsat, Enc, Val};
use aig::seq::SeqAig;
use cnf::CnfLit;
use sat::{Budget, SolveResult, SolverConfig};
use std::time::Instant;

/// Options for [`prove`].
#[derive(Clone, Debug, Default)]
pub struct KindOptions {
    /// Solver configuration (shared by the base and step solvers).
    pub solver: SolverConfig,
    /// Conflict budget per query (`None` = unlimited).
    pub query_budget: Option<u64>,
    /// Wall-clock deadline for the whole run (shared by the base and step
    /// solvers). Once passed, [`prove`] returns [`KindResult::Unknown`]
    /// with the deepest strength reached — every strength below it was
    /// genuinely discharged, so the best-so-far verdict stands.
    pub deadline: Option<Instant>,
    /// One-time transition-relation preprocessing (applied once, shared
    /// by both engines).
    pub preprocess: Preprocess,
    /// Certified mode: both the base engine's UNSAT frame verdicts and
    /// the step engine's UNSAT (= proof-closing) verdicts are re-checked
    /// by the independent backward RUP checker, panicking on rejection.
    /// Test-harness/audit mode — see [`BmcOptions::certify`].
    pub certify: bool,
    /// Observability domain, handed to the base BMC engine (frame spans,
    /// clean-frames gauge — see [`BmcOptions::obs`]).
    pub obs: obs::Registry,
}

/// Outcome of a [`prove`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KindResult {
    /// The property is invariant, established at induction strength `k`.
    Proved {
        /// Induction strength that closed the proof.
        k: usize,
    },
    /// The property fails; same payload as [`BmcResult::Cex`].
    Cex {
        /// First frame at which a real PO fires.
        depth: usize,
        /// Frame-major real-PI input trace, replayable by `SeqAig::simulate`.
        trace: Vec<Vec<bool>>,
    },
    /// Neither proved nor falsified within `max_k` (or budget exhausted).
    Unknown {
        /// Strength reached when the run stopped.
        k: usize,
    },
}

impl KindResult {
    /// True for [`KindResult::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, KindResult::Proved { .. })
    }
}

/// Attempts to prove the machine's safety property by k-induction with
/// strengths `1..=max_k`.
///
/// ```
/// use mc::{prove, KindOptions, KindResult};
/// use workloads::seq::mod_counter;
///
/// // Modulo-6 counter over 3 bits: the all-ones state is unreachable.
/// // BMC alone can never close this; k-induction proves it.
/// let m = mod_counter(3, 6);
/// assert!(prove(&m, 8, &KindOptions::default()).is_proved());
/// ```
///
/// # Panics
/// Panics if the machine has no real PO.
pub fn prove(seq: &SeqAig, max_k: usize, opts: &KindOptions) -> KindResult {
    let seq = opts.preprocess.apply(seq);
    let mut base = BmcEngine::new(
        &seq,
        BmcOptions {
            solver: opts.solver.clone(),
            query_budget: opts.query_budget,
            deadline: opts.deadline,
            preprocess: Preprocess::None,
            certify: opts.certify,
            obs: opts.obs.clone(),
        },
    );
    let mut step = StepEngine::new(&seq, opts);
    for k in 1..=max_k {
        // Out of time: report the deepest strength whose obligations were
        // fully discharged. (`k - 1` held; `k` was never attempted.)
        if opts.deadline.is_some_and(|d| Instant::now() >= d) {
            return KindResult::Unknown { k: k - 1 };
        }
        // Base: no counterexample within k frames.
        match base.check_frames(k) {
            BmcResult::Cex { depth, trace } => return KindResult::Cex { depth, trace },
            BmcResult::Unknown { .. } => return KindResult::Unknown { k },
            BmcResult::Clean { .. } => {}
        }
        // Step: can a simple path of length k end in a violation?
        match step.query(k) {
            StepVerdict::Unsat => return KindResult::Proved { k },
            StepVerdict::Sat => {} // induction too weak at k; deepen
            StepVerdict::Unknown => return KindResult::Unknown { k },
        }
    }
    KindResult::Unknown { k: max_k }
}

enum StepVerdict {
    Sat,
    Unsat,
    Unknown,
}

/// The incremental step-case solver.
#[derive(Debug)]
struct StepEngine {
    seq: SeqAig,
    reach: Vec<bool>,
    enc: Enc,
    query_budget: Option<u64>,
    deadline: Option<Instant>,
    /// Certified mode ([`KindOptions::certify`]).
    certify: bool,
    /// `states[i]` = symbolic state entering frame `i` (`states[0]` free).
    states: Vec<Vec<Val>>,
    /// `bads[i]` = bad value of frame `i`.
    bads: Vec<Val>,
    /// Frames whose `¬bad` is permanently asserted (a prefix).
    clean_asserted: usize,
    /// States `0..distinct_upto` are pairwise-distinct-constrained.
    distinct_upto: usize,
    /// Activation literal of the current strength's query, if any.
    active: Option<CnfLit>,
}

impl StepEngine {
    fn new(seq: &SeqAig, opts: &KindOptions) -> StepEngine {
        let reach = seq.comb().reachable_from_pos();
        let mut solver_cfg = opts.solver.clone();
        solver_cfg.proof |= opts.certify;
        let mut enc = Enc::new(solver_cfg);
        // s_0 is an arbitrary state: one fresh variable per latch.
        let s0: Vec<Val> = (0..seq.num_latches())
            .map(|_| Val::Lit(enc.fresh_lit()))
            .collect();
        StepEngine {
            seq: seq.clone(),
            reach,
            enc,
            query_budget: opts.query_budget,
            deadline: opts.deadline,
            certify: opts.certify,
            states: vec![s0],
            bads: Vec::new(),
            clean_asserted: 0,
            distinct_upto: 0,
            active: None,
        }
    }

    /// Runs the strength-`k` step query. Strengths must be queried in
    /// increasing order (as [`prove`] does).
    fn query(&mut self, k: usize) -> StepVerdict {
        // Retire the previous strength's guard: its SAT answer only meant
        // "induction too weak", the gadget must not constrain this query.
        if let Some(act) = self.active.take() {
            self.enc.solver.add_clause_cnf(&[!act]);
        }
        self.ensure_frames(k);
        // Property holds along the prefix: frames 0..k.
        while self.clean_asserted < k {
            let bad = self.bads[self.clean_asserted];
            self.assert_not_bad(bad);
            self.clean_asserted += 1;
        }
        // Simple path: states 0..=k pairwise distinct. (NOT state k+1 —
        // the path under scrutiny ends at s_k; constraining its successor
        // would wrongly exclude violations that loop back.)
        while self.distinct_upto <= k {
            let j = self.distinct_upto;
            for i in 0..j {
                self.add_distinct(i, j);
            }
            self.distinct_upto += 1;
        }
        match self.bads[k] {
            Val::Const(false) => StepVerdict::Unsat,
            Val::Const(true) => StepVerdict::Sat,
            Val::Lit(bad) => {
                let act = self.enc.fresh_lit();
                self.enc.solver.add_clause_cnf(&[!act, bad]);
                self.active = Some(act);
                let limit = self
                    .query_budget
                    .map(|b| self.enc.solver.stats().conflicts + b);
                self.enc.solver.set_budget(
                    Budget {
                        conflicts: limit,
                        ..Budget::UNLIMITED
                    }
                    .with_deadline(self.deadline),
                );
                match self.enc.solver.solve_with_assumptions(&[act]) {
                    SolveResult::Sat(_) => StepVerdict::Sat,
                    SolveResult::Unsat => {
                        // An UNSAT step case closes the induction proof —
                        // certify it before reporting (the guard is still
                        // live: it is only retired on the next, never
                        // reached, query).
                        if self.certify {
                            certify_unsat(&self.enc.solver, &[act]);
                        }
                        StepVerdict::Unsat
                    }
                    SolveResult::Unknown => StepVerdict::Unknown,
                }
            }
        }
    }

    /// Encodes frames until `bads[k]` exists (states up to `s_{k+1}`).
    fn ensure_frames(&mut self, k: usize) {
        while self.bads.len() <= k {
            let t = self.bads.len();
            let pis: Vec<Val> = (0..self.seq.num_pis())
                .map(|_| Val::Lit(self.enc.fresh_lit()))
                .collect();
            let mut ins = pis;
            ins.extend(self.states[t].iter().copied());
            let (pos, next) = self.enc.encode_frame(&self.seq, &self.reach, &ins);
            let bad = self.enc.bad_of(pos);
            self.bads.push(bad);
            self.states.push(next);
        }
    }

    /// Permanently asserts `¬bad` for a prefix frame.
    fn assert_not_bad(&mut self, bad: Val) {
        match bad {
            Val::Const(false) => {}
            // An always-violating frame leaves no clean-prefix path at
            // all: the step formula collapses to UNSAT, which is sound
            // because the base case separately covers those depths.
            Val::Const(true) => self.enc.solver.add_clause_cnf(&[]),
            Val::Lit(b) => self.enc.solver.add_clause_cnf(&[!b]),
        }
    }

    /// Adds the state-uniqueness clause for states `i < j`: some latch
    /// differs. Two structurally equal states yield the empty clause —
    /// "no simple path this long exists", collapsing the query to UNSAT,
    /// which the induction argument reads as proved.
    fn add_distinct(&mut self, i: usize, j: usize) {
        let (u, v) = (self.states[i].clone(), self.states[j].clone());
        let mut clause: Vec<CnfLit> = Vec::with_capacity(u.len());
        for (a, b) in u.into_iter().zip(v) {
            match (a, b) {
                (Val::Const(x), Val::Const(y)) => {
                    if x != y {
                        return; // constant disagreement: always distinct
                    }
                }
                (Val::Const(c), Val::Lit(p)) | (Val::Lit(p), Val::Const(c)) => {
                    // p differs from the constant c iff p == !c.
                    clause.push(if c { !p } else { p });
                }
                (Val::Lit(p), Val::Lit(q)) => {
                    if p == !q {
                        return; // complementary literals: always distinct
                    }
                    if p != q {
                        clause.push(self.enc.implies_xor(p, q));
                    }
                }
            }
        }
        self.enc.solver.add_clause_cnf(&clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::seq::{counter, mod_counter, pattern_fsm, retimed_adder_lec};

    #[test]
    fn proves_mod_counter_invariant() {
        // Unreachable-state property: BMC can never close it, k-induction
        // does (at k=2: state 6 is the only P-satisfying predecessor of
        // the bad state and has no P-satisfying, distinct predecessor).
        let m = mod_counter(3, 6);
        match prove(&m, 8, &KindOptions::default()) {
            KindResult::Proved { k } => assert!(k <= 3, "expected small strength, got {k}"),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn proves_retimed_adder_equivalence() {
        // The product machine is 1-inductive: every reachable-or-not state
        // transitions into a consistent one.
        let m = retimed_adder_lec(3);
        match prove(&m, 4, &KindOptions::default()) {
            KindResult::Proved { k } => assert!(k <= 2),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn falsifiable_property_yields_the_bmc_cex() {
        let m = counter(3);
        match prove(&m, 10, &KindOptions::default()) {
            KindResult::Cex { depth, trace } => {
                assert_eq!(depth, 7);
                assert!(m.simulate(&trace)[depth][0]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn shallow_cex_beats_the_step_case() {
        let m = pattern_fsm(&[true, true]);
        match prove(&m, 6, &KindOptions::default()) {
            KindResult::Cex { depth, trace } => {
                assert!(m.simulate(&trace)[depth][0]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn certified_mode_backs_base_and_step_verdicts() {
        // Certified k-induction: every base-case UNSAT frame and the
        // proof-closing step-case UNSAT are re-checked by the independent
        // RUP checker (certify_unsat panics on rejection), and the
        // verdict matches the uncertified run.
        let m = mod_counter(3, 6);
        let certified = KindOptions {
            certify: true,
            ..KindOptions::default()
        };
        match prove(&m, 8, &certified) {
            KindResult::Proved { k } => assert!(k <= 3),
            other => panic!("expected certified proof, got {other:?}"),
        }
        // Falsifiable property under certification: the base-case frames
        // proved clean before the violation still certify.
        let m = counter(3);
        match prove(&m, 10, &certified) {
            KindResult::Cex { depth, .. } => assert_eq!(depth, 7),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn proof_survives_preprocessing() {
        let m = mod_counter(3, 6);
        let opts = KindOptions {
            preprocess: Preprocess::Synth(synth::Recipe::size_script()),
            ..KindOptions::default()
        };
        assert!(prove(&m, 8, &opts).is_proved());
    }

    #[test]
    fn expired_deadline_reports_best_so_far() {
        // An already-expired deadline stops before strength 1 is ever
        // attempted — Unknown at k = 0 — while the same options with the
        // deadline lifted prove the property outright.
        let m = mod_counter(3, 6);
        let throttled = KindOptions {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..KindOptions::default()
        };
        assert_eq!(prove(&m, 8, &throttled), KindResult::Unknown { k: 0 });
        let unthrottled = KindOptions::default();
        assert!(prove(&m, 8, &unthrottled).is_proved());
    }

    #[test]
    fn bounded_strength_returns_unknown() {
        // Modulo counter with a long simple path: strength 1 cannot close
        // it, so max_k = 1 must report Unknown, not a bogus verdict.
        let m = mod_counter(4, 14);
        assert_eq!(
            prove(&m, 1, &KindOptions::default()),
            KindResult::Unknown { k: 1 }
        );
        assert!(prove(&m, 6, &KindOptions::default()).is_proved());
    }
}
