//! # `mc` — model checking over [`aig::seq::SeqAig`]
//!
//! A sequential-verification subsystem on top of the workspace's CDCL
//! solver and preprocessing framework:
//!
//! * [`bmc`] — incremental bounded model checking: ONE persistent solver
//!   across the whole depth sweep, frames Tseitin-encoded into it live,
//!   per-frame activation literals, learnt clauses carried bound to bound,
//!   SAT models decoded into replayable input traces;
//! * [`kind`] — k-induction (base case delegated to the BMC engine, step
//!   case with simple-path / state-uniqueness constraints), able to
//!   *prove* safety properties BMC can only fail to falsify;
//! * [`Preprocess`] — the paper's synthesis/sweeping framework as a
//!   front end, run once on the transition relation before unrolling.
//!
//! ```
//! use mc::{prove, BmcEngine, BmcOptions, BmcResult, KindOptions};
//! use workloads::seq::{counter, mod_counter};
//!
//! // Falsification: a 3-bit counter saturates at depth 7.
//! let mut engine = BmcEngine::new(&counter(3), BmcOptions::default());
//! assert!(matches!(
//!     engine.check_frames(10),
//!     BmcResult::Cex { depth: 7, .. }
//! ));
//!
//! // Proof: the all-ones state of a modulo-6 counter is unreachable.
//! assert!(prove(&mod_counter(3, 6), 8, &KindOptions::default()).is_proved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bmc;
mod enc;
pub mod kind;

pub use bmc::{BmcEngine, BmcOptions, BmcResult, Preprocess};
pub use kind::{prove, KindOptions, KindResult};
