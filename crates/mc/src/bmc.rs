//! Incremental bounded model checking on one persistent CDCL solver.
//!
//! The engine keeps a single [`sat::Solver`] alive across the whole depth
//! sweep. Each new time frame is Tseitin-encoded directly into the live
//! solver — state variables stitched frame-to-frame, frame 0 folded
//! against the all-zero initial state — and the frame-`t` property is
//! guarded by a per-frame activation literal and queried through
//! [`sat::Solver::solve_with_assumptions`]. Learnt clauses, variable
//! activities, and saved phases therefore carry across bounds: the work
//! the solver did refuting depth `t` is the starting point for depth
//! `t + 1`, instead of being thrown away and re-derived as the monolithic
//! [`SeqAig::bmc_instance`]-per-bound baseline does.
//!
//! After an UNSAT answer the guard is retired with a unit clause and the
//! *proved fact* `¬bad_t` is asserted, strengthening every later query.

use crate::enc::{certify_unsat, Enc, Val};
use aig::seq::SeqAig;
use cnf::CnfLit;
use sat::{Budget, SolveResult, SolverConfig, Stats};
use std::time::Instant;

/// One-time preprocessing of the transition relation before unrolling —
/// the paper's framework as a model-checking front end. The combinational
/// core is optimised *once*; every unrolled frame then reuses the smaller
/// relation.
#[derive(Clone, Debug, Default)]
pub enum Preprocess {
    /// Encode the core as-is.
    #[default]
    None,
    /// Run a synthesis recipe (rewrite/refactor/balance/...) on the core.
    Synth(synth::Recipe),
    /// SAT-sweep the core (fraig).
    Sweep(sweep::FraigParams),
    /// Recipe first, then sweeping.
    Both(synth::Recipe, sweep::FraigParams),
}

impl Preprocess {
    /// Applies the preprocessing to the machine's combinational core.
    /// Every variant preserves the core's PI/PO interface, so the latch
    /// boundary transfers unchanged.
    pub fn apply(&self, seq: &SeqAig) -> SeqAig {
        let core = match self {
            Preprocess::None => return seq.clone(),
            Preprocess::Synth(recipe) => recipe.apply(seq.comb()),
            Preprocess::Sweep(params) => sweep::fraig(seq.comb(), params).aig,
            Preprocess::Both(recipe, params) => sweep::fraig(&recipe.apply(seq.comb()), params).aig,
        };
        SeqAig::new(core, seq.num_pis(), seq.num_latches())
    }
}

/// Options for [`BmcEngine`].
#[derive(Clone, Debug, Default)]
pub struct BmcOptions {
    /// Solver configuration.
    pub solver: SolverConfig,
    /// Conflict budget per frame query (`None` = unlimited). The engine
    /// charges it on top of the solver's cumulative conflict count, so a
    /// budgeted query never eats a later query's allowance.
    pub query_budget: Option<u64>,
    /// Wall-clock deadline for the whole depth sweep. Once passed, the
    /// engine stops *before* encoding another frame and interrupts any
    /// in-flight query, returning [`BmcResult::Unknown`] with the deepest
    /// bound reached ([`BmcEngine::clean_frames`] frames are still proved
    /// clean — the best-so-far verdict stands). The interrupted query
    /// stays pending, so extending the deadline
    /// ([`BmcEngine::set_deadline`]) and re-calling resumes it.
    pub deadline: Option<Instant>,
    /// One-time transition-relation preprocessing.
    pub preprocess: Preprocess,
    /// Certified mode: the solver logs DRAT steps and every UNSAT frame
    /// verdict is re-checked by the independent backward RUP checker
    /// *before* its guard is retired (panicking on rejection). The
    /// cumulative log is re-verified per frame, so this is a
    /// test-harness/audit mode, not a production setting.
    pub certify: bool,
    /// Observability domain: each frame solve runs under an `mc.frame`
    /// span (the persistent solver re-parented per frame), and the
    /// clean-frame prefix is published as the `mc.clean_frames` gauge.
    /// The default (disabled) registry keeps every probe to one branch.
    /// Note this does *not* propagate to [`Preprocess::Sweep`] — set
    /// [`FraigParams::obs`](sweep::FraigParams::obs) there directly.
    pub obs: obs::Registry,
}

/// Outcome of a [`BmcEngine::check_frames`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmcResult {
    /// The property fires at frame `depth`; `trace` is the frame-major
    /// input trace (one vector of real-PI values per frame `0..=depth`),
    /// replayable by [`SeqAig::simulate`] or, word-level, by
    /// [`SeqAig::stepper`]. The depth is minimal: every earlier frame was
    /// proved clean first. The engine itself re-verifies every trace
    /// against the compiled stepper before returning it (debug builds).
    Cex {
        /// First frame at which a real PO fires.
        depth: usize,
        /// Real-PI values per frame, `trace[t][i]` = PI `i` at frame `t`.
        trace: Vec<Vec<bool>>,
    },
    /// All checked frames are property-clean.
    Clean {
        /// Number of frames proved clean (frames `0..frames`).
        frames: usize,
    },
    /// The per-query budget ran out while checking `frame`.
    Unknown {
        /// Frame whose query exhausted the budget.
        frame: usize,
    },
}

impl BmcResult {
    /// True for [`BmcResult::Cex`].
    pub fn is_cex(&self) -> bool {
        matches!(self, BmcResult::Cex { .. })
    }
}

/// A pending (budget-exhausted) frame query: frame index, activation
/// literal, property literal.
#[derive(Clone, Copy, Debug)]
struct PendingQuery {
    frame: usize,
    act: CnfLit,
    bad: CnfLit,
}

/// Incremental bounded-model-checking engine.
///
/// ```
/// use mc::{BmcEngine, BmcOptions, BmcResult};
/// # use aig::{Aig, Lit};
/// # use aig::seq::SeqAig;
/// # // 2-bit enable-gated counter, bad = all-ones.
/// # let mut g = Aig::new();
/// # let en = g.add_pi();
/// # let s0 = g.add_pi();
/// # let s1 = g.add_pi();
/// # let n0 = g.xor(s0, en);
/// # let c = g.and(s0, en);
/// # let n1 = g.xor(s1, c);
/// # let bad = g.and(s0, s1);
/// # g.add_po(bad);
/// # g.add_po(n0);
/// # g.add_po(n1);
/// # let machine = SeqAig::new(g, 1, 2);
/// let mut engine = BmcEngine::new(&machine, BmcOptions::default());
/// assert_eq!(engine.check_frames(3), BmcResult::Clean { frames: 3 });
/// match engine.check_frames(6) {
///     BmcResult::Cex { depth: 3, trace } => {
///         // The trace replays through the machine itself.
///         let outs = machine.simulate(&trace);
///         assert!(outs[3][0]);
///     }
///     other => panic!("expected a depth-3 counterexample, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct BmcEngine {
    seq: SeqAig,
    reach: Vec<bool>,
    enc: Enc,
    query_budget: Option<u64>,
    deadline: Option<Instant>,
    /// Solver variables of each encoded frame's real PIs.
    frame_pis: Vec<Vec<u32>>,
    /// State values entering the next frame to encode.
    state: Vec<Val>,
    /// Frames proved property-clean so far (a prefix `0..clean_frames`).
    clean_frames: usize,
    /// Certified mode ([`BmcOptions::certify`]).
    certify: bool,
    /// UNSAT frame verdicts whose certificates the checker accepted.
    certified_queries: u64,
    /// Query interrupted by the budget, to resume instead of re-encoding.
    pending: Option<PendingQuery>,
    /// Counterexample, once found (the engine is then exhausted).
    cex: Option<(usize, Vec<Vec<bool>>)>,
    /// Observability domain ([`BmcOptions::obs`]).
    obs: obs::Registry,
}

impl BmcEngine {
    /// Builds an engine for the machine (applying the configured one-time
    /// preprocessing to the transition relation).
    ///
    /// # Panics
    /// Panics if the machine has no real PO to use as the bad signal.
    pub fn new(seq: &SeqAig, opts: BmcOptions) -> BmcEngine {
        assert!(
            seq.num_pos() > 0,
            "property check needs at least one real PO"
        );
        let seq = opts.preprocess.apply(seq);
        let reach = seq.comb().reachable_from_pos();
        let state = vec![Val::Const(false); seq.num_latches()];
        let mut solver_cfg = opts.solver;
        // Certification needs the full DRAT log regardless of what the
        // caller's solver config says.
        solver_cfg.proof |= opts.certify;
        BmcEngine {
            reach,
            enc: Enc::new(solver_cfg),
            query_budget: opts.query_budget,
            deadline: opts.deadline,
            frame_pis: Vec::new(),
            state,
            clean_frames: 0,
            certify: opts.certify,
            certified_queries: 0,
            pending: None,
            cex: None,
            obs: opts.obs,
            seq,
        }
    }

    /// The machine under check (after preprocessing).
    pub fn machine(&self) -> &SeqAig {
        &self.seq
    }

    /// Frames proved clean so far.
    pub fn clean_frames(&self) -> usize {
        self.clean_frames
    }

    /// Replaces the wall-clock deadline (`None` lifts it). Lets a caller
    /// that received [`BmcResult::Unknown`] at the deadline grant more
    /// time and resume the sweep where it stopped.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Cumulative statistics of the persistent solver.
    pub fn stats(&self) -> &Stats {
        self.enc.solver.stats()
    }

    /// UNSAT frame verdicts whose certificates the independent checker
    /// accepted (always 0 unless [`BmcOptions::certify`] is set; frames
    /// that constant-fold clean never reach the solver and are not
    /// counted).
    pub fn certified_queries(&self) -> u64 {
        self.certified_queries
    }

    /// Ensures frames `0..frames` are checked, reusing all prior work.
    ///
    /// Returns the first counterexample (its depth is minimal), `Clean`
    /// when every requested frame is refuted, or `Unknown` on budget
    /// exhaustion — in which case calling again continues the interrupted
    /// query with a fresh budget instead of starting over.
    pub fn check_frames(&mut self, frames: usize) -> BmcResult {
        if let Some((depth, trace)) = &self.cex {
            // The cached counterexample only answers bounds that include
            // its frame; below that, every requested frame was proved
            // clean before the violation was found.
            return if *depth < frames {
                BmcResult::Cex {
                    depth: *depth,
                    trace: trace.clone(),
                }
            } else {
                BmcResult::Clean { frames }
            };
        }
        while self.clean_frames < frames {
            if let Some(result) = self.step() {
                return result;
            }
        }
        BmcResult::Clean { frames }
    }

    /// Checks one more frame (or resumes an interrupted query). `None`
    /// means the frame was proved clean and the sweep may continue.
    fn step(&mut self) -> Option<BmcResult> {
        // Don't start encoding a frame we have no time to check; report
        // the deepest bound reached instead. A pending query is exempt:
        // resuming it (after the caller extends the deadline) must not be
        // starved by this pre-check — the solver's own interrupt polling
        // handles an in-flight expiry.
        if self.pending.is_none() && self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(BmcResult::Unknown {
                frame: self.clean_frames,
            });
        }
        let resumed = self.pending.is_some();
        let query = match self.pending.take() {
            Some(q) => q,
            None => match self.encode_next_frame() {
                Ok(q) => q,
                Err(result) => {
                    self.obs
                        .set_gauge("mc.clean_frames", self.clean_frames as u64);
                    return result;
                }
            },
        };
        // One span tree per frame solve; the persistent solver re-parents
        // under it so its `sat.solve` span nests in the right frame.
        let frame_span = self.obs.span_with(
            "mc.frame",
            &[("frame", query.frame.into()), ("resumed", resumed.into())],
        );
        self.enc.solver.set_observer(frame_span.handle());
        // Always reset the budget: a lifted deadline (or budget) must not
        // leave a stale limit in the persistent solver.
        let limit = self
            .query_budget
            .map(|b| self.enc.solver.stats().conflicts + b);
        self.enc.solver.set_budget(
            Budget {
                conflicts: limit,
                ..Budget::UNLIMITED
            }
            .with_deadline(self.deadline),
        );
        let result = self.enc.solver.solve_with_assumptions(&[query.act]);
        frame_span.record(
            "result",
            match &result {
                SolveResult::Sat(_) => "cex",
                SolveResult::Unsat => "clean",
                SolveResult::Unknown => "unknown",
            },
        );
        let out = match result {
            SolveResult::Sat(model) => {
                let trace = self.decode_trace(&model, query.frame);
                debug_assert!(
                    self.replay_fires(&trace, query.frame),
                    "decoded trace must replay to a violation at frame {}",
                    query.frame
                );
                self.cex = Some((query.frame, trace.clone()));
                Some(BmcResult::Cex {
                    depth: query.frame,
                    trace,
                })
            }
            SolveResult::Unsat => {
                // Certify against the pre-retirement formula: once the
                // `!act` unit lands, the query would be trivially
                // refutable and the certificate would assert nothing.
                if self.certify {
                    certify_unsat(&self.enc.solver, &[query.act]);
                    self.certified_queries += 1;
                }
                // Retire the guard and assert the proved fact: the bad
                // signal cannot fire at this frame.
                self.enc.solver.add_clause_cnf(&[!query.act]);
                self.enc.solver.add_clause_cnf(&[!query.bad]);
                self.clean_frames += 1;
                None
            }
            SolveResult::Unknown => {
                self.pending = Some(query);
                Some(BmcResult::Unknown { frame: query.frame })
            }
        };
        self.obs
            .set_gauge("mc.clean_frames", self.clean_frames as u64);
        out
    }

    /// Encodes the next time frame and prepares its guarded property
    /// query. `Err` short-circuits: either the frame folded to a constant
    /// (clean, or a trivial counterexample) and no query is needed.
    fn encode_next_frame(&mut self) -> Result<PendingQuery, Option<BmcResult>> {
        let t = self.frame_pis.len();
        let pis: Vec<u32> = (0..self.seq.num_pis()).map(|_| self.enc.fresh()).collect();
        let mut ins: Vec<Val> = pis.iter().map(|&v| Val::Lit(CnfLit::pos(v))).collect();
        ins.extend(self.state.iter().copied());
        self.frame_pis.push(pis);
        let (pos, next) = self.enc.encode_frame(&self.seq, &self.reach, &ins);
        self.state = next;
        match self.enc.bad_of(pos) {
            Val::Const(false) => {
                // The frame cannot fire regardless of inputs.
                self.clean_frames += 1;
                Err(None)
            }
            Val::Const(true) => {
                // The frame fires for *every* input assignment: any trace
                // is a witness.
                let trace = vec![vec![false; self.seq.num_pis()]; t + 1];
                debug_assert!(
                    self.replay_fires(&trace, t),
                    "constant-true frame must replay to a violation at frame {t}"
                );
                self.cex = Some((t, trace.clone()));
                Err(Some(BmcResult::Cex { depth: t, trace }))
            }
            Val::Lit(bad) => {
                let act = self.enc.fresh_lit();
                self.enc.solver.add_clause_cnf(&[!act, bad]);
                Ok(PendingQuery { frame: t, act, bad })
            }
        }
    }

    /// Word-level replay of a frame-major trace on the (preprocessed)
    /// machine through the compiled sequential stepper
    /// ([`SeqAig::stepper`]): true iff a real PO fires at frame `depth`
    /// and at no earlier frame (the engine's depths are minimal, so a
    /// decoded trace may never fire early).
    fn replay_fires(&self, trace: &[Vec<bool>], depth: usize) -> bool {
        let mut stepper = self.seq.stepper();
        let mut fires_at_depth = false;
        for (t, frame) in trace.iter().enumerate() {
            let pis: Vec<u64> = frame.iter().map(|&b| u64::from(b)).collect();
            let fires = stepper.step_words(&pis).iter().any(|&w| w & 1 != 0);
            match t.cmp(&depth) {
                std::cmp::Ordering::Less if fires => return false,
                std::cmp::Ordering::Equal => fires_at_depth = fires,
                _ => {}
            }
        }
        fires_at_depth
    }

    /// Frame-major input trace for frames `0..=depth` from a solver model.
    fn decode_trace(&self, model: &[bool], depth: usize) -> Vec<Vec<bool>> {
        self.frame_pis[..=depth]
            .iter()
            .map(|vars| {
                vars.iter()
                    // A PI that appears in no clause may sit beyond the
                    // solver's model; any value works, pick false.
                    .map(|&v| model.get(v as usize - 1).copied().unwrap_or(false))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::seq::{counter, mod_counter, pattern_fsm, retimed_adder_lec};

    fn check(seq: &SeqAig, frames: usize) -> BmcResult {
        BmcEngine::new(seq, BmcOptions::default()).check_frames(frames)
    }

    #[test]
    fn counter_counterexample_at_exact_depth() {
        let m = counter(3);
        let mut engine = BmcEngine::new(&m, BmcOptions::default());
        assert_eq!(engine.check_frames(7), BmcResult::Clean { frames: 7 });
        match engine.check_frames(12) {
            BmcResult::Cex { depth, trace } => {
                assert_eq!(depth, 7, "3-bit counter saturates after 7 ticks");
                let outs = m.simulate(&trace);
                assert!(outs[depth][0], "trace must replay to a violation");
                assert!(outs[..depth].iter().all(|o| !o[0]), "depth is minimal");
                // Word-level replay through the compiled stepper agrees.
                let mut stepper = m.stepper();
                for (t, frame) in trace.iter().enumerate() {
                    let pis: Vec<u64> = frame.iter().map(|&b| u64::from(b)).collect();
                    let fires = stepper.step_words(&pis)[0] & 1 != 0;
                    assert_eq!(fires, t == depth, "stepper replay at frame {t}");
                }
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn deepening_reuses_the_cached_cex() {
        let m = counter(2);
        let mut engine = BmcEngine::new(&m, BmcOptions::default());
        let first = engine.check_frames(8);
        assert!(matches!(first, BmcResult::Cex { depth: 3, .. }));
        assert_eq!(engine.check_frames(20), first, "cex is cached");
        // A bound below the cached depth is still a clean verdict: the
        // violation lies outside the requested frames.
        assert_eq!(engine.check_frames(3), BmcResult::Clean { frames: 3 });
        assert_eq!(engine.check_frames(4), first, "bound includes the cex");
    }

    #[test]
    fn true_invariant_stays_clean() {
        let m = mod_counter(3, 6);
        assert_eq!(check(&m, 25), BmcResult::Clean { frames: 25 });
    }

    #[test]
    fn lec_product_machine_stays_clean() {
        let m = retimed_adder_lec(3);
        assert_eq!(check(&m, 8), BmcResult::Clean { frames: 8 });
    }

    #[test]
    fn pattern_fsm_found_at_pattern_length() {
        let pattern = [true, false, true];
        let m = pattern_fsm(&pattern);
        match check(&m, 10) {
            BmcResult::Cex { depth, trace } => {
                assert_eq!(depth, pattern.len());
                assert!(m.simulate(&trace)[depth][0]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn budget_interrupt_resumes() {
        // A one-conflict budget interrupts queries constantly; re-calling
        // must resume the same frame (fresh allowance), not skip or
        // re-encode it, and the drip-fed sweep must reach the same
        // minimal-depth counterexample as an unbudgeted run.
        let m = counter(4);
        let mut engine = BmcEngine::new(
            &m,
            BmcOptions {
                query_budget: Some(1),
                ..BmcOptions::default()
            },
        );
        let mut unknowns = 0;
        loop {
            match engine.check_frames(16) {
                BmcResult::Unknown { .. } => unknowns += 1,
                BmcResult::Cex { depth, trace } => {
                    assert_eq!(depth, 15);
                    assert!(m.simulate(&trace)[depth][0]);
                    break;
                }
                BmcResult::Clean { .. } => panic!("counter must fire at depth 15"),
            }
            assert!(unknowns < 10_000, "no progress under budget");
        }
    }

    #[test]
    fn expired_deadline_reports_deepest_bound_and_resumes() {
        // An already-expired deadline must stop the sweep before any
        // frame is encoded, report the deepest clean bound (0), and leave
        // the engine resumable: lifting the deadline continues to the
        // exact verdict of a never-throttled run.
        let m = counter(3);
        let mut engine = BmcEngine::new(
            &m,
            BmcOptions {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..BmcOptions::default()
            },
        );
        assert_eq!(engine.check_frames(12), BmcResult::Unknown { frame: 0 });
        assert_eq!(
            engine.check_frames(12),
            BmcResult::Unknown { frame: 0 },
            "still starved until the deadline moves"
        );
        assert_eq!(engine.clean_frames(), 0);
        engine.set_deadline(None);
        match engine.check_frames(12) {
            BmcResult::Cex { depth, trace } => {
                assert_eq!(depth, 7);
                assert!(m.simulate(&trace)[depth][0]);
            }
            other => panic!("expected counterexample after deadline lift, got {other:?}"),
        }
    }

    #[test]
    fn deadline_interrupts_inflight_query_and_preserves_progress() {
        // Tight-but-live deadline: whatever bound the sweep reaches, the
        // clean prefix must be real — extending the deadline resumes from
        // it rather than restarting, and the final verdict matches the
        // unthrottled one.
        let m = counter(4);
        let mut engine = BmcEngine::new(
            &m,
            BmcOptions {
                deadline: Some(Instant::now() + std::time::Duration::from_micros(200)),
                ..BmcOptions::default()
            },
        );
        let first = engine.check_frames(16);
        if let BmcResult::Unknown { frame } = first {
            assert!(frame >= engine.clean_frames());
            engine.set_deadline(None);
        }
        match engine.check_frames(16) {
            BmcResult::Cex { depth, trace } => {
                assert_eq!(depth, 15);
                assert!(m.simulate(&trace)[depth][0]);
            }
            other => panic!("expected depth-15 counterexample, got {other:?}"),
        }
    }

    #[test]
    fn preprocessing_preserves_verdicts() {
        let m = counter(3);
        for pre in [
            Preprocess::Synth(synth::Recipe::size_script()),
            Preprocess::Sweep(sweep::FraigParams {
                threads: 1,
                ..sweep::FraigParams::default()
            }),
        ] {
            let mut engine = BmcEngine::new(
                &m,
                BmcOptions {
                    preprocess: pre,
                    ..BmcOptions::default()
                },
            );
            assert_eq!(engine.check_frames(7), BmcResult::Clean { frames: 7 });
            match engine.check_frames(9) {
                BmcResult::Cex { depth, trace } => {
                    assert_eq!(depth, 7);
                    // The trace replays on the ORIGINAL machine.
                    assert!(m.simulate(&trace)[depth][0]);
                }
                other => panic!("expected counterexample, got {other:?}"),
            }
        }
    }

    #[test]
    fn certified_mode_verifies_every_unsat_frame() {
        // The LEC product machine stays clean, so every frame verdict is
        // an UNSAT answer that certified mode must back with a
        // checker-accepted DRAT certificate (certify_unsat panics
        // otherwise). The PIs keep each frame symbolic, so the queries
        // genuinely reach the solver rather than constant-folding away.
        let m = retimed_adder_lec(3);
        let mut engine = BmcEngine::new(
            &m,
            BmcOptions {
                certify: true,
                ..BmcOptions::default()
            },
        );
        assert_eq!(engine.check_frames(6), BmcResult::Clean { frames: 6 });
        assert!(
            engine.certified_queries() >= 1,
            "symbolic frames must produce certified UNSAT verdicts"
        );
        // Certification must not change verdicts: the plain run agrees.
        let mut plain = BmcEngine::new(&m, BmcOptions::default());
        assert_eq!(plain.check_frames(6), BmcResult::Clean { frames: 6 });
        assert_eq!(plain.certified_queries(), 0);
    }

    #[test]
    fn certified_mode_reaches_the_same_counterexample() {
        let m = counter(3);
        let mut engine = BmcEngine::new(
            &m,
            BmcOptions {
                certify: true,
                ..BmcOptions::default()
            },
        );
        match engine.check_frames(12) {
            BmcResult::Cex { depth, trace } => {
                assert_eq!(depth, 7);
                assert!(m.simulate(&trace)[depth][0]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn zero_latch_machine_is_per_frame_sat() {
        // Combinational XOR as a "machine": frame 0 already fires.
        let mut g = aig::Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let m = SeqAig::new(g, 2, 0);
        match check(&m, 4) {
            BmcResult::Cex { depth, trace } => {
                assert_eq!(depth, 0);
                assert!(m.simulate(&trace)[0][0]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }
}
