//! Simulation-signature equivalence classes.
//!
//! Nodes whose signatures agree on every simulated pattern — directly or
//! complemented — are *candidates* for functional equivalence. Grouping is
//! done on a phase-canonical form of the signature (complemented so that
//! pattern 0 evaluates to `false`), which makes `f` and `¬f` land in the
//! same bucket.

use aig::Var;
use std::collections::HashMap;

/// One node inside a candidate class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassMember {
    /// The node.
    pub var: Var,
    /// `true` if the node's signature was complemented to reach the
    /// class-canonical phase; two members `a`, `b` are candidates for
    /// `a ≡ b ⊕ (phase_a ^ phase_b)`.
    pub phase: bool,
}

/// Candidate equivalence classes over simulation signatures.
///
/// Only classes with at least two members are kept — singletons cannot
/// yield a merge.
#[derive(Clone, Debug, Default)]
pub struct SigClasses {
    classes: Vec<Vec<ClassMember>>,
}

impl SigClasses {
    /// The classes, each sorted by variable (topological) order.
    pub fn classes(&self) -> &[Vec<ClassMember>] {
        &self.classes
    }

    /// Number of non-singleton classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no candidate pair exists.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total number of candidate (member, representative) pairs.
    pub fn num_candidate_pairs(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }
}

/// Groups `members` into candidate classes by phase-canonical signature.
///
/// `sigs[v]` must hold the simulation words of node `v`; all signatures
/// must have equal length. Members are kept in the order given, so passing
/// variables in ascending order makes the first member of each class the
/// topologically earliest — the natural merge representative.
pub fn candidate_classes<I>(sigs: &[Vec<u64>], members: I) -> SigClasses
where
    I: IntoIterator<Item = Var>,
{
    let mut buckets: HashMap<Vec<u64>, Vec<ClassMember>> = HashMap::new();
    let mut order: Vec<Vec<u64>> = Vec::new();
    for var in members {
        let sig = &sigs[var as usize];
        let phase = sig.first().is_some_and(|w| w & 1 != 0);
        let canon: Vec<u64> = if phase {
            sig.iter().map(|w| !w).collect()
        } else {
            sig.clone()
        };
        match buckets.get_mut(&canon) {
            Some(class) => class.push(ClassMember { var, phase }),
            None => {
                order.push(canon.clone());
                buckets.insert(canon, vec![ClassMember { var, phase }]);
            }
        }
    }
    let classes = order
        .into_iter()
        .filter_map(|key| {
            let class = buckets.remove(&key).expect("bucket recorded in order");
            (class.len() >= 2).then_some(class)
        })
        .collect();
    SigClasses { classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complemented_signatures_share_a_class() {
        // Node 1: 0b0110..., node 2: 0b1001... (complement), node 3 distinct.
        let sigs = vec![
            vec![0u64],        // constant node
            vec![0x6666_u64],  // f
            vec![!0x6666_u64], // ¬f
            vec![0x1234_u64],  // unrelated
        ];
        let classes = candidate_classes(&sigs, [1, 2, 3]);
        assert_eq!(classes.len(), 1);
        let c = &classes.classes()[0];
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].var, 1);
        assert_eq!(c[1].var, 2);
        // 0x6666 has bit0 = 0 -> phase false; complement has bit0 = 1.
        assert!(!c[0].phase);
        assert!(c[1].phase);
    }

    #[test]
    fn singletons_are_dropped() {
        let sigs = vec![vec![0u64], vec![1u64], vec![2u64]];
        let classes = candidate_classes(&sigs, [1, 2]);
        // 1 = 0b01 (bit0 set -> canon !1), 2 = 0b10 (canon 2): distinct.
        assert!(classes.is_empty());
        assert_eq!(classes.num_candidate_pairs(), 0);
    }

    #[test]
    fn constant_class_includes_all_zero_and_all_one() {
        let sigs = vec![
            vec![0u64, 0u64],   // constant false (node 0)
            vec![!0u64, !0u64], // always true
            vec![0u64, 0u64],   // always false
        ];
        let classes = candidate_classes(&sigs, [0, 1, 2]);
        assert_eq!(classes.len(), 1);
        let c = &classes.classes()[0];
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].var, 0);
        assert!(
            c[1].phase,
            "all-ones node is the complement of constant false"
        );
        assert!(!c[2].phase);
    }
}
