//! Simulation-signature equivalence classes.
//!
//! Nodes whose signatures agree on every simulated pattern — directly or
//! complemented — are *candidates* for functional equivalence. Grouping is
//! done on a phase-canonical form of the signature (complemented so that
//! pattern 0 evaluates to `false`), which makes `f` and `¬f` land in the
//! same bucket.
//!
//! Signatures are read in place from the strided [`SimVectors`] matrix:
//! members are bucketed by a 64-bit hash of the canonical row and
//! confirmed by a word-for-word comparison against the class
//! representative, so classification allocates nothing per node.

use aig::hash::FastMap;
use aig::sim::SimVectors;
use aig::Var;

/// One node inside a candidate class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassMember {
    /// The node.
    pub var: Var,
    /// `true` if the node's signature was complemented to reach the
    /// class-canonical phase; two members `a`, `b` are candidates for
    /// `a ≡ b ⊕ (phase_a ^ phase_b)`.
    pub phase: bool,
}

/// Candidate equivalence classes over simulation signatures.
///
/// Only classes with at least two members are kept — singletons cannot
/// yield a merge.
#[derive(Clone, Debug, Default)]
pub struct SigClasses {
    classes: Vec<Vec<ClassMember>>,
}

impl SigClasses {
    /// The classes, each sorted by variable (topological) order.
    pub fn classes(&self) -> &[Vec<ClassMember>] {
        &self.classes
    }

    /// Number of non-singleton classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no candidate pair exists.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total number of candidate (member, representative) pairs.
    pub fn num_candidate_pairs(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }
}

/// Phase mask: all-ones when the row must be complemented to canonical
/// form (its pattern-0 bit is set).
#[inline]
fn canon_mask(phase: bool) -> u64 {
    if phase {
        !0
    } else {
        0
    }
}

/// FxHash-style fold of a canonical row, without materialising it.
#[inline]
fn canon_hash(row: &[u64], mask: u64) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    row.iter().fold(0u64, |h, &w| {
        (h.rotate_left(5) ^ (w ^ mask)).wrapping_mul(SEED)
    })
}

/// True when the canonical rows of `a` and `b` are identical.
#[inline]
fn canon_rows_equal(sigs: &SimVectors, a: ClassMember, b: ClassMember) -> bool {
    let diff = canon_mask(a.phase != b.phase);
    sigs.row(a.var as usize)
        .iter()
        .zip(sigs.row(b.var as usize))
        .all(|(&wa, &wb)| wa ^ wb == diff)
}

/// Groups `members` into candidate classes by phase-canonical signature.
///
/// `sigs` must hold one row per node (`sigs.row(v)` = simulation words of
/// node `v`). Members are kept in the order given, so passing variables in
/// ascending order makes the first member of each class the topologically
/// earliest — the natural merge representative.
pub fn candidate_classes<I>(sigs: &SimVectors, members: I) -> SigClasses
where
    I: IntoIterator<Item = Var>,
{
    // hash of canonical row -> indices of classes whose representative has
    // that hash (collisions resolved by direct row comparison).
    let mut buckets: FastMap<u64, Vec<usize>> = FastMap::default();
    let mut classes: Vec<Vec<ClassMember>> = Vec::new();
    for var in members {
        let row = sigs.row(var as usize);
        let phase = row.first().is_some_and(|w| w & 1 != 0);
        let member = ClassMember { var, phase };
        let h = canon_hash(row, canon_mask(phase));
        let bucket = buckets.entry(h).or_default();
        match bucket
            .iter()
            .find(|&&ci| canon_rows_equal(sigs, classes[ci][0], member))
        {
            Some(&ci) => classes[ci].push(member),
            None => {
                bucket.push(classes.len());
                classes.push(vec![member]);
            }
        }
    }
    classes.retain(|c| c.len() >= 2);
    SigClasses { classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a SimVectors row-per-node matrix from explicit rows.
    fn sv(rows: &[Vec<u64>]) -> SimVectors {
        let n_words = rows[0].len();
        let mut m = SimVectors::zero(rows.len(), n_words);
        for (r, row) in rows.iter().enumerate() {
            m.row_mut(r).copy_from_slice(row);
        }
        m
    }

    #[test]
    fn complemented_signatures_share_a_class() {
        // Node 1: 0b0110..., node 2: 0b1001... (complement), node 3 distinct.
        let sigs = sv(&[
            vec![0u64],        // constant node
            vec![0x6666_u64],  // f
            vec![!0x6666_u64], // ¬f
            vec![0x1234_u64],  // unrelated
        ]);
        let classes = candidate_classes(&sigs, [1, 2, 3]);
        assert_eq!(classes.len(), 1);
        let c = &classes.classes()[0];
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].var, 1);
        assert_eq!(c[1].var, 2);
        // 0x6666 has bit0 = 0 -> phase false; complement has bit0 = 1.
        assert!(!c[0].phase);
        assert!(c[1].phase);
    }

    #[test]
    fn singletons_are_dropped() {
        let sigs = sv(&[vec![0u64], vec![1u64], vec![2u64]]);
        let classes = candidate_classes(&sigs, [1, 2]);
        // 1 = 0b01 (bit0 set -> canon !1), 2 = 0b10 (canon 2): distinct.
        assert!(classes.is_empty());
        assert_eq!(classes.num_candidate_pairs(), 0);
    }

    #[test]
    fn constant_class_includes_all_zero_and_all_one() {
        let sigs = sv(&[
            vec![0u64, 0u64],   // constant false (node 0)
            vec![!0u64, !0u64], // always true
            vec![0u64, 0u64],   // always false
        ]);
        let classes = candidate_classes(&sigs, [0, 1, 2]);
        assert_eq!(classes.len(), 1);
        let c = &classes.classes()[0];
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].var, 0);
        assert!(
            c[1].phase,
            "all-ones node is the complement of constant false"
        );
        assert!(!c[2].phase);
    }

    #[test]
    fn multiword_classes_require_full_row_agreement() {
        // Rows agree on word 0 but differ on word 1: not candidates.
        let sigs = sv(&[
            vec![0u64, 0u64],
            vec![0xAAAA, 0x1111],
            vec![0xAAAA, 0x2222],
            vec![0xAAAA, 0x1111],
        ]);
        let classes = candidate_classes(&sigs, [1, 2, 3]);
        assert_eq!(classes.len(), 1);
        let c = &classes.classes()[0];
        assert_eq!(c.len(), 2);
        assert_eq!((c[0].var, c[1].var), (1, 3));
    }
}
