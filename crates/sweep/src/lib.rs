//! # `sweep` — SAT sweeping (fraig) over And-Inverter Graphs
//!
//! Functional reduction in the style of ABC's `fraig`/`&fraig`: bit-parallel
//! random simulation partitions nodes into *candidate equivalence classes*
//! (nodes whose signatures match up to complementation), and a budgeted SAT
//! miter check either proves a candidate pair equivalent — in which case the
//! later node is merged into the earlier one — or yields a counterexample
//! input pattern that refines the simulation and splits the class.
//!
//! SAT sweeping is the strongest size-oriented AIG simplification ABC
//! applies before its own CNF generation, and the natural "future work"
//! extension of the paper's synthesis action set: unlike `rewrite`/`resub`,
//! it removes *functionally* redundant logic that no local window can see
//! (e.g. the two halves of an equivalence miter). The workspace exposes it
//! as an optional preprocessing stage ahead of the cost-customised LUT
//! mapping.
//!
//! The engine is multi-threaded: SAT queries run on sharded incremental
//! oracles and resimulation splits its word-columns across cores, with a
//! determinism contract — pin [`FraigParams::shards`] and the outcome is
//! bit-identical for any thread count (see [`pool`] for the scaffolding
//! and the README's "Concurrency model" section for the design).
//!
//! ```
//! use aig::Aig;
//! use sweep::{fraig, FraigParams};
//!
//! // XOR built twice from the same inputs: fraig collapses the copies.
//! let mut g = Aig::new();
//! let a = g.add_pi();
//! let b = g.add_pi();
//! let x1 = g.xor(a, b);
//! // A structurally different XOR: (a | b) & !(a & b).
//! let o = g.or(a, b);
//! let n = g.and(a, b);
//! let x2 = g.and(o, !n);
//! let miter = g.xor(x1, x2);
//! g.add_po(miter);
//!
//! let outcome = fraig(&g, &FraigParams::default());
//! assert!(outcome.aig.num_ands() < g.num_ands());
//! assert_eq!(outcome.aig.pos()[0], aig::Lit::FALSE); // proved constant
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod classes;
mod engine;
pub mod pool;

pub use classes::{candidate_classes, ClassMember, SigClasses};
pub use engine::{fraig, FraigOutcome, FraigParams, FraigStats};
pub use pool::{ChaosPlan, Fault};
