//! Scoped worker-thread scaffolding for sharded, deterministic parallelism.
//!
//! The sweep engine (and, in later PRs, portfolio solving above it) runs
//! many independent stateful tasks — SAT oracles, simulation blocks — whose
//! *assignment* must not depend on how many OS threads happen to execute
//! them, or results would change with the machine. The primitive here makes
//! that split explicit:
//!
//! * work is divided into **logical shards**, each owning mutable state
//!   (e.g. one incremental SAT solver) and a fixed, deterministic slice of
//!   the items;
//! * **threads** only decide how many shards run concurrently. Shard `s`
//!   always processes the same items in the same order, so every shard's
//!   state evolution — and therefore every emitted result — is identical
//!   for any thread count, including fully sequential execution.
//!
//! Results stream back to the caller over an [`mpsc`] channel keyed by item
//! index; the caller reassembles them into index order, turning unordered
//! parallel arrival into a deterministic merge.
//!
//! Shard work runs under [`catch_unwind`]: a panicking shard is contained
//! — its pre-panic emissions are kept, its index is reported in
//! [`ShardedRun::failed_shards`], and every other shard (and the process)
//! keeps running. Since a shard's item sequence is deterministic, so is the
//! set of emissions it completed before a deterministic panic, keeping the
//! thread-invariance contract intact even under worker crashes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// Deterministic fault-injection plan for sharded/pooled worker layers —
/// the robustness test harness behind `tests/fault_injection.rs` and the
/// serve layer's chaos suites.
///
/// Faults are rolled per work item from `(seed, round, task)` alone, so an
/// injected fault pattern is bit-reproducible and — like every other part
/// of a pinned-shard run — independent of the thread or worker count. Any
/// [`run_sharded`] user (the fraig sweep's oracle shards, the serve
/// engine's query workers) can consume the same plan: interpret `round` as
/// its coarse progress counter (sweep round, retry attempt) and `task` as
/// the item index. Three fault shapes cover the real failure modes:
///
/// * **Unknown storms** (`unknown_in_1024`): the worker's answer is
///   replaced by an inconclusive one without running the real work,
///   modelling budget/deadline exhaustion on a single item.
/// * **Worker panics** (`panic_in_1024`): the worker panics, modelling a
///   crashed solver; the pool contains it (`catch_unwind`) and the caller
///   degrades or retries the lost items.
/// * **Round starvation** (`starve_from_round`): every item from the given
///   round on is starved, modelling whole-run deadline exhaustion at round
///   granularity — deterministic, unlike a real wall-clock cut, so tests
///   can assert exact subset properties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Fault-pattern seed.
    pub seed: u64,
    /// Per-item chance (out of 1024) of forcing an inconclusive answer.
    pub unknown_in_1024: u16,
    /// Per-item chance (out of 1024) of panicking the worker.
    pub panic_in_1024: u16,
    /// Starve every item to inconclusive from this round on.
    pub starve_from_round: Option<usize>,
}

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Answer inconclusively without doing the real work.
    Unknown,
    /// Panic the worker mid-item.
    Panic,
}

impl ChaosPlan {
    /// Rolls the fault (if any) for one work item. Pure function of
    /// `(self.seed, round, task)` — never of scheduling — so a fault
    /// pattern replays identically whatever executes the items.
    pub fn roll(&self, round: usize, task: usize) -> Option<Fault> {
        if self.starve_from_round.is_some_and(|r| round >= r) {
            return Some(Fault::Unknown);
        }
        let x = splitmix64(
            self.seed ^ ((round as u64) << 40) ^ (task as u64).wrapping_mul(0x9E37_79B9),
        );
        let r = (x % 1024) as u16;
        if r < self.panic_in_1024 {
            Some(Fault::Panic)
        } else if r < self.panic_in_1024.saturating_add(self.unknown_in_1024) {
            Some(Fault::Unknown)
        } else {
            None
        }
    }
}

/// SplitMix64 finaliser: one well-mixed word from one input word.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Outcome of [`run_sharded`]: per-slot results plus which shards died.
#[derive(Debug)]
pub struct ShardedRun<V> {
    /// Result per slot (`None` where nothing was emitted — unfilled slots,
    /// or items lost to a shard panic).
    pub results: Vec<Option<V>>,
    /// Indices of shards whose closure panicked, in ascending order. The
    /// caller owns the shard states and should treat these as poisoned
    /// (e.g. rebuild the shard's solver before reusing it).
    pub failed_shards: Vec<usize>,
}

/// Runs `f(shard_index, &mut shard_state, emit)` once per shard, spreading
/// the shards round-robin across at most `threads` worker threads.
///
/// `f` receives an `emit(key, value)` sink; every emitted pair is collected
/// into `results` at position `key` (`None` where nothing was emitted).
/// Keys must be `< slots`; emitting a key twice keeps the later arrival, so
/// shard item assignments should be disjoint.
///
/// With `threads <= 1` (or a single shard) everything runs inline on the
/// caller's thread — no spawns, no channel — but over the *same* per-shard
/// item sequences, so the output is bit-identical to the parallel run.
///
/// A panic inside `f` never propagates: the shard's completed emissions
/// are kept, its index lands in [`ShardedRun::failed_shards`], and the
/// remaining shards run to completion — on the inline path exactly as on
/// the threaded one.
///
/// # Panics
/// Panics (in the collector) if an emitted key is `>= slots`.
pub fn run_sharded<S, V, F>(threads: usize, shards: &mut [S], slots: usize, f: F) -> ShardedRun<V>
where
    S: Send,
    V: Send,
    F: Fn(usize, &mut S, &mut dyn FnMut(usize, V)) + Sync,
{
    let mut out: Vec<Option<V>> = std::iter::repeat_with(|| None).take(slots).collect();
    let mut failed: Vec<usize> = Vec::new();
    let workers = threads.min(shards.len());
    if workers <= 1 {
        for (s, state) in shards.iter_mut().enumerate() {
            // AssertUnwindSafe: on panic the caller is told the shard
            // failed and is expected to discard its (possibly
            // half-mutated) state instead of querying it further.
            let run = catch_unwind(AssertUnwindSafe(|| {
                f(s, state, &mut |k, v| out[k] = Some(v));
            }));
            if run.is_err() {
                failed.push(s);
            }
        }
        return ShardedRun {
            results: out,
            failed_shards: failed,
        };
    }
    enum Msg<V> {
        Item(usize, V),
        ShardPanicked(usize),
    }
    let (tx, rx) = mpsc::channel::<Msg<V>>();
    std::thread::scope(|scope| {
        // Deal shards round-robin onto workers. Which worker runs a shard
        // is irrelevant for determinism — only the per-shard sequence is.
        let mut buckets: Vec<Vec<(usize, &mut S)>> = (0..workers).map(|_| Vec::new()).collect();
        for (s, state) in shards.iter_mut().enumerate() {
            buckets[s % workers].push((s, state));
        }
        let f = &f;
        for bucket in buckets {
            let tx = tx.clone();
            scope.spawn(move || {
                for (s, state) in bucket {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        f(s, state, &mut |k, v| {
                            // A closed channel means the collector
                            // panicked; just stop producing.
                            let _ = tx.send(Msg::Item(k, v));
                        });
                    }));
                    if run.is_err() {
                        let _ = tx.send(Msg::ShardPanicked(s));
                    }
                }
            });
        }
        drop(tx);
        for msg in rx {
            match msg {
                Msg::Item(k, v) => out[k] = Some(v),
                Msg::ShardPanicked(s) => failed.push(s),
            }
        }
    });
    failed.sort_unstable();
    ShardedRun {
        results: out,
        failed_shards: failed,
    }
}

/// Resolves a thread-count knob: `0` means one thread per available core,
/// any other value is taken as-is (floored at 1).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each shard counts its items; results must land at their item index
    /// regardless of thread count.
    fn run(threads: usize, shards: usize, items: usize) -> Vec<Option<(usize, u64)>> {
        let mut states: Vec<u64> = vec![0; shards];
        let run = run_sharded(threads, &mut states, items, |s, state, emit| {
            let mut i = s;
            while i < items {
                *state += 1; // per-shard running count = deterministic state
                emit(i, (s, *state));
                i += shards;
            }
        });
        assert!(run.failed_shards.is_empty());
        run.results
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run(1, 4, 23);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads, 4, 23), seq, "threads={threads}");
        }
        // Every slot filled, shard assignment is index mod shards.
        for (i, slot) in seq.iter().enumerate() {
            let (s, count) = slot.expect("every item answered");
            assert_eq!(s, i % 4);
            assert_eq!(count as usize, i / 4 + 1, "per-shard sequence order");
        }
    }

    #[test]
    fn more_threads_than_shards_is_capped() {
        let out = run(64, 2, 5);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|o| o.is_some()));
    }

    #[test]
    fn empty_work_is_fine() {
        let out = run(4, 3, 0);
        assert!(out.is_empty());
        let mut none: Vec<u8> = Vec::new();
        let run: ShardedRun<()> = run_sharded(4, &mut none, 0, |_, _, _| {});
        assert!(run.results.is_empty());
        assert!(run.failed_shards.is_empty());
    }

    /// Shard 1 panics midway; its pre-panic emissions and every other
    /// shard's full output must survive, identically for any thread count.
    fn run_with_poison(threads: usize) -> (Vec<Option<usize>>, Vec<usize>) {
        let mut states: Vec<u64> = vec![0; 3];
        let run = run_sharded(threads, &mut states, 9, |s, _state, emit| {
            let mut i = s;
            while i < 9 {
                if s == 1 && i >= 4 {
                    panic!("injected shard failure");
                }
                emit(i, i * 10);
                i += 3;
            }
        });
        (run.results, run.failed_shards)
    }

    #[test]
    fn panicking_shard_is_contained_and_reported() {
        let (seq, seq_failed) = run_with_poison(1);
        assert_eq!(seq_failed, vec![1]);
        // Shard 1 handles items 1, 4, 7: item 1 emitted, 4 and 7 lost.
        assert_eq!(seq[1], Some(10));
        assert_eq!(seq[4], None);
        assert_eq!(seq[7], None);
        // Shards 0 and 2 are untouched by the neighbour's crash.
        for i in [0usize, 2, 3, 5, 6, 8] {
            assert_eq!(seq[i], Some(i * 10), "item {i}");
        }
        for threads in [2, 3, 8] {
            assert_eq!(run_with_poison(threads), (seq.clone(), seq_failed.clone()));
        }
    }

    #[test]
    fn every_shard_failing_still_returns() {
        let mut states: Vec<u8> = vec![0; 4];
        let run: ShardedRun<()> = run_sharded(2, &mut states, 4, |_, _, _| {
            panic!("all down");
        });
        assert!(run.results.iter().all(|r| r.is_none()));
        assert_eq!(run.failed_shards, vec![0, 1, 2, 3]);
    }

    #[test]
    fn resolve_threads_floors_and_autodetects() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }
}
