//! Scoped worker-thread scaffolding for sharded, deterministic parallelism.
//!
//! The sweep engine (and, in later PRs, portfolio solving above it) runs
//! many independent stateful tasks — SAT oracles, simulation blocks — whose
//! *assignment* must not depend on how many OS threads happen to execute
//! them, or results would change with the machine. The primitive here makes
//! that split explicit:
//!
//! * work is divided into **logical shards**, each owning mutable state
//!   (e.g. one incremental SAT solver) and a fixed, deterministic slice of
//!   the items;
//! * **threads** only decide how many shards run concurrently. Shard `s`
//!   always processes the same items in the same order, so every shard's
//!   state evolution — and therefore every emitted result — is identical
//!   for any thread count, including fully sequential execution.
//!
//! Results stream back to the caller over an [`mpsc`] channel keyed by item
//! index; the caller reassembles them into index order, turning unordered
//! parallel arrival into a deterministic merge.

use std::sync::mpsc;

/// Runs `f(shard_index, &mut shard_state, emit)` once per shard, spreading
/// the shards round-robin across at most `threads` worker threads.
///
/// `f` receives an `emit(key, value)` sink; every emitted pair is collected
/// into the returned vector at position `key` (`None` where nothing was
/// emitted). Keys must be `< slots`; emitting a key twice keeps the later
/// arrival, so shard item assignments should be disjoint.
///
/// With `threads <= 1` (or a single shard) everything runs inline on the
/// caller's thread — no spawns, no channel — but over the *same* per-shard
/// item sequences, so the output is bit-identical to the parallel run.
///
/// # Panics
/// Panics (in the collector) if an emitted key is `>= slots`.
pub fn run_sharded<S, V, F>(threads: usize, shards: &mut [S], slots: usize, f: F) -> Vec<Option<V>>
where
    S: Send,
    V: Send,
    F: Fn(usize, &mut S, &mut dyn FnMut(usize, V)) + Sync,
{
    let mut out: Vec<Option<V>> = std::iter::repeat_with(|| None).take(slots).collect();
    let workers = threads.min(shards.len());
    if workers <= 1 {
        for (s, state) in shards.iter_mut().enumerate() {
            f(s, state, &mut |k, v| out[k] = Some(v));
        }
        return out;
    }
    let (tx, rx) = mpsc::channel::<(usize, V)>();
    std::thread::scope(|scope| {
        // Deal shards round-robin onto workers. Which worker runs a shard
        // is irrelevant for determinism — only the per-shard sequence is.
        let mut buckets: Vec<Vec<(usize, &mut S)>> = (0..workers).map(|_| Vec::new()).collect();
        for (s, state) in shards.iter_mut().enumerate() {
            buckets[s % workers].push((s, state));
        }
        let f = &f;
        for bucket in buckets {
            let tx = tx.clone();
            scope.spawn(move || {
                for (s, state) in bucket {
                    f(s, state, &mut |k, v| {
                        // A closed channel means the collector panicked;
                        // just stop producing.
                        let _ = tx.send((k, v));
                    });
                }
            });
        }
        drop(tx);
        for (k, v) in rx {
            out[k] = Some(v);
        }
    });
    out
}

/// Resolves a thread-count knob: `0` means one thread per available core,
/// any other value is taken as-is (floored at 1).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each shard counts its items; results must land at their item index
    /// regardless of thread count.
    fn run(threads: usize, shards: usize, items: usize) -> Vec<Option<(usize, u64)>> {
        let mut states: Vec<u64> = vec![0; shards];
        run_sharded(threads, &mut states, items, |s, state, emit| {
            let mut i = s;
            while i < items {
                *state += 1; // per-shard running count = deterministic state
                emit(i, (s, *state));
                i += shards;
            }
        })
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run(1, 4, 23);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads, 4, 23), seq, "threads={threads}");
        }
        // Every slot filled, shard assignment is index mod shards.
        for (i, slot) in seq.iter().enumerate() {
            let (s, count) = slot.expect("every item answered");
            assert_eq!(s, i % 4);
            assert_eq!(count as usize, i / 4 + 1, "per-shard sequence order");
        }
    }

    #[test]
    fn more_threads_than_shards_is_capped() {
        let out = run(64, 2, 5);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|o| o.is_some()));
    }

    #[test]
    fn empty_work_is_fine() {
        let out = run(4, 3, 0);
        assert!(out.is_empty());
        let mut none: Vec<u8> = Vec::new();
        let out: Vec<Option<()>> = run_sharded(4, &mut none, 0, |_, _, _| {});
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_threads_floors_and_autodetects() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }
}
