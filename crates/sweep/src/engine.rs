//! The fraig engine: simulate, conjecture, SAT-prove, merge, rebuild.
//!
//! Since PR 4 the engine is multi-threaded end-to-end: each round's
//! candidate pairs are proved on **sharded** SAT oracles running on worker
//! threads, and resimulation splits its word-columns across cores. Pair `i`
//! of a round is always proved on oracle `i % shards` in ascending order,
//! and results are merged in pair-index order — so for a pinned shard
//! count the outcome is bit-identical for every thread count (see
//! [`FraigParams::shards`] for the default's shards-follow-threads
//! trade-off).

use crate::classes::candidate_classes;
use crate::pool::{resolve_threads, run_sharded, ChaosPlan, Fault};
use aig::sim::{
    random_columns_par, random_columns_prog, simulate_columns_par, simulate_columns_prog,
    SimVectors,
};
use aig::{Aig, Lit, SimProgram, Var};
use cnf::{tseitin, CnfLit, VarMap};
use sat::{Budget, SolveResult, Solver, SolverConfig};
use std::time::Instant;

/// Tuning knobs for [`fraig`].
#[derive(Clone, Debug)]
pub struct FraigParams {
    /// Words (64 patterns each) of base random simulation per round.
    pub sim_words: usize,
    /// Conflict budget per SAT equivalence query; exceeding it leaves the
    /// pair unproven (no unsoundness, only missed merges).
    pub conflict_budget: u64,
    /// Maximum simulate–prove–refine rounds.
    pub max_rounds: usize,
    /// Maximum SAT queries per node per round (caps wide classes).
    pub max_checks_per_node: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Worker threads for SAT queries and resimulation. `0` (the default)
    /// means one per available core, `1` runs fully sequentially — no
    /// spawns, no channels. For a fixed [`FraigParams::shards`] value the
    /// *outcome* is identical for every thread count: work assignment is
    /// fixed by the shard layout, threads only decide how much of it runs
    /// concurrently.
    pub threads: usize,
    /// Logical oracle shards. Pair `i` of a round is always proved on
    /// oracle `i % shards`, whatever `threads` is, so every oracle sees the
    /// same query sequence (and returns the same answers, counterexamples
    /// included) on one core or many — pin this and the result is
    /// bit-identical from one thread to many. `0` (the default) tracks the
    /// resolved thread count: each worker gets one oracle, which maximises
    /// learnt-clause reuse (`threads: 1, shards: 0` *is* the classic
    /// single-oracle sweep), at the price of the outcome varying with the
    /// machine's parallelism. Effective parallelism is capped by the shard
    /// count.
    pub shards: usize,
    /// Warm-start the shard oracles: at the start of every round after the
    /// first, every shard's solver is re-forked (cloned, learnt clauses
    /// and heuristic state included) from the *seasoned* shard-0 oracle
    /// instead of keeping its own isolated lineage off the cold base
    /// solver. This shares one shard's lemmas with all of them each round,
    /// attacking the per-shard lemma re-learning overhead that sharding
    /// introduces.
    ///
    /// Deterministic for a pinned shard count (shard 0's query sequence is
    /// thread-independent). Has no effect with a single shard, so the
    /// `threads: 1` classic path stays bit-identical whatever this is set
    /// to. Default `false`.
    pub warm_start: bool,
    /// Drive per-round resimulation through the compiled engine
    /// ([`aig::SimProgram`]): the graph is lowered once per sweep into
    /// flat fused-op bytecode and every random/replay column runs through
    /// it, instead of the interpretive node-array walk. The compiled
    /// full-mode program writes the signature matrix bit-identically to
    /// the interpreter (same per-block RNG streams, same rows), so the
    /// sweep's outcome — classes, queries, merges, stats — is unchanged;
    /// only the resimulation throughput differs. The interpreter path is
    /// kept as a differential oracle (`compiled_sim: false`, exercised by
    /// CI). Default `true`.
    pub compiled_sim: bool,
    /// Whole-sweep wall-clock deadline. Once passed, the round loop exits
    /// before starting another round, and in-flight SAT queries are
    /// interrupted by the solver's own deadline check — either way the
    /// partial result is sound: merges proved so far are kept, remaining
    /// pairs stay `Undecided`, and the cut is recorded in
    /// [`FraigStats::deadline_interrupts`]. `None` (the default) never
    /// interrupts. Unlike the other knobs a deadline is inherently
    /// schedule-dependent, so a deadlined sweep waives the thread-count
    /// bit-identity contract (a pinned-shard run still stays sound and
    /// deterministic *given* where the cut lands).
    pub deadline: Option<Instant>,
    /// Deterministic fault-injection plan (test harness). `None` — the
    /// default and the production setting — injects nothing and leaves
    /// every path untouched. See [`ChaosPlan`].
    pub chaos: Option<ChaosPlan>,
    /// Checked mode: every oracle runs with proof logging on, and every
    /// UNSAT answer — the verdicts merges rest on — is verified by the
    /// independent `checker` crate before the merge is accepted; a
    /// rejected certificate panics the sweep. Each verification re-checks
    /// the shard's cumulative log, so this is a test-harness/audit mode,
    /// not a production default. Default `false`.
    pub certify: bool,
    /// Observability domain: the sweep runs under a `sweep.fraig` span
    /// with per-round and per-shard children, per-round pair counts feed
    /// the `sweep.round.pairs` histogram, shard oracles report `sat.*`
    /// counters, and [`FraigStats`] is published as `sweep.stats.*`
    /// gauges on completion. The default (disabled) registry keeps every
    /// probe to one branch. (This field is why `FraigParams` is `Clone`
    /// but no longer `Copy`.)
    pub obs: obs::Registry,
}

impl Default for FraigParams {
    fn default() -> FraigParams {
        FraigParams {
            sim_words: 8,
            conflict_budget: 2_000,
            max_rounds: 4,
            max_checks_per_node: 4,
            seed: 0x5eed_f4a1,
            threads: 0,
            shards: 0,
            warm_start: false,
            compiled_sim: true,
            deadline: None,
            chaos: None,
            certify: false,
            obs: obs::Registry::disabled(),
        }
    }
}

/// Counters describing one [`fraig`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FraigStats {
    /// Simulate–prove rounds executed.
    pub rounds: usize,
    /// SAT equivalence queries issued.
    pub sat_calls: u64,
    /// Queries answered UNSAT (equivalence proved, node merged).
    pub proved: usize,
    /// Queries answered SAT (counterexample found, class split).
    pub disproved: usize,
    /// Queries that ran out of budget (including those lost to faults).
    pub unknown: usize,
    /// Counterexample patterns fed back into simulation.
    pub cex_patterns: usize,
    /// Deadline interruptions observed: one per SAT query cut mid-search
    /// by the sweep deadline, plus one if the round loop itself was cut
    /// before finishing.
    pub deadline_interrupts: u64,
    /// Shard workers that panicked and were contained; their unanswered
    /// pairs degraded to `Undecided` and their oracles were rebuilt.
    pub shard_failures: u64,
    /// UNSAT merge verdicts verified by the independent proof checker
    /// (equals `proved` when [`FraigParams::certify`] is on; 0 otherwise).
    pub certified: u64,
}

impl FraigStats {
    /// Publishes every field as a `sweep.stats.*` gauge (last-write-wins);
    /// [`fraig`] calls this on completion so live snapshots and the final
    /// stats struct agree by construction.
    pub fn publish(&self, reg: &obs::Registry) {
        if !reg.is_enabled() {
            return;
        }
        reg.set_gauge("sweep.stats.rounds", self.rounds as u64);
        reg.set_gauge("sweep.stats.sat_calls", self.sat_calls);
        reg.set_gauge("sweep.stats.proved", self.proved as u64);
        reg.set_gauge("sweep.stats.disproved", self.disproved as u64);
        reg.set_gauge("sweep.stats.unknown", self.unknown as u64);
        reg.set_gauge("sweep.stats.cex_patterns", self.cex_patterns as u64);
        reg.set_gauge("sweep.stats.deadline_interrupts", self.deadline_interrupts);
        reg.set_gauge("sweep.stats.shard_failures", self.shard_failures);
        reg.set_gauge("sweep.stats.certified", self.certified);
    }
}

/// Result of a [`fraig`] run.
#[derive(Clone, Debug)]
pub struct FraigOutcome {
    /// The swept, functionally equivalent graph.
    pub aig: Aig,
    /// Run counters.
    pub stats: FraigStats,
}

/// One candidate equivalence query: prove `member ≡ repr ⊕ phase`.
#[derive(Clone, Copy, Debug)]
struct PairTask {
    repr: Var,
    member: Var,
    phase: bool,
}

/// SAT-sweeps the graph: merges nodes proved functionally equivalent
/// (up to complementation) and returns the reduced graph.
///
/// The output is functionally equivalent to the input by construction:
/// every merge is justified by an UNSAT answer on the pairwise miter
/// `a ⊕ b` over the *original* graph, so substitutions compose soundly in
/// any order. Budget exhaustion only loses reductions, never correctness.
///
/// The run is deterministic for a fixed seed, and for a **pinned shard
/// count** it is independent of the thread count: candidate pairs are
/// assigned to logical oracle shards by index, each shard's query sequence
/// is fixed, and per-round results are applied in pair order whatever
/// order they arrive in. The default `shards: 0` trades that invariance
/// for throughput by giving every worker thread its own oracle.
///
/// ```
/// use aig::Aig;
/// use sweep::{fraig, FraigParams};
///
/// let mut g = Aig::new();
/// let pis = g.add_pis(4);
/// let f = g.and_many(&pis);
/// g.add_po(f);
/// let out = fraig(&g, &FraigParams::default());
/// assert!(aig::check::exhaustive_equiv(&g, &out.aig));
/// ```
pub fn fraig(aig: &Aig, params: &FraigParams) -> FraigOutcome {
    let mut stats = FraigStats::default();
    let n = aig.num_nodes();
    let threads = resolve_threads(params.threads);
    let shards = if params.shards == 0 {
        threads
    } else {
        params.shards
    };
    let reach = aig.reachable_from_pos();
    let (base_cnf, vmap) = tseitin(aig);
    // The Tseitin encoding is normalised into a solver once; each oracle
    // shard then *clones* that base solver — a flat memcpy of the arena and
    // watcher lists — instead of re-adding every clause. Learnt clauses
    // carry over between a shard's queries; per-query miter gadgets are
    // guarded by activation literals (assumed for the query, retired by a
    // unit).
    let base_solver = Solver::from_cnf(
        &base_cnf,
        SolverConfig {
            proof: params.certify,
            ..SolverConfig::default()
        },
    );
    let base_vars = base_cnf.num_vars();
    let mut oracles: Vec<Option<PairOracle>> = (0..shards).map(|_| None).collect();

    // equiv[v] = Some(l): node v is equivalent to old-graph literal l
    // (l.var() < v). Chains are resolved during rebuild.
    let mut equiv: Vec<Option<Lit>> = vec![None; n];
    // Counterexamples, batched 64-per-word: each chunk is one packed
    // simulation word per PI, so replaying the accumulated refinement
    // patterns costs one matrix column per chunk — no per-pattern bool
    // vectors, no per-counterexample resimulation.
    let mut cex_chunks: Vec<Vec<u64>> = Vec::new();
    // Pairs already disproved or abandoned; never retried. Kept as a
    // sorted vector of packed (repr, member) keys — a binary search per
    // candidate instead of hashing inside the refinement loop.
    let mut dead: Vec<u64> = Vec::new();
    let pair_key = |repr: Var, member: Var| (repr as u64) << 32 | member as u64;

    // One signature matrix reused across rounds (buffer grows by one
    // refinement column per round, never reallocates from scratch).
    let mut sigs = SimVectors::new();
    // The sweep never mutates the graph mid-run, so the compiled program
    // is built once and reused by every round's resimulation.
    let prog = params.compiled_sim.then(|| SimProgram::full(aig));
    let sweep_span = params.obs.span_with(
        "sweep.fraig",
        &[("nodes", n.into()), ("shards", shards.into())],
    );
    let pairs_hist = params.obs.histogram("sweep.round.pairs");
    for round in 0..params.max_rounds {
        // Whole-sweep deadline: never start a round past it. Everything
        // merged so far is individually SAT-proved, so cutting here only
        // loses further reductions, never soundness.
        if params.deadline.is_some_and(|d| Instant::now() >= d) {
            stats.deadline_interrupts += 1;
            break;
        }
        stats.rounds = round + 1;
        let round_span = sweep_span.child_with("sweep.round", &[("round", round.into())]);
        let proved_before = stats.proved;
        let disproved_before = stats.disproved;
        simulate_round(
            aig,
            params,
            round,
            &cex_chunks,
            &mut sigs,
            threads,
            prog.as_ref(),
        );

        // Candidates: constant node + reachable, not-yet-merged PIs/ANDs.
        let members =
            (0..n as Var).filter(|&v| v == 0 || (reach[v as usize] && equiv[v as usize].is_none()));
        let classes = candidate_classes(&sigs, members);

        // The round's query list, fixed up front: each node appears in at
        // most one class, so the filters below depend only on *previous*
        // rounds — the list (and the shard assignment derived from it) is
        // deterministic before any query runs.
        let mut tasks: Vec<PairTask> = Vec::new();
        let mut checks = vec![0usize; n];
        for class in classes.classes() {
            let repr = class[0];
            for &member in &class[1..] {
                if equiv[member.var as usize].is_some() {
                    continue;
                }
                if dead.binary_search(&pair_key(repr.var, member.var)).is_ok() {
                    continue;
                }
                if checks[member.var as usize] >= params.max_checks_per_node {
                    continue;
                }
                checks[member.var as usize] += 1;
                tasks.push(PairTask {
                    repr: repr.var,
                    member: member.var,
                    phase: repr.phase != member.phase,
                });
            }
        }

        // Warm start: re-fork every other shard from the seasoned shard-0
        // oracle (a memcpy, like cold construction) so this round's
        // queries start from its accumulated learnt clauses instead of
        // each shard's isolated lineage.
        if params.warm_start && round > 0 && shards > 1 {
            let (seasoned, rest) = oracles.split_first_mut().expect("shards >= 1");
            if let Some(seasoned) = seasoned {
                for slot in rest {
                    *slot = Some(seasoned.clone());
                }
            }
        }

        // Prove the whole list on the sharded oracles (in parallel when
        // threads allow), then merge the answers in pair-index order.
        stats.sat_calls += tasks.len() as u64;
        pairs_hist.observe(tasks.len() as u64);
        let (answers, failed_shards) = prove_tasks(
            &mut oracles,
            &base_solver,
            base_vars,
            &vmap,
            &tasks,
            params,
            round,
            threads,
            &round_span.handle(),
        );
        // A panicked shard's oracle is poisoned mid-query: drop it so the
        // next round lazily rebuilds from the clean base solver. Its
        // unanswered pairs surface as `Undecided` below.
        stats.shard_failures += failed_shards.len() as u64;
        for s in failed_shards {
            oracles[s] = None;
        }

        // This round's counterexamples, packed on the fly (bit j of
        // chunk[i] = value of PI i in the j-th counterexample). One word
        // per round: at most 64 patterns are replayed, later
        // counterexamples only retire their own pair.
        let mut chunk = vec![0u64; aig.num_pis()];
        let mut chunk_len = 0u32;
        let mut fresh_dead: Vec<u64> = Vec::new();
        for (task, answer) in tasks.iter().zip(&answers) {
            match answer {
                Answer::Equivalent => {
                    stats.proved += 1;
                    if params.certify {
                        // prove_pair verified the certificate (or panicked)
                        // before reporting Equivalent.
                        stats.certified += 1;
                    }
                    equiv[task.member as usize] = Some(Lit::from_var(task.repr, task.phase));
                }
                Answer::Different(pattern) => {
                    stats.disproved += 1;
                    fresh_dead.push(pair_key(task.repr, task.member));
                    if chunk_len < 64 {
                        for (i, &bit) in pattern.iter().enumerate() {
                            chunk[i] |= (bit as u64) << chunk_len;
                        }
                        chunk_len += 1;
                    }
                }
                Answer::Undecided {
                    deadline_interrupted,
                } => {
                    stats.unknown += 1;
                    if *deadline_interrupted {
                        stats.deadline_interrupts += 1;
                    }
                    fresh_dead.push(pair_key(task.repr, task.member));
                }
            }
        }
        // A round's (repr, member) pairs are distinct, so merging the
        // fresh keys once per round keeps `dead` sorted and duplicate-free.
        dead.extend(fresh_dead);
        dead.sort_unstable();
        round_span.record("tasks", tasks.len());
        round_span.record("proved", stats.proved - proved_before);
        round_span.record("disproved", stats.disproved - disproved_before);
        if chunk_len == 0 {
            break;
        }
        stats.cex_patterns += chunk_len as usize;
        cex_chunks.push(chunk);
    }

    drop(sweep_span);
    stats.publish(&params.obs);
    FraigOutcome {
        aig: rebuild(aig, &equiv),
        stats,
    }
}

/// Proves every task of one round on the sharded oracles and returns the
/// answers in task order plus the indices of shards whose worker panicked.
///
/// Task `i` runs on oracle `i % shards`; within a shard, tasks run in
/// ascending index order. Both facts are independent of `threads`, so each
/// oracle's incremental state (learnt clauses, activities, budget clock)
/// evolves identically however the shards are scheduled — the returned
/// vector is bit-identical from one core to many. Workers stream
/// `(index, answer)` pairs over a channel; [`run_sharded`] reassembles
/// them into index order.
///
/// A shard panic (contained by the pool) loses that shard's remaining
/// answers; the lost slots degrade to `Undecided` — the same sound
/// "no answer" the budget path produces — so the merge loop never has to
/// care how an answer went missing.
#[allow(clippy::too_many_arguments)]
fn prove_tasks(
    oracles: &mut [Option<PairOracle>],
    base_solver: &Solver,
    base_vars: u32,
    vmap: &VarMap,
    tasks: &[PairTask],
    params: &FraigParams,
    round: usize,
    threads: usize,
    round_span: &obs::SpanHandle,
) -> (Vec<Answer>, Vec<usize>) {
    if tasks.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let shards = oracles.len();
    let run = run_sharded(threads, oracles, tasks.len(), |s, oracle, emit| {
        if s >= tasks.len() {
            return;
        }
        // One `sweep.shard` span per shard per round; the oracle is
        // re-parented under it each round (its previous round's shard
        // span is closed by then, and a warm-start re-fork would have
        // given it shard 0's handle anyway).
        let shard_span = round_span.child_with("sweep.shard", &[("shard", s.into())]);
        let mut observed = false;
        let mut i = s;
        while i < tasks.len() {
            match params.chaos.as_ref().and_then(|c| c.roll(round, i)) {
                Some(Fault::Unknown) => {
                    emit(
                        i,
                        Answer::Undecided {
                            deadline_interrupted: false,
                        },
                    );
                    i += shards;
                    continue;
                }
                Some(Fault::Panic) => panic!("chaos: injected shard-worker panic"),
                None => {}
            }
            // Oracles are built lazily so tiny rounds never pay for
            // shards they do not touch; first use is per-shard
            // deterministic.
            let oracle = oracle.get_or_insert_with(|| PairOracle::new(base_solver, base_vars));
            if !observed {
                oracle.solver.set_observer(shard_span.handle());
                observed = true;
            }
            let task = &tasks[i];
            emit(
                i,
                oracle.prove_pair(vmap, task.member, task.repr, task.phase, params),
            );
            i += shards;
        }
    });
    let answers = run
        .results
        .into_iter()
        .map(|a| {
            a.unwrap_or(Answer::Undecided {
                deadline_interrupted: false,
            })
        })
        .collect();
    (answers, run.failed_shards)
}

enum Answer {
    Equivalent,
    Different(Vec<bool>),
    Undecided {
        /// The query was cut by the sweep deadline (as opposed to the
        /// conflict budget or an injected fault).
        deadline_interrupted: bool,
    },
}

/// Incremental equivalence oracle: one CDCL solver holding the Tseitin
/// encoding, queried per candidate pair through activation literals.
/// `Clone` forks the full incremental state (the warm-start path).
#[derive(Clone)]
struct PairOracle {
    solver: Solver,
    /// Next fresh variable for activation literals.
    next_var: u32,
}

impl PairOracle {
    /// Clones the pre-loaded base solver instead of re-normalising the
    /// shared CNF — oracle construction is a memcpy, so sharding the
    /// oracle pool does not multiply the encoding cost.
    fn new(base_solver: &Solver, base_vars: u32) -> PairOracle {
        PairOracle {
            solver: base_solver.clone(),
            next_var: base_vars + 1,
        }
    }

    /// Budgeted SAT check of `member ≡ repr ⊕ phase` over the original
    /// graph. Learnt clauses persist across calls.
    fn prove_pair(
        &mut self,
        vmap: &VarMap,
        member: Var,
        repr: Var,
        phase: bool,
        params: &FraigParams,
    ) -> Answer {
        let a = vmap
            .lit(Lit::from_var(member, false))
            .expect("member is PO-reachable, hence encoded");
        // The conflict budget is cumulative on the shard's solver; the
        // sweep deadline rides along so a mid-round cut interrupts the
        // remaining queries promptly instead of letting each burn its full
        // conflict allowance.
        let limit = self.solver.stats().conflicts + params.conflict_budget;
        let deadline_interrupts_before = self.solver.stats().deadline_interrupts;
        self.solver
            .set_budget(Budget::conflicts(limit).with_deadline(params.deadline));
        let result = match cnf_lit_of(vmap, repr, phase) {
            Some(b) => {
                // Miter gadget `s -> (a ⊕ b)` under fresh activation var s.
                let s = CnfLit::pos(self.next_var);
                self.next_var += 1;
                self.solver.add_clause_cnf(&[!s, a, b]);
                self.solver.add_clause_cnf(&[!s, !a, !b]);
                let r = self.solver.solve_with_assumptions(&[s]);
                if params.certify && r.is_unsat() {
                    // Certify against the pre-retirement formula: once the
                    // `!s` unit lands, `s` would be trivially refutable and
                    // the check would prove nothing about the miter.
                    self.certify_unsat(&[s]);
                }
                // Retire the gadget so later queries never revisit it.
                self.solver.add_clause_cnf(&[!s]);
                r
            }
            None => {
                // repr is the constant node: test `member ≠ phase`.
                let assumption = if phase { !a } else { a };
                let r = self.solver.solve_with_assumptions(&[assumption]);
                if params.certify && r.is_unsat() {
                    self.certify_unsat(&[assumption]);
                }
                r
            }
        };
        // Paranoia: the oracle leans on incremental solving — gadget
        // binaries in the inline tier, long learnts churning through
        // reduction/GC between queries — so audit the two-tier
        // watcher/reason invariants after every query in debug builds.
        // Under parallel sweeping this runs concurrently on every shard.
        #[cfg(debug_assertions)]
        self.solver.assert_integrity();
        match result {
            SolveResult::Unsat => Answer::Equivalent,
            SolveResult::Sat(model) => Answer::Different(vmap.decode_inputs(&model)),
            SolveResult::Unknown => Answer::Undecided {
                deadline_interrupted: self.solver.stats().deadline_interrupts
                    > deadline_interrupts_before,
            },
        }
    }

    /// Verifies the solver's UNSAT-under-assumptions verdict with the
    /// independent RUP checker: the certificate is the oracle's cumulative
    /// proof log, checked against its cumulative originals plus the
    /// query's assumptions as unit clauses. Panics if rejected — a merge
    /// justified by an unverifiable UNSAT answer must never be applied.
    fn certify_unsat(&self, assumptions: &[CnfLit]) {
        let log = self
            .solver
            .proof()
            .expect("certify mode constructs oracles with proof logging on");
        let formula = log.originals().to_vec();
        let assumed: Vec<i32> = assumptions.iter().map(|&l| l.to_dimacs()).collect();
        let proof =
            checker::Proof::from_steps(log.steps().iter().map(|s| (s.delete, s.lits.clone())));
        if let Err(e) = checker::check_with_assumptions(&formula, &assumed, &proof) {
            panic!("sweep oracle UNSAT merge verdict failed certification: {e}");
        }
    }
}

/// CNF literal of an old-graph node, or `None` for the constant node when
/// it was not encoded.
fn cnf_lit_of(vmap: &VarMap, var: Var, phase: bool) -> Option<CnfLit> {
    if var == 0 {
        // Constant false node; may be unencoded. Handled by the caller.
        return None;
    }
    Some(
        vmap.lit(Lit::from_var(var, phase))
            .expect("repr is PO-reachable, hence encoded"),
    )
}

/// Rebuilds the graph substituting merged nodes, then drops dangling logic.
fn rebuild(aig: &Aig, equiv: &[Option<Lit>]) -> Aig {
    let mut out = Aig::with_capacity(aig.num_nodes());
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for &pi in aig.pis() {
        map[pi as usize] = out.add_pi();
    }
    for v in aig.iter_ands() {
        map[v as usize] = match equiv[v as usize] {
            Some(rep) => map[rep.var() as usize].xor_compl(rep.is_compl()),
            None => {
                let node = aig.node(v);
                let f0 = node.fanin0();
                let f1 = node.fanin1();
                let a = map[f0.var() as usize].xor_compl(f0.is_compl());
                let b = map[f1.var() as usize].xor_compl(f1.is_compl());
                out.and(a, b)
            }
        };
    }
    for &po in aig.pos() {
        let l = map[po.var() as usize].xor_compl(po.is_compl());
        out.add_po(l);
    }
    out.compact().0
}

/// One round's signature matrix: `sim_words` fresh random columns plus one
/// replayed column per accumulated counterexample chunk, all simulated
/// directly into a single strided [`SimVectors`] buffer. Random columns go
/// through the blocked path and the replayed chunks through the dense
/// column path, both split across `threads` workers (the strided layout
/// makes per-column writes disjoint).
///
/// When a compiled program is supplied ([`FraigParams::compiled_sim`]),
/// both producers run the precompiled bytecode instead of the interpreter;
/// the matrix is bit-identical either way (same block streams, full-mode
/// program materialises every node row exactly as the interpreter does).
fn simulate_round(
    aig: &Aig,
    params: &FraigParams,
    round: usize,
    cex_chunks: &[Vec<u64>],
    sigs: &mut SimVectors,
    threads: usize,
    prog: Option<&SimProgram>,
) {
    // Reshape without zeroing: every column below is fully written.
    sigs.reshape(aig.num_nodes(), params.sim_words + cex_chunks.len());
    let seed = params.seed ^ round as u64;
    let jobs: Vec<(usize, &[u64])> = cex_chunks
        .iter()
        .enumerate()
        .map(|(k, chunk)| (params.sim_words + k, chunk.as_slice()))
        .collect();
    match prog {
        Some(prog) => {
            random_columns_prog(prog, sigs, 0, params.sim_words, seed, threads);
            simulate_columns_prog(prog, sigs, &jobs, threads);
        }
        None => {
            random_columns_par(aig, sigs, 0, params.sim_words, seed, threads);
            simulate_columns_par(aig, sigs, &jobs, threads);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::check::{exhaustive_equiv, sim_equiv};

    /// Two structurally different adders over shared PIs, XOR-mitered:
    /// the classic fraig victim.
    fn equivalence_miter(bits: usize) -> Aig {
        let mut g = Aig::new();
        let xs = g.add_pis(bits);
        let ys = g.add_pis(bits);
        // Ripple-carry sum bits.
        let mut carry = Lit::FALSE;
        let mut sums_a = Vec::new();
        for i in 0..bits {
            let s = g.xor(xs[i], ys[i]);
            let s = g.xor(s, carry);
            sums_a.push(s);
            let c1 = g.and(xs[i], ys[i]);
            let t = g.xor(xs[i], ys[i]);
            let c2 = g.and(t, carry);
            carry = g.or(c1, c2);
        }
        // Second copy with majority-form carries.
        let mut carry = Lit::FALSE;
        let mut sums_b = Vec::new();
        for i in 0..bits {
            let s1 = g.xor(xs[i], ys[i]);
            let s = g.xor(s1, carry);
            sums_b.push(s);
            let ab = g.and(xs[i], ys[i]);
            let ac = g.and(xs[i], carry);
            let bc = g.and(ys[i], carry);
            let t = g.or(ab, ac);
            carry = g.or(t, bc);
        }
        let diffs: Vec<Lit> = sums_a
            .iter()
            .zip(&sums_b)
            .map(|(&a, &b)| g.xor(a, b))
            .collect();
        let any = g.or_many(&diffs);
        g.add_po(any);
        g
    }

    #[test]
    fn collapses_equivalence_miter_to_constant_false() {
        let g = equivalence_miter(4);
        let out = fraig(&g, &FraigParams::default());
        assert_eq!(
            out.aig.pos()[0],
            Lit::FALSE,
            "miter of equal circuits is constant 0"
        );
        assert_eq!(out.aig.num_ands(), 0);
        assert!(out.stats.proved > 0);
    }

    #[test]
    fn preserves_function_on_non_constant_outputs() {
        let mut g = Aig::new();
        let pis = g.add_pis(6);
        let a = g.xor_many(&pis[..3]);
        let b = g.and_many(&pis[3..]);
        let f = g.mux(pis[0], a, b);
        g.add_po(f);
        g.add_po(a);
        let out = fraig(&g, &FraigParams::default());
        assert!(exhaustive_equiv(&g, &out.aig));
    }

    #[test]
    fn merges_duplicate_cones() {
        // The same 3-input majority built twice; sweeping should remove
        // roughly half the gates.
        let mut g = Aig::new();
        let p = g.add_pis(3);
        let maj = |g: &mut Aig| {
            let ab = g.and(p[0], p[1]);
            let ac = g.and(p[0], p[2]);
            let bc = g.and(p[1], p[2]);
            let t = g.or(ab, ac);
            g.or(t, bc)
        };
        let m1 = maj(&mut g);
        // Force distinct structure for the second copy: different
        // association order.
        let bc = g.and(p[1], p[2]);
        let ac = g.and(p[2], p[0]);
        let ab = g.and(p[0], p[1]);
        let t = g.or(bc, ac);
        let m2 = g.or(t, ab);
        let both = g.and(m1, m2); // = majority, since m1 ≡ m2
        g.add_po(both);
        let before = g.num_ands();
        let out = fraig(&g, &FraigParams::default());
        assert!(exhaustive_equiv(&g, &out.aig));
        assert!(
            out.aig.num_ands() <= before / 2 + 1,
            "expected ~half the gates, got {} of {before}",
            out.aig.num_ands()
        );
    }

    #[test]
    fn detects_complemented_equivalence() {
        // f and ¬f as two POs; sweeping must keep both POs correct.
        let mut g = Aig::new();
        let p = g.add_pis(3);
        let f = g.xor_many(&p);
        // De-Morgan complement built structurally.
        let x01 = g.xnor(p[0], p[1]);
        let nf = g.xnor(x01, !p[2]);
        g.add_po(f);
        g.add_po(nf);
        let out = fraig(&g, &FraigParams::default());
        assert!(exhaustive_equiv(&g, &out.aig));
    }

    #[test]
    fn zero_budget_degrades_gracefully() {
        let g = equivalence_miter(3);
        let params = FraigParams {
            conflict_budget: 0,
            ..FraigParams::default()
        };
        let out = fraig(&g, &params);
        // Few merges may be proved, but the graph must stay equivalent.
        assert!(sim_equiv(&g, &out.aig, 8, 7));
        assert_eq!(
            out.stats.proved + out.stats.disproved + out.stats.unknown,
            out.stats.sat_calls as usize
        );
    }

    #[test]
    fn counterexamples_refine_classes() {
        // A pair of functions that agree on most patterns (differ only
        // when all PIs are 1): simulation may alias them, SAT must split.
        let mut g = Aig::new();
        let p = g.add_pis(6);
        let all = g.and_many(&p);
        let most = g.and_many(&p[..5]); // differs from `all` on one minterm class
        let d = g.xor(all, most);
        g.add_po(d);
        let out = fraig(
            &g,
            &FraigParams {
                sim_words: 1,
                ..FraigParams::default()
            },
        );
        assert!(exhaustive_equiv(&g, &out.aig));
    }

    #[test]
    fn idempotent_on_swept_graphs() {
        let g = equivalence_miter(3);
        let once = fraig(&g, &FraigParams::default());
        let twice = fraig(&once.aig, &FraigParams::default());
        assert_eq!(once.aig.num_ands(), twice.aig.num_ands());
    }

    #[test]
    fn handles_constant_pos_and_empty_graphs() {
        let mut g = Aig::new();
        g.add_po(Lit::TRUE);
        let out = fraig(&g, &FraigParams::default());
        assert_eq!(out.aig.pos()[0], Lit::TRUE);

        let mut g2 = Aig::new();
        let a = g2.add_pi();
        g2.add_po(a);
        let out2 = fraig(&g2, &FraigParams::default());
        assert_eq!(out2.aig.num_ands(), 0);
        assert_eq!(out2.aig.num_pis(), 1);
    }

    #[test]
    fn expired_deadline_yields_sound_partial_result() {
        // A deadline in the past cuts the sweep before round 1: no merges,
        // no SAT calls, but a functionally identical graph and the cut
        // recorded in the stats.
        let g = equivalence_miter(4);
        let out = fraig(
            &g,
            &FraigParams {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..FraigParams::default()
            },
        );
        assert_eq!(out.stats.rounds, 0);
        assert_eq!(out.stats.sat_calls, 0);
        assert!(out.stats.deadline_interrupts >= 1);
        assert!(exhaustive_equiv(&g, &out.aig));
    }

    #[test]
    fn chaos_panic_storm_is_contained() {
        // Every query panics the worker: the sweep must still terminate
        // with an equivalent graph, all pairs undecided, and the failures
        // counted — the process-level contract behind the serve layer.
        let g = equivalence_miter(4);
        let out = fraig(
            &g,
            &FraigParams {
                threads: 1,
                shards: 2,
                chaos: Some(ChaosPlan {
                    seed: 7,
                    panic_in_1024: 1024,
                    ..ChaosPlan::default()
                }),
                ..FraigParams::default()
            },
        );
        assert!(out.stats.shard_failures >= 1);
        assert_eq!(out.stats.proved, 0);
        assert!(exhaustive_equiv(&g, &out.aig));
    }

    /// Structural equality of two rebuilt graphs (node-for-node).
    fn same_aig(a: &Aig, b: &Aig) -> bool {
        a.num_nodes() == b.num_nodes()
            && a.pis() == b.pis()
            && a.pos() == b.pos()
            && a.iter_ands().zip(b.iter_ands()).all(|(va, vb)| {
                let (na, nb) = (a.node(va), b.node(vb));
                va == vb && na.fanin0() == nb.fanin0() && na.fanin1() == nb.fanin1()
            })
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        // With the shard count pinned, the thread count is pure schedule.
        let g = equivalence_miter(5);
        let outcomes: Vec<FraigOutcome> = [1usize, 2, 3, 4, 8]
            .iter()
            .map(|&threads| {
                fraig(
                    &g,
                    &FraigParams {
                        threads,
                        shards: 4,
                        sim_words: 17, // multiple blocks: exercises parallel resim
                        ..FraigParams::default()
                    },
                )
            })
            .collect();
        for (i, out) in outcomes.iter().enumerate().skip(1) {
            assert_eq!(out.stats, outcomes[0].stats, "stats diverged at run {i}");
            assert!(
                same_aig(&out.aig, &outcomes[0].aig),
                "graph diverged at {i}"
            );
        }
        assert_eq!(outcomes[0].aig.pos()[0], Lit::FALSE);
    }

    #[test]
    fn warm_start_is_correct_and_thread_invariant() {
        // Warm-started sharding changes which lemmas each oracle holds,
        // never the soundness: the outcome must stay equivalent, still be
        // bit-identical across thread counts for a pinned shard count, and
        // still collapse the miter.
        let mut g = equivalence_miter(5);
        // Extra near-equal pairs (differ on one minterm each) so starved
        // simulation aliases them, SAT disproves them, and their
        // counterexamples force a second round — the one warm start
        // actually re-forks for.
        let extra = g.add_pis(6);
        let all = g.and_many(&extra);
        let most = g.and_many(&extra[..5]);
        let d = g.xor(all, most);
        let po0 = g.pos()[0];
        let both = g.or(po0, d);
        g.set_po(0, both);
        let outcomes: Vec<FraigOutcome> = [1usize, 2, 4, 8]
            .iter()
            .map(|&threads| {
                fraig(
                    &g,
                    &FraigParams {
                        threads,
                        shards: 4,
                        warm_start: true,
                        sim_words: 1, // starve simulation so rounds carry SAT work
                        ..FraigParams::default()
                    },
                )
            })
            .collect();
        for (i, out) in outcomes.iter().enumerate().skip(1) {
            assert_eq!(out.stats, outcomes[0].stats, "stats diverged at run {i}");
            assert!(
                same_aig(&out.aig, &outcomes[0].aig),
                "graph diverged at {i}"
            );
        }
        assert!(
            sim_equiv(&g, &outcomes[0].aig, 16, 11),
            "must stay equivalent"
        );
        assert!(outcomes[0].stats.rounds > 1, "warm start needs a 2nd round");
        assert!(
            outcomes[0].stats.disproved > 0,
            "near-equal pairs must split"
        );
    }

    #[test]
    fn compiled_sim_engine_does_not_change_the_outcome() {
        // The compiled full-mode program fills the signature matrix
        // bit-identically to the interpreter, so the whole sweep —
        // classes, query order, counterexamples, merges — must be
        // bit-identical with the engine on or off.
        let g = equivalence_miter(5);
        for (threads, sim_words) in [(1usize, 17usize), (4, 17), (1, 1)] {
            let base = FraigParams {
                threads,
                shards: 2,
                sim_words,
                ..FraigParams::default()
            };
            let compiled = fraig(
                &g,
                &FraigParams {
                    compiled_sim: true,
                    ..base.clone()
                },
            );
            let interp = fraig(
                &g,
                &FraigParams {
                    compiled_sim: false,
                    ..base
                },
            );
            assert_eq!(
                compiled.stats, interp.stats,
                "threads={threads} sim_words={sim_words}"
            );
            assert!(same_aig(&compiled.aig, &interp.aig));
        }
    }

    #[test]
    fn warm_start_is_identity_on_the_classic_path() {
        // With a single shard there is nothing to re-fork: the flag must
        // leave the classic threads=1 sweep bit-identical.
        let g = equivalence_miter(4);
        let classic = fraig(
            &g,
            &FraigParams {
                threads: 1,
                ..FraigParams::default()
            },
        );
        let flagged = fraig(
            &g,
            &FraigParams {
                threads: 1,
                warm_start: true,
                ..FraigParams::default()
            },
        );
        assert_eq!(classic.stats, flagged.stats);
        assert!(same_aig(&classic.aig, &flagged.aig));
    }

    #[test]
    fn single_shard_matches_the_classic_sequential_sweep() {
        // Different shard counts are *allowed* to produce different (still
        // correct) outcomes; every configuration must stay equivalent to
        // the input, and shards=0 must track the thread count.
        let g = equivalence_miter(4);
        for shards in [0usize, 1, 2, 8] {
            let out = fraig(
                &g,
                &FraigParams {
                    shards,
                    threads: 2,
                    ..FraigParams::default()
                },
            );
            assert_eq!(out.aig.pos()[0], Lit::FALSE, "shards={shards}");
        }
        // threads=1, shards=0 is the classic single-oracle sweep: one
        // solver, every pair in order — same outcome as an explicit
        // single shard at any thread count.
        let classic = fraig(
            &g,
            &FraigParams {
                threads: 1,
                ..FraigParams::default()
            },
        );
        let one_shard = fraig(
            &g,
            &FraigParams {
                threads: 4,
                shards: 1,
                ..FraigParams::default()
            },
        );
        assert_eq!(classic.stats, one_shard.stats);
        assert!(same_aig(&classic.aig, &one_shard.aig));
    }
}
