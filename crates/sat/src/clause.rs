//! Clause storage.
//!
//! Clauses live in a single database indexed by [`ClauseRef`]. Learnt
//! clauses carry an LBD ("glue") score and an activity used by the
//! reduction policy. Deleted clauses are tombstoned and reclaimed by a
//! periodic garbage collection that compacts the database and remaps
//! references.

use crate::types::{ClauseRef, Lit};

/// One stored clause.
#[derive(Clone, Debug)]
pub struct Clause {
    lits: Vec<Lit>,
    /// Literal-block distance at learning time (0 for problem clauses).
    pub lbd: u32,
    /// Bump-and-decay activity for reduction tie-breaking.
    pub activity: f32,
    /// True for learnt (redundant) clauses.
    pub learnt: bool,
    /// Tombstone flag; set by deletion, cleared by GC.
    pub deleted: bool,
}

impl Clause {
    /// The literals; the first two are the watched ones.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Mutable literal access (used by propagation to reorder watches).
    #[inline]
    pub fn lits_mut(&mut self) -> &mut [Lit] {
        &mut self.lits
    }

    /// Number of literals.
    #[inline]
    #[allow(dead_code)] // exercised by tests; kept for API completeness
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// True when the clause has no literals (never stored; helper for
    /// completeness).
    #[inline]
    #[allow(dead_code)] // exercised by tests; kept for API completeness
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

/// The clause database.
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    clauses: Vec<Clause>,
    /// Count of live learnt clauses.
    pub num_learnt: usize,
    /// Count of live problem clauses.
    pub num_problem: usize,
    freed: usize,
}

impl ClauseDb {
    /// An empty database.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Adds a clause and returns its reference.
    pub fn add(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        let r = ClauseRef(self.clauses.len() as u32);
        self.clauses.push(Clause {
            lits,
            lbd,
            activity: 0.0,
            learnt,
            deleted: false,
        });
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        r
    }

    /// Immutable access.
    #[inline]
    pub fn get(&self, r: ClauseRef) -> &Clause {
        &self.clauses[r.0 as usize]
    }

    /// Mutable access.
    #[inline]
    pub fn get_mut(&mut self, r: ClauseRef) -> &mut Clause {
        &mut self.clauses[r.0 as usize]
    }

    /// Tombstones a clause. The slot is reclaimed by [`ClauseDb::collect`].
    pub fn delete(&mut self, r: ClauseRef) {
        let c = &mut self.clauses[r.0 as usize];
        debug_assert!(!c.deleted, "double delete");
        c.deleted = true;
        if c.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
        self.freed += c.lits.len();
    }

    /// All live clause references.
    pub fn iter_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// Literal count waiting to be reclaimed.
    pub fn wasted(&self) -> usize {
        self.freed
    }

    /// Compacts the database, dropping tombstones. Returns the remapping
    /// `old -> new` (entries for deleted clauses are `ClauseRef::UNDEF`).
    pub fn collect(&mut self) -> Vec<ClauseRef> {
        let mut remap = vec![ClauseRef::UNDEF; self.clauses.len()];
        let mut next = 0usize;
        for i in 0..self.clauses.len() {
            if self.clauses[i].deleted {
                continue;
            }
            remap[i] = ClauseRef(next as u32);
            self.clauses.swap(next, i);
            next += 1;
        }
        self.clauses.truncate(next);
        self.freed = 0;
        remap
    }

    /// Total live clauses.
    #[allow(dead_code)] // exercised by tests; kept for API completeness
    pub fn len(&self) -> usize {
        self.num_learnt + self.num_problem
    }

    /// True when no live clauses exist.
    #[allow(dead_code)] // exercised by tests; kept for API completeness
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(v: &[i32]) -> Vec<Lit> {
        v.iter()
            .map(|&x| Lit::new(x.unsigned_abs() - 1, x > 0))
            .collect()
    }

    #[test]
    fn add_get_delete() {
        let mut db = ClauseDb::new();
        let a = db.add(lits(&[1, 2]), false, 0);
        let b = db.add(lits(&[1, -3, 4]), true, 2);
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(a).len(), 2);
        assert!(db.get(b).learnt);
        db.delete(a);
        assert_eq!(db.len(), 1);
        assert_eq!(db.num_problem, 0);
        assert_eq!(db.iter_refs().count(), 1);
    }

    #[test]
    fn emptiness() {
        let mut db = ClauseDb::new();
        assert!(db.is_empty());
        let a = db.add(lits(&[1, 2]), false, 0);
        assert!(!db.is_empty());
        assert!(!db.get(a).is_empty());
        db.delete(a);
        assert!(db.is_empty());
    }

    #[test]
    fn collect_remaps() {
        let mut db = ClauseDb::new();
        let a = db.add(lits(&[1, 2]), false, 0);
        let b = db.add(lits(&[2, 3]), false, 0);
        let c = db.add(lits(&[3, 4]), false, 0);
        db.delete(b);
        let remap = db.collect();
        assert_eq!(remap[a.0 as usize], ClauseRef(0));
        assert_eq!(remap[b.0 as usize], ClauseRef::UNDEF);
        let c2 = remap[c.0 as usize];
        assert_eq!(db.get(c2).lits(), lits(&[3, 4]).as_slice());
        assert_eq!(db.len(), 2);
        assert_eq!(db.wasted(), 0);
    }
}
