//! Clause storage: a MiniSat-style flat `u32` arena.
//!
//! All clauses live in one contiguous `Vec<u32>` as back-to-back records
//!
//! ```text
//! offset r:  +0 header   (len << 3 | RELOCATED | DELETED | LEARNT)
//!            +1 lbd      (glue at learning time; forward offset during GC)
//!            +2 activity (f32 bit pattern)
//!            +3 lits[0] .. lits[len-1]   (Lit, one u32 each)
//! ```
//!
//! A [`ClauseRef`] is the word offset of a record's header, so propagation
//! reads literals inline from the arena with a single index — no
//! per-clause heap allocation, no pointer chase. Deleted clauses are
//! tombstoned; garbage collection is a single compacting copy pass driven
//! by [`ClauseDb::reloc`]: the first reference to reach a live record
//! moves it to the new arena and leaves a forwarding offset behind, and
//! every later reference follows that forward.
// The only unsafe code in this crate lives here (the arena accessors and the propagate prefetch);
// the crate root denies it everywhere else, and every block
// carries a `// SAFETY:` comment (clippy-enforced).
#![allow(unsafe_code)]

use crate::types::{ClauseRef, Lit};

/// Words before the literals in every record.
const HEADER_WORDS: usize = 3;
/// Header flag: learnt (redundant) clause.
const LEARNT: u32 = 1;
/// Header flag: tombstoned, reclaimed by the next collection.
const DELETED: u32 = 2;
/// Header flag (GC-transient): record moved, word 1 holds the new offset.
const RELOCATED: u32 = 4;
/// Length field shift within the header word.
const LEN_SHIFT: u32 = 3;

/// The clause database: one flat arena of clause records.
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    data: Vec<u32>,
    /// Count of live learnt clauses.
    pub num_learnt: usize,
    /// Count of live problem clauses.
    pub num_problem: usize,
    /// Words occupied by tombstoned records.
    freed: usize,
}

impl ClauseDb {
    /// An empty database.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// An empty database with `words` of arena capacity pre-reserved.
    fn with_capacity(words: usize) -> ClauseDb {
        ClauseDb {
            data: Vec::with_capacity(words),
            ..ClauseDb::default()
        }
    }

    /// Adds a clause and returns its reference (the record's word offset).
    pub fn add(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        debug_assert!(lits.len() < (1 << (32 - LEN_SHIFT)) as usize);
        // Hard check: a wrapped offset would silently alias an earlier
        // record and corrupt the solver, so fail loudly in release too.
        // (One branch per clause *add* — not on the propagation path.)
        assert!(
            self.data.len() < u32::MAX as usize - (HEADER_WORDS + lits.len()),
            "clause arena exceeds 2^32 words"
        );
        let r = ClauseRef(self.data.len() as u32);
        self.data.reserve(HEADER_WORDS + lits.len());
        self.data
            .push((lits.len() as u32) << LEN_SHIFT | if learnt { LEARNT } else { 0 });
        self.data.push(lbd);
        self.data.push(0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.index() as u32));
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        r
    }

    /// Hints the CPU to pull clause `r`'s header (and, records being
    /// contiguous, the first literals on the same line) toward the cache.
    ///
    /// On x86-64 this issues a non-blocking `prefetcht0`; on other
    /// architectures it degrades to a cheap volatile header read — a
    /// pre-touch that costs one load but still hides the miss behind the
    /// caller's other work. Used by propagation to overlap the next
    /// watcher's arena access with the current clause's processing.
    #[inline]
    pub fn prefetch(&self, r: ClauseRef) {
        let idx = r.0 as usize;
        debug_assert!(idx < self.data.len());
        // SAFETY: watchers only hold offsets of records inside the arena,
        // so `idx` is in bounds; both intrinsics read, never write.
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.data.as_ptr().add(idx) as *const i8, _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        unsafe {
            std::ptr::read_volatile(self.data.as_ptr().add(idx));
        }
    }

    /// Number of literals of clause `r`.
    #[inline]
    pub fn clause_len(&self, r: ClauseRef) -> usize {
        (self.data[r.0 as usize] >> LEN_SHIFT) as usize
    }

    /// Literal `i` of clause `r`.
    #[inline]
    pub fn lit(&self, r: ClauseRef, i: usize) -> Lit {
        debug_assert!(i < self.clause_len(r));
        Lit::from_index(self.data[r.0 as usize + HEADER_WORDS + i] as usize)
    }

    /// The literals of clause `r`, inline in the arena. The first two are
    /// the watched ones.
    #[inline]
    pub fn lits(&self, r: ClauseRef) -> &[Lit] {
        let len = self.clause_len(r);
        let start = r.0 as usize + HEADER_WORDS;
        let words = &self.data[start..start + len];
        // SAFETY: the range was bounds-checked by the slice above, and Lit
        // is #[repr(transparent)] over u32, so &[u32] and &[Lit] have
        // identical layout.
        unsafe { &*(words as *const [u32] as *const [Lit]) }
    }

    /// Mutable literal access (used by propagation to reorder watches).
    #[inline]
    pub fn lits_mut(&mut self, r: ClauseRef) -> &mut [Lit] {
        let len = self.clause_len(r);
        let start = r.0 as usize + HEADER_WORDS;
        let words = &mut self.data[start..start + len];
        // SAFETY: as in `lits` — Lit is #[repr(transparent)] over u32.
        unsafe { &mut *(words as *mut [u32] as *mut [Lit]) }
    }

    /// True for learnt (redundant) clauses.
    #[inline]
    pub fn learnt(&self, r: ClauseRef) -> bool {
        self.data[r.0 as usize] & LEARNT != 0
    }

    /// Literal-block distance recorded at learning time (0 for problem
    /// clauses).
    #[inline]
    pub fn lbd(&self, r: ClauseRef) -> u32 {
        self.data[r.0 as usize + 1]
    }

    /// Bump-and-decay activity used for reduction tie-breaking.
    #[inline]
    pub fn activity(&self, r: ClauseRef) -> f32 {
        f32::from_bits(self.data[r.0 as usize + 2])
    }

    /// Overwrites the activity of clause `r`.
    #[inline]
    pub fn set_activity(&mut self, r: ClauseRef, a: f32) {
        self.data[r.0 as usize + 2] = a.to_bits();
    }

    /// Multiplies every learnt clause's activity by `factor` (rescue from
    /// float overflow during bumping).
    pub fn rescale_activities(&mut self, factor: f32) {
        let mut off = 0usize;
        while off < self.data.len() {
            let header = self.data[off];
            if header & (LEARNT | DELETED) == LEARNT {
                let a = f32::from_bits(self.data[off + 2]) * factor;
                self.data[off + 2] = a.to_bits();
            }
            off += HEADER_WORDS + (header >> LEN_SHIFT) as usize;
        }
    }

    /// Tombstones a clause. The record is reclaimed by the next collection.
    pub fn delete(&mut self, r: ClauseRef) {
        let header = self.data[r.0 as usize];
        debug_assert_eq!(header & DELETED, 0, "double delete");
        self.data[r.0 as usize] = header | DELETED;
        if header & LEARNT != 0 {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
        self.freed += HEADER_WORDS + (header >> LEN_SHIFT) as usize;
    }

    /// All live clause references, in arena order.
    pub fn iter_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        let mut off = 0usize;
        std::iter::from_fn(move || {
            while off < self.data.len() {
                let header = self.data[off];
                let r = ClauseRef(off as u32);
                off += HEADER_WORDS + (header >> LEN_SHIFT) as usize;
                if header & DELETED == 0 {
                    return Some(r);
                }
            }
            None
        })
    }

    /// Arena words occupied by tombstoned records.
    pub fn wasted(&self) -> usize {
        self.freed
    }

    /// Total words in the arena (live + tombstoned).
    pub fn arena_len(&self) -> usize {
        self.data.len()
    }

    /// Starts a compacting collection: returns the destination arena,
    /// sized for the live records. Move clauses into it with
    /// [`ClauseDb::reloc`] (once per external reference), then install it
    /// in place of `self`.
    pub fn start_collect(&self) -> ClauseDb {
        ClauseDb::with_capacity(self.data.len() - self.freed)
    }

    /// Relocates the clause behind `cref` into `to`, updating `cref` to
    /// the clause's new offset. The first reference to reach a record
    /// copies it and leaves a forwarding offset; later references follow
    /// the forward, so calling this for *every* live external reference
    /// (all watchers, all reasons) is both required and sufficient.
    pub fn reloc(&mut self, cref: &mut ClauseRef, to: &mut ClauseDb) {
        let r = cref.0 as usize;
        let header = self.data[r];
        if header & RELOCATED != 0 {
            cref.0 = self.data[r + 1];
            return;
        }
        debug_assert_eq!(header & DELETED, 0, "deleted clause still referenced");
        let len = (header >> LEN_SHIFT) as usize;
        let new_off = to.data.len() as u32;
        to.data
            .extend_from_slice(&self.data[r..r + HEADER_WORDS + len]);
        if header & LEARNT != 0 {
            to.num_learnt += 1;
        } else {
            to.num_problem += 1;
        }
        self.data[r] = header | RELOCATED;
        self.data[r + 1] = new_off;
        cref.0 = new_off;
    }

    /// Total live clauses.
    pub fn len(&self) -> usize {
        self.num_learnt + self.num_problem
    }

    /// True when no live clauses exist.
    #[allow(dead_code)] // exercised by tests; kept for API completeness
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(v: &[i32]) -> Vec<Lit> {
        v.iter()
            .map(|&x| Lit::new(x.unsigned_abs() - 1, x > 0))
            .collect()
    }

    #[test]
    fn add_get_delete() {
        let mut db = ClauseDb::new();
        let a = db.add(&lits(&[1, 2]), false, 0);
        let b = db.add(&lits(&[1, -3, 4]), true, 2);
        assert_eq!(db.len(), 2);
        assert_eq!(db.clause_len(a), 2);
        assert!(db.learnt(b));
        assert_eq!(db.lbd(b), 2);
        assert_eq!(db.lits(b), lits(&[1, -3, 4]).as_slice());
        db.delete(a);
        assert_eq!(db.len(), 1);
        assert_eq!(db.num_problem, 0);
        assert_eq!(db.iter_refs().count(), 1);
        assert_eq!(db.wasted(), HEADER_WORDS + 2);
    }

    #[test]
    fn emptiness() {
        let mut db = ClauseDb::new();
        assert!(db.is_empty());
        let a = db.add(&lits(&[1, 2]), false, 0);
        assert!(!db.is_empty());
        assert_eq!(db.clause_len(a), 2);
        db.delete(a);
        assert!(db.is_empty());
    }

    #[test]
    fn refs_are_word_offsets() {
        let mut db = ClauseDb::new();
        let a = db.add(&lits(&[1, 2]), false, 0);
        let b = db.add(&lits(&[2, 3, 4]), false, 0);
        assert_eq!(a.0, 0);
        assert_eq!(b.0, (HEADER_WORDS + 2) as u32);
        assert_eq!(db.lit(b, 2), lits(&[4])[0]);
    }

    #[test]
    fn activity_roundtrips_through_bits() {
        let mut db = ClauseDb::new();
        let a = db.add(&lits(&[1, 2]), true, 1);
        db.set_activity(a, 3.5);
        assert_eq!(db.activity(a), 3.5);
        db.rescale_activities(0.5);
        assert_eq!(db.activity(a), 1.75);
    }

    #[test]
    fn reloc_compacts_and_forwards() {
        let mut db = ClauseDb::new();
        let a = db.add(&lits(&[1, 2]), false, 0);
        let b = db.add(&lits(&[2, 3]), true, 5);
        let c = db.add(&lits(&[3, 4]), false, 0);
        db.delete(b);
        let mut to = db.start_collect();
        // Two references per clause, as the solver's watch lists hold.
        let (mut a1, mut a2) = (a, a);
        let (mut c1, mut c2) = (c, c);
        db.reloc(&mut a1, &mut to);
        db.reloc(&mut c1, &mut to);
        db.reloc(&mut a2, &mut to);
        db.reloc(&mut c2, &mut to);
        assert_eq!(a1, a2, "second reference follows the forward");
        assert_eq!(c1, c2);
        assert_ne!(a1, c1);
        assert_eq!(to.len(), 2);
        assert_eq!(to.num_problem, 2);
        assert_eq!(to.num_learnt, 0);
        assert_eq!(to.wasted(), 0);
        assert_eq!(to.lits(a1), lits(&[1, 2]).as_slice());
        assert_eq!(to.lits(c1), lits(&[3, 4]).as_slice());
        assert_eq!(to.arena_len(), 2 * (HEADER_WORDS + 2));
    }

    #[test]
    fn iter_refs_walks_records() {
        let mut db = ClauseDb::new();
        let a = db.add(&lits(&[1, 2]), false, 0);
        let b = db.add(&lits(&[1, 2, 3]), true, 2);
        let c = db.add(&lits(&[4, 5]), false, 0);
        db.delete(b);
        let refs: Vec<ClauseRef> = db.iter_refs().collect();
        assert_eq!(refs, vec![a, c]);
    }
}
