//! Solver configuration and the two paper-substitute presets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Restart strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RestartStrategy {
    /// Luby sequence scaled by `base` conflicts (MiniSat/Kissat style).
    Luby {
        /// Conflicts per Luby unit.
        base: u64,
    },
    /// Glucose-style exponential moving averages of learnt-clause LBD:
    /// restart when `fast > margin * slow` after at least `min_interval`
    /// conflicts (CaDiCaL's focused mode).
    Glucose {
        /// Fast EMA smoothing (as a negative power of two, e.g. 5 = 2^-5).
        fast_shift: u32,
        /// Slow EMA smoothing (e.g. 14 = 2^-14).
        slow_shift: u32,
        /// Restart margin.
        margin: f64,
        /// Minimum conflicts between restarts.
        min_interval: u64,
    },
}

/// Full solver configuration.
///
/// The two presets stand in for the two solvers of the paper's evaluation
/// (Fig. 4a Kissat, Fig. 4c CaDiCaL): both are faithful CDCL configurations
/// that differ in restart policy, decay rates, and reduction cadence — the
/// dimensions along which the real solvers differ most.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// EVSIDS variable-activity decay factor.
    pub var_decay: f64,
    /// Learnt-clause activity decay factor.
    pub clause_decay: f64,
    /// Restart strategy.
    pub restart: RestartStrategy,
    /// Conflicts before the first clause-database reduction.
    pub reduce_first: u64,
    /// Additional conflicts before each subsequent reduction.
    pub reduce_increment: u64,
    /// Learnt clauses with LBD at most this are never deleted.
    pub keep_lbd: u32,
    /// Use saved phases for decision polarity.
    pub phase_saving: bool,
    /// Polarity used before a variable has a saved phase.
    pub default_phase: bool,
    /// Record a DRAT-style [`crate::proof::ProofLog`] of every derived
    /// clause addition and deletion. Off by default; when off the solver
    /// carries no log and pays nothing beyond a per-conflict `None` check.
    /// Presolve does not emit proof steps, so certified pipelines must
    /// solve the unpreprocessed formula (csat disables presolve under
    /// `--proof`).
    pub proof: bool,
}

impl SolverConfig {
    /// Aggressively restarting preset standing in for **Kissat 4.0**.
    pub fn kissat_like() -> SolverConfig {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart: RestartStrategy::Luby { base: 256 },
            reduce_first: 2000,
            reduce_increment: 1000,
            keep_lbd: 2,
            phase_saving: true,
            default_phase: false,
            proof: false,
        }
    }

    /// Glucose-EMA preset standing in for **CaDiCaL 2.0**.
    pub fn cadical_like() -> SolverConfig {
        SolverConfig {
            var_decay: 0.92,
            clause_decay: 0.995,
            restart: RestartStrategy::Glucose {
                fast_shift: 5,
                slow_shift: 12,
                margin: 1.25,
                min_interval: 64,
            },
            reduce_first: 3000,
            reduce_increment: 1500,
            keep_lbd: 3,
            phase_saving: true,
            default_phase: true,
            proof: false,
        }
    }
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig::kissat_like()
    }
}

/// Shared, hierarchical cancellation token an external controller flips to
/// interrupt every solver holding a clone of it.
///
/// Cancellation is sticky — once raised, every subsequent budgeted solve
/// returns [`crate::SolveResult::Unknown`] until [`Cancellation::reset`]
/// clears the flag (or the solver gets a budget without the token). The
/// solver polls it coarsely (once per interrupt-check period), so a
/// cancelled solve stops promptly but not instantaneously.
///
/// Tokens form a tree: [`Cancellation::child`] derives a token that is
/// cancelled whenever any of its ancestors is, while cancelling the child
/// leaves the parent (and its other children) untouched. That is how a
/// serving layer fans one engine-level shutdown out to every queued and
/// in-flight query without making the queries share a single global flag —
/// each query owns its child token and can be cancelled (or reset and
/// resumed) individually.
#[derive(Clone, Debug, Default)]
pub struct Cancellation(Arc<CancelNode>);

/// One node of the cancellation tree: an own flag plus an optional parent.
#[derive(Debug, Default)]
struct CancelNode {
    flag: AtomicBool,
    parent: Option<Arc<CancelNode>>,
}

impl Cancellation {
    /// A fresh, unraised root token.
    pub fn new() -> Cancellation {
        Cancellation::default()
    }

    /// Derives a child token: cancelled when `self` (or any ancestor of
    /// `self`) is cancelled, but cancelling the child does not reach
    /// `self`. Clones of the child share the child's flag, as always.
    pub fn child(&self) -> Cancellation {
        Cancellation(Arc::new(CancelNode {
            flag: AtomicBool::new(false),
            parent: Some(Arc::clone(&self.0)),
        }))
    }

    /// Raises this token (and therefore every descendant); safe to call
    /// from any thread, idempotent. Ancestors are unaffected.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`Cancellation::cancel`] has been called on this token or
    /// any of its ancestors.
    pub fn is_cancelled(&self) -> bool {
        let mut node: &CancelNode = &self.0;
        loop {
            if node.flag.load(Ordering::Relaxed) {
                return true;
            }
            match &node.parent {
                Some(p) => node = p,
                None => return false,
            }
        }
    }

    /// Clears this token's own flag so solvers sharing it can run again.
    /// A cancellation inherited from an ancestor is not cleared — reset
    /// the ancestor that was cancelled.
    pub fn reset(&self) {
        self.0.flag.store(false, Ordering::Relaxed);
    }
}

/// Resource limits for one `solve()` call.
///
/// Exceeding any limit makes the solver return
/// [`crate::SolveResult::Unknown`] with its incremental state intact —
/// re-querying resumes correctly. The decision budget is the natural
/// companion of the paper's branching-count metric; the wall-clock
/// deadline and the cancellation token are the serve-layer throttles
/// (polled coarsely in the search loop, never on the propagation hot
/// path).
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum conflicts.
    pub conflicts: Option<u64>,
    /// Maximum decisions (branchings).
    pub decisions: Option<u64>,
    /// Maximum unit propagations.
    pub propagations: Option<u64>,
    /// Wall-clock deadline: the solve returns `Unknown` once `Instant::now()`
    /// passes it. Checked once per interrupt-check period, so overshoot is
    /// bounded by a batch of conflicts, not by the whole solve.
    pub deadline: Option<Instant>,
    /// External cancellation token shared with a controller thread.
    pub cancel: Option<Cancellation>,
}

impl Budget {
    /// No limits.
    pub const UNLIMITED: Budget = Budget {
        conflicts: None,
        decisions: None,
        propagations: None,
        deadline: None,
        cancel: None,
    };

    /// A conflict-count limit only.
    pub fn conflicts(n: u64) -> Budget {
        Budget {
            conflicts: Some(n),
            ..Budget::UNLIMITED
        }
    }

    /// A wall-clock limit only, expiring `timeout` from now.
    pub fn timeout(timeout: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + timeout),
            ..Budget::UNLIMITED
        }
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Budget {
        self.deadline = deadline;
        self
    }

    /// Attaches a shared cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Cancellation) -> Budget {
        self.cancel = Some(cancel);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ() {
        let k = SolverConfig::kissat_like();
        let c = SolverConfig::cadical_like();
        assert_ne!(k.restart, c.restart);
        assert_ne!(k.var_decay, c.var_decay);
    }

    #[test]
    fn budget_helpers() {
        let b = Budget::conflicts(100);
        assert_eq!(b.conflicts, Some(100));
        assert!(b.decisions.is_none());
        assert!(b.deadline.is_none());
        assert!(b.cancel.is_none());
        let t = Budget::timeout(Duration::from_secs(1));
        assert!(t.deadline.is_some());
        assert!(t.conflicts.is_none());
    }

    #[test]
    fn cancellation_is_shared_sticky_and_resettable() {
        let c = Cancellation::new();
        let clone = c.clone();
        assert!(!clone.is_cancelled());
        c.cancel();
        assert!(clone.is_cancelled(), "clones share one flag");
        c.cancel(); // idempotent
        assert!(c.is_cancelled());
        clone.reset();
        assert!(!c.is_cancelled());
    }

    #[test]
    fn child_tokens_inherit_but_do_not_leak_upward() {
        let root = Cancellation::new();
        let a = root.child();
        let b = root.child();
        let grand = a.child();
        // Child cancel stays local.
        a.cancel();
        assert!(a.is_cancelled());
        assert!(grand.is_cancelled(), "grandchild inherits from parent");
        assert!(!root.is_cancelled(), "cancel must not leak upward");
        assert!(!b.is_cancelled(), "siblings are independent");
        a.reset();
        assert!(!grand.is_cancelled());
        // Root cancel reaches every descendant at once.
        root.cancel();
        assert!(a.is_cancelled() && b.is_cancelled() && grand.is_cancelled());
        // A child cannot clear an inherited cancellation...
        grand.reset();
        assert!(grand.is_cancelled());
        // ...only the ancestor that was cancelled can.
        root.reset();
        assert!(!grand.is_cancelled() && !a.is_cancelled() && !b.is_cancelled());
    }
}
