//! Internal solver types: packed literals, ternary values, clause refs.

use std::fmt;
use std::ops::Not;

/// Internal 0-based variable index.
pub type Var = u32;

/// Internal literal: `2*var + sign` with `sign = 1` meaning negated.
///
/// Distinct from [`cnf::CnfLit`] (DIMACS convention) — conversion happens at
/// the solver boundary.
/// `#[repr(transparent)]` over `u32`: literals are stored directly as the
/// words of the flat clause arena, and [`crate::clause::ClauseDb::lits`]
/// reinterprets arena words as literal slices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(u32);

impl Lit {
    /// Sentinel for "no literal".
    pub const UNDEF: Lit = Lit(u32::MAX);

    /// Literal of `var` with the given polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var << 1 | !positive as u32)
    }

    /// Converts from a DIMACS-convention literal (1-based, signed).
    #[inline]
    pub fn from_cnf(l: cnf::CnfLit) -> Lit {
        Lit::new(l.var() - 1, l.is_positive())
    }

    /// Converts to a DIMACS-convention literal.
    #[inline]
    pub fn to_cnf(self) -> cnf::CnfLit {
        cnf::CnfLit::new(self.var() + 1, self.is_positive())
    }

    /// The variable of this literal.
    #[inline]
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True for positive (non-negated) literals.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Index usable for watch/occurrence arrays (`0..2*num_vars`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::index`].
    #[inline]
    pub fn from_index(i: usize) -> Lit {
        Lit(i as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::UNDEF {
            return write!(f, "UNDEF");
        }
        write!(
            f,
            "{}{}",
            if self.is_positive() { "" } else { "-" },
            self.var() + 1
        )
    }
}

/// Ternary assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum LBool {
    /// Assigned true.
    True = 0,
    /// Assigned false.
    False = 1,
    /// Unassigned.
    Undef = 2,
}

impl LBool {
    /// Converts a bool.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// XORs with a sign: value of a literal given its variable's value.
    #[inline]
    pub fn xor(self, sign: bool) -> LBool {
        match self {
            LBool::Undef => LBool::Undef,
            _ => LBool::from_bool((self == LBool::True) ^ sign),
        }
    }
}

/// Reference to a clause in the clause database: the word offset of the
/// clause's record header inside the flat arena (see
/// [`crate::clause::ClauseDb`]). Offsets are remapped by garbage
/// collection, which compacts the arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// Sentinel for "no reason clause" (decision or unassigned).
    pub const UNDEF: ClauseRef = ClauseRef(u32::MAX);

    /// True for the [`ClauseRef::UNDEF`] sentinel.
    pub(crate) fn is_undef(self) -> bool {
        self == ClauseRef::UNDEF
    }
}

impl fmt::Debug for ClauseRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_undef() {
            write!(f, "CRef(UNDEF)")
        } else {
            write!(f, "CRef({})", self.0)
        }
    }
}

/// Why a variable holds its assignment.
///
/// Binary clauses live outside the arena (see the solver's two-tier watch
/// scheme), so a binary implication's antecedent is the *other* literal of
/// the clause stored inline — conflict analysis resolves over it without
/// an arena load, and garbage collection never has to remap it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reason {
    /// Decision, assumption, or unassigned.
    Decision,
    /// Implied by an arena clause whose slot-0 literal is the implied one.
    Clause(ClauseRef),
    /// Implied by a binary clause; the payload is the clause's other
    /// literal (false under the assignment that forced the implication).
    Binary(Lit),
}

impl Reason {
    /// True for [`Reason::Decision`].
    #[inline]
    pub(crate) fn is_decision(self) -> bool {
        matches!(self, Reason::Decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding() {
        let p = Lit::new(3, true);
        let n = Lit::new(3, false);
        assert_eq!(p.var(), 3);
        assert!(p.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_ne!(p.index(), n.index());
        assert_eq!(Lit::from_index(p.index()), p);
    }

    #[test]
    fn cnf_conversion_roundtrip() {
        for raw in [1i32, -1, 5, -17] {
            let c = cnf::CnfLit::from_dimacs(raw);
            assert_eq!(Lit::from_cnf(c).to_cnf(), c);
        }
    }

    #[test]
    fn reason_tags() {
        assert!(Reason::Decision.is_decision());
        assert!(!Reason::Clause(ClauseRef(0)).is_decision());
        assert!(!Reason::Binary(Lit::new(0, true)).is_decision());
        assert_ne!(Reason::Clause(ClauseRef(4)), Reason::Clause(ClauseRef(8)));
    }

    #[test]
    fn lbool_xor() {
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::False.xor(true), LBool::True);
        assert_eq!(LBool::Undef.xor(true), LBool::Undef);
        assert_eq!(LBool::True.xor(false), LBool::True);
    }
}
