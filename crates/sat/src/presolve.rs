//! CNF preprocessing: unit propagation, subsumption, self-subsuming
//! resolution, and bounded variable elimination (SatELite-style).
//!
//! The paper's evaluation "keeps the default CNF-based preprocessing" of
//! Kissat/CaDiCaL; this module provides the same class of simplification
//! for our solver, as a pure CNF-to-CNF transformation with model
//! reconstruction. It is exposed separately from the CDCL core so
//! pipelines (and benches) can toggle it explicitly.

use crate::config::{Budget, SolverConfig};
use crate::solver::{solve_cnf, SolveResult};
use crate::stats::Stats;
use cnf::{Cnf, CnfLit};
use std::collections::HashMap;

/// Preprocessing limits.
#[derive(Clone, Copy, Debug)]
pub struct PresolveConfig {
    /// Skip elimination of variables occurring more often than this.
    pub max_occurrences: usize,
    /// Do not create resolvents longer than this.
    pub max_resolvent_len: usize,
    /// Sweep the formula at most this many times.
    pub max_rounds: usize,
}

impl Default for PresolveConfig {
    fn default() -> PresolveConfig {
        PresolveConfig {
            max_occurrences: 20,
            max_resolvent_len: 12,
            max_rounds: 4,
        }
    }
}

/// Reverses variable elimination on models of the simplified formula.
#[derive(Clone, Debug, Default)]
pub struct Reconstructor {
    /// `(var, clauses)` in elimination order; each clause is in DIMACS ints.
    eliminated: Vec<(u32, Vec<Vec<i32>>)>,
    num_vars: usize,
    /// Values forced at preprocessing time (units), 1-based var -> value.
    forced: Vec<(u32, bool)>,
}

impl Reconstructor {
    /// Extends a model of the simplified formula to the original variables.
    ///
    /// `model[v-1]` is the value of variable `v`; missing variables get a
    /// default before reconstruction.
    pub fn extend_model(&self, mut model: Vec<bool>) -> Vec<bool> {
        model.resize(self.num_vars, false);
        for &(v, val) in &self.forced {
            model[(v - 1) as usize] = val;
        }
        for (v, clauses) in self.eliminated.iter().rev() {
            let vi = (*v - 1) as usize;
            // Default false; flip if some clause is otherwise unsatisfied.
            model[vi] = false;
            for c in clauses {
                let sat = c.iter().any(|&l| {
                    let idx = (l.unsigned_abs() - 1) as usize;
                    model[idx] == (l > 0)
                });
                if !sat {
                    // The clause must contain v positively (it was removed
                    // because it mentioned v); satisfy it through v.
                    debug_assert!(c.contains(&(*v as i32)));
                    model[vi] = true;
                }
            }
        }
        model
    }
}

/// Outcome of preprocessing.
#[derive(Clone, Debug)]
pub enum Presolved {
    /// The formula is unsatisfiable.
    Unsat,
    /// Every clause was satisfied/eliminated; a full model can be built
    /// with the reconstructor from any assignment.
    Sat(Reconstructor),
    /// A simplified, equisatisfiable formula plus model reconstruction.
    Simplified(Cnf, Reconstructor),
}

/// Simplifies a formula. Equisatisfiable by construction; models of the
/// output extend to models of the input via the [`Reconstructor`].
pub fn presolve(formula: &Cnf, cfg: &PresolveConfig) -> Presolved {
    let num_vars = formula.num_vars() as usize;
    // Clause store in DIMACS ints; None = deleted.
    let mut clauses: Vec<Option<Vec<i32>>> = formula
        .clauses()
        .iter()
        .map(|c| Some(c.iter().map(|l| l.to_dimacs()).collect()))
        .collect();
    let mut recon = Reconstructor {
        num_vars,
        ..Reconstructor::default()
    };
    // assignment: 0 unknown, 1 true, -1 false.
    let mut assign = vec![0i8; num_vars + 1];

    for _ in 0..cfg.max_rounds {
        let mut changed = false;
        if !propagate_units(&mut clauses, &mut assign, &mut recon) {
            return Presolved::Unsat;
        }
        changed |= subsumption_pass(&mut clauses);
        match eliminate_variables(&mut clauses, &assign, cfg, &mut recon) {
            None => return Presolved::Unsat,
            Some(c) => changed |= c,
        }
        if !changed {
            break;
        }
    }
    if !propagate_units(&mut clauses, &mut assign, &mut recon) {
        return Presolved::Unsat;
    }

    let live: Vec<&Vec<i32>> = clauses.iter().flatten().collect();
    if live.is_empty() {
        return Presolved::Sat(recon);
    }
    let mut out = Cnf::new();
    out.ensure_vars(formula.num_vars());
    for c in live {
        out.add_clause(c.iter().map(|&l| CnfLit::from_dimacs(l)).collect());
    }
    Presolved::Simplified(out, recon)
}

/// Propagates unit clauses destructively; false on conflict.
fn propagate_units(
    clauses: &mut [Option<Vec<i32>>],
    assign: &mut [i8],
    recon: &mut Reconstructor,
) -> bool {
    loop {
        let mut found_unit: Option<i32> = None;
        for c in clauses.iter_mut() {
            let Some(lits) = c else { continue };
            let mut satisfied = false;
            lits.retain(|&l| {
                let v = assign[l.unsigned_abs() as usize];
                if v == 0 {
                    return true;
                }
                if (v == 1) == (l > 0) {
                    satisfied = true;
                }
                false
            });
            if satisfied {
                *c = None;
                continue;
            }
            match lits.len() {
                0 => return false, // conflict
                1 => {
                    found_unit = Some(lits[0]);
                    *c = None;
                }
                _ => {}
            }
            if found_unit.is_some() {
                break;
            }
        }
        match found_unit {
            None => return true,
            Some(l) => {
                let v = l.unsigned_abs();
                let val = l > 0;
                match assign[v as usize] {
                    0 => {
                        assign[v as usize] = if val { 1 } else { -1 };
                        recon.forced.push((v, val));
                    }
                    a if (a == 1) == val => {}
                    _ => return false,
                }
            }
        }
    }
}

/// Removes subsumed clauses and applies self-subsuming resolution.
///
/// Candidate pairs are found through occurrence lists (SatELite-style):
/// any clause subsumed by `ci` must contain `ci`'s least-occurring
/// variable, so only that variable's occurrence list is scanned — near
/// linear on circuit CNFs instead of quadratic over all clause pairs.
fn subsumption_pass(clauses: &mut [Option<Vec<i32>>]) -> bool {
    let mut changed = false;
    for c in clauses.iter_mut().flatten() {
        c.sort_unstable();
        c.dedup();
    }
    let sig = |c: &[i32]| -> u64 {
        c.iter()
            .fold(0u64, |s, &l| s | 1 << (l.unsigned_abs() % 64))
    };
    // Occurrence lists by variable (not literal: self-subsumption needs
    // clauses containing either polarity).
    let mut occ: HashMap<u32, Vec<usize>> = HashMap::new();
    for (idx, c) in clauses.iter().enumerate() {
        let Some(lits) = c else { continue };
        for &l in lits {
            occ.entry(l.unsigned_abs()).or_default().push(idx);
        }
    }
    let n = clauses.len();
    for i in 0..n {
        let Some(ci) = clauses[i].clone() else {
            continue;
        };
        let si = sig(&ci);
        // Scan only the occurrence list of ci's rarest variable: every
        // clause ci (self-)subsumes mentions each of ci's variables.
        let pivot = ci
            .iter()
            .map(|l| l.unsigned_abs())
            .min_by_key(|v| occ.get(v).map_or(0, Vec::len));
        let Some(pivot) = pivot else { continue };
        let Some(candidates) = occ.get(&pivot) else {
            continue;
        };
        for &j in candidates {
            if i == j {
                continue;
            }
            let Some(cj) = clauses[j].as_ref() else {
                continue;
            };
            if cj.len() < ci.len() || si & !sig(cj) != 0 {
                continue;
            }
            if is_subset(&ci, cj) {
                clauses[j] = None;
                changed = true;
                continue;
            }
            // Self-subsuming resolution: ci \ {l} ⊆ cj and ¬l ∈ cj
            // strengthens cj by removing ¬l.
            if let Some(neg) = self_subsumes(&ci, cj) {
                let cj = clauses[j].as_mut().expect("checked");
                cj.retain(|&l| l != neg);
                changed = true;
            }
        }
    }
    changed
}

fn is_subset(small: &[i32], big: &[i32]) -> bool {
    // Both sorted.
    let mut j = 0;
    for &x in small {
        while j < big.len() && big[j] < x {
            j += 1;
        }
        if j == big.len() || big[j] != x {
            return false;
        }
    }
    true
}

/// If `small` self-subsumes `big` on exactly one flipped literal, returns
/// the literal of `big` to delete.
fn self_subsumes(small: &[i32], big: &[i32]) -> Option<i32> {
    let mut flipped: Option<i32> = None;
    for &x in small {
        if big.binary_search(&x).is_ok() {
            continue;
        }
        if big.binary_search(&-x).is_ok() {
            if flipped.is_some() {
                return None; // more than one flip: plain resolution, skip
            }
            flipped = Some(-x);
        } else {
            return None;
        }
    }
    flipped
}

/// Bounded variable elimination; `None` signals UNSAT (empty resolvent).
fn eliminate_variables(
    clauses: &mut Vec<Option<Vec<i32>>>,
    assign: &[i8],
    cfg: &PresolveConfig,
    recon: &mut Reconstructor,
) -> Option<bool> {
    let num_vars = assign.len() - 1;
    let mut changed = false;
    // Occurrence lists once per sweep; entries may go stale as clauses are
    // eliminated, so they are re-validated below.
    let mut occ_map: HashMap<u32, (Vec<usize>, Vec<usize>)> = HashMap::new();
    for (idx, c) in clauses.iter().enumerate() {
        let Some(lits) = c else { continue };
        for &l in lits {
            let entry = occ_map.entry(l.unsigned_abs()).or_default();
            if l > 0 {
                entry.0.push(idx);
            } else {
                entry.1.push(idx);
            }
        }
    }
    for v in 1..=num_vars as u32 {
        if assign[v as usize] != 0 {
            continue;
        }
        let Some((pos_raw, neg_raw)) = occ_map.get(&v) else {
            continue;
        };
        // Re-validate: entries go stale when clauses are deleted or
        // strengthened. The lists stay *complete* because resolvents are
        // registered as they are created and clauses never gain literals.
        let pos: Vec<usize> = pos_raw
            .iter()
            .filter(|&&idx| {
                clauses[idx]
                    .as_ref()
                    .is_some_and(|c| c.contains(&(v as i32)))
            })
            .copied()
            .collect();
        let neg: Vec<usize> = neg_raw
            .iter()
            .filter(|&&idx| {
                clauses[idx]
                    .as_ref()
                    .is_some_and(|c| c.contains(&-(v as i32)))
            })
            .copied()
            .collect();
        let occ = pos.len() + neg.len();
        if occ == 0 || occ > cfg.max_occurrences {
            continue;
        }
        // Build all non-tautological resolvents.
        let mut resolvents: Vec<Vec<i32>> = Vec::new();
        let mut too_big = false;
        'outer: for &pi in &pos {
            for &ni in &neg {
                let a = clauses[pi].as_ref().expect("live");
                let b = clauses[ni].as_ref().expect("live");
                if let Some(r) = resolve(a, b, v as i32) {
                    if r.is_empty() {
                        return None; // empty resolvent: UNSAT
                    }
                    if r.len() > cfg.max_resolvent_len {
                        too_big = true;
                        break 'outer;
                    }
                    resolvents.push(r);
                }
            }
        }
        if too_big || resolvents.len() > occ {
            continue; // elimination would grow the formula
        }
        // Commit: record originals for reconstruction, swap in resolvents.
        let mut originals = Vec::with_capacity(occ);
        for &idx in pos.iter().chain(&neg) {
            originals.push(clauses[idx].take().expect("live"));
        }
        recon.eliminated.push((v, originals));
        for r in resolvents {
            // Register the resolvent in the occurrence lists so later
            // pivots still see every clause that mentions them.
            let idx = clauses.len();
            for &l in &r {
                let entry = occ_map.entry(l.unsigned_abs()).or_default();
                if l > 0 {
                    entry.0.push(idx);
                } else {
                    entry.1.push(idx);
                }
            }
            clauses.push(Some(r));
        }
        changed = true;
    }
    Some(changed)
}

/// Resolvent of `a` and `b` on pivot `v` (`v ∈ a`, `-v ∈ b`); `None` if
/// tautological.
fn resolve(a: &[i32], b: &[i32], v: i32) -> Option<Vec<i32>> {
    let mut r: Vec<i32> = Vec::with_capacity(a.len() + b.len() - 2);
    r.extend(a.iter().copied().filter(|&l| l != v));
    for &l in b.iter().filter(|&&l| l != -v) {
        if r.contains(&-l) {
            return None;
        }
        if !r.contains(&l) {
            r.push(l);
        }
    }
    r.sort_unstable();
    Some(r)
}

/// Preprocess-then-solve convenience; model reconstruction applied.
pub fn solve_cnf_presolved(
    formula: &Cnf,
    cfg: SolverConfig,
    budget: Budget,
    pre: &PresolveConfig,
) -> (SolveResult, Stats) {
    match presolve(formula, pre) {
        Presolved::Sat(recon) => {
            let model = recon.extend_model(vec![false; formula.num_vars() as usize]);
            debug_assert!(
                formula.eval(&model),
                "reconstruction must satisfy the input"
            );
            (SolveResult::Sat(model), Stats::default())
        }
        Presolved::Unsat => (SolveResult::Unsat, Stats::default()),
        Presolved::Simplified(simplified, recon) => {
            let (res, stats) = solve_cnf(&simplified, cfg, budget);
            match res {
                SolveResult::Sat(model) => {
                    let full = recon.extend_model(model);
                    debug_assert!(formula.eval(&full), "reconstruction must satisfy the input");
                    (SolveResult::Sat(full), stats)
                }
                other => (other, stats),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dpll_sat;
    use rand::{Rng, SeedableRng};

    fn random_cnf(rng: &mut rand::rngs::StdRng, n: u32, m: usize) -> Cnf {
        let mut f = Cnf::new();
        f.ensure_vars(n);
        for _ in 0..m {
            let len = rng.gen_range(1..=3);
            let mut c: Vec<CnfLit> = Vec::new();
            while c.len() < len {
                let v = rng.gen_range(1..=n);
                if c.iter().all(|l| l.var() != v) {
                    c.push(CnfLit::new(v, rng.gen()));
                }
            }
            f.add_clause(c);
        }
        f
    }

    #[test]
    fn equisatisfiable_on_random_formulas() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for iter in 0..200 {
            let n = rng.gen_range(3..=10);
            let m = rng.gen_range(3..=35);
            let f = random_cnf(&mut rng, n, m);
            let expected = dpll_sat(&f);
            let (res, _) = solve_cnf_presolved(
                &f,
                SolverConfig::default(),
                Budget::UNLIMITED,
                &PresolveConfig::default(),
            );
            assert_eq!(res.is_sat(), expected, "iter {iter}");
            if let SolveResult::Sat(model) = res {
                assert!(f.eval(&model), "iter {iter}: reconstructed model invalid");
            }
        }
    }

    #[test]
    fn eliminates_pure_and_low_occurrence_vars() {
        // (1 | 2) & (-2 | 3) & (1 | 3): variable 2 resolves away.
        let mut f = Cnf::new();
        f.add_clause(vec![CnfLit::pos(1), CnfLit::pos(2)]);
        f.add_clause(vec![CnfLit::neg(2), CnfLit::pos(3)]);
        f.add_clause(vec![CnfLit::pos(1), CnfLit::pos(3)]);
        match presolve(&f, &PresolveConfig::default()) {
            Presolved::Unsat => panic!("satisfiable formula reported UNSAT"),
            Presolved::Sat(_) => {}
            Presolved::Simplified(out, _) => {
                assert!(out.num_clauses() <= f.num_clauses());
            }
        }
    }

    #[test]
    fn detects_trivial_unsat() {
        let mut f = Cnf::new();
        f.add_unit(CnfLit::pos(1));
        f.add_unit(CnfLit::neg(1));
        assert!(matches!(
            presolve(&f, &PresolveConfig::default()),
            Presolved::Unsat
        ));
    }

    #[test]
    fn subsumption_removes_weaker_clauses() {
        let mut f = Cnf::new();
        f.add_clause(vec![CnfLit::pos(1), CnfLit::pos(2)]);
        f.add_clause(vec![CnfLit::pos(1), CnfLit::pos(2), CnfLit::pos(3)]);
        // Force var 3 to stay (occurrence in another clause pair).
        f.add_clause(vec![CnfLit::neg(3), CnfLit::pos(4), CnfLit::neg(1)]);
        f.add_clause(vec![CnfLit::pos(3), CnfLit::neg(4), CnfLit::pos(2)]);
        if let Presolved::Simplified(out, _) = presolve(&f, &PresolveConfig::default()) {
            assert!(out.num_clauses() < f.num_clauses());
        }
    }

    #[test]
    fn tseitin_formulas_shrink() {
        // BVE on a Tseitin encoding removes most gate variables.
        let mut g = aig::Aig::new();
        let pis = g.add_pis(8);
        let x = g.xor_many(&pis);
        g.add_po(x);
        let (f, _) = cnf::tseitin_sat_instance(&g);
        match presolve(&f, &PresolveConfig::default()) {
            Presolved::Simplified(out, _) => {
                assert!(
                    out.num_clauses() <= f.num_clauses() * 2,
                    "bounded growth: {} -> {}",
                    f.num_clauses(),
                    out.num_clauses()
                );
            }
            Presolved::Sat(_) => {}
            Presolved::Unsat => panic!("xor instance is satisfiable"),
        }
        // And solving with presolve gives a valid witness.
        let (res, _) = solve_cnf_presolved(
            &f,
            SolverConfig::default(),
            Budget::UNLIMITED,
            &PresolveConfig::default(),
        );
        let model = res.model().expect("xor is satisfiable").to_vec();
        assert!(f.eval(&model));
    }
}
