//! Solver-side observability: the [`SolverTrace`] attached by
//! [`Solver::set_observer`](crate::Solver::set_observer).
//!
//! The solver stores it as `Option<Box<SolverTrace>>` — the same shape as
//! the proof log — so an unobserved solver pays one null-check at the
//! conflict-rate probe sites and nothing on the propagation hot path.
//! Counters are accumulated as *deltas* once per `solve()` (stats are
//! lifetime totals; the registry wants per-call increments), and each
//! solve runs under a `sat.solve` span carrying the per-call conflict and
//! decision counts on exit.

use crate::stats::Stats;
use crate::SolveResult;

/// Live observability hooks for one solver.
pub(crate) struct SolverTrace {
    /// Span the per-solve spans hang under (a serve query, a sweep shard,
    /// an mc frame — or the registry root).
    pub(crate) parent: obs::SpanHandle,
    conflicts: obs::Counter,
    decisions: obs::Counter,
    propagations: obs::Counter,
    restarts: obs::Counter,
    /// Conflicts per `solve()` call (the paper's per-query cost signal).
    per_solve: obs::Histogram,
    /// Propagations between consecutive conflicts.
    burst: obs::Histogram,
    /// Span of the in-flight `solve()`, if any.
    active: Option<obs::Span>,
    /// Stats snapshot at the start of the in-flight solve (for deltas).
    base: Stats,
    /// `stats.propagations` at the previous conflict (burst bookkeeping).
    last_props: u64,
}

impl std::fmt::Debug for SolverTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverTrace")
            .field("active", &self.active.is_some())
            .finish()
    }
}

/// Cloning a solver (serve clones a base solver per attempt, sweep forks
/// oracles across shards) must not duplicate an open span: the clone
/// starts with no in-flight solve and shares the metric cells.
impl Clone for SolverTrace {
    fn clone(&self) -> SolverTrace {
        SolverTrace {
            parent: self.parent.clone(),
            conflicts: self.conflicts.clone(),
            decisions: self.decisions.clone(),
            propagations: self.propagations.clone(),
            restarts: self.restarts.clone(),
            per_solve: self.per_solve.clone(),
            burst: self.burst.clone(),
            active: None,
            base: self.base,
            last_props: 0,
        }
    }
}

impl SolverTrace {
    pub(crate) fn new(parent: obs::SpanHandle) -> SolverTrace {
        let reg = parent.registry();
        SolverTrace {
            parent,
            conflicts: reg.counter("sat.conflicts"),
            decisions: reg.counter("sat.decisions"),
            propagations: reg.counter("sat.propagations"),
            restarts: reg.counter("sat.restarts"),
            per_solve: reg.histogram("sat.solve.conflicts"),
            burst: reg.histogram("sat.propagation_burst"),
            active: None,
            base: Stats::default(),
            last_props: 0,
        }
    }

    /// Opens the `sat.solve` span and snapshots the stats baseline.
    pub(crate) fn solve_start(&mut self, stats: &Stats, assumptions: usize) {
        self.base = *stats;
        self.last_props = stats.propagations;
        self.active = Some(
            self.parent
                .child_with("sat.solve", &[("assumptions", assumptions.into())]),
        );
    }

    /// Accumulates the solve's deltas into the live counters and closes
    /// the span with the per-call totals.
    pub(crate) fn solve_end(&mut self, stats: &Stats, result: &SolveResult) {
        let dc = stats.conflicts - self.base.conflicts;
        let dd = stats.decisions - self.base.decisions;
        let dp = stats.propagations - self.base.propagations;
        let dr = stats.restarts - self.base.restarts;
        self.conflicts.add(dc);
        self.decisions.add(dd);
        self.propagations.add(dp);
        self.restarts.add(dr);
        self.per_solve.observe(dc);
        if let Some(span) = self.active.take() {
            span.record("conflicts", dc);
            span.record("decisions", dd);
            span.record("propagations", dp);
            span.record(
                "result",
                match result {
                    SolveResult::Sat(_) => "sat",
                    SolveResult::Unsat => "unsat",
                    SolveResult::Unknown => "unknown",
                },
            );
        }
    }

    /// Conflict probe: records the propagation burst since the previous
    /// conflict. Called once per conflict, never on the propagation path.
    pub(crate) fn on_conflict(&mut self, stats: &Stats) {
        self.burst.observe(stats.propagations - self.last_props);
        self.last_props = stats.propagations;
    }

    /// Restart boundary, as an instant event on the active solve span.
    pub(crate) fn on_restart(&self, stats: &Stats) {
        if let Some(span) = &self.active {
            span.event("restart", &[("conflicts", stats.conflicts.into())]);
        }
    }

    /// Clause-database reduction boundary.
    pub(crate) fn on_reduce(&self, stats: &Stats) {
        if let Some(span) = &self.active {
            span.event(
                "reduce_db",
                &[
                    ("conflicts", stats.conflicts.into()),
                    ("deleted", stats.deleted_clauses.into()),
                ],
            );
        }
    }

    /// Arena garbage-collection boundary.
    pub(crate) fn on_gc(&self, stats: &Stats) {
        if let Some(span) = &self.active {
            span.event("gc", &[("gcs", stats.gcs.into())]);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Solver, SolverConfig};
    use cnf::{Cnf, CnfLit};

    /// php(4): 5 pigeons, 4 holes — UNSAT with a non-trivial search.
    fn php4() -> Cnf {
        let holes = 4;
        let var = |p: usize, h: usize| (p * holes + h + 1) as u32;
        let mut f = Cnf::new();
        for p in 0..=holes {
            f.add_clause((0..holes).map(|h| CnfLit::pos(var(p, h))).collect());
        }
        for h in 0..holes {
            for p1 in 0..=holes {
                for p2 in (p1 + 1)..=holes {
                    f.add_clause(vec![CnfLit::neg(var(p1, h)), CnfLit::neg(var(p2, h))]);
                }
            }
        }
        f
    }

    #[test]
    fn observed_solve_emits_span_and_counter_deltas() {
        let reg = obs::Registry::tracing();
        let mut s = Solver::from_cnf(&php4(), SolverConfig::default());
        s.set_observer(reg.root());
        assert!(s.solve().is_unsat());
        let snap = reg.snapshot();
        assert_eq!(
            snap.value("sat.conflicts"),
            Some(s.stats().conflicts),
            "live counter must equal the stats total after one solve"
        );
        let events = reg.drain_events();
        obs::check::validate(&events).expect("well-formed");
        assert_eq!(
            obs::check::sum_field(&events, "sat.solve", "conflicts"),
            s.stats().conflicts
        );
        let hist = snap.histogram("sat.solve.conflicts").expect("registered");
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, s.stats().conflicts);
    }

    #[test]
    fn cloned_observed_solver_shares_counters_but_not_spans() {
        let reg = obs::Registry::tracing();
        let mut base = Solver::from_cnf(&php4(), SolverConfig::default());
        base.set_observer(reg.root());
        let mut a = base.clone();
        let mut b = base.clone();
        assert!(a.solve().is_unsat());
        assert!(b.solve().is_unsat());
        let total = a.stats().conflicts + b.stats().conflicts;
        assert_eq!(reg.snapshot().value("sat.conflicts"), Some(total));
        obs::check::validate(&reg.drain_events()).expect("well-formed");
    }

    #[test]
    fn disabled_observer_detaches() {
        let mut s = Solver::from_cnf(&php4(), SolverConfig::default());
        s.set_observer(obs::Registry::tracing().root());
        s.set_observer(obs::Registry::disabled().root());
        assert!(s.solve().is_unsat());
    }
}
