//! A deliberately simple DPLL oracle for cross-checking the CDCL engine.
//!
//! No learning, no heuristics beyond unit propagation — slow but easy to
//! audit, which is exactly what a differential-testing reference should be.

use cnf::Cnf;

/// Decides satisfiability by plain DPLL with unit propagation.
///
/// Intended for small formulas (tens of variables) in tests.
pub fn dpll_sat(formula: &Cnf) -> bool {
    let clauses: Vec<Vec<i32>> = formula
        .clauses()
        .iter()
        .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
        .collect();
    let mut assign = vec![0i8; formula.num_vars() as usize + 1]; // 0 undef, 1 true, -1 false
    dpll(&clauses, &mut assign)
}

fn dpll(clauses: &[Vec<i32>], assign: &mut [i8]) -> bool {
    // Unit propagation to fixpoint.
    let mut forced: Vec<i32> = Vec::new();
    loop {
        let mut changed = false;
        for c in clauses {
            let mut unassigned: Option<i32> = None;
            let mut n_unassigned = 0;
            let mut satisfied = false;
            for &l in c {
                match value(assign, l) {
                    1 => {
                        satisfied = true;
                        break;
                    }
                    0 => {
                        n_unassigned += 1;
                        unassigned = Some(l);
                    }
                    _ => {}
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => {
                    // Conflict: roll back forced assignments.
                    for l in forced {
                        assign[l.unsigned_abs() as usize] = 0;
                    }
                    return false;
                }
                1 => {
                    let l = unassigned.expect("unit literal");
                    assign[l.unsigned_abs() as usize] = if l > 0 { 1 } else { -1 };
                    forced.push(l);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    // Pick an unassigned variable.
    let var = (1..assign.len()).find(|&v| assign[v] == 0);
    let result = match var {
        None => true, // all assigned, no conflict: satisfiable
        Some(v) => {
            let branch = |val: i8, assign: &mut [i8]| {
                assign[v] = val;
                let r = dpll(clauses, assign);
                if !r {
                    assign[v] = 0;
                }
                r
            };
            branch(1, assign) || branch(-1, assign)
        }
    };
    if !result {
        for l in forced {
            assign[l.unsigned_abs() as usize] = 0;
        }
    }
    result
}

fn value(assign: &[i8], l: i32) -> i8 {
    let v = assign[l.unsigned_abs() as usize];
    if l > 0 {
        v
    } else {
        -v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::CnfLit;

    fn cnf_of(clauses: &[&[i32]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| CnfLit::from_dimacs(x)).collect());
        }
        f
    }

    #[test]
    fn basic() {
        assert!(dpll_sat(&cnf_of(&[&[1, 2], &[-1]])));
        assert!(!dpll_sat(&cnf_of(&[&[1], &[-1]])));
        assert!(dpll_sat(&cnf_of(&[])));
    }

    #[test]
    fn php32_unsat() {
        assert!(!dpll_sat(&cnf_of(&[
            &[1, 2],
            &[3, 4],
            &[5, 6],
            &[-1, -3],
            &[-1, -5],
            &[-3, -5],
            &[-2, -4],
            &[-2, -6],
            &[-4, -6],
        ])));
    }

    #[test]
    fn exhaustive_cross_check_tiny() {
        // All 3-var formulas with exactly 3 ternary clauses drawn from a
        // fixed pool, compared against brute force.
        let pool: Vec<Vec<i32>> = vec![
            vec![1, 2, 3],
            vec![-1, 2, -3],
            vec![1, -2, 3],
            vec![-1, -2, -3],
            vec![1, -2, -3],
            vec![-1, 2, 3],
        ];
        for a in 0..pool.len() {
            for b in 0..pool.len() {
                for c in 0..pool.len() {
                    let cl = [&pool[a][..], &pool[b][..], &pool[c][..]];
                    let f = cnf_of(&cl);
                    let brute = (0..8u32).any(|m| {
                        let assignment: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
                        f.eval(&assignment)
                    });
                    assert_eq!(dpll_sat(&f), brute, "{cl:?}");
                }
            }
        }
    }
}
