//! Solver statistics.
//!
//! [`Stats::decisions`] is the quantity the paper approximates solving time
//! with ("variable branching times", Sec. III-B5): it is the reward signal
//! of the RL agent and the target of the cost-customised mapper.

/// Counters accumulated across `solve()` calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Branching decisions made (the paper's `#Branching`).
    pub decisions: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by reduction.
    pub deleted_clauses: u64,
    /// Literals removed by conflict-clause minimisation.
    pub minimized_literals: u64,
    /// Clause-database garbage collections.
    pub gcs: u64,
    /// Watch lists whose spare capacity was reclaimed after reduction.
    pub watcher_shrinks: u64,
    /// Solves interrupted by a wall-clock deadline.
    pub deadline_interrupts: u64,
    /// Solves interrupted by an external cancellation token.
    pub cancellations: u64,
    /// Maximum trail height observed.
    pub max_trail: usize,
}

impl Stats {
    /// Publishes every field as a `sat.stats.*` gauge in `reg`
    /// (last-write-wins), so CLI tables, the serve `stats` command, and
    /// bench totals all read solver totals from one registry snapshot.
    pub fn publish(&self, reg: &obs::Registry) {
        if !reg.is_enabled() {
            return;
        }
        reg.set_gauge("sat.stats.decisions", self.decisions);
        reg.set_gauge("sat.stats.conflicts", self.conflicts);
        reg.set_gauge("sat.stats.propagations", self.propagations);
        reg.set_gauge("sat.stats.restarts", self.restarts);
        reg.set_gauge("sat.stats.learnt_clauses", self.learnt_clauses);
        reg.set_gauge("sat.stats.deleted_clauses", self.deleted_clauses);
        reg.set_gauge("sat.stats.minimized_literals", self.minimized_literals);
        reg.set_gauge("sat.stats.gcs", self.gcs);
        reg.set_gauge("sat.stats.watcher_shrinks", self.watcher_shrinks);
        reg.set_gauge("sat.stats.deadline_interrupts", self.deadline_interrupts);
        reg.set_gauge("sat.stats.cancellations", self.cancellations);
        reg.set_gauge("sat.stats.max_trail", self.max_trail as u64);
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Existing keys stay first and unchanged: the resource-report
        // parser (and log-scraping tests) key on `name=value` tokens.
        write!(
            f,
            "decisions={} conflicts={} propagations={} restarts={} learnt={} deleted={} \
             minimized={} gcs={} watcher_shrinks={} deadline_interrupts={} cancellations={} \
             max_trail={}",
            self.decisions,
            self.conflicts,
            self.propagations,
            self.restarts,
            self.learnt_clauses,
            self.deleted_clauses,
            self.minimized_literals,
            self.gcs,
            self.watcher_shrinks,
            self.deadline_interrupts,
            self.cancellations,
            self.max_trail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = Stats::default();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.conflicts, 0);
    }

    #[test]
    fn display_mentions_decisions() {
        let s = Stats {
            decisions: 42,
            ..Stats::default()
        };
        assert!(format!("{s}").contains("decisions=42"));
    }

    #[test]
    fn display_prints_every_counter() {
        let s = Stats {
            decisions: 1,
            conflicts: 2,
            propagations: 3,
            restarts: 4,
            learnt_clauses: 5,
            deleted_clauses: 6,
            minimized_literals: 7,
            gcs: 8,
            watcher_shrinks: 9,
            deadline_interrupts: 10,
            cancellations: 11,
            max_trail: 12,
        };
        let text = format!("{s}");
        for token in [
            "decisions=1",
            "conflicts=2",
            "propagations=3",
            "restarts=4",
            "learnt=5",
            "deleted=6",
            "minimized=7",
            "gcs=8",
            "watcher_shrinks=9",
            "deadline_interrupts=10",
            "cancellations=11",
            "max_trail=12",
        ] {
            assert!(text.contains(token), "missing `{token}` in `{text}`");
        }
    }

    #[test]
    fn publish_mirrors_fields_into_gauges() {
        let s = Stats {
            conflicts: 21,
            minimized_literals: 4,
            ..Stats::default()
        };
        let reg = obs::Registry::metrics_only();
        s.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.value("sat.stats.conflicts"), Some(21));
        assert_eq!(snap.value("sat.stats.minimized_literals"), Some(4));
        // Disabled registries must stay empty.
        let off = obs::Registry::disabled();
        s.publish(&off);
        assert!(off.snapshot().is_empty());
    }
}
