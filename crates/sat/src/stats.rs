//! Solver statistics.
//!
//! [`Stats::decisions`] is the quantity the paper approximates solving time
//! with ("variable branching times", Sec. III-B5): it is the reward signal
//! of the RL agent and the target of the cost-customised mapper.

/// Counters accumulated across `solve()` calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Branching decisions made (the paper's `#Branching`).
    pub decisions: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by reduction.
    pub deleted_clauses: u64,
    /// Literals removed by conflict-clause minimisation.
    pub minimized_literals: u64,
    /// Clause-database garbage collections.
    pub gcs: u64,
    /// Watch lists whose spare capacity was reclaimed after reduction.
    pub watcher_shrinks: u64,
    /// Solves interrupted by a wall-clock deadline.
    pub deadline_interrupts: u64,
    /// Solves interrupted by an external cancellation token.
    pub cancellations: u64,
    /// Maximum trail height observed.
    pub max_trail: usize,
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decisions={} conflicts={} propagations={} restarts={} learnt={} deleted={}",
            self.decisions,
            self.conflicts,
            self.propagations,
            self.restarts,
            self.learnt_clauses,
            self.deleted_clauses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = Stats::default();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.conflicts, 0);
    }

    #[test]
    fn display_mentions_decisions() {
        let s = Stats {
            decisions: 42,
            ..Stats::default()
        };
        assert!(format!("{s}").contains("decisions=42"));
    }
}
