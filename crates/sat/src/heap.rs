//! Indexed max-heap ordered by variable activity (the EVSIDS order).

use crate::types::Var;

/// A binary max-heap over variable indices with O(log n) decrease/increase
/// via a position index, as used by every MiniSat descendant.
#[derive(Clone, Debug, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, `usize::MAX` when absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// An empty heap.
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Grows the position index to cover variables `0..n`.
    pub fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    /// True if the heap has no elements.
    #[allow(dead_code)] // exercised by tests; kept for API completeness
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True if `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.pos.get(v as usize).is_some_and(|&p| p != ABSENT)
    }

    /// Inserts `v` (no-op if present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow(v as usize + 1);
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v as usize) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    /// Rebuilds the heap order from scratch (after a global rescale the
    /// relative order is unchanged, so this is rarely needed).
    #[allow(dead_code)] // exercised by tests; kept for API completeness
    pub fn rebuild(&mut self, activity: &[f64]) {
        let vars: Vec<Var> = self.heap.clone();
        self.heap.clear();
        for p in self.pos.iter_mut() {
            *p = ABSENT;
        }
        for v in vars {
            self.insert(v, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i;
        self.pos[self.heap[j] as usize] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        for v in 0..4 {
            h.insert(v, &act);
        }
        let order: Vec<Var> = std::iter::from_fn(|| h.pop(&act)).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn update_after_bump() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for v in 0..3 {
            h.insert(v, &act);
        }
        act[0] = 10.0;
        h.update(0, &act);
        assert_eq!(h.pop(&act), Some(0));
    }

    #[test]
    fn reinsert_is_noop() {
        let act = vec![1.0; 3];
        let mut h = VarHeap::new();
        h.insert(1, &act);
        h.insert(1, &act);
        assert_eq!(h.pop(&act), Some(1));
        assert!(h.pop(&act).is_none());
    }

    #[test]
    fn empty_and_rebuild() {
        let mut act = vec![1.0, 5.0, 3.0];
        let mut h = VarHeap::new();
        assert!(h.is_empty());
        for v in 0..3 {
            h.insert(v, &act);
        }
        assert!(!h.is_empty());
        // Rescale activities and rebuild: order is preserved.
        for a in &mut act {
            *a *= 0.5;
        }
        h.rebuild(&act);
        assert_eq!(h.pop(&act), Some(1));
        assert_eq!(h.pop(&act), Some(2));
        assert_eq!(h.pop(&act), Some(0));
        assert!(h.is_empty());
    }

    #[test]
    fn contains_tracks_membership() {
        let act = vec![1.0; 4];
        let mut h = VarHeap::new();
        assert!(!h.contains(2));
        h.insert(2, &act);
        assert!(h.contains(2));
        h.pop(&act);
        assert!(!h.contains(2));
    }

    #[test]
    fn stress_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 200;
        let act: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mut h = VarHeap::new();
        for v in 0..n as Var {
            h.insert(v, &act);
        }
        let mut prev = f64::INFINITY;
        while let Some(v) = h.pop(&act) {
            assert!(act[v as usize] <= prev);
            prev = act[v as usize];
        }
    }
}
