//! Restart policies: the scaled Luby sequence and Glucose-style LBD EMAs.

use crate::config::RestartStrategy;

/// The Luby sequence `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...` (1-based index).
///
/// ```
/// use sat::restart::luby;
/// assert_eq!((1..=9).map(luby).collect::<Vec<_>>(),
///            vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
/// ```
pub fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1);
    let mut x = i - 1; // 0-based index, as in MiniSat
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Stateful restart scheduler driven by conflicts.
#[derive(Clone, Debug)]
pub struct RestartPolicy {
    strategy: RestartStrategy,
    conflicts_since_restart: u64,
    restarts: u64,
    /// Current Luby target (conflicts until next restart).
    luby_target: u64,
    fast_ema: f64,
    slow_ema: f64,
    total_conflicts: u64,
}

impl RestartPolicy {
    /// Creates a scheduler for the given strategy.
    pub fn new(strategy: RestartStrategy) -> RestartPolicy {
        let luby_target = match strategy {
            RestartStrategy::Luby { base } => base * luby(1),
            _ => 0,
        };
        RestartPolicy {
            strategy,
            conflicts_since_restart: 0,
            restarts: 0,
            luby_target,
            fast_ema: 0.0,
            slow_ema: 0.0,
            total_conflicts: 0,
        }
    }

    /// Records one conflict and its learnt-clause LBD.
    pub fn on_conflict(&mut self, lbd: u32) {
        self.conflicts_since_restart += 1;
        self.total_conflicts += 1;
        if let RestartStrategy::Glucose {
            fast_shift,
            slow_shift,
            ..
        } = self.strategy
        {
            let l = lbd as f64;
            // Cheap EMA initialisation: use plain averages early on.
            let fa = 1.0 / (1u64 << fast_shift) as f64;
            let sa = 1.0 / (1u64 << slow_shift) as f64;
            let fa = fa.max(1.0 / self.total_conflicts as f64);
            let sa = sa.max(1.0 / self.total_conflicts as f64);
            self.fast_ema += fa * (l - self.fast_ema);
            self.slow_ema += sa * (l - self.slow_ema);
        }
    }

    /// Whether a restart should happen now.
    pub fn should_restart(&self) -> bool {
        match self.strategy {
            RestartStrategy::Luby { .. } => self.conflicts_since_restart >= self.luby_target,
            RestartStrategy::Glucose {
                margin,
                min_interval,
                ..
            } => {
                self.conflicts_since_restart >= min_interval
                    && self.fast_ema > margin * self.slow_ema
            }
        }
    }

    /// Records a performed restart and schedules the next one.
    pub fn on_restart(&mut self) {
        self.restarts += 1;
        self.conflicts_since_restart = 0;
        if let RestartStrategy::Luby { base } = self.strategy {
            self.luby_target = base * luby(self.restarts + 1);
        }
    }

    /// Restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn luby_policy_cadence() {
        let mut p = RestartPolicy::new(RestartStrategy::Luby { base: 2 });
        // First restart after base * luby(1) = 2 conflicts.
        p.on_conflict(3);
        assert!(!p.should_restart());
        p.on_conflict(3);
        assert!(p.should_restart());
        p.on_restart();
        // Next after 2 * luby(2) = 2.
        p.on_conflict(3);
        assert!(!p.should_restart());
        p.on_conflict(3);
        assert!(p.should_restart());
        p.on_restart();
        // Next after 2 * luby(3) = 4.
        for _ in 0..3 {
            p.on_conflict(3);
            assert!(!p.should_restart());
        }
        p.on_conflict(3);
        assert!(p.should_restart());
    }

    #[test]
    fn glucose_restarts_on_high_lbd_burst() {
        let strat = RestartStrategy::Glucose {
            fast_shift: 2,
            slow_shift: 8,
            margin: 1.25,
            min_interval: 4,
        };
        let mut p = RestartPolicy::new(strat);
        // Long calm phase with low LBD.
        for _ in 0..200 {
            p.on_conflict(2);
        }
        assert!(!p.should_restart());
        // Burst of bad (high-LBD) conflicts triggers a restart.
        for _ in 0..8 {
            p.on_conflict(20);
        }
        assert!(p.should_restart());
        p.on_restart();
        assert_eq!(p.restarts(), 1);
    }
}
