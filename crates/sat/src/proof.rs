//! Clausal (DRAT-style) proof logging.
//!
//! When [`crate::SolverConfig::proof`] is on, the solver records every
//! clause it is *given* (the originals) and every clause it *derives or
//! deletes* (the steps): learnt clauses of all three tiers (units,
//! binary-tier two-literal learnts, arena clauses) with their
//! post-minimization literal sets, input clauses whose stored form was
//! strengthened by level-0 simplification, the empty clause on genuine
//! UNSAT, and every `reduce_db` deletion. The resulting step list is a
//! standard DRAT proof: an independent checker (the `checker` crate) can
//! replay it by reverse unit propagation without trusting any solver code.
//!
//! Literals are stored in DIMACS convention (`±(var+1)` as `i32`), the
//! lingua franca between solver, serialized `.drat` files, and checker.
//!
//! Queries that fail only under assumptions do not log an empty clause —
//! the derived lemmas are implied by the original formula alone, so a
//! consumer certifies such a verdict by checking
//! `originals + one unit clause per assumption` against the steps plus an
//! explicit terminal empty clause (see `checker::Proof::close`).

use crate::types::Lit;

/// One step of a clausal proof: a derived clause addition or a deletion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// True for deletion steps (`d` lines in DRAT), false for additions.
    pub delete: bool,
    /// The clause, as DIMACS literals (no terminating zero).
    pub lits: Vec<i32>,
}

/// Accumulated proof log of one solver: original clauses plus derivation
/// and deletion steps, in the order they happened.
///
/// Cloning a solver clones its log (sharded sweep oracles rely on this):
/// each clone continues certifying independently from the shared prefix.
#[derive(Clone, Debug, Default)]
pub struct ProofLog {
    originals: Vec<Vec<i32>>,
    steps: Vec<ProofStep>,
}

fn to_dimacs(lits: &[Lit]) -> Vec<i32> {
    lits.iter().map(|l| l.to_cnf().to_dimacs()).collect()
}

impl ProofLog {
    /// Records an input clause exactly as the caller asserted it.
    pub(crate) fn log_original(&mut self, lits: &[Lit]) {
        self.originals.push(to_dimacs(lits));
    }

    /// Records a derived clause addition (learnt, strengthened input, or
    /// the empty clause).
    pub(crate) fn log_add(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep {
            delete: false,
            lits: to_dimacs(lits),
        });
    }

    /// Records a clause deletion.
    pub(crate) fn log_delete(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep {
            delete: true,
            lits: to_dimacs(lits),
        });
    }

    /// The input clauses, in assertion order.
    pub fn originals(&self) -> &[Vec<i32>] {
        &self.originals
    }

    /// The derivation/deletion steps, in the order they happened.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of addition steps.
    pub fn additions(&self) -> usize {
        self.steps.iter().filter(|s| !s.delete).count()
    }

    /// Number of deletion steps.
    pub fn deletions(&self) -> usize {
        self.steps.iter().filter(|s| s.delete).count()
    }

    /// True once an empty-clause addition has been logged (the proof
    /// certifies unconditional UNSAT from that point on).
    pub fn has_empty_clause(&self) -> bool {
        self.steps.iter().any(|s| !s.delete && s.lits.is_empty())
    }

    /// Serializes the steps as a textual DRAT proof (one clause per line,
    /// zero-terminated, deletions prefixed with `d`).
    pub fn to_drat_string(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            if step.delete {
                out.push('d');
                out.push(' ');
            }
            for l in &step.lits {
                out.push_str(&l.to_string());
                out.push(' ');
            }
            out.push('0');
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lit(v: Var, neg: bool) -> Lit {
        let l = Lit::new(v, true);
        if neg {
            !l
        } else {
            l
        }
    }

    #[test]
    fn dimacs_conversion_and_serialization() {
        let mut log = ProofLog::default();
        log.log_original(&[lit(0, false), lit(1, true)]);
        log.log_add(&[lit(1, true)]);
        log.log_delete(&[lit(0, false), lit(1, true)]);
        log.log_add(&[]);
        assert_eq!(log.originals(), &[vec![1, -2]]);
        assert_eq!(log.additions(), 2);
        assert_eq!(log.deletions(), 1);
        assert!(log.has_empty_clause());
        assert_eq!(log.to_drat_string(), "-2 0\nd 1 -2 0\n0\n");
    }

    #[test]
    fn empty_log_has_no_empty_clause() {
        let log = ProofLog::default();
        assert!(!log.has_empty_clause());
        assert_eq!(log.to_drat_string(), "");
    }
}
