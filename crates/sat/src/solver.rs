//! The CDCL search engine.
//!
//! A MiniSat-lineage solver: two-tier watched-literal propagation (an
//! inline binary-clause tier drained ahead of blocker-guarded long-clause
//! watchers), EVSIDS branching, phase saving, first-UIP conflict analysis
//! with recursive clause minimisation over tagged reasons, LBD-aware
//! clause-database reduction, and pluggable restart policies. Decision
//! counts — the paper's branching metric — are first-class statistics.

use crate::clause::ClauseDb;
use crate::config::{Budget, SolverConfig};
use crate::heap::VarHeap;
use crate::proof::ProofLog;
use crate::restart::RestartPolicy;
use crate::stats::Stats;
use crate::types::{ClauseRef, LBool, Lit, Reason, Var};
use cnf::{Cnf, CnfLit};
use std::time::Instant;

/// Conflicts (or decisions) between checks of the *external* interrupt
/// sources — the wall-clock deadline and the cancellation token. Both
/// involve work too costly for every search step (`Instant::now()`, an
/// atomic load), so they are polled once per batch; the counter budgets
/// stay exact. Overshoot past a deadline is bounded by one batch.
const INTERRUPT_CHECK_PERIOD: u32 = 64;

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a full model (`model[v]` = value of 0-based var `v`).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted before an answer was found.
    Unknown,
}

impl SolveResult {
    /// True for [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// True for [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Long-clause (≥ 3 literals) watcher: arena reference plus a blocker
/// literal that short-circuits the arena load when already true.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// A conflict found by propagation: either an arena clause or an inline
/// binary clause (both literals false). Binary clauses have no
/// [`ClauseRef`], so the conflicting pair is carried by value.
#[derive(Clone, Copy, Debug)]
enum Conflict {
    Clause(ClauseRef),
    Binary(Lit, Lit),
}

/// A CDCL SAT solver.
///
/// `Clone` duplicates the *complete* solver state — clause arena, both
/// watcher tiers, learnt clauses, trail, activities — as flat buffer
/// copies. That is how parallel clients (the sweep engine's sharded
/// oracles, future portfolio solving) fan a formula out to workers:
/// normalise the CNF into one base solver, then clone it per worker
/// instead of re-adding and re-simplifying every clause.
///
/// ```
/// use cnf::{Cnf, CnfLit};
/// use sat::{Solver, SolverConfig};
///
/// let mut f = Cnf::new();
/// f.add_clause(vec![CnfLit::pos(1), CnfLit::pos(2)]);
/// f.add_clause(vec![CnfLit::neg(1)]);
/// let mut solver = Solver::from_cnf(&f, SolverConfig::default());
/// let result = solver.solve();
/// assert!(result.is_sat());
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    config: SolverConfig,
    budget: Budget,
    stats: Stats,

    db: ClauseDb,
    /// Long-clause watch lists indexed by `Lit::index()`: clauses that must
    /// be checked when that literal becomes **true** (they watch its
    /// negation). Only clauses of three or more literals live here.
    watches: Vec<Vec<Watcher>>,
    /// Binary-clause tier, same indexing: `binary_watches[l.index()]` holds
    /// the literal implied when `l` becomes true — the whole implication in
    /// 4 bytes, no arena dereference. Binary clauses are never deleted,
    /// never relocated, and never reduction candidates, so these lists are
    /// append-only.
    binary_watches: Vec<Vec<Lit>>,
    /// Count of attached binary clauses (each contributes two entries).
    num_binary: usize,

    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    order: VarHeap,
    phase: Vec<bool>,

    restart: RestartPolicy,
    next_reduce: u64,
    reduce_count: u64,

    /// False once the formula is known UNSAT at level 0.
    ok: bool,
    /// DRAT-style certificate sink, present iff `config.proof`. Boxed so
    /// the disabled case costs one null-check at clause add/learn/delete
    /// sites (conflict rate, never the propagation hot path) and no space
    /// beyond a pointer.
    proof: Option<Box<ProofLog>>,
    /// Steps until the next deadline/cancellation poll (see
    /// [`INTERRUPT_CHECK_PERIOD`]). Re-armed at 1 by every solve so a
    /// pre-expired deadline or pre-raised token is noticed before any
    /// search work.
    interrupt_countdown: u32,
    /// Observability hooks, present iff [`Solver::set_observer`] attached
    /// an enabled registry. Boxed like the proof log: the unobserved case
    /// costs one null-check at conflict-rate probe sites only.
    trace: Option<Box<crate::trace::SolverTrace>>,

    // Analysis scratch space.
    seen: Vec<bool>,
    analyze_stack: Vec<Lit>,
    analyze_clear: Vec<Var>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new(config: SolverConfig) -> Solver {
        let restart = RestartPolicy::new(config.restart);
        let next_reduce = config.reduce_first;
        let proof = config.proof.then(Box::<ProofLog>::default);
        Solver {
            config,
            budget: Budget::UNLIMITED,
            stats: Stats::default(),
            db: ClauseDb::new(),
            watches: Vec::new(),
            binary_watches: Vec::new(),
            num_binary: 0,
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            phase: Vec::new(),
            restart,
            next_reduce,
            reduce_count: 0,
            ok: true,
            proof,
            interrupt_countdown: 1,
            trace: None,
            seen: Vec::new(),
            analyze_stack: Vec::new(),
            analyze_clear: Vec::new(),
        }
    }

    /// Creates a solver pre-loaded with a formula.
    pub fn from_cnf(formula: &Cnf, config: SolverConfig) -> Solver {
        let mut s = Solver::new(config);
        s.add_cnf(formula);
        s
    }

    /// Sets resource limits for subsequent [`Solver::solve`] calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Attaches observability: subsequent solves run under `sat.solve`
    /// spans parented to `parent`, per-solve stat deltas accumulate into
    /// the parent registry's `sat.*` counters/histograms, and search-loop
    /// boundaries (restart, reduction, GC) become instant events. A
    /// handle from a disabled registry detaches the observer again.
    /// Cloning an observed solver shares the metric cells but never an
    /// open span (see `SolverTrace::clone`).
    pub fn set_observer(&mut self, parent: obs::SpanHandle) {
        self.trace = parent
            .registry()
            .is_enabled()
            .then(|| Box::new(crate::trace::SolverTrace::new(parent)));
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The accumulated proof log, if [`SolverConfig::proof`] was on.
    ///
    /// The log spans the solver's whole life: all original clauses ever
    /// asserted plus every derivation/deletion, across incremental
    /// queries. An UNSAT verdict under `assumptions` is certified by
    /// checking `originals + one unit clause per assumption` against the
    /// steps (see the `checker` crate); a plain UNSAT ends with a logged
    /// empty clause.
    pub fn proof(&self) -> Option<&ProofLog> {
        self.proof.as_deref()
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            let v = self.assigns.len() as Var;
            self.assigns.push(LBool::Undef);
            self.level.push(0);
            self.reason.push(Reason::Decision);
            self.activity.push(0.0);
            self.phase.push(self.config.default_phase);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.binary_watches.push(Vec::new());
            self.binary_watches.push(Vec::new());
            self.order.insert(v, &self.activity);
        }
    }

    /// Loads every clause of a [`Cnf`].
    pub fn add_cnf(&mut self, formula: &Cnf) {
        self.ensure_vars(formula.num_vars() as usize);
        for clause in formula.clauses() {
            self.add_clause_cnf(clause);
        }
    }

    /// Adds one clause in DIMACS-literal form.
    pub fn add_clause_cnf(&mut self, clause: &[CnfLit]) {
        let lits: Vec<Lit> = clause.iter().map(|&l| Lit::from_cnf(l)).collect();
        self.add_clause(lits);
    }

    /// Adds one clause in internal-literal form. Must be called at decision
    /// level 0 (i.e. before or between `solve()` calls).
    ///
    /// # Panics
    /// Panics if called with outstanding decisions.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        if !self.ok {
            return;
        }
        if let Some(p) = self.proof.as_deref_mut() {
            p.log_original(&lits);
        }
        let max_var = lits.iter().map(|l| l.var() as usize + 1).max().unwrap_or(0);
        self.ensure_vars(max_var);

        // Normalise: sort/dedup, drop false literals, detect tautology and
        // satisfied clauses under the level-0 assignment.
        lits.sort_unstable();
        lits.dedup();
        let deduped_len = lits.len();
        let mut simplified = Vec::with_capacity(lits.len());
        let mut i = 0;
        while i < lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return; // tautology (sorted order puts var's lits adjacent)
            }
            match self.value(l) {
                LBool::True => return, // already satisfied at level 0
                LBool::False => {}     // drop the false literal
                LBool::Undef => simplified.push(l),
            }
            i += 1;
        }
        // Level-0 simplification strengthened the clause (dropped false
        // literals): the stored form is itself a derived clause — log it so
        // the certificate derives everything the solver actually uses. It
        // is RUP via the level-0 units that falsified the dropped literals.
        if simplified.len() < deduped_len {
            if let Some(p) = self.proof.as_deref_mut() {
                p.log_add(&simplified);
            }
        }
        match simplified.len() {
            0 => {
                self.log_empty_clause();
                self.ok = false;
            }
            1 => {
                self.unchecked_enqueue(simplified[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.log_empty_clause();
                    self.ok = false;
                }
            }
            2 => self.attach_binary(simplified[0], simplified[1]),
            _ => {
                let cref = self.db.add(&simplified, false, 0);
                self.attach(cref);
            }
        }
    }

    /// Logs the empty-clause addition that closes a proof (level-0
    /// conflict: the formula is unconditionally UNSAT).
    fn log_empty_clause(&mut self) {
        if let Some(p) = self.proof.as_deref_mut() {
            if !p.has_empty_clause() {
                p.log_add(&[]);
            }
        }
    }

    /// Attaches a long clause (≥ 3 literals) to the watcher tier.
    fn attach(&mut self, cref: ClauseRef) {
        debug_assert!(self.db.clause_len(cref) >= 3, "binary clauses are inline");
        let (l0, l1) = (self.db.lit(cref, 0), self.db.lit(cref, 1));
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }

    /// Attaches the binary clause `(a ∨ b)` to the inline tier: each
    /// literal's falsification implies the other, with no arena record.
    fn attach_binary(&mut self, a: Lit, b: Lit) {
        debug_assert_ne!(a.var(), b.var());
        self.binary_watches[(!a).index()].push(b);
        self.binary_watches[(!b).index()].push(a);
        self.num_binary += 1;
    }

    #[inline]
    fn value(&self, l: Lit) -> LBool {
        self.assigns[l.var() as usize].xor(!l.is_positive())
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var() as usize;
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
        self.stats.max_trail = self.stats.max_trail.max(self.trail.len());
    }

    /// Unit propagation; returns the conflicting clause if any.
    ///
    /// Two-tier: for each newly true literal `p` the binary tier is
    /// drained first — every entry is a complete implication held in one
    /// word, so the scan is cache-dense and conflict-cheap — before the
    /// long-clause watcher walk with its blocker checks and arena loads.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            // --- binary tier ------------------------------------------
            // The list is append-only and never touched by enqueues, so it
            // is taken out for iteration and restored verbatim.
            let bins = std::mem::take(&mut self.binary_watches[p.index()]);
            let mut binary_conflict = None;
            for &imp in &bins {
                match self.value(imp) {
                    LBool::True => {}
                    LBool::Undef => self.unchecked_enqueue(imp, Reason::Binary(!p)),
                    LBool::False => {
                        binary_conflict = Some(Conflict::Binary(imp, !p));
                        break;
                    }
                }
            }
            self.binary_watches[p.index()] = bins;
            if binary_conflict.is_some() {
                self.qhead = self.trail.len();
                return binary_conflict;
            }

            // --- long-clause tier -------------------------------------
            let mut i = 0;
            let mut j = 0;
            // Take the list out to sidestep aliasing; it is pushed back
            // compacted at the end.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let n = ws.len();
            'watchers: while i < n {
                let w = ws[i];
                i += 1;
                // Pull the *next* watcher's clause header toward the cache
                // while this clause is processed: watcher walks are the
                // propagation loop's dominant miss source, and the next
                // arena offset is already known here.
                if i < n {
                    self.db.prefetch(ws[i].cref);
                }
                // Blocker short-circuit.
                if self.value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let false_lit = !p;
                // Literals are read inline from the arena: one index off
                // the clause ref, no per-clause pointer chase.
                let lits = self.db.lits_mut(w.cref);
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                if first != w.blocker
                    && self.assigns[first.var() as usize].xor(!first.is_positive()) == LBool::True
                {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..lits.len() {
                    let lk = lits[k];
                    if self.assigns[lk.var() as usize].xor(!lk.is_positive()) != LBool::False {
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[(!new_watch).index()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No replacement: the clause is unit or conflicting.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.value(first) == LBool::False {
                    // Conflict: restore the remaining watchers and bail out.
                    while i < n {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[p.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(Conflict::Clause(w.cref));
                }
                self.unchecked_enqueue(first, Reason::Clause(w.cref));
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
        }
        None
    }

    /// Marks one antecedent literal during conflict analysis: bumps its
    /// variable and either extends the resolution frontier (current level)
    /// or the learnt clause (earlier level).
    #[inline]
    fn analyze_visit(&mut self, q: Lit, path_count: &mut u32, learnt: &mut Vec<Lit>) {
        let v = q.var() as usize;
        if !self.seen[v] && self.level[v] > 0 {
            self.seen[v] = true;
            self.bump_var(q.var());
            if self.level[v] >= self.decision_level() {
                *path_count += 1;
            } else {
                learnt.push(q);
            }
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, and the clause's LBD.
    fn analyze(&mut self, confl: Conflict) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::UNDEF]; // slot 0 for the UIP
        let mut path_count = 0u32;
        let mut p = Lit::UNDEF;
        let mut index = self.trail.len();
        let mut cur = confl;

        loop {
            match cur {
                Conflict::Clause(cref) => {
                    self.bump_clause(cref);
                    // Walk the clause by index (excluding the resolved
                    // literal at slot 0): arena access is a plain load, so
                    // no literal copy-out is needed around the bumps.
                    let start = if p == Lit::UNDEF { 0 } else { 1 };
                    for k in start..self.db.clause_len(cref) {
                        let q = self.db.lit(cref, k);
                        self.analyze_visit(q, &mut path_count, &mut learnt);
                    }
                }
                Conflict::Binary(a, b) => {
                    // Inline binary antecedent: no arena record to bump;
                    // `a` is the resolved literal once p is set.
                    if p == Lit::UNDEF {
                        self.analyze_visit(a, &mut path_count, &mut learnt);
                    }
                    self.analyze_visit(b, &mut path_count, &mut learnt);
                }
            }
            // Next literal to resolve on: last seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            p = self.trail[index];
            self.seen[p.var() as usize] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            cur = match self.reason[p.var() as usize] {
                Reason::Clause(cref) => Conflict::Clause(cref),
                Reason::Binary(other) => Conflict::Binary(p, other),
                Reason::Decision => unreachable!("reason must exist on the path"),
            };
        }
        learnt[0] = !p;

        // Minimise: drop literals implied by the rest of the clause.
        let abstract_levels = learnt[1..].iter().fold(0u64, |acc, l| {
            acc | level_abstraction(self.level[l.var() as usize])
        });
        let to_clear: Vec<Var> = learnt[1..].iter().map(|l| l.var()).collect();
        let before = learnt.len();
        let mut kept = vec![learnt[0]];
        for idx in 1..learnt.len() {
            let l = learnt[idx];
            if self.reason[l.var() as usize].is_decision()
                || !self.lit_redundant(l, abstract_levels)
            {
                kept.push(l);
            }
        }
        self.stats.minimized_literals += (before - kept.len()) as u64;
        let mut learnt = kept;

        // Clear every seen flag set during analysis and minimisation.
        for v in to_clear {
            self.seen[v as usize] = false;
        }
        for v in self.analyze_clear.drain(..) {
            self.seen[v as usize] = false;
        }

        // Backtrack level: second-highest decision level in the clause.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };

        let lbd = self.compute_lbd(&learnt);
        (learnt, bt_level, lbd)
    }

    /// True if `l` is implied by the remaining learnt literals (recursive
    /// minimisation check, iterative formulation).
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u64) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push(l);
        let mut pending: Vec<Var> = Vec::new();
        while let Some(q) = self.analyze_stack.pop() {
            // Expand q's antecedent (slot 0 / the implied literal excluded).
            let expanded = match self.reason[q.var() as usize] {
                Reason::Decision => unreachable!("minimised literals are implied"),
                Reason::Clause(cref) => {
                    let mut ok = true;
                    for k in 1..self.db.clause_len(cref) {
                        let r = self.db.lit(cref, k);
                        if !self.redundant_expand(r, abstract_levels, &mut pending) {
                            ok = false;
                            break;
                        }
                    }
                    ok
                }
                Reason::Binary(other) => {
                    self.redundant_expand(other, abstract_levels, &mut pending)
                }
            };
            if !expanded {
                // Hit a decision or a level outside the clause: not
                // redundant. Roll back the speculative seen marks.
                for v in pending {
                    self.seen[v as usize] = false;
                }
                return false;
            }
        }
        // Keep speculative marks; record them for final cleanup.
        self.analyze_clear.extend(pending);
        true
    }

    /// One antecedent literal of the redundancy DFS: pushes it for further
    /// expansion, or reports `false` when it proves `l` irredundant.
    #[inline]
    fn redundant_expand(&mut self, r: Lit, abstract_levels: u64, pending: &mut Vec<Var>) -> bool {
        let v = r.var() as usize;
        if self.seen[v] || self.level[v] == 0 {
            return true;
        }
        if self.reason[v].is_decision() || level_abstraction(self.level[v]) & abstract_levels == 0 {
            return false;
        }
        self.seen[v] = true;
        pending.push(r.var());
        self.analyze_stack.push(r);
        true
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var() as usize])
            .filter(|&lv| lv > 0)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let cut = self.trail_lim[target as usize];
        for &l in &self.trail[cut..] {
            let v = l.var() as usize;
            if self.config.phase_saving {
                self.phase[v] = l.is_positive();
            }
            self.assigns[v] = LBool::Undef;
            self.reason[v] = Reason::Decision;
            if !self.order.contains(l.var()) {
                self.order.insert(l.var(), &self.activity);
            }
        }
        self.trail.truncate(cut);
        self.trail_lim.truncate(target as usize);
        self.qhead = cut;
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.db.learnt(cref) {
            return;
        }
        let a = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, a);
        if a > 1e20 {
            self.db.rescale_activities(1e-20);
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay as f32;
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v as usize] == LBool::Undef {
                return Some(Lit::new(v, self.phase[v as usize]));
            }
        }
        None
    }

    /// True if a reason clause is locked (is the reason of its first lit).
    fn locked(&self, cref: ClauseRef) -> bool {
        let l0 = self.db.lit(cref, 0);
        self.value(l0) == LBool::True && self.reason[l0.var() as usize] == Reason::Clause(cref)
    }

    fn reduce_db(&mut self) {
        let keep_lbd = self.config.keep_lbd;
        let mut candidates: Vec<ClauseRef> = self
            .db
            .iter_refs()
            .filter(|&r| self.db.learnt(r) && self.db.lbd(r) > keep_lbd && !self.locked(r))
            .collect();
        // Delete the worse half: high LBD first, then low activity.
        candidates.sort_by(|&a, &b| {
            self.db.lbd(b).cmp(&self.db.lbd(a)).then(
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = candidates.len() / 2;
        for &r in &candidates[..to_delete] {
            if self.proof.is_some() {
                let lits: Vec<Lit> = self.db.lits(r).to_vec();
                self.proof.as_deref_mut().unwrap().log_delete(&lits);
            }
            self.detach(r);
            self.db.delete(r);
            self.stats.deleted_clauses += 1;
        }
        if to_delete > 0 {
            self.shrink_watchers();
        }
        // Compact once a fifth of the arena is tombstoned words; arena GC
        // is one copy pass, so waiting for real waste beats collecting on
        // every reduction.
        if self.db.wasted() * 5 > self.db.arena_len() {
            self.garbage_collect();
        }
    }

    /// Reclaims watcher-list capacity stranded by clause deletion.
    ///
    /// Learnt-clause churn grows watch lists to their high-water mark and
    /// reduction then empties half of them; the spare capacity would
    /// otherwise live for the whole solve. A list is shrunk only when its
    /// capacity is at least `SHRINK_RATIO`× its live length *and* above a
    /// floor, and it keeps 2× headroom — so steady-state lists are never
    /// touched and a shrunk list cannot immediately thrash back through
    /// doubling regrowth.
    fn shrink_watchers(&mut self) {
        /// Minimum capacity (in watchers) worth reclaiming.
        const SHRINK_FLOOR: usize = 16;
        /// Capacity-to-length ratio that triggers a shrink.
        const SHRINK_RATIO: usize = 4;
        for ws in &mut self.watches {
            if ws.capacity() >= SHRINK_FLOOR && ws.capacity() > SHRINK_RATIO * ws.len() {
                ws.shrink_to(2 * ws.len());
                self.stats.watcher_shrinks += 1;
            }
        }
    }

    /// Removes a clause's two watchers by swap-remove.
    ///
    /// Watcher order within a list is *irrelevant* by construction:
    /// propagation visits the whole list, treats it as a set, and compacts
    /// it in place; attach order is never meaningful. That makes O(1)
    /// swap-removal safe here, instead of an order-preserving
    /// `retain` scan rewrite of the entire list per removal.
    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = (self.db.lit(cref, 0), self.db.lit(cref, 1));
        for l in [l0, l1] {
            let ws = &mut self.watches[(!l).index()];
            let pos = ws
                .iter()
                .position(|w| w.cref == cref)
                .expect("detached clause must be watched");
            ws.swap_remove(pos);
        }
    }

    /// Compacts the clause arena: a single copy pass that moves every
    /// still-referenced record into a fresh arena and remaps all watchers
    /// and reason references through forwarding offsets (see
    /// [`ClauseDb::reloc`]). Every live clause is watched exactly twice,
    /// so relocating via the watch lists covers the whole database;
    /// reasons are a subset and resolve through the forwards. The binary
    /// tier holds no arena references at all — binary clauses and binary
    /// reasons are immune to relocation by construction.
    fn garbage_collect(&mut self) {
        let mut to = self.db.start_collect();
        for ws in &mut self.watches {
            for w in ws.iter_mut() {
                self.db.reloc(&mut w.cref, &mut to);
            }
        }
        for r in &mut self.reason {
            if let Reason::Clause(cref) = r {
                self.db.reloc(cref, &mut to);
            }
        }
        debug_assert_eq!(to.len(), self.db.len(), "live clauses must survive GC");
        self.db = to;
        self.stats.gcs += 1;
        if let Some(t) = self.trace.as_deref() {
            t.on_gc(&self.stats);
        }
        #[cfg(debug_assertions)]
        self.assert_integrity();
    }

    /// Validates the two-tier watch/reason invariants against the clause
    /// arena.
    ///
    /// Test-suite hook (GC-under-load differential tests; also invoked
    /// after every in-search GC under `debug_assertions`): panics with a
    /// description on the first violated invariant. Checked invariants:
    /// every live arena clause has at least three literals and is watched
    /// exactly twice, on the negations of its first two literals; every
    /// watcher points at a live clause with a matching watched literal and
    /// an in-clause blocker; every binary-tier entry has its mirror entry
    /// (both directions of the implication are attached) and the tier's
    /// size matches the attached-binary count; every clause reason is a
    /// live arena clause whose slot-0 literal is the implied one; every
    /// binary reason's antecedent is false and its clause is present in
    /// the binary tier. With proof logging on, additionally audits the
    /// certificate: every live arena clause and binary-tier edge is
    /// either an original clause or a logged derivation, and the logged
    /// deletion count matches the database's.
    #[doc(hidden)]
    pub fn assert_integrity(&self) {
        let mut watch_count: std::collections::HashMap<ClauseRef, usize> =
            std::collections::HashMap::new();
        for idx in 0..self.watches.len() {
            let lit = Lit::from_index(idx); // list fires when `lit` becomes true
            for w in &self.watches[idx] {
                let lits = self.db.lits(w.cref);
                assert!(
                    lits.len() >= 3,
                    "arena clause {lits:?} short enough for the binary tier"
                );
                assert!(
                    !lits[0] == lit || !lits[1] == lit,
                    "watcher of {lit:?} not on a watched slot: {lits:?}"
                );
                assert!(
                    lits.contains(&w.blocker),
                    "blocker {:?} outside clause {lits:?}",
                    w.blocker
                );
                *watch_count.entry(w.cref).or_insert(0) += 1;
            }
        }
        let mut live = 0usize;
        for r in self.db.iter_refs() {
            live += 1;
            assert_eq!(
                watch_count.get(&r).copied().unwrap_or(0),
                2,
                "live clause {r:?} must be watched exactly twice"
            );
        }
        assert_eq!(live, self.db.len(), "live-clause count drifted");
        assert_eq!(
            watch_count.len(),
            live,
            "watcher points at a deleted clause"
        );
        // Binary tier: entry `other` on list `lit` encodes clause
        // (¬lit ∨ other); its mirror entry ¬lit must sit on (¬other)'s
        // list, and the total entry count is two per attached clause.
        let mut binary_entries = 0usize;
        for idx in 0..self.binary_watches.len() {
            let lit = Lit::from_index(idx);
            for &other in &self.binary_watches[idx] {
                binary_entries += 1;
                assert_ne!(other.var(), lit.var(), "degenerate binary clause");
                assert!(
                    self.binary_watches[(!other).index()].contains(&!lit),
                    "binary implication {lit:?} -> {other:?} lacks its mirror"
                );
            }
        }
        assert_eq!(
            binary_entries,
            2 * self.num_binary,
            "binary tier entry count drifted"
        );
        for (v, &r) in self.reason.iter().enumerate() {
            if r.is_decision() {
                continue;
            }
            assert_ne!(
                self.assigns[v],
                LBool::Undef,
                "unassigned var {v} holds a reason"
            );
            let implied = Lit::new(v as Var, self.assigns[v] == LBool::True);
            match r {
                Reason::Decision => unreachable!(),
                Reason::Clause(cref) => {
                    let l0 = self.db.lit(cref, 0);
                    assert_eq!(
                        l0.var() as usize,
                        v,
                        "reason of var {v} must imply it at slot 0"
                    );
                    assert_eq!(self.value(l0), LBool::True, "implied literal not true");
                }
                Reason::Binary(other) => {
                    assert_eq!(
                        self.value(other),
                        LBool::False,
                        "binary reason antecedent of var {v} must be false"
                    );
                    assert!(
                        self.binary_watches[(!other).index()].contains(&implied),
                        "binary reason ({implied:?} ∨ {other:?}) not in the tier"
                    );
                }
            }
        }
        // Proof-log audit: with logging on, every clause the solver can
        // still use — live arena clauses and binary-tier edges — must be
        // accounted for in the certificate, either as an original clause
        // or as a logged addition (learnts of every tier, level-0
        // strengthened inputs). Compared as sorted literal sets: watch
        // reordering permutes stored clauses but never changes their
        // literal set. Deletion steps must match reduce_db's count —
        // together with the watcher checks above ("watcher points at a
        // deleted clause") this pins the log to the live database.
        if let Some(log) = self.proof.as_deref() {
            let norm = |lits: Vec<i32>| {
                let mut v = lits;
                v.sort_unstable();
                v.dedup();
                v
            };
            let mut derivable: std::collections::HashSet<Vec<i32>> =
                std::collections::HashSet::new();
            for c in log.originals() {
                derivable.insert(norm(c.clone()));
            }
            let mut deletions = 0u64;
            for s in log.steps() {
                if s.delete {
                    deletions += 1;
                } else {
                    derivable.insert(norm(s.lits.clone()));
                }
            }
            assert_eq!(
                deletions, self.stats.deleted_clauses,
                "every clause deletion must be logged"
            );
            let key = |lits: &[Lit]| norm(lits.iter().map(|l| l.to_cnf().to_dimacs()).collect());
            for r in self.db.iter_refs() {
                let k = key(self.db.lits(r));
                assert!(
                    derivable.contains(&k),
                    "arena clause {k:?} has no logged derivation"
                );
            }
            for idx in 0..self.binary_watches.len() {
                let lit = Lit::from_index(idx);
                for &other in &self.binary_watches[idx] {
                    let k = key(&[!lit, other]);
                    assert!(
                        derivable.contains(&k),
                        "binary clause {k:?} has no logged derivation"
                    );
                }
            }
        }
    }

    fn budget_exhausted(&self) -> bool {
        let b = &self.budget;
        b.conflicts.is_some_and(|m| self.stats.conflicts >= m)
            || b.decisions.is_some_and(|m| self.stats.decisions >= m)
            || b.propagations.is_some_and(|m| self.stats.propagations >= m)
    }

    /// Coarse poll of the external interrupt sources (deadline,
    /// cancellation). Counted into [`Stats`] when one fires; cheap to call
    /// every step — the real checks run once per
    /// [`INTERRUPT_CHECK_PERIOD`].
    fn interrupted(&mut self) -> bool {
        if self.budget.deadline.is_none() && self.budget.cancel.is_none() {
            return false;
        }
        if self.interrupt_countdown > 1 {
            self.interrupt_countdown -= 1;
            return false;
        }
        self.interrupt_countdown = INTERRUPT_CHECK_PERIOD;
        if self
            .budget
            .cancel
            .as_ref()
            .is_some_and(|c| c.is_cancelled())
        {
            self.stats.cancellations += 1;
            return true;
        }
        if self.budget.deadline.is_some_and(|d| Instant::now() >= d) {
            self.stats.deadline_interrupts += 1;
            return true;
        }
        false
    }

    /// Runs CDCL search to completion or budget exhaustion.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under assumptions — the incremental interface.
    ///
    /// The assumptions are installed as the first decisions, in order
    /// (MiniSat-style). [`SolveResult::Unsat`] then means *unsatisfiable
    /// under the assumptions*; the solver remains usable, keeps its learnt
    /// clauses, and can be re-queried with different assumptions or after
    /// [`Solver::add_clause`]. A `Sat` model satisfies every assumption.
    ///
    /// ```
    /// use cnf::{Cnf, CnfLit};
    /// use sat::{Solver, SolveResult, SolverConfig};
    ///
    /// let mut f = Cnf::new();
    /// f.add_clause(vec![CnfLit::neg(1), CnfLit::pos(2)]); // 1 -> 2
    /// let mut s = Solver::from_cnf(&f, SolverConfig::default());
    /// assert!(s.solve_with_assumptions(&[CnfLit::pos(1), CnfLit::pos(2)]).is_sat());
    /// assert!(s.solve_with_assumptions(&[CnfLit::pos(1), CnfLit::neg(2)]).is_unsat());
    /// assert!(s.solve().is_sat()); // still satisfiable without assumptions
    /// ```
    pub fn solve_with_assumptions(&mut self, assumptions: &[CnfLit]) -> SolveResult {
        if self.trace.is_none() {
            return self.solve_inner(assumptions);
        }
        // Span bracketing lives in this thin wrapper so every return path
        // of the search loop closes the `sat.solve` span with its deltas.
        let stats = self.stats;
        if let Some(t) = self.trace.as_deref_mut() {
            t.solve_start(&stats, assumptions.len());
        }
        let result = self.solve_inner(assumptions);
        let stats = self.stats;
        if let Some(t) = self.trace.as_deref_mut() {
            t.solve_end(&stats, &result);
        }
        result
    }

    /// The CDCL search loop behind [`Solver::solve_with_assumptions`].
    fn solve_inner(&mut self, assumptions: &[CnfLit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        let assumed: Vec<Lit> = assumptions.iter().map(|&l| Lit::from_cnf(l)).collect();
        let max_var = assumed
            .iter()
            .map(|l| l.var() as usize + 1)
            .max()
            .unwrap_or(0);
        self.ensure_vars(max_var);
        self.seen.resize(self.num_vars(), false);
        // Poll deadline/cancellation at the first opportunity: an already
        // interrupted solve must return promptly, not after a batch.
        self.interrupt_countdown = 1;
        // Top-level propagation of any pending units.
        if self.propagate().is_some() {
            self.log_empty_clause();
            self.ok = false;
            return SolveResult::Unsat;
        }
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.on_conflict(&self.stats);
                }
                if self.decision_level() == 0 {
                    self.log_empty_clause();
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                self.backtrack(bt);
                // Learnt clauses are RUP with respect to the original
                // formula plus earlier lemmas — even under assumptions,
                // which act as plain decisions; analysis resolves only
                // reason clauses. Logged post-minimization, exactly as
                // stored, for every tier including binary learnts.
                if let Some(p) = self.proof.as_deref_mut() {
                    p.log_add(&learnt);
                }
                match learnt.len() {
                    1 => self.unchecked_enqueue(learnt[0], Reason::Decision),
                    2 => {
                        // Two-literal learnts go straight to the binary
                        // tier: no arena record, never a reduction or GC
                        // candidate, asserted with an inline reason.
                        self.attach_binary(learnt[0], learnt[1]);
                        self.unchecked_enqueue(learnt[0], Reason::Binary(learnt[1]));
                    }
                    _ => {
                        let asserting = learnt[0];
                        let cref = self.db.add(&learnt, true, lbd);
                        self.attach(cref);
                        self.unchecked_enqueue(asserting, Reason::Clause(cref));
                    }
                }
                self.stats.learnt_clauses += 1;
                self.decay_activities();
                self.restart.on_conflict(lbd);
                if self.stats.conflicts >= self.next_reduce {
                    self.reduce_count += 1;
                    self.next_reduce = self.stats.conflicts
                        + self.config.reduce_first
                        + self.reduce_count * self.config.reduce_increment;
                    self.reduce_db();
                    if let Some(t) = self.trace.as_deref() {
                        t.on_reduce(&self.stats);
                    }
                }
                if self.budget_exhausted() || self.interrupted() {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
            } else {
                if self.restart.should_restart() && self.decision_level() > 0 {
                    self.restart.on_restart();
                    self.stats.restarts += 1;
                    if let Some(t) = self.trace.as_deref() {
                        t.on_restart(&self.stats);
                    }
                    self.backtrack(0);
                    continue;
                }
                // Install pending assumptions as the first decisions.
                if (self.decision_level() as usize) < assumed.len() {
                    let a = assumed[self.decision_level() as usize];
                    match self.value(a) {
                        LBool::True => {
                            // Already implied: open an empty level so the
                            // level-to-assumption alignment is kept.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // Failed assumption: UNSAT under assumptions.
                            self.backtrack(0);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, Reason::Decision);
                        }
                    }
                    continue;
                }
                match self.pick_branch_lit() {
                    None => {
                        // All variables assigned: extract the model.
                        let model = self
                            .assigns
                            .iter()
                            .map(|&a| a == LBool::True)
                            .collect::<Vec<bool>>();
                        self.backtrack(0);
                        return SolveResult::Sat(model);
                    }
                    Some(l) => {
                        if self.budget_exhausted() || self.interrupted() {
                            // The popped branch variable is still
                            // unassigned: put it back or it would leak
                            // from the order heap across budgeted calls
                            // (and could eventually fake a SAT answer
                            // with unassigned variables).
                            self.order.insert(l.var(), &self.activity);
                            self.backtrack(0);
                            return SolveResult::Unknown;
                        }
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, Reason::Decision);
                    }
                }
            }
        }
    }
}

#[inline]
fn level_abstraction(level: u32) -> u64 {
    1u64 << (level & 63)
}

/// Solves a formula with a fresh solver; convenience for pipelines.
///
/// Returns the result together with the solver statistics (whose
/// `decisions` field is the paper's branching count).
pub fn solve_cnf(formula: &Cnf, config: SolverConfig, budget: Budget) -> (SolveResult, Stats) {
    let mut s = Solver::from_cnf(formula, config);
    s.set_budget(budget);
    let r = s.solve();
    (r, *s.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::Cnf;

    fn cnf_of(clauses: &[&[i32]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| CnfLit::from_dimacs(x)).collect());
        }
        f
    }

    fn check_sat(clauses: &[&[i32]]) -> Vec<bool> {
        let f = cnf_of(clauses);
        let (r, _) = solve_cnf(&f, SolverConfig::default(), Budget::UNLIMITED);
        match r {
            SolveResult::Sat(m) => {
                assert!(f.eval(&m), "model must satisfy the formula");
                m
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    fn check_unsat(clauses: &[&[i32]]) {
        let f = cnf_of(clauses);
        let (r, _) = solve_cnf(&f, SolverConfig::default(), Budget::UNLIMITED);
        assert_eq!(r, SolveResult::Unsat);
    }

    #[test]
    fn trivial_cases() {
        check_sat(&[&[1]]);
        check_sat(&[&[1, 2], &[-1, 2], &[1, -2]]);
        check_unsat(&[&[1], &[-1]]);
    }

    #[test]
    fn binary_tier_holds_problem_and_learnt_twos() {
        // An implication ladder is pure binary: nothing may reach the
        // arena. The unit comes last so the ladder is attached (not
        // simplified away) and the forcing runs through the binary tier.
        let f = cnf_of(&[&[-1, 2], &[-2, 3], &[-3, 4], &[1]]);
        let mut s = Solver::from_cnf(&f, SolverConfig::default());
        assert_eq!(s.db.len(), 0, "binary clauses must bypass the arena");
        assert_eq!(s.num_binary, 3);
        let r = s.solve();
        assert!(r.is_sat());
        assert_eq!(r.model(), Some(&[true, true, true, true][..]));
        s.assert_integrity();
    }

    #[test]
    fn binary_implication_cycle_unsat() {
        // 1 -> 2 -> 3 -> ¬1 with 1 forced: conflict entirely inside the
        // binary tier, including analysis over inline reasons.
        check_unsat(&[&[1], &[-1, 2], &[-2, 3], &[-3, -1]]);
    }

    #[test]
    fn learnt_binaries_survive_reduction() {
        // An aggressive reduction cadence on php(6): learnt 2-clauses live
        // in the binary tier and must never be deleted or relocated.
        let mut cfg = SolverConfig::kissat_like();
        cfg.reduce_first = 30;
        cfg.reduce_increment = 15;
        let mut s = Solver::from_cnf(&workloads_php(6), cfg);
        assert!(s.solve().is_unsat());
        s.assert_integrity();
    }

    /// Local pigeonhole generator (the workloads crate sits above `sat` in
    /// the dependency DAG, so the solver tests build their own).
    fn workloads_php(holes: u32) -> Cnf {
        let pigeons = holes + 1;
        let var = |p: u32, h: u32| p * holes + h + 1;
        let mut f = Cnf::new();
        for p in 0..pigeons {
            f.add_clause((0..holes).map(|h| CnfLit::pos(var(p, h))).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    f.add_clause(vec![CnfLit::neg(var(p1, h)), CnfLit::neg(var(p2, h))]);
                }
            }
        }
        f
    }

    #[test]
    fn cloned_solvers_are_independent_and_identical() {
        // Clone a pre-loaded solver (the sharded-oracle construction
        // path): both copies must give the same answers with the same
        // statistics, and diverging one must not affect the other.
        let f = workloads_php(5);
        let base = Solver::from_cnf(&f, SolverConfig::kissat_like());
        let mut a = base.clone();
        let mut b = base.clone();
        assert!(a.solve().is_unsat());
        assert!(b.solve().is_unsat());
        assert_eq!(a.stats(), b.stats(), "identical trajectories");
        a.assert_integrity();
        b.assert_integrity();
        // Divergence: poison one clone at level 0; the other still solves.
        a.add_clause_cnf(&[CnfLit::pos(1)]);
        a.add_clause_cnf(&[CnfLit::neg(1)]);
        assert!(a.solve().is_unsat());
        let mut c = base.clone();
        assert!(c.solve().is_unsat());
    }

    #[test]
    fn reduction_reclaims_watcher_capacity() {
        // An aggressive reduction cadence on a learnt-heavy instance:
        // deletions must leave some list with 4x spare capacity at least
        // once, and the shrink must not disturb correctness.
        let mut cfg = SolverConfig::kissat_like();
        cfg.reduce_first = 25;
        cfg.reduce_increment = 10;
        let mut s = Solver::from_cnf(&workloads_php(7), cfg);
        assert!(s.solve().is_unsat());
        assert!(s.stats().deleted_clauses > 0, "reduction must have run");
        assert!(
            s.stats().watcher_shrinks > 0,
            "expected at least one watcher-list shrink under churn"
        );
        s.assert_integrity();
    }

    #[test]
    fn unit_chain() {
        // 1 -> 2 -> 3 -> ... -> 8, with 1 forced.
        check_sat(&[
            &[1],
            &[-1, 2],
            &[-2, 3],
            &[-3, 4],
            &[-4, 5],
            &[-5, 6],
            &[-6, 7],
            &[-7, 8],
        ]);
    }

    #[test]
    fn classic_unsat_php_3_2() {
        // Pigeonhole 3 pigeons, 2 holes. Var p_ij = pigeon i in hole j.
        // Vars: 1..6 (pigeon-major).
        check_unsat(&[
            &[1, 2],
            &[3, 4],
            &[5, 6],
            &[-1, -3],
            &[-1, -5],
            &[-3, -5],
            &[-2, -4],
            &[-2, -6],
            &[-4, -6],
        ]);
    }

    #[test]
    fn both_presets_agree() {
        let f = cnf_of(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2, 3]]);
        for cfg in [SolverConfig::kissat_like(), SolverConfig::cadical_like()] {
            let (r, _) = solve_cnf(&f, cfg, Budget::UNLIMITED);
            assert!(r.is_sat());
        }
    }

    #[test]
    fn budget_returns_unknown() {
        // A hard-ish random instance with an impossible budget.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 60;
        let mut f = Cnf::new();
        for _ in 0..(n as f64 * 4.26) as usize {
            let mut c = Vec::new();
            while c.len() < 3 {
                let v = rng.gen_range(1..=n);
                let l = CnfLit::new(v, rng.gen());
                if !c.contains(&l) && !c.contains(&!l) {
                    c.push(l);
                }
            }
            f.add_clause(c);
        }
        let (r, stats) = solve_cnf(
            &f,
            SolverConfig::default(),
            Budget {
                decisions: Some(3),
                ..Budget::UNLIMITED
            },
        );
        if r == SolveResult::Unknown {
            assert!(stats.decisions >= 3);
        }
    }

    #[test]
    fn budget_exhaustion_does_not_leak_heap_vars() {
        // Regression: hitting the budget right after popping a branch
        // variable used to drop it from the order heap while unassigned;
        // enough budgeted re-queries then produced a bogus SAT with
        // unassigned variables. Re-querying many times with a tiny budget
        // must keep returning honest answers.
        let f = workloads_php(5);
        let mut s = Solver::from_cnf(&f, SolverConfig::default());
        let mut answer = SolveResult::Unknown;
        for _ in 0..50_000 {
            let limit = s.stats().conflicts + 1;
            s.set_budget(Budget::conflicts(limit));
            answer = s.solve();
            if answer != SolveResult::Unknown {
                break;
            }
        }
        assert_eq!(answer, SolveResult::Unsat, "php(5) is unsatisfiable");
    }

    #[test]
    fn expired_deadline_interrupts_and_state_survives() {
        // A pre-expired deadline must interrupt promptly (before any real
        // search), count into the stats, and leave the incremental state
        // intact: removing the deadline and re-solving must give the same
        // verdict as a fresh solver.
        let f = workloads_php(4);
        let mut s = Solver::from_cnf(&f, SolverConfig::default());
        let past = Instant::now() - std::time::Duration::from_millis(10);
        s.set_budget(Budget::UNLIMITED.with_deadline(Some(past)));
        for _ in 0..3 {
            assert_eq!(s.solve(), SolveResult::Unknown);
        }
        assert!(s.stats().deadline_interrupts >= 3);
        s.set_budget(Budget::UNLIMITED);
        assert_eq!(s.solve(), SolveResult::Unsat, "php(4) is unsatisfiable");
        assert_eq!(s.stats().cancellations, 0);
    }

    #[test]
    fn raised_cancellation_interrupts_until_reset() {
        let f = workloads_php(4);
        let mut s = Solver::from_cnf(&f, SolverConfig::default());
        let token = crate::Cancellation::new();
        s.set_budget(Budget::UNLIMITED.with_cancel(token.clone()));
        token.cancel();
        assert_eq!(s.solve(), SolveResult::Unknown, "raised token interrupts");
        assert_eq!(s.solve(), SolveResult::Unknown, "cancellation is sticky");
        assert!(s.stats().cancellations >= 2);
        token.reset();
        assert_eq!(s.solve(), SolveResult::Unsat, "reset token solves through");
    }

    #[test]
    fn decisions_counted() {
        let f = cnf_of(&[&[1, 2], &[3, 4]]);
        let (r, stats) = solve_cnf(&f, SolverConfig::default(), Budget::UNLIMITED);
        assert!(r.is_sat());
        assert!(stats.decisions >= 1, "free variables require branching");
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new(SolverConfig::default());
        s.add_clause_cnf(&[CnfLit::pos(1), CnfLit::pos(2)]);
        assert!(s.solve().is_sat());
        s.add_clause_cnf(&[CnfLit::neg(1)]);
        s.add_clause_cnf(&[CnfLit::neg(2)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn random_3sat_cross_checked_with_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for iter in 0..60 {
            let n = rng.gen_range(3..=12);
            let m = (n as f64 * rng.gen_range(3.0..5.5)) as usize;
            let mut f = Cnf::new();
            f.ensure_vars(n);
            for _ in 0..m {
                let len = rng.gen_range(1..=3);
                let mut c: Vec<CnfLit> = Vec::new();
                while c.len() < len {
                    let v = rng.gen_range(1..=n);
                    let l = CnfLit::new(v, rng.gen());
                    if !c.iter().any(|&x| x.var() == v) {
                        c.push(l);
                    }
                }
                f.add_clause(c);
            }
            let expected = crate::reference::dpll_sat(&f);
            let (r, _) = solve_cnf(&f, SolverConfig::default(), Budget::UNLIMITED);
            match (expected, &r) {
                (true, SolveResult::Sat(m)) => assert!(f.eval(m), "iter {iter}"),
                (false, SolveResult::Unsat) => {}
                other => panic!("iter {iter}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable.
        check_unsat(&[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, 3], &[-1, -3]]);
    }

    #[test]
    fn stats_display() {
        let f = cnf_of(&[&[1, 2], &[-1, 2]]);
        let (_, stats) = solve_cnf(&f, SolverConfig::default(), Budget::UNLIMITED);
        assert!(format!("{stats}").contains("decisions="));
    }

    #[test]
    fn assumptions_restrict_without_committing() {
        // 1 -> 2, 2 -> 3.
        let f = cnf_of(&[&[-1, 2], &[-2, 3]]);
        let mut s = Solver::from_cnf(&f, SolverConfig::default());
        // Assuming 1 and ¬3 contradicts the implications.
        assert!(s
            .solve_with_assumptions(&[CnfLit::pos(1), CnfLit::neg(3)])
            .is_unsat());
        // The solver is NOT globally unsat: same query without assumptions.
        assert!(s.solve().is_sat());
        // A satisfiable assumption set yields a model honouring it.
        match s.solve_with_assumptions(&[CnfLit::pos(1)]) {
            SolveResult::Sat(m) => {
                assert!(m[0] && m[1] && m[2], "1 forces 2 and 3");
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_assumption_pair_fails() {
        let f = cnf_of(&[&[1, 2]]);
        let mut s = Solver::from_cnf(&f, SolverConfig::default());
        assert!(s
            .solve_with_assumptions(&[CnfLit::pos(1), CnfLit::neg(1)])
            .is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_on_fresh_variables_extend_the_solver() {
        let f = cnf_of(&[&[1]]);
        let mut s = Solver::from_cnf(&f, SolverConfig::default());
        // Variable 5 is unknown to the formula; assuming it must still work.
        match s.solve_with_assumptions(&[CnfLit::neg(5)]) {
            SolveResult::Sat(m) => {
                assert!(m[0]);
                assert!(!m[4], "assumption must be honoured in the model");
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn activation_literal_pattern() {
        // The classic incremental idiom: gadget clauses guarded by an
        // activation variable, enabled per query, retired with a unit.
        let f = cnf_of(&[&[1, 2]]);
        let mut s = Solver::from_cnf(&f, SolverConfig::default());
        // Gadget under activation var 10: (¬10 ∨ ¬1) ∧ (¬10 ∨ ¬2).
        s.add_clause_cnf(&[CnfLit::neg(10), CnfLit::neg(1)]);
        s.add_clause_cnf(&[CnfLit::neg(10), CnfLit::neg(2)]);
        assert!(s.solve_with_assumptions(&[CnfLit::pos(10)]).is_unsat());
        // Retire the gadget; the base formula is unaffected.
        s.add_clause_cnf(&[CnfLit::neg(10)]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_agree_with_unit_clauses_on_random_formulas() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for iter in 0..80 {
            let n = rng.gen_range(4..=10);
            let m = rng.gen_range(5..=38);
            let mut f = Cnf::new();
            f.ensure_vars(n);
            for _ in 0..m {
                let len = rng.gen_range(1..=3.min(n as usize));
                let mut c: Vec<CnfLit> = Vec::new();
                while c.len() < len {
                    let v = rng.gen_range(1..=n);
                    if !c.iter().any(|x| x.var() == v) {
                        c.push(CnfLit::new(v, rng.gen()));
                    }
                }
                f.add_clause(c);
            }
            // Pick one or two assumption literals.
            let assume: Vec<CnfLit> = (0..rng.gen_range(1..=2))
                .map(|_| CnfLit::new(rng.gen_range(1..=n), rng.gen()))
                .collect();
            // Reference: add the assumptions as units to a copy.
            let mut f_units = f.clone();
            for &a in &assume {
                f_units.add_unit(a);
            }
            let expected = crate::reference::dpll_sat(&f_units);
            let mut s = Solver::from_cnf(&f, SolverConfig::default());
            let res = s.solve_with_assumptions(&assume);
            assert_eq!(res.is_sat(), expected, "iter {iter}");
            if let SolveResult::Sat(model) = res {
                assert!(
                    f_units.eval(&model),
                    "iter {iter}: model violates assumptions"
                );
            }
            // And the solver is reusable afterwards with the opposite set.
            let flipped: Vec<CnfLit> = assume.iter().map(|&a| !a).collect();
            let mut f_flip = f.clone();
            for &a in &flipped {
                f_flip.add_unit(a);
            }
            let expected_flip = crate::reference::dpll_sat(&f_flip);
            assert_eq!(
                s.solve_with_assumptions(&flipped).is_sat(),
                expected_flip,
                "iter {iter} (flipped)"
            );
        }
    }
}
