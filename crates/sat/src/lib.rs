//! # `sat` — a CDCL solver with branching statistics
//!
//! This crate stands in for Kissat 4.0 and CaDiCaL 2.0 in the paper's
//! evaluation: a conflict-driven clause-learning solver with
//!
//! * two-watched-literal propagation with blocker literals,
//! * EVSIDS variable activities and phase saving,
//! * first-UIP learning with recursive clause minimisation,
//! * LBD-aware clause-database reduction and garbage collection,
//! * Luby and Glucose-EMA restart policies,
//! * per-run [`Stats`] whose `decisions` counter is the paper's
//!   "variable branching times" metric, and a decision/conflict [`Budget`]
//!   for bounded runs.
//!
//! Two presets mirror the evaluation's solver pair:
//! [`SolverConfig::kissat_like`] and [`SolverConfig::cadical_like`].
//!
//! ```
//! use cnf::{Cnf, CnfLit};
//! use sat::{solve_cnf, Budget, SolverConfig};
//!
//! let mut f = Cnf::new();
//! f.add_clause(vec![CnfLit::pos(1), CnfLit::neg(2)]);
//! f.add_clause(vec![CnfLit::pos(2)]);
//! let (result, stats) = solve_cnf(&f, SolverConfig::kissat_like(), Budget::UNLIMITED);
//! assert!(result.is_sat());
//! assert!(stats.decisions <= 2);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clause;
mod config;
mod heap;
pub mod presolve;
pub mod proof;
pub mod reference;
pub mod restart;
mod solver;
mod stats;
mod trace;
mod types;

pub use config::{Budget, Cancellation, RestartStrategy, SolverConfig};
pub use proof::{ProofLog, ProofStep};
pub use solver::{solve_cnf, SolveResult, Solver};
pub use stats::Stats;
