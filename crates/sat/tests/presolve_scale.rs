//! Presolve at circuit scale: the occurrence-list implementation must
//! handle multi-thousand-clause Tseitin CNFs in well under a second and
//! meaningfully shrink them (gate variables resolve away).

use sat::presolve::{presolve, PresolveConfig, Presolved};
use std::time::Instant;

/// A wide adder-architecture miter's Tseitin encoding (~10k clauses).
fn big_tseitin() -> cnf::Cnf {
    let mut g = aig::Aig::new();
    let n = 64;
    let a = g.add_pis(n);
    let b = g.add_pis(n);
    // Ripple vs majority-carry ripple, XOR-mitred.
    let mut c1 = aig::Lit::FALSE;
    let mut c2 = aig::Lit::FALSE;
    let mut diffs = Vec::new();
    for i in 0..n {
        let t = g.xor(a[i], b[i]);
        let s1 = g.xor(t, c1);
        let g1 = g.and(a[i], b[i]);
        let g2 = g.and(t, c1);
        c1 = g.or(g1, g2);

        let s2x = g.xor(a[i], b[i]);
        let s2 = g.xor(s2x, c2);
        let ab = g.and(a[i], b[i]);
        let ac = g.and(a[i], c2);
        let bc = g.and(b[i], c2);
        let or1 = g.or(ab, ac);
        c2 = g.or(or1, bc);

        diffs.push(g.xor(s1, s2));
    }
    diffs.push(g.xor(c1, c2));
    let any = g.or_many(&diffs);
    g.add_po(any);
    let (f, _) = cnf::tseitin_sat_instance(&g);
    f
}

#[test]
fn presolve_handles_circuit_scale_quickly() {
    let f = big_tseitin();
    assert!(
        f.num_clauses() > 2_000,
        "want a non-trivial CNF, got {}",
        f.num_clauses()
    );
    let t0 = Instant::now();
    let out = presolve(&f, &PresolveConfig::default());
    let dt = t0.elapsed();
    assert!(
        dt.as_secs_f64() < 5.0,
        "presolve took {dt:?} on {} clauses — occurrence lists regressed",
        f.num_clauses()
    );
    match out {
        Presolved::Simplified(simplified, _) => {
            assert!(
                simplified.num_clauses() < f.num_clauses(),
                "expected shrinkage: {} -> {}",
                f.num_clauses(),
                simplified.num_clauses()
            );
        }
        Presolved::Unsat => panic!("equivalence miter reported UNSAT by presolve alone is fine in principle, but BVE at default limits cannot prove it"),
        Presolved::Sat(_) => panic!("miter of inequivalent-free adders cannot be trivially SAT"),
    }
}
