//! Structural validation of drained event streams.
//!
//! Used by the test suites (well-formedness under chaos plans) and by the
//! CI trace checker: a valid stream has unique sequence numbers, balanced
//! enter/exit pairs, children strictly nested inside their parents (by
//! sequence number), instant events inside their span's window, and
//! per-thread non-decreasing timestamps.

use crate::span::{Event, EventKind, SpanId};
use std::collections::BTreeMap;

/// Per-span bookkeeping gathered in one pass.
#[derive(Default)]
struct SpanWindow {
    name: &'static str,
    parent: SpanId,
    enter_seq: Option<u64>,
    exit_seq: Option<u64>,
}

/// Validates a drained event stream (any order; events are sorted by
/// `seq` internally). Returns the first violation as a human-readable
/// message.
pub fn validate(events: &[Event]) -> Result<(), String> {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.seq);
    for pair in sorted.windows(2) {
        if pair[0].seq == pair[1].seq {
            return Err(format!("duplicate seq {}", pair[0].seq));
        }
    }

    let mut spans: BTreeMap<SpanId, SpanWindow> = BTreeMap::new();
    let mut thread_ts: BTreeMap<u64, u64> = BTreeMap::new();
    for e in &sorted {
        let last = thread_ts.entry(e.thread).or_insert(0);
        if e.ts_ns < *last {
            return Err(format!(
                "thread {} timestamp went backwards at seq {} ({} < {})",
                e.thread, e.seq, e.ts_ns, last
            ));
        }
        *last = e.ts_ns;

        match e.kind {
            EventKind::Enter => {
                let w = spans.entry(e.span).or_default();
                if w.enter_seq.is_some() {
                    return Err(format!("span {} ({}) entered twice", e.span, e.name));
                }
                w.name = e.name;
                w.parent = e.parent;
                w.enter_seq = Some(e.seq);
            }
            EventKind::Exit => {
                let w = spans.entry(e.span).or_default();
                if w.enter_seq.is_none() {
                    return Err(format!("span {} ({}) exited before enter", e.span, e.name));
                }
                if w.exit_seq.is_some() {
                    return Err(format!("span {} ({}) exited twice", e.span, e.name));
                }
                w.exit_seq = Some(e.seq);
            }
            EventKind::Instant => {
                let Some(w) = spans.get(&e.span) else {
                    return Err(format!(
                        "instant '{}' at seq {} targets unknown span {}",
                        e.name, e.seq, e.span
                    ));
                };
                let enter = w.enter_seq.expect("known span always has enter");
                if e.seq < enter {
                    return Err(format!(
                        "instant '{}' (seq {}) precedes its span's enter (seq {enter})",
                        e.name, e.seq
                    ));
                }
                if let Some(exit) = w.exit_seq {
                    if e.seq > exit {
                        return Err(format!(
                            "instant '{}' (seq {}) follows its span's exit (seq {exit})",
                            e.name, e.seq
                        ));
                    }
                }
            }
        }
    }

    for (id, w) in &spans {
        let enter = w
            .enter_seq
            .ok_or_else(|| format!("span {id} has exit but no enter"))?;
        let exit = w
            .exit_seq
            .ok_or_else(|| format!("span {id} ({}) never exited", w.name))?;
        if exit <= enter {
            return Err(format!("span {id} ({}) exit seq <= enter seq", w.name));
        }
        if w.parent != 0 {
            let Some(p) = spans.get(&w.parent) else {
                return Err(format!(
                    "span {id} ({}) has unknown parent {}",
                    w.name, w.parent
                ));
            };
            let p_enter = p.enter_seq.expect("validated above or later");
            if enter <= p_enter {
                return Err(format!(
                    "span {id} ({}) entered before its parent {}",
                    w.name, w.parent
                ));
            }
            if let Some(p_exit) = p.exit_seq {
                if exit >= p_exit {
                    return Err(format!(
                        "span {id} ({}) exited after its parent {}",
                        w.name, w.parent
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Sums a named `u64` field over the Exit events of spans with `name`.
/// Used by the conflict-sum acceptance check (per-query `conflicts`
/// recorded on serve/solve spans must total the solver counter).
pub fn sum_field(events: &[Event], span_name: &str, field: &str) -> u64 {
    use crate::span::FieldValue;
    events
        .iter()
        .filter(|e| e.kind == EventKind::Exit && e.name == span_name)
        .flat_map(|e| e.fields.iter())
        .filter(|(k, _)| *k == field)
        .map(|(_, v)| match v {
            FieldValue::U64(n) => *n,
            FieldValue::Str(_) => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn rejects_unbalanced_and_misnested_streams() {
        let reg = Registry::tracing();
        let root = reg.span("root");
        let child = root.child("child");
        drop(child);
        drop(root);
        let mut events = reg.drain_events();
        assert!(validate(&events).is_ok());

        // Drop the child's exit: unbalanced.
        let removed = events.remove(2);
        assert_eq!(removed.kind, EventKind::Exit);
        let err = validate(&events).unwrap_err();
        assert!(err.contains("never exited"), "{err}");
    }

    #[test]
    fn rejects_child_escaping_parent() {
        let reg = Registry::tracing();
        let root = reg.span("root");
        let child = root.child("child");
        drop(root);
        drop(child); // exits after parent: misnested
        let events = reg.drain_events();
        let err = validate(&events).unwrap_err();
        assert!(err.contains("exited after its parent"), "{err}");
    }

    #[test]
    fn sums_exit_fields_by_span_name() {
        let reg = Registry::tracing();
        for n in [3u64, 5, 7] {
            let sp = reg.span("serve.solve");
            sp.record("conflicts", n);
        }
        let other = reg.span("sat.solve");
        other.record("conflicts", 100u64);
        drop(other);
        let events = reg.drain_events();
        assert_eq!(sum_field(&events, "serve.solve", "conflicts"), 15);
        assert_eq!(sum_field(&events, "sat.solve", "conflicts"), 100);
    }
}
