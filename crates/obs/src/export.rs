//! Trace-file serialisation: JSONL (one event per line, plus trailing
//! metric records) and Chrome `trace_event` JSON for flamegraph viewers.
//!
//! Both formats are hand-rolled — field keys and span names are
//! `&'static str` identifiers and values are integers, so escaping is
//! trivial and the crate stays dependency-free.

use crate::span::{Event, EventKind, FieldValue};
use crate::Snapshot;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_fields(out: &mut String, fields: &[(&'static str, FieldValue)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match v {
            FieldValue::U64(n) => {
                let _ = write!(out, "\"{}\":{n}", json_escape(k));
            }
            FieldValue::Str(s) => {
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(s));
            }
        }
    }
    out.push('}');
}

/// Renders events as JSON Lines: one `{"ev":...}` object per event in
/// `seq` order, followed by one `{"metric":...}` object per registered
/// counter/gauge and `{"hist":...}` per histogram, so external checkers
/// can cross-validate span fields against metric totals from one file.
pub fn to_jsonl(events: &[Event], snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(
            out,
            "{{\"ev\":\"{}\",\"name\":\"{}\",\"span\":{},\"parent\":{},\"thread\":{},\"seq\":{},\"ts_ns\":{},\"fields\":",
            e.kind.name(),
            json_escape(e.name),
            e.span,
            e.parent,
            e.thread,
            e.seq,
            e.ts_ns,
        );
        write_fields(&mut out, &e.fields);
        out.push_str("}\n");
    }
    for (name, v) in snapshot.counters.iter().chain(snapshot.gauges.iter()) {
        let _ = writeln!(
            out,
            "{{\"metric\":\"{}\",\"value\":{v}}}",
            json_escape(name)
        );
    }
    for (name, h) in &snapshot.hists {
        let _ = write!(
            out,
            "{{\"hist\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
            json_escape(name),
            h.count,
            h.sum
        );
        for (i, (le, n)) in h.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{le},{n}]");
        }
        out.push_str("]}\n");
    }
    out
}

/// Renders events in Chrome `trace_event` format (the JSON array form):
/// Enter/Exit become `ph:"B"`/`ph:"E"` duration events, Instant becomes
/// `ph:"i"`; `tid` is the obs thread index and timestamps are in
/// microseconds as the format requires. Load in `chrome://tracing` or
/// Perfetto.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ph = match e.kind {
            EventKind::Enter => "B",
            EventKind::Exit => "E",
            EventKind::Instant => "i",
        };
        let ts_us = e.ts_ns as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3}",
            json_escape(e.name),
            e.thread,
        );
        if e.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !e.fields.is_empty() || e.kind == EventKind::Enter {
            out.push_str(",\"args\":");
            let mut args: Vec<(&'static str, FieldValue)> = Vec::new();
            if e.kind == EventKind::Enter {
                args.push(("span", FieldValue::U64(e.span)));
                args.push(("parent", FieldValue::U64(e.parent)));
            }
            args.extend(e.fields.iter().copied());
            write_fields(&mut out, &args);
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn jsonl_has_one_object_per_line() {
        let reg = Registry::tracing();
        reg.counter("sat.conflicts").add(3);
        {
            let sp = reg.span("sat.solve");
            sp.event("restart", &[("n", 1u64.into())]);
            sp.record("result", "sat");
        }
        let events = reg.drain_events();
        let text = to_jsonl(&events, &reg.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // enter, instant, exit, metric
        assert!(lines[0].contains("\"ev\":\"enter\""));
        assert!(lines[1].contains("\"restart\""));
        assert!(lines[2].contains("\"result\":\"sat\""));
        assert!(lines[3].contains("\"metric\":\"sat.conflicts\",\"value\":3"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_is_a_json_array_with_b_e_pairs() {
        let reg = Registry::tracing();
        drop(reg.span("root"));
        let text = to_chrome_trace(&reg.drain_events());
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
    }
}
