//! Unified tracing + metrics layer for the whole stack.
//!
//! The paper's central premise is that *solver-internal* quantities
//! (branching counts, conflicts) are the signal everything else optimises
//! against — yet totals-at-exit structs cannot show **when** or **where**
//! those quantities accrue. This crate supplies the missing timeline:
//!
//! * **Metrics** — lock-free [`Counter`]s, [`Gauge`]s and log2-bucketed
//!   [`Histogram`]s registered by name in a [`Registry`]. Updates are one
//!   relaxed atomic op; registration (the only locking path) happens at
//!   setup time. [`Registry::snapshot`] renders them as a summary table or
//!   a Prometheus text-format exposition.
//! * **Spans** — hierarchical [`Span`]s with monotonic timestamps,
//!   explicit parent links and structured `key=value` fields. Enter/exit
//!   (and instant) events land in per-thread ring buffers and drain to
//!   JSONL or a Chrome `trace_event` file (see [`export`]).
//!
//! ## Cost model
//!
//! Everything hangs off an `Option<Arc<..>>`: a **disabled** registry
//! (the production default, [`Registry::disabled`]) makes every handle a
//! `None`, so the instrumented hot paths pay exactly one branch and zero
//! allocations — the same pattern as the solver's `Option<Box<ProofLog>>`
//! proof sink. `metrics_only` enables the atomics but keeps span creation
//! free; `tracing` turns on event buffering too.
//!
//! ## Ordering contract
//!
//! Every event carries a global sequence number from one atomic and a
//! nanosecond timestamp from the registry's monotonic epoch. Sequence
//! numbers respect happens-before: if span A's enter is ordered (by any
//! synchronisation, e.g. a queue handoff) before span B's enter, A's
//! sequence number is smaller. Per-thread, timestamps are non-decreasing
//! in sequence order. [`check::validate`] audits both plus enter/exit
//! balance and parent/child nesting — the well-formedness property the
//! integration tests drive under chaos plans.

#![forbid(unsafe_code)]

pub mod check;
pub mod export;
mod metrics;
mod span;

pub use metrics::{Counter, Gauge, HistSnapshot, Histogram, Snapshot};
pub use span::{Event, EventKind, FieldValue, Span, SpanHandle, SpanId};

use metrics::HistCore;
use span::SinkEntry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread event-ring capacity (events, not bytes).
const DEFAULT_RING_CAPACITY: usize = 1 << 18;

/// Named metric stores; locked only at registration/snapshot time.
#[derive(Default)]
pub(crate) struct MetricsMap {
    pub(crate) counters: BTreeMap<String, Arc<AtomicU64>>,
    pub(crate) gauges: BTreeMap<String, Arc<AtomicU64>>,
    pub(crate) hists: BTreeMap<String, Arc<HistCore>>,
}

/// Shared state behind an enabled [`Registry`].
pub(crate) struct Inner {
    /// Monotonic epoch all event timestamps are measured from.
    pub(crate) start: Instant,
    /// Whether span/event buffering is on (`tracing`) or only metrics.
    pub(crate) events: bool,
    /// Per-thread ring capacity; overflow drops the newest event.
    pub(crate) ring_capacity: usize,
    /// Global event sequence; total order respecting happens-before.
    pub(crate) seq: AtomicU64,
    /// Span-id allocator; 0 is reserved for "no parent" (root).
    pub(crate) next_span: AtomicU64,
    /// Events dropped to ring overflow.
    pub(crate) dropped: AtomicU64,
    pub(crate) metrics: Mutex<MetricsMap>,
    /// One ring buffer per thread that ever emitted an event.
    pub(crate) sinks: Mutex<Vec<SinkEntry>>,
}

/// Handle to a tracing/metrics domain. Cloning shares the same store;
/// the default ([`Registry::disabled`]) is a no-op on every path.
#[derive(Clone, Default)]
pub struct Registry {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .field("tracing", &self.tracing_enabled())
            .finish()
    }
}

impl Registry {
    /// The no-op registry: every handle is `None`, every probe one branch.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Metrics (counters/gauges/histograms) live; spans and events off.
    pub fn metrics_only() -> Registry {
        Registry::build(false, DEFAULT_RING_CAPACITY)
    }

    /// Everything on: metrics plus span/event buffering.
    pub fn tracing() -> Registry {
        Registry::build(true, DEFAULT_RING_CAPACITY)
    }

    /// Tracing registry with an explicit per-thread ring capacity
    /// (events; overflow drops the newest and counts it).
    pub fn tracing_with_capacity(ring_capacity: usize) -> Registry {
        Registry::build(true, ring_capacity.max(1))
    }

    fn build(events: bool, ring_capacity: usize) -> Registry {
        Registry {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                events,
                ring_capacity,
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                metrics: Mutex::new(MetricsMap::default()),
                sinks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// True unless this is the disabled registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when span/event buffering is on (not just metrics).
    pub fn tracing_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.events)
    }

    /// Registers (or retrieves) a counter. Disabled registry → no-op handle.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            let mut m = lock_metrics(inner);
            Arc::clone(m.counters.entry(name.to_string()).or_default())
        }))
    }

    /// Registers (or retrieves) a gauge. Disabled registry → no-op handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            let mut m = lock_metrics(inner);
            Arc::clone(m.gauges.entry(name.to_string()).or_default())
        }))
    }

    /// Registers (or retrieves) a log2-bucketed histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            let mut m = lock_metrics(inner);
            Arc::clone(m.hists.entry(name.to_string()).or_default())
        }))
    }

    /// Convenience for one-shot publication: `gauge(name).set(value)`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.gauge(name).set(value);
        }
    }

    /// Opens a root span (no parent). The span closes on drop.
    pub fn span(&self, name: &'static str) -> Span {
        span::open(self.inner.clone(), 0, name, &[])
    }

    /// Opens a root span with fields attached to its enter event.
    pub fn span_with(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) -> Span {
        span::open(self.inner.clone(), 0, name, fields)
    }

    /// A parent handle denoting "root" — children of it are root spans.
    /// Lets instrumented components take one uniform `SpanHandle` knob.
    pub fn root(&self) -> SpanHandle {
        SpanHandle::new(self.inner.clone(), 0)
    }

    /// Drains every thread's ring buffer; events come back sorted by
    /// sequence number (the global order). Buffers are left empty.
    pub fn drain_events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out: Vec<Event> = Vec::new();
        for entry in lock_sinks(inner).iter() {
            out.extend(entry.drain());
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events lost to ring-buffer overflow so far.
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let m = lock_metrics(inner);
        Snapshot {
            counters: m
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: m
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            hists: m.hists.iter().map(|(k, v)| (k.clone(), v.snap())).collect(),
        }
    }
}

pub(crate) fn lock_metrics(inner: &Inner) -> std::sync::MutexGuard<'_, MetricsMap> {
    inner.metrics.lock().expect("obs metrics mutex poisoned")
}

pub(crate) fn lock_sinks(inner: &Inner) -> std::sync::MutexGuard<'_, Vec<SinkEntry>> {
    inner.sinks.lock().expect("obs sink mutex poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        let c = reg.counter("x");
        c.add(5);
        reg.histogram("h").observe(9);
        let s = reg.span("root");
        s.record("k", 1u64);
        drop(s);
        assert!(!reg.is_enabled());
        assert!(reg.drain_events().is_empty());
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.hists.is_empty());
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::metrics_only();
        let c = reg.counter("sat.conflicts");
        c.add(3);
        c.inc();
        reg.counter("sat.conflicts").add(6); // same underlying cell
        reg.set_gauge("sweep.rounds", 4);
        let snap = reg.snapshot();
        assert_eq!(snap.value("sat.conflicts"), Some(10));
        assert_eq!(snap.value("sweep.rounds"), Some(4));
        assert_eq!(snap.value("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = Registry::metrics_only();
        let h = reg.histogram("lat");
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").expect("registered");
        assert_eq!(hs.count, 8);
        assert_eq!(hs.sum, 1025);
        // Bucket upper bounds are 2^i - 1: 0, 1, 3, 7, 15, ...
        let cum = |le: u64| {
            hs.buckets
                .iter()
                .filter(|&&(b, _)| b <= le)
                .map(|&(_, n)| n)
                .sum::<u64>()
        };
        assert_eq!(cum(0), 1); // just 0
        assert_eq!(cum(1), 2); // 0, 1
        assert_eq!(cum(3), 4); // + 2, 3
        assert_eq!(cum(7), 6); // + 4, 7
        assert_eq!(cum(15), 7); // + 8
        assert_eq!(cum(1023), 8); // + 1000
    }

    #[test]
    fn spans_nest_and_validate() {
        let reg = Registry::tracing();
        {
            let root = reg.span_with("outer", &[("id", 7u64.into())]);
            {
                let child = root.child("inner");
                child.event("tick", &[("n", 1u64.into())]);
                child.record("result", "ok");
            }
            root.record("total", 2u64);
        }
        let events = reg.drain_events();
        check::validate(&events).expect("well-formed");
        assert_eq!(events.len(), 5); // enter x2, instant, exit x2
        assert!(reg.drain_events().is_empty(), "drain empties the rings");
    }

    #[test]
    fn cross_thread_spans_keep_order() {
        let reg = Registry::tracing();
        let root = reg.span("root");
        let handle = root.handle();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let h = handle.clone();
                s.spawn(move || {
                    let sp = h.child("worker");
                    sp.record("i", i);
                });
            }
        });
        drop(root);
        let events = reg.drain_events();
        check::validate(&events).expect("well-formed across threads");
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == EventKind::Enter && e.name == "worker")
                .count(),
            4
        );
    }

    #[test]
    fn ring_overflow_drops_newest_and_counts() {
        let reg = Registry::tracing_with_capacity(4);
        let root = reg.span("r");
        for _ in 0..100 {
            root.event("e", &[]);
        }
        drop(root);
        assert!(reg.dropped_events() > 0);
        assert!(reg.drain_events().len() <= 4);
    }
}
