//! Hierarchical spans and the per-thread event rings behind them.
//!
//! A [`Span`] is an RAII guard: creation emits an `Enter` event, drop
//! emits `Exit` carrying any fields [`Span::record`]ed in between.
//! Parenting is explicit — [`Span::child`]/[`SpanHandle::child`] — never
//! inferred from thread-local state, so a span tree can hop threads (a
//! serve query enters on the submitter and solves on a worker) and still
//! reconstruct exactly.
//!
//! Events land in the emitting thread's own ring buffer (registered on
//! first use, drained by [`Registry::drain_events`](crate::Registry));
//! a full ring drops the newest event and counts the loss rather than
//! blocking or reallocating.

use crate::Inner;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

/// Span identifier; unique per registry, `0` means "no parent" / root.
pub type SpanId = u64;

/// What an [`Event`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Enter,
    /// A span closed (fields = everything recorded on it).
    Exit,
    /// A point-in-time marker inside a span (restart, GC, cache probe...).
    Instant,
}

impl EventKind {
    /// Stable lowercase name used in trace files.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Instant => "instant",
        }
    }
}

/// A structured field value; static strings and integers only, so field
/// emission never allocates per value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Static string (verdict names, result kinds, ...).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One buffered trace event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Nanoseconds since the registry's epoch (monotonic clock).
    pub ts_ns: u64,
    /// Global sequence number; total order respecting happens-before.
    pub seq: u64,
    /// Enter / exit / instant.
    pub kind: EventKind,
    /// Span (or marker) name.
    pub name: &'static str,
    /// Id of the span this event belongs to.
    pub span: SpanId,
    /// Parent span id (`0` for roots); only meaningful on `Enter`.
    pub parent: SpanId,
    /// Index of the emitting thread's sink (dense, assigned on first use).
    pub thread: u64,
    /// Structured `key=value` payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// One thread's ring buffer.
pub(crate) struct SinkEntry {
    tid: ThreadId,
    index: u64,
    buf: Arc<Mutex<VecDeque<Event>>>,
}

impl SinkEntry {
    pub(crate) fn drain(&self) -> Vec<Event> {
        self.buf
            .lock()
            .expect("obs ring mutex poisoned")
            .drain(..)
            .collect()
    }
}

/// Emits one event into the current thread's ring.
fn emit(
    inner: &Arc<Inner>,
    kind: EventKind,
    name: &'static str,
    span: SpanId,
    parent: SpanId,
    fields: Vec<(&'static str, FieldValue)>,
) {
    if !inner.events {
        return;
    }
    let ts_ns = inner.start.elapsed().as_nanos() as u64;
    let tid = std::thread::current().id();
    let (index, buf) = {
        let mut sinks = crate::lock_sinks(inner);
        match sinks.iter().find(|e| e.tid == tid) {
            Some(e) => (e.index, Arc::clone(&e.buf)),
            None => {
                let index = sinks.len() as u64;
                let buf = Arc::new(Mutex::new(VecDeque::new()));
                sinks.push(SinkEntry {
                    tid,
                    index,
                    buf: Arc::clone(&buf),
                });
                (index, buf)
            }
        }
    };
    let mut buf = buf.lock().expect("obs ring mutex poisoned");
    if buf.len() >= inner.ring_capacity {
        // Drop-newest: keeping the oldest events preserves every open
        // span's Enter, so a truncated trace still has a consistent tree.
        inner.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // The sequence number is taken while holding the ring lock, after the
    // timestamp: per thread both are monotone, and cross-thread the
    // counter's modification order makes `seq` a total order that
    // respects happens-before.
    let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
    buf.push_back(Event {
        ts_ns,
        seq,
        kind,
        name,
        span,
        parent,
        thread: index,
        fields,
    });
}

pub(crate) fn open(
    inner: Option<Arc<Inner>>,
    parent: SpanId,
    name: &'static str,
    fields: &[(&'static str, FieldValue)],
) -> Span {
    let Some(inner) = inner else {
        return Span { body: None };
    };
    if !inner.events {
        // Metrics-only mode: spans exist as cheap id carriers (so code can
        // thread handles unconditionally) but emit nothing.
        return Span { body: None };
    }
    let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
    emit(&inner, EventKind::Enter, name, id, parent, fields.to_vec());
    Span {
        body: Some(SpanBody {
            inner,
            id,
            name,
            recorded: Mutex::new(Vec::new()),
        }),
    }
}

struct SpanBody {
    inner: Arc<Inner>,
    id: SpanId,
    name: &'static str,
    /// Fields accumulated via [`Span::record`], attached to the Exit
    /// event. A `Mutex` (not `RefCell`) so `Span` stays `Sync` — solvers
    /// holding an active span are captured by reference in `Sync` shard
    /// closures. Uncontended by construction and locked only on the cold
    /// record/exit path.
    recorded: Mutex<Vec<(&'static str, FieldValue)>>,
}

/// RAII span guard: `Enter` on creation, `Exit` (with recorded fields) on
/// drop. A span from a disabled (or metrics-only) registry is an inert
/// zero-allocation shell.
pub struct Span {
    body: Option<SpanBody>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.body {
            Some(b) => write!(f, "Span({} #{})", b.name, b.id),
            None => write!(f, "Span(disabled)"),
        }
    }
}

impl Span {
    /// This span's id (`0` when disabled).
    pub fn id(&self) -> SpanId {
        self.body.as_ref().map_or(0, |b| b.id)
    }

    /// True when the span actually emits events.
    pub fn enabled(&self) -> bool {
        self.body.is_some()
    }

    /// Opens a child span.
    pub fn child(&self, name: &'static str) -> Span {
        self.child_with(name, &[])
    }

    /// Opens a child span with enter-event fields.
    pub fn child_with(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) -> Span {
        match &self.body {
            Some(b) => open(Some(Arc::clone(&b.inner)), b.id, name, fields),
            None => Span { body: None },
        }
    }

    /// Emits an instant event inside this span.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        if let Some(b) = &self.body {
            emit(
                &b.inner,
                EventKind::Instant,
                name,
                b.id,
                b.id,
                fields.to_vec(),
            );
        }
    }

    /// Attaches a field to this span's eventual Exit event. Interior
    /// mutability (`&self`) so late results can be recorded through
    /// shared references (e.g. a response writer holding `&Job`).
    pub fn record(&self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(b) = &self.body {
            b.recorded
                .lock()
                .expect("obs record mutex poisoned")
                .push((key, value.into()));
        }
    }

    /// A cloneable, lifetime-free reference to this span for parenting
    /// work on other components/threads (outliving it is allowed but the
    /// children would no longer nest — re-parent per round/frame instead).
    pub fn handle(&self) -> SpanHandle {
        match &self.body {
            Some(b) => SpanHandle::new(Some(Arc::clone(&b.inner)), b.id),
            None => SpanHandle::new(None, 0),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(b) = self.body.take() {
            let fields = b.recorded.into_inner().unwrap_or_default();
            emit(&b.inner, EventKind::Exit, b.name, b.id, 0, fields);
        }
    }
}

/// Cloneable span reference: lets an instrumented component (a solver, a
/// shard worker) hang its own spans under a caller's span without
/// borrowing it. [`Registry::root`](crate::Registry::root) provides the
/// top-level handle.
#[derive(Clone)]
pub struct SpanHandle {
    inner: Option<Arc<Inner>>,
    id: SpanId,
}

impl std::fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpanHandle(#{}, enabled={})", self.id, self.enabled())
    }
}

impl SpanHandle {
    pub(crate) fn new(inner: Option<Arc<Inner>>, id: SpanId) -> SpanHandle {
        SpanHandle { inner, id }
    }

    /// True when the underlying registry records events.
    pub fn enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.events)
    }

    /// The registry this handle belongs to (disabled handle → disabled
    /// registry), for registering metrics next to the spans.
    pub fn registry(&self) -> crate::Registry {
        crate::Registry {
            inner: self.inner.clone(),
        }
    }

    /// Opens a child span under the referenced span.
    pub fn child(&self, name: &'static str) -> Span {
        self.child_with(name, &[])
    }

    /// Opens a child span with enter-event fields.
    pub fn child_with(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) -> Span {
        open(self.inner.clone(), self.id, name, fields)
    }

    /// Emits an instant event attached to the referenced span.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        if let Some(inner) = &self.inner {
            emit(
                inner,
                EventKind::Instant,
                name,
                self.id,
                self.id,
                fields.to_vec(),
            );
        }
    }
}
