//! Lock-free metric handles and point-in-time snapshots.
//!
//! Handles are `Option<Arc<..>>`: a handle minted by a disabled
//! [`Registry`](crate::Registry) is `None` and every update is one branch;
//! an enabled handle is a shared atomic cell updated with relaxed
//! `fetch_add`/`store` — no locks on any hot path. The registry mutex is
//! taken only when a handle is first registered and when a snapshot is cut.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 histogram buckets: bucket `i` holds values whose bit
/// length is `i`, i.e. the ranges `{0}`, `{1}`, `[2,3]`, `[4,7]`, ... up
/// to `[2^63, u64::MAX]`.
const BUCKETS: usize = 65;

/// Monotonically increasing event count. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`; one relaxed atomic op (or one branch when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins level (queue depth, published struct totals, ...).
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the level; one relaxed store.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Shared histogram storage: 65 log2 buckets plus sum and count.
pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistCore {
    fn default() -> HistCore {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl HistCore {
    pub(crate) fn snap(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_bound(i), n));
            }
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Upper bound (inclusive) of log2 bucket `i`: `2^i - 1` (saturating).
fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Log2-bucketed distribution (conflicts per query, queue wait, burst
/// lengths). Bucket index is the value's bit length, so `observe` is a
/// `leading_zeros` plus three relaxed atomic adds — cheap enough for
/// conflict-rate call sites.
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistCore>>);

impl std::fmt::Debug for HistCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snap();
        f.debug_struct("HistCore")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish()
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            let idx = (64 - v.leading_zeros()) as usize;
            h.buckets[idx].fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn observe_micros(&self, d: std::time::Duration) {
        if self.0.is_some() {
            self.observe(d.as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
}

/// Point-in-time copy of one histogram: only non-empty buckets, keyed by
/// their inclusive upper bound (`2^i - 1`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(upper_bound, count)` per non-empty log2 bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of every registered metric, alphabetically sorted.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)` per histogram.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl Snapshot {
    /// Looks a counter or gauge up by name (counters win ties).
    pub fn value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .chain(self.gauges.iter())
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Looks a histogram up by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Prometheus text-format exposition (metric names sanitised:
    /// `.`/`-` become `_`). Histograms render as cumulative `_bucket`
    /// series with power-of-two `le` bounds plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.hists {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for &(le, count) in &h.buckets {
                cum += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }

    /// Human-readable summary table (the CLI's `--metrics` output).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.hists.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(0);
        for (name, v) in self.counters.iter().chain(self.gauges.iter()) {
            let _ = writeln!(out, "{name:width$}  {v}");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                out,
                "{name:width$}  count={} sum={} mean={:.1}",
                h.count,
                h.sum,
                h.mean()
            );
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::metrics_only();
        reg.counter("sat.conflicts").add(12);
        reg.set_gauge("serve.stats.sheds", 0);
        let h = reg.histogram("serve.queue_wait_us");
        h.observe(5);
        h.observe(100);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE sat_conflicts counter"));
        assert!(text.contains("sat_conflicts 12"));
        assert!(text.contains("# TYPE serve_stats_sheds gauge"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_queue_wait_us_sum 105"));
        assert!(text.contains("serve_queue_wait_us_count 2"));
    }

    #[test]
    fn table_lists_everything() {
        let reg = Registry::metrics_only();
        reg.counter("a.b").add(1);
        reg.histogram("c.d").observe(4);
        let table = reg.snapshot().to_table();
        assert!(table.contains("a.b"));
        assert!(table.contains("count=1 sum=4"));
    }
}
