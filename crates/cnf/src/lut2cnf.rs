//! ISOP-based LUT-netlist-to-CNF encoding — the paper's `lut2cnf` step.
//!
//! Each LUT output becomes one CNF variable; internal AND/NOT structure is
//! invisible to the solver. For a LUT computing `f` with output variable
//! `y`, the encoding emits
//!
//! * one clause `(¬cube ∨ y)` per cube of `ISOP(f)` (on-set implication),
//! * one clause `(¬cube ∨ ¬y)` per cube of `ISOP(¬f)` (off-set implication),
//!
//! which is the classic technology-mapped CNF construction of
//! Eén–Mishchenko–Sörensson and exactly `branching_complexity(f)` clauses —
//! the quantity the cost-customised mapper minimises.

use crate::lutnet::{LutNetlist, LutSignal};
use crate::types::{Cnf, CnfLit};

/// Mapping between LUT-netlist nodes and CNF variables.
#[derive(Clone, Debug)]
pub struct LutVarMap {
    /// CNF variable of node id `i` (inputs first, then LUTs).
    node_var: Vec<u32>,
    num_inputs: usize,
}

impl LutVarMap {
    /// CNF variable of netlist node `id`.
    pub fn node(&self, id: u32) -> u32 {
        self.node_var[id as usize]
    }

    /// CNF literal for a netlist signal.
    pub fn lit(&self, s: LutSignal) -> CnfLit {
        CnfLit::new(self.node(s.node), !s.compl)
    }

    /// CNF variables of the primary inputs, in input order.
    pub fn pi_vars(&self) -> &[u32] {
        &self.node_var[..self.num_inputs]
    }

    /// Extracts the input assignment from a SAT model.
    pub fn decode_inputs(&self, model: &[bool]) -> Vec<bool> {
        self.pi_vars()
            .iter()
            .map(|&v| model[(v - 1) as usize])
            .collect()
    }
}

/// Encodes the netlist into CNF (no output assertion).
pub fn lut_to_cnf(net: &LutNetlist) -> (Cnf, LutVarMap) {
    let mut cnf = Cnf::new();
    let total = net.num_inputs() + net.num_luts();
    let mut node_var = Vec::with_capacity(total);
    for _ in 0..total {
        node_var.push(cnf.fresh_var());
    }
    let map = LutVarMap {
        node_var,
        num_inputs: net.num_inputs(),
    };

    for (k, lut) in net.luts().iter().enumerate() {
        let y = CnfLit::pos(map.node((net.num_inputs() + k) as u32));
        emit_side(&mut cnf, &map, lut, y, true);
        emit_side(&mut cnf, &map, lut, y, false);
    }
    (cnf, map)
}

/// Emits the on-set (`onset = true`) or off-set clauses of one LUT.
fn emit_side(cnf: &mut Cnf, map: &LutVarMap, lut: &crate::lutnet::Lut, y: CnfLit, onset: bool) {
    let f = if onset { lut.tt.clone() } else { !&lut.tt };
    for cube in f.isop() {
        // cube -> (y or !y): clause is (¬lit for each cube literal) ∨ out.
        let mut clause: Vec<CnfLit> = Vec::with_capacity(cube.num_lits() as usize + 1);
        for (var, positive) in cube.lits() {
            let fanin = lut.fanins[var];
            // Cube literal "fanin-signal == positive"; its negation in CNF.
            let sig_lit = map.lit(fanin.xor_compl(!positive));
            clause.push(!sig_lit);
        }
        clause.push(if onset { y } else { !y });
        cnf.add_clause(clause);
    }
}

/// Encodes the netlist and asserts satisfaction: the OR of all outputs must
/// be true (a single output gets a unit clause).
///
/// # Panics
/// Panics if the netlist has no outputs.
pub fn lut_to_cnf_sat_instance(net: &LutNetlist) -> (Cnf, LutVarMap) {
    assert!(net.num_outputs() > 0, "instance needs at least one output");
    let (mut cnf, map) = lut_to_cnf(net);
    let lits: Vec<CnfLit> = net.outputs().iter().map(|&s| map.lit(s)).collect();
    cnf.add_clause(lits);
    (cnf, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Tt;

    fn brute_force_models(cnf: &Cnf) -> Vec<Vec<bool>> {
        let n = cnf.num_vars() as usize;
        assert!(n <= 16);
        (0..(1u64 << n))
            .map(|m| (0..n).map(|i| m >> i & 1 != 0).collect::<Vec<bool>>())
            .filter(|a| cnf.eval(a))
            .collect()
    }

    #[test]
    fn clause_count_equals_branching_complexity() {
        let mut net = LutNetlist::new(4);
        let ins: Vec<LutSignal> = (0..4).map(LutSignal::new).collect();
        let xor4 = Tt::var(4, 0) ^ Tt::var(4, 1) ^ Tt::var(4, 2) ^ Tt::var(4, 3);
        let l = net.add_lut(ins, xor4.clone());
        net.add_output(l);
        let (cnf, _) = lut_to_cnf(&net);
        assert_eq!(cnf.num_clauses(), xor4.branching_complexity());
    }

    #[test]
    fn models_define_gate_semantics() {
        // Single AND LUT: every model must satisfy y == a & b.
        let mut net = LutNetlist::new(2);
        let l = net.add_lut(
            vec![LutSignal::new(0), LutSignal::new(1)],
            Tt::from_u64(2, 0x8),
        );
        net.add_output(l);
        let (cnf, map) = lut_to_cnf(&net);
        let y = map.node(2);
        for m in brute_force_models(&cnf) {
            let (a, b) = (m[(map.node(0) - 1) as usize], m[(map.node(1) - 1) as usize]);
            assert_eq!(m[(y - 1) as usize], a && b);
        }
        // And the constraint is complete: exactly 4 models (one per input pair).
        assert_eq!(brute_force_models(&cnf).len(), 4);
    }

    #[test]
    fn sat_instance_models_evaluate_to_true() {
        // out = (a & b) ^ c, asserted.
        let mut net = LutNetlist::new(3);
        let and = net.add_lut(
            vec![LutSignal::new(0), LutSignal::new(1)],
            Tt::from_u64(2, 0x8),
        );
        let xor = net.add_lut(vec![and, LutSignal::new(2)], Tt::from_u64(2, 0x6));
        net.add_output(xor);
        let (cnf, map) = lut_to_cnf_sat_instance(&net);
        let models = brute_force_models(&cnf);
        assert!(!models.is_empty());
        for m in models {
            let ins = map.decode_inputs(&m);
            assert_eq!(net.eval(&ins), vec![true]);
        }
    }

    #[test]
    fn constant_lut_encodes_units() {
        let mut net = LutNetlist::new(1);
        let zero = net.add_lut(vec![LutSignal::new(0)], Tt::zero(1));
        net.add_output(zero);
        let (cnf, _) = lut_to_cnf_sat_instance(&net);
        assert!(
            brute_force_models(&cnf).is_empty(),
            "constant-0 output asserted true"
        );
    }

    #[test]
    fn complemented_signals_respected() {
        // out = !( !a & b ) via complement flags.
        let mut net = LutNetlist::new(2);
        let l = net.add_lut(
            vec![!LutSignal::new(0), LutSignal::new(1)],
            Tt::from_u64(2, 0x8),
        );
        net.add_output(!l);
        let (cnf, map) = lut_to_cnf_sat_instance(&net);
        for m in brute_force_models(&cnf) {
            let ins = map.decode_inputs(&m);
            assert_eq!(net.eval(&ins), vec![true]);
        }
        // UNSAT pattern check: a=0,b=1 makes the output 0; ensure no model has it.
        for m in brute_force_models(&cnf) {
            let ins = map.decode_inputs(&m);
            assert!(ins[0] || !ins[1]);
        }
    }
}
