//! LUT netlists — the output of technology mapping.
//!
//! A [`LutNetlist`] is a DAG of k-input look-up tables over the primary
//! inputs. The paper's framework maps the synthesised AIG into such a
//! netlist (hiding all internal AND/NOT structure) and then re-encodes it
//! into CNF with one variable per LUT output only.

use aig::Tt;

/// A signal in a LUT netlist: a node id plus a complement flag.
///
/// Node ids `0..num_inputs` are the primary inputs; ids `num_inputs..` are
/// LUTs in topological order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LutSignal {
    /// Node id.
    pub node: u32,
    /// Complement flag.
    pub compl: bool,
}

impl LutSignal {
    /// A non-complemented reference to `node`.
    pub fn new(node: u32) -> LutSignal {
        LutSignal { node, compl: false }
    }

    /// This signal with the complement flag XOR-ed by `c`.
    pub fn xor_compl(self, c: bool) -> LutSignal {
        LutSignal {
            node: self.node,
            compl: self.compl ^ c,
        }
    }
}

impl std::ops::Not for LutSignal {
    type Output = LutSignal;
    fn not(self) -> LutSignal {
        LutSignal {
            node: self.node,
            compl: !self.compl,
        }
    }
}

/// One k-input LUT.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lut {
    /// Fanin signals; `tt` variable `i` reads `fanins[i]`.
    pub fanins: Vec<LutSignal>,
    /// The implemented function over the fanins.
    pub tt: Tt,
}

/// A combinational LUT netlist.
#[derive(Clone, Debug, Default)]
pub struct LutNetlist {
    num_inputs: usize,
    luts: Vec<Lut>,
    outputs: Vec<LutSignal>,
}

impl LutNetlist {
    /// An empty netlist with `num_inputs` primary inputs.
    pub fn new(num_inputs: usize) -> LutNetlist {
        LutNetlist {
            num_inputs,
            luts: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of LUTs.
    pub fn num_luts(&self) -> usize {
        self.luts.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The LUTs, in topological order.
    pub fn luts(&self) -> &[Lut] {
        &self.luts
    }

    /// The output signals.
    pub fn outputs(&self) -> &[LutSignal] {
        &self.outputs
    }

    /// Largest LUT fanin count in the netlist (0 if there are no LUTs).
    pub fn max_fanin(&self) -> usize {
        self.luts.iter().map(|l| l.fanins.len()).max().unwrap_or(0)
    }

    /// Appends a LUT and returns its signal.
    ///
    /// # Panics
    /// Panics if the truth-table arity does not match the fanin count or a
    /// fanin refers to a node not yet defined.
    pub fn add_lut(&mut self, fanins: Vec<LutSignal>, tt: Tt) -> LutSignal {
        assert_eq!(tt.nvars(), fanins.len(), "LUT arity mismatch");
        let next_id = (self.num_inputs + self.luts.len()) as u32;
        for f in &fanins {
            assert!(f.node < next_id, "LUT fanin must already be defined");
        }
        self.luts.push(Lut { fanins, tt });
        LutSignal::new(next_id)
    }

    /// Registers an output signal.
    ///
    /// # Panics
    /// Panics if the signal refers to an undefined node.
    pub fn add_output(&mut self, s: LutSignal) {
        assert!(
            (s.node as usize) < self.num_inputs + self.luts.len(),
            "output out of range"
        );
        self.outputs.push(s);
    }

    /// Evaluates the netlist on one Boolean input assignment.
    ///
    /// # Panics
    /// Panics if `inputs.len() != num_inputs`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "wrong number of input values"
        );
        let mut val: Vec<bool> = Vec::with_capacity(self.num_inputs + self.luts.len());
        val.extend_from_slice(inputs);
        for lut in &self.luts {
            let mut minterm = 0usize;
            for (i, f) in lut.fanins.iter().enumerate() {
                if val[f.node as usize] ^ f.compl {
                    minterm |= 1 << i;
                }
            }
            val.push(lut.tt.bit(minterm));
        }
        self.outputs
            .iter()
            .map(|s| val[s.node as usize] ^ s.compl)
            .collect()
    }

    /// Sum of per-LUT branching complexity (`#isop(f) + #isop(!f)`), the
    /// paper's customised netlist cost; also the exact number of gate
    /// clauses [`crate::lut2cnf`] will emit.
    pub fn total_branching_complexity(&self) -> usize {
        self.luts.iter().map(|l| l.tt.branching_complexity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_two_level() {
        // out = (a & b) ^ c
        let mut net = LutNetlist::new(3);
        let and = net.add_lut(
            vec![LutSignal::new(0), LutSignal::new(1)],
            Tt::from_u64(2, 0x8),
        );
        let xor = net.add_lut(vec![and, LutSignal::new(2)], Tt::from_u64(2, 0x6));
        net.add_output(xor);
        for m in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            let want = (ins[0] && ins[1]) ^ ins[2];
            assert_eq!(net.eval(&ins), vec![want], "m={m}");
        }
    }

    #[test]
    fn complemented_fanins_and_outputs() {
        let mut net = LutNetlist::new(2);
        let l = net.add_lut(
            vec![!LutSignal::new(0), LutSignal::new(1)],
            Tt::from_u64(2, 0x8),
        );
        net.add_output(!l);
        // out = !(!a & b)
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(net.eval(&[a, b]), vec![a || !b]);
        }
    }

    #[test]
    fn branching_totals() {
        let mut net = LutNetlist::new(2);
        let _and = net.add_lut(
            vec![LutSignal::new(0), LutSignal::new(1)],
            Tt::from_u64(2, 0x8),
        );
        let _xor = net.add_lut(
            vec![LutSignal::new(0), LutSignal::new(1)],
            Tt::from_u64(2, 0x6),
        );
        assert_eq!(net.total_branching_complexity(), 3 + 4);
    }

    #[test]
    #[should_panic(expected = "fanin must already be defined")]
    fn forward_reference_rejected() {
        let mut net = LutNetlist::new(1);
        net.add_lut(vec![LutSignal::new(5)], Tt::from_u64(1, 0x2));
    }
}
