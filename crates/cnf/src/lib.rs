//! # `cnf` — CNF infrastructure for Circuit-SAT preprocessing
//!
//! Everything between circuits and solvers:
//!
//! * [`Cnf`]/[`CnfLit`] formula types and DIMACS I/O ([`dimacs`]),
//! * [`tseitin`] — direct AIG-to-CNF encoding (the paper's *Baseline*),
//! * [`lutnet::LutNetlist`] — the mapped-netlist exchange type,
//! * [`lut2cnf`] — the ISOP-based LUT-to-CNF encoding that hides internal
//!   logic and whose clause count *is* the paper's branching complexity.
//!
//! ```
//! use aig::Aig;
//! use cnf::tseitin::tseitin_sat_instance;
//!
//! let mut g = Aig::new();
//! let a = g.add_pi();
//! let b = g.add_pi();
//! let x = g.xor(a, b);
//! g.add_po(x);
//! let (formula, _map) = tseitin_sat_instance(&g);
//! assert!(formula.num_clauses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dimacs;
pub mod lut2cnf;
pub mod lutnet;
pub mod tseitin;
mod types;

pub use lut2cnf::{lut_to_cnf, lut_to_cnf_sat_instance, LutVarMap};
pub use lutnet::{Lut, LutNetlist, LutSignal};
pub use tseitin::{tseitin, tseitin_sat_instance, VarMap};
pub use types::{Cnf, CnfLit};
