//! CNF formula types.

use std::fmt;

/// A CNF literal in DIMACS convention: a non-zero integer whose absolute
/// value is the 1-based variable index and whose sign is the polarity.
///
/// ```
/// use cnf::CnfLit;
/// let x3 = CnfLit::pos(3);
/// assert_eq!((!x3).to_dimacs(), -3);
/// assert_eq!(x3.var(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CnfLit(i32);

impl CnfLit {
    /// Positive literal of 1-based variable `v`.
    ///
    /// # Panics
    /// Panics if `v == 0` or `v > i32::MAX as u32` (unrepresentable as a
    /// signed DIMACS integer).
    pub fn pos(v: u32) -> CnfLit {
        assert!(v != 0, "variables are 1-based");
        assert!(
            v <= i32::MAX as u32,
            "variable index overflows DIMACS range"
        );
        CnfLit(v as i32)
    }

    /// Negative literal of 1-based variable `v`.
    ///
    /// # Panics
    /// Panics if `v == 0` or `v > i32::MAX as u32` (unrepresentable as a
    /// signed DIMACS integer).
    pub fn neg(v: u32) -> CnfLit {
        assert!(v != 0, "variables are 1-based");
        assert!(
            v <= i32::MAX as u32,
            "variable index overflows DIMACS range"
        );
        CnfLit(-(v as i32))
    }

    /// Literal of variable `v` with the given polarity (`true` = positive).
    pub fn new(v: u32, positive: bool) -> CnfLit {
        if positive {
            CnfLit::pos(v)
        } else {
            CnfLit::neg(v)
        }
    }

    /// Builds a literal from a DIMACS integer.
    ///
    /// # Panics
    /// Panics if `raw == 0`, or if `raw == i32::MIN` — the one value whose
    /// negation (and hence [`Not`](std::ops::Not)) overflows `i32`.
    /// Untrusted input must be range-checked *before* this constructor;
    /// [`crate::dimacs::read_dimacs`] rejects such literals with a parse
    /// error instead.
    pub fn from_dimacs(raw: i32) -> CnfLit {
        assert!(raw != 0, "DIMACS literal cannot be zero");
        assert!(
            raw != i32::MIN,
            "DIMACS literal out of range (negation overflows)"
        );
        CnfLit(raw)
    }

    /// The DIMACS integer of this literal.
    #[inline]
    pub fn to_dimacs(self) -> i32 {
        self.0
    }

    /// The 1-based variable index.
    #[inline]
    pub fn var(self) -> u32 {
        self.0.unsigned_abs()
    }

    /// True for positive literals.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl std::ops::Not for CnfLit {
    type Output = CnfLit;
    #[inline]
    fn not(self) -> CnfLit {
        CnfLit(-self.0)
    }
}

impl fmt::Debug for CnfLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for CnfLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
///
/// Clauses are plain literal vectors; no normalisation is enforced beyond
/// what [`Cnf::add_clause`] provides (it drops duplicate literals and
/// detects tautologies).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<CnfLit>>,
}

impl Cnf {
    /// An empty formula over zero variables.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates one fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> u32 {
        self.num_vars += 1;
        self.num_vars
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    #[inline]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// The clauses of the formula.
    #[inline]
    pub fn clauses(&self) -> &[Vec<CnfLit>] {
        &self.clauses
    }

    /// Adds a clause; duplicate literals are removed, tautological clauses
    /// (containing `x` and `!x`) are silently dropped.
    ///
    /// Registers any variables the clause mentions.
    pub fn add_clause(&mut self, mut lits: Vec<CnfLit>) {
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0] == !w[1] {
                return; // tautology
            }
        }
        for l in &lits {
            self.num_vars = self.num_vars.max(l.var());
        }
        self.clauses.push(lits);
    }

    /// Adds a unit clause.
    pub fn add_unit(&mut self, lit: CnfLit) {
        self.add_clause(vec![lit]);
    }

    /// Evaluates the formula on a full assignment (`assignment[v-1]` is the
    /// value of variable `v`).
    ///
    /// # Panics
    /// Panics if the assignment is shorter than `num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars as usize,
            "assignment too short"
        );
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[(l.var() - 1) as usize] == l.is_positive())
        })
    }
}

impl Extend<Vec<CnfLit>> for Cnf {
    fn extend<T: IntoIterator<Item = Vec<CnfLit>>>(&mut self, iter: T) {
        for c in iter {
            self.add_clause(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        let l = CnfLit::from_dimacs(-7);
        assert_eq!(l.var(), 7);
        assert!(!l.is_positive());
        assert_eq!(!l, CnfLit::pos(7));
    }

    #[test]
    fn tautologies_dropped() {
        let mut f = Cnf::new();
        f.add_clause(vec![CnfLit::pos(1), CnfLit::neg(1)]);
        assert_eq!(f.num_clauses(), 0);
        f.add_clause(vec![CnfLit::pos(1), CnfLit::pos(1), CnfLit::neg(2)]);
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clauses()[0].len(), 2, "duplicates removed");
        assert_eq!(f.num_vars(), 2);
    }

    #[test]
    fn eval_simple() {
        let mut f = Cnf::new();
        f.add_clause(vec![CnfLit::pos(1), CnfLit::pos(2)]);
        f.add_unit(CnfLit::neg(1));
        assert!(f.eval(&[false, true]));
        assert!(!f.eval(&[true, true]));
        assert!(!f.eval(&[false, false]));
    }

    #[test]
    fn fresh_vars_monotone() {
        let mut f = Cnf::new();
        let a = f.fresh_var();
        let b = f.fresh_var();
        assert_eq!((a, b), (1, 2));
        f.ensure_vars(10);
        assert_eq!(f.fresh_var(), 11);
    }
}
