//! Tseitin encoding of AIGs — the paper's *Baseline* CNF pipeline.
//!
//! Every AND node reachable from a PO gets a CNF variable; each gate
//! contributes the three standard clauses. This is what "encoding the
//! circuit-based instances directly into CNFs" means in the paper's
//! evaluation (Sec. IV-B, *Baseline*).

use crate::types::{Cnf, CnfLit};
use aig::{Aig, Lit, Var};

/// Mapping between AIG nodes and CNF variables produced by an encoding.
#[derive(Clone, Debug)]
pub struct VarMap {
    /// `node_var[v]` is the CNF variable of AIG node `v` (0 = not encoded).
    node_var: Vec<u32>,
    /// CNF variable of each PI, in PI order.
    pi_vars: Vec<u32>,
}

impl VarMap {
    /// CNF variable of AIG node `v`, if encoded.
    pub fn node(&self, v: Var) -> Option<u32> {
        match self.node_var.get(v as usize) {
            Some(&x) if x != 0 => Some(x),
            _ => None,
        }
    }

    /// CNF literal for AIG literal `l`, if its node is encoded.
    pub fn lit(&self, l: Lit) -> Option<CnfLit> {
        self.node(l.var()).map(|v| CnfLit::new(v, !l.is_compl()))
    }

    /// CNF variables of the primary inputs, in PI order.
    pub fn pi_vars(&self) -> &[u32] {
        &self.pi_vars
    }

    /// Extracts the PI assignment from a SAT model
    /// (`model[v-1]` = value of CNF variable `v`).
    pub fn decode_inputs(&self, model: &[bool]) -> Vec<bool> {
        self.pi_vars
            .iter()
            .map(|&v| model[(v - 1) as usize])
            .collect()
    }
}

/// Tseitin-encodes the cone of the POs.
///
/// Returns the clause set (without any output assertion) and the variable
/// map. Unreachable logic is not encoded. Constant POs are handled by the
/// caller via [`VarMap::lit`] returning the variable of node 0, which is
/// constrained to false.
pub fn tseitin(aig: &Aig) -> (Cnf, VarMap) {
    let reach = aig.reachable_from_pos();
    let mut cnf = Cnf::new();
    let mut node_var = vec![0u32; aig.num_nodes()];

    // Constant node: encode only if some PO is constant.
    let need_const = aig.pos().iter().any(|l| l.is_const());
    if need_const {
        let v = cnf.fresh_var();
        node_var[0] = v;
        cnf.add_unit(CnfLit::neg(v));
    }

    let mut pi_vars = Vec::with_capacity(aig.num_pis());
    for &pi in aig.pis() {
        let v = cnf.fresh_var();
        node_var[pi as usize] = v;
        pi_vars.push(v);
    }

    for nv in aig.iter_ands() {
        if !reach[nv as usize] {
            continue;
        }
        let node = aig.node(nv);
        let y = cnf.fresh_var();
        node_var[nv as usize] = y;
        let a = encode_fanin(&node_var, node.fanin0());
        let b = encode_fanin(&node_var, node.fanin1());
        let yl = CnfLit::pos(y);
        // y -> a, y -> b, (a & b) -> y
        cnf.add_clause(vec![!yl, a]);
        cnf.add_clause(vec![!yl, b]);
        cnf.add_clause(vec![yl, !a, !b]);
    }

    (cnf, VarMap { node_var, pi_vars })
}

fn encode_fanin(node_var: &[u32], l: Lit) -> CnfLit {
    let v = node_var[l.var() as usize];
    debug_assert!(v != 0, "fanin of reachable node must be encoded");
    CnfLit::new(v, !l.is_compl())
}

/// Tseitin-encodes and asserts satisfaction of the instance: the OR of all
/// POs must be true (a single-PO instance gets a unit clause).
///
/// This is the complete *Baseline* CSAT-to-CNF conversion.
///
/// # Panics
/// Panics if the graph has no POs.
pub fn tseitin_sat_instance(aig: &Aig) -> (Cnf, VarMap) {
    assert!(aig.num_pos() > 0, "instance needs at least one PO");
    let (mut cnf, map) = tseitin(aig);
    let po_lits: Vec<CnfLit> = aig
        .pos()
        .iter()
        .map(|&po| {
            if po == Lit::TRUE {
                // Trivially satisfied output: encode as an always-true clause
                // by just skipping; handled below.
                CnfLit::pos(cnf.num_vars().max(1))
            } else {
                map.lit(po).expect("PO cone encoded")
            }
        })
        .collect();
    if aig.pos().contains(&Lit::TRUE) {
        // The instance is trivially SAT; emit no assertion.
        return (cnf, map);
    }
    cnf.add_clause(po_lits);
    (cnf, map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_sat(cnf: &Cnf) -> Option<Vec<bool>> {
        let n = cnf.num_vars() as usize;
        assert!(n <= 20, "brute force limited to 20 vars");
        for m in 0..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
            if cnf.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    #[test]
    fn and_instance_sat_model_is_valid() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        let (cnf, map) = tseitin_sat_instance(&g);
        let model = brute_force_sat(&cnf).expect("AND output can be 1");
        let ins = map.decode_inputs(&model);
        assert_eq!(g.eval(&ins), vec![true]);
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let x = g.and(a, a); // folds to a
        let y = g.and(x, !a); // folds to false
        assert_eq!(y, Lit::FALSE);
        g.add_po(y);
        let (cnf, _) = tseitin_sat_instance(&g);
        assert!(brute_force_sat(&cnf).is_none());
    }

    #[test]
    fn xor_counts_and_models() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let (cnf, map) = tseitin_sat_instance(&g);
        // 2 PIs + 3 AND gates encoded.
        assert_eq!(cnf.num_vars(), 5);
        let model = brute_force_sat(&cnf).unwrap();
        let ins = map.decode_inputs(&model);
        assert_eq!(g.eval(&ins), vec![true]);
    }

    #[test]
    fn dead_logic_not_encoded() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let live = g.and(a, b);
        let _dead = g.or(a, b);
        g.add_po(live);
        let (cnf, _) = tseitin(&g);
        // 2 PIs + 1 live AND.
        assert_eq!(cnf.num_vars(), 3);
    }

    #[test]
    fn multi_po_asserts_disjunction() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(a, !b);
        g.add_po(x);
        g.add_po(y);
        let (cnf, map) = tseitin_sat_instance(&g);
        let model = brute_force_sat(&cnf).unwrap();
        let ins = map.decode_inputs(&model);
        let outs = g.eval(&ins);
        assert!(outs[0] || outs[1]);
    }

    #[test]
    fn trivially_true_po() {
        let mut g = Aig::new();
        let _ = g.add_pi();
        g.add_po(Lit::TRUE);
        let (cnf, _) = tseitin_sat_instance(&g);
        assert!(brute_force_sat(&cnf).is_some());
    }

    #[test]
    fn constant_false_po_unsat() {
        let mut g = Aig::new();
        let _ = g.add_pi();
        g.add_po(Lit::FALSE);
        let (cnf, _) = tseitin_sat_instance(&g);
        assert!(brute_force_sat(&cnf).is_none());
    }
}
