//! DIMACS CNF reader and writer.

use crate::types::{Cnf, CnfLit};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors produced while parsing DIMACS files.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content with a description.
    Malformed(String),
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error while reading dimacs: {e}"),
            ParseDimacsError::Malformed(m) => write!(f, "malformed dimacs file: {m}"),
        }
    }
}

impl std::error::Error for ParseDimacsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseDimacsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseDimacsError {
    fn from(e: io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

/// Reads a DIMACS CNF file.
///
/// Comment lines (`c ...`) are skipped; the `p cnf V C` header is optional
/// but validated when present: `p` must be its own whitespace-delimited
/// token (a glued `pcnf 2 1` is rejected), at most one header is allowed,
/// and both the declared variable and clause counts are checked against
/// the clauses actually parsed. CRLF line endings are accepted. This is
/// the only untrusted input surface of the pipeline, so every malformed
/// shape must surface as a [`ParseDimacsError`] — never a panic.
///
/// # Errors
/// Returns [`ParseDimacsError`] on I/O failure or malformed content.
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut declared: Option<(u32, usize)> = None;
    let mut parsed_clauses = 0usize;
    let mut current: Vec<CnfLit> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim(); // also strips the \r of CRLF endings
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            // Token-wise header parse: `p` glued to the format name
            // (`pcnf 2 1`) is malformed, not a header variant.
            let mut it = line.split_whitespace();
            if it.next() != Some("p") || it.next() != Some("cnf") {
                return Err(ParseDimacsError::Malformed(
                    "expected 'p cnf' header".into(),
                ));
            }
            if declared.is_some() {
                return Err(ParseDimacsError::Malformed(
                    "duplicate 'p cnf' header".into(),
                ));
            }
            let v: u32 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseDimacsError::Malformed("bad variable count".into()))?;
            // Same cap as literals: DIMACS variables are signed i32, and an
            // untrusted header must not be able to command a per-variable
            // allocation downstream that dwarfs the file itself.
            if v > i32::MAX as u32 {
                return Err(ParseDimacsError::Malformed(format!(
                    "declared variable count {v} out of range"
                )));
            }
            let c: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseDimacsError::Malformed("bad clause count".into()))?;
            if it.next().is_some() {
                return Err(ParseDimacsError::Malformed(
                    "trailing tokens after 'p cnf V C' header".into(),
                ));
            }
            declared = Some((v, c));
            cnf.ensure_vars(v);
            continue;
        }
        for tok in line.split_whitespace() {
            let raw: i32 = tok
                .parse()
                .map_err(|_| ParseDimacsError::Malformed(format!("bad literal '{tok}'")))?;
            if raw == 0 {
                parsed_clauses += 1;
                cnf.add_clause(std::mem::take(&mut current));
            } else if raw == i32::MIN {
                // `CnfLit` negation is `-raw`, which overflows i32 for
                // this one value: reject it here instead of panicking (or
                // wrapping) later inside the solver.
                return Err(ParseDimacsError::Malformed(format!(
                    "literal '{tok}' out of range"
                )));
            } else {
                current.push(CnfLit::from_dimacs(raw));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::Malformed(
            "last clause not terminated by 0".into(),
        ));
    }
    if let Some((v, c)) = declared {
        if cnf.num_vars() > v {
            return Err(ParseDimacsError::Malformed(
                "clause references variable beyond declared count".into(),
            ));
        }
        // Compare against clauses as parsed, not `cnf.num_clauses()`:
        // normalisation may silently drop tautologies.
        if parsed_clauses != c {
            return Err(ParseDimacsError::Malformed(format!(
                "header declares {c} clauses, file contains {parsed_clauses}"
            )));
        }
    }
    Ok(cnf)
}

/// Writes the formula in DIMACS CNF format.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_dimacs<W: Write>(cnf: &Cnf, mut w: W) -> io::Result<()> {
    writeln!(w, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for lit in clause {
            write!(w, "{} ", lit.to_dimacs())?;
        }
        writeln!(w, "0")?;
    }
    Ok(())
}

/// Serialises to an in-memory DIMACS string.
pub fn to_dimacs_string(cnf: &Cnf) -> String {
    let mut buf = Vec::new();
    write_dimacs(cnf, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("dimacs output is ASCII")
}

/// Parses an in-memory DIMACS string.
///
/// # Errors
/// Same as [`read_dimacs`].
pub fn from_dimacs_str(s: &str) -> Result<Cnf, ParseDimacsError> {
    read_dimacs(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = Cnf::new();
        f.add_clause(vec![CnfLit::pos(1), CnfLit::neg(3)]);
        f.add_unit(CnfLit::pos(2));
        let s = to_dimacs_string(&f);
        let g = from_dimacs_str(&s).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn comments_and_blank_lines() {
        let s = "c hello\n\np cnf 2 1\nc mid\n1 -2 0\n";
        let f = from_dimacs_str(s).unwrap();
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn multiline_clause() {
        let s = "p cnf 3 1\n1 2\n3 0\n";
        let f = from_dimacs_str(s).unwrap();
        assert_eq!(f.clauses()[0].len(), 3);
    }

    #[test]
    fn errors() {
        assert!(from_dimacs_str("p cnf x y\n").is_err());
        assert!(from_dimacs_str("1 2 3\n").is_err(), "unterminated clause");
        assert!(from_dimacs_str("p dnf 1 1\n1 0\n").is_err());
        assert!(
            from_dimacs_str("p cnf 1 1\n2 0\n").is_err(),
            "var beyond declared"
        );
    }
}
