//! Cut-cost models — where the paper's contribution plugs into mapping.
//!
//! A conventional mapper prices every LUT at 1 (area) and minimises LUT
//! count. The paper's cost-customised mapper instead prices a LUT by its
//! *branching complexity* `C(f) = |ISOP(f)| + |ISOP(¬f)|` (Fig. 3), which
//! equals the number of CNF clauses the LUT will contribute — so minimising
//! total cut cost directly minimises the branching load handed to the SAT
//! solver.

use aig::hash::FastMap;
use aig::Tt;
use std::cell::RefCell;

/// Prices a cut by the function it implements.
///
/// Implementations must be pure (same table, same cost); the mapper may
/// cache results.
pub trait CutCost {
    /// Cost of one LUT implementing `tt`.
    fn cut_cost(&self, tt: &Tt) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Conventional area cost: every LUT costs 1.
///
/// This is the *C. Mapper* arm of the paper's Fig. 5 ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct AreaCost;

impl CutCost for AreaCost {
    fn cut_cost(&self, _tt: &Tt) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "area"
    }
}

/// The paper's branching-complexity cost (with a small area tie-break so
/// equal-complexity mappings still prefer fewer LUTs).
///
/// ```
/// use aig::Tt;
/// use mapper::{BranchingCost, CutCost};
/// let cost = BranchingCost::new();
/// // Fig. 3: AND-like LUTs are cheaper than XOR-like LUTs.
/// assert!(cost.cut_cost(&Tt::from_u64(2, 0x8)) < cost.cut_cost(&Tt::from_u64(2, 0x6)));
/// ```
#[derive(Debug, Default)]
pub struct BranchingCost {
    cache: RefCell<FastMap<(usize, u64), f64>>,
}

impl BranchingCost {
    /// A fresh cost model with an empty memo table.
    pub fn new() -> BranchingCost {
        BranchingCost::default()
    }
}

impl CutCost for BranchingCost {
    fn cut_cost(&self, tt: &Tt) -> f64 {
        // Functions of up to 6 inputs fit one word; use it as the memo key.
        if tt.nvars() <= 6 {
            let key = (tt.nvars(), tt.to_u64());
            if let Some(&c) = self.cache.borrow().get(&key) {
                return c;
            }
            let c = tt.branching_complexity() as f64;
            self.cache.borrow_mut().insert(key, c);
            c
        } else {
            tt.branching_complexity() as f64
        }
    }

    fn name(&self) -> &'static str {
        "branching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_constant() {
        let c = AreaCost;
        assert_eq!(c.cut_cost(&Tt::from_u64(2, 0x8)), 1.0);
        assert_eq!(c.cut_cost(&Tt::from_u64(4, 0x6996)), 1.0);
    }

    #[test]
    fn branching_matches_fig3() {
        let c = BranchingCost::new();
        assert_eq!(c.cut_cost(&Tt::from_u64(2, 0x8)), 3.0); // AND
        assert_eq!(c.cut_cost(&Tt::from_u64(2, 0x6)), 4.0); // XOR
    }

    #[test]
    fn cache_is_transparent() {
        let c = BranchingCost::new();
        let t = Tt::from_u64(4, 0x1ee1);
        let a = c.cut_cost(&t);
        let b = c.cut_cost(&t);
        assert_eq!(a, b);
        assert_eq!(a, t.branching_complexity() as f64);
    }

    #[test]
    fn xor4_much_more_expensive_than_and4() {
        let c = BranchingCost::new();
        let and4 = Tt::var(4, 0) & Tt::var(4, 1) & Tt::var(4, 2) & Tt::var(4, 3);
        let xor4 = Tt::var(4, 0) ^ Tt::var(4, 1) ^ Tt::var(4, 2) ^ Tt::var(4, 3);
        assert!(c.cut_cost(&xor4) >= 3.0 * c.cut_cost(&and4));
    }
}
