//! Priority-cut k-LUT mapping with area-flow refinement.
//!
//! A simplified `if`-mapper: k-feasible priority cuts are enumerated once;
//! several area-flow passes pick, per node, the cut minimising
//! `cost(cut) + Σ flow(leaf)/refs(leaf)`, with reference estimates refined
//! from the previous pass's actual cover. The final cover is extracted from
//! the PO drivers downward and emitted as a [`LutNetlist`].
//!
//! Depth is deliberately *not* constrained: the consumer of the netlist is
//! a SAT solver, for which circuit delay is meaningless. (The paper keeps
//! mockturtle's delay constraint because its mapper requires one; see
//! DESIGN.md for the substitution note.)

use crate::cost::CutCost;
use aig::cut::{cut_function, enumerate_cuts, Cut, CutParams};
use aig::{Aig, Tt, Var};
use cnf::{LutNetlist, LutSignal};

/// Mapping parameters.
#[derive(Clone, Copy, Debug)]
pub struct MapParams {
    /// LUT input count (2..=6; the paper uses k = 4).
    pub k: usize,
    /// Priority cuts kept per node.
    pub max_cuts: usize,
    /// Area-flow refinement rounds after the first pass.
    pub rounds: usize,
    /// Delay constraint: `Some(slack)` restricts cut choice to cuts whose
    /// arrival meets the depth-optimal mapping's level plus `slack` LUT
    /// levels ("fixing the delay cost as a constraint", Sec. III-C2);
    /// `None` leaves depth unconstrained.
    pub depth_slack: Option<u32>,
}

impl Default for MapParams {
    fn default() -> MapParams {
        MapParams {
            k: 4,
            max_cuts: 8,
            rounds: 2,
            depth_slack: Some(0),
        }
    }
}

/// Maps the (PO-reachable logic of the) graph into a LUT netlist.
///
/// Inputs are preserved 1:1 (netlist input `i` is AIG PI `i`), outputs
/// correspond to the AIG POs in order.
///
/// # Panics
/// Panics if `params.k` is outside `2..=6`.
pub fn map_luts(aig: &Aig, params: &MapParams, cost: &dyn CutCost) -> LutNetlist {
    assert!((2..=6).contains(&params.k), "LUT size must be 2..=6");
    let cuts = enumerate_cuts(
        aig,
        &CutParams {
            k: params.k,
            max_cuts: params.max_cuts,
        },
    );

    // Pre-compute per-cut functions (the cone is evaluated once per cut).
    let n = aig.num_nodes();
    let mut cut_tts: Vec<Vec<Option<Tt>>> = vec![Vec::new(); n];
    for v in aig.iter_ands() {
        let vi = v as usize;
        cut_tts[vi] = cuts[vi]
            .iter()
            .map(|c| {
                if c.leaves() == [v] {
                    None // trivial cut is not implementable
                } else {
                    Some(cut_function(aig, v, c.leaves()))
                }
            })
            .collect();
    }

    // Depth labels of the depth-optimal mapping (LUT levels).
    let opt_depth = depth_labels(aig, &cuts);

    // Reference estimates start at structural fanout.
    let mut est_refs: Vec<f64> = aig
        .fanout_counts()
        .iter()
        .map(|&c| (c as f64).max(1.0))
        .collect();

    let mut best_cut: Vec<usize> = vec![usize::MAX; n];
    // Required times: unconstrained until a cover exists.
    let mut required: Vec<u32> = vec![u32::MAX; n];
    for round in 0..=params.rounds {
        area_flow_pass(
            aig,
            &cuts,
            &cut_tts,
            cost,
            &est_refs,
            &required,
            &opt_depth,
            &mut best_cut,
        );
        if round < params.rounds {
            // Refine reference estimates from the actual cover, blending
            // with the previous estimate to damp oscillation.
            let refs = cover_refs(aig, &cuts, &best_cut);
            for (e, &r) in est_refs.iter_mut().zip(&refs) {
                *e = ((*e + r as f64) / 2.0).max(1.0);
            }
            if let Some(slack) = params.depth_slack {
                compute_required(aig, &cuts, &best_cut, &opt_depth, slack, &mut required);
            }
        }
    }

    derive_netlist(aig, &cuts, &cut_tts, &best_cut)
}

/// Depth-optimal arrival labels: the minimum LUT level of every node.
fn depth_labels(aig: &Aig, cuts: &[Vec<Cut>]) -> Vec<u32> {
    let mut depth = vec![0u32; aig.num_nodes()];
    for v in aig.iter_ands() {
        let vi = v as usize;
        let mut best = u32::MAX;
        for cut in &cuts[vi] {
            if cut.leaves() == [v] {
                continue;
            }
            let arr = 1 + cut
                .leaves()
                .iter()
                .map(|&l| depth[l as usize])
                .max()
                .unwrap_or(0);
            best = best.min(arr);
        }
        depth[vi] = best;
    }
    depth
}

/// Required times induced by the current cover, anchored at the
/// depth-optimal PO level plus `slack`.
fn compute_required(
    aig: &Aig,
    cuts: &[Vec<Cut>],
    best_cut: &[usize],
    opt_depth: &[u32],
    slack: u32,
    required: &mut [u32],
) {
    for r in required.iter_mut() {
        *r = u32::MAX;
    }
    for po in aig.pos() {
        let v = po.var() as usize;
        let target = opt_depth[v].saturating_add(slack);
        required[v] = required[v].min(target);
    }
    // Reverse topological propagation over the cover.
    let refs = cover_refs(aig, cuts, best_cut);
    for v in (1..aig.num_nodes() as Var).rev() {
        let vi = v as usize;
        if !aig.node(v).is_and() || refs[vi] == 0 || required[vi] == u32::MAX {
            continue;
        }
        let cut = &cuts[vi][best_cut[vi]];
        let req_leaf = required[vi].saturating_sub(1);
        for &l in cut.leaves() {
            required[l as usize] = required[l as usize].min(req_leaf);
        }
    }
}

/// One bottom-up area-flow pass; fills `best_cut` and returns per-node flow.
#[allow(clippy::too_many_arguments)]
fn area_flow_pass(
    aig: &Aig,
    cuts: &[Vec<Cut>],
    cut_tts: &[Vec<Option<Tt>>],
    cost: &dyn CutCost,
    est_refs: &[f64],
    required: &[u32],
    opt_depth: &[u32],
    best_cut: &mut [usize],
) -> Vec<f64> {
    let mut flow = vec![0.0f64; aig.num_nodes()];
    let mut arrival = vec![0u32; aig.num_nodes()];
    for v in aig.iter_ands() {
        let vi = v as usize;
        let mut best = f64::INFINITY;
        let mut best_i = usize::MAX;
        let mut best_arr = u32::MAX;
        for (i, cut) in cuts[vi].iter().enumerate() {
            let Some(tt) = &cut_tts[vi][i] else { continue };
            let arr = 1 + cut
                .leaves()
                .iter()
                .map(|&l| arrival[l as usize])
                .max()
                .unwrap_or(0);
            // Depth feasibility: before required times exist (first pass,
            // or nodes outside the previous cover) the node's depth-optimal
            // label is the limit, making the first pass depth-oriented.
            let limit = if required[vi] != u32::MAX {
                required[vi]
            } else {
                opt_depth[vi]
            };
            let feasible = arr <= limit;
            let mut f = cost.cut_cost(tt);
            for &l in cut.leaves() {
                f += flow[l as usize] / est_refs[l as usize];
            }
            let better = match (feasible, best_arr != u32::MAX) {
                (true, false) => true, // first feasible beats any infeasible
                (true, true) => f < best - 1e-12,
                (false, true) => false,
                (false, false) => f < best - 1e-12,
            };
            if better {
                best = f;
                best_i = i;
                best_arr = if feasible { arr } else { u32::MAX };
            }
        }
        debug_assert!(best_i != usize::MAX, "every AND node has a non-trivial cut");
        flow[vi] = best;
        arrival[vi] = 1 + cuts[vi][best_i]
            .leaves()
            .iter()
            .map(|&l| arrival[l as usize])
            .max()
            .unwrap_or(0);
        best_cut[vi] = best_i;
    }
    flow
}

/// Reference counts induced by the current choice of best cuts.
fn cover_refs(aig: &Aig, cuts: &[Vec<Cut>], best_cut: &[usize]) -> Vec<u32> {
    let mut refs = vec![0u32; aig.num_nodes()];
    let mut stack: Vec<Var> = Vec::new();
    for po in aig.pos() {
        refs[po.var() as usize] += 1;
        if aig.node(po.var()).is_and() && refs[po.var() as usize] == 1 {
            stack.push(po.var());
        }
    }
    while let Some(v) = stack.pop() {
        let cut = &cuts[v as usize][best_cut[v as usize]];
        for &l in cut.leaves() {
            refs[l as usize] += 1;
            if aig.node(l).is_and() && refs[l as usize] == 1 {
                stack.push(l);
            }
        }
    }
    refs
}

/// Extracts the cover and builds the netlist.
fn derive_netlist(
    aig: &Aig,
    cuts: &[Vec<Cut>],
    cut_tts: &[Vec<Option<Tt>>],
    best_cut: &[usize],
) -> LutNetlist {
    let mut net = LutNetlist::new(aig.num_pis());

    // Mark required AND nodes (cover roots).
    let mut required = vec![false; aig.num_nodes()];
    let mut stack: Vec<Var> = Vec::new();
    for po in aig.pos() {
        let v = po.var();
        if aig.node(v).is_and() && !required[v as usize] {
            required[v as usize] = true;
            stack.push(v);
        }
    }
    while let Some(v) = stack.pop() {
        let cut = &cuts[v as usize][best_cut[v as usize]];
        for &l in cut.leaves() {
            if aig.node(l).is_and() && !required[l as usize] {
                required[l as usize] = true;
                stack.push(l);
            }
        }
    }

    // Emit LUTs in topological (index) order; map node -> netlist signal.
    let mut signal: Vec<Option<LutSignal>> = vec![None; aig.num_nodes()];
    for (i, &pi) in aig.pis().iter().enumerate() {
        signal[pi as usize] = Some(LutSignal::new(i as u32));
    }
    for v in aig.iter_ands() {
        if !required[v as usize] {
            continue;
        }
        let vi = v as usize;
        let cut = &cuts[vi][best_cut[vi]];
        let tt = cut_tts[vi][best_cut[vi]].clone().expect("non-trivial cut");
        let fanins: Vec<LutSignal> = cut
            .leaves()
            .iter()
            .map(|&l| signal[l as usize].expect("cut leaves precede the root"))
            .collect();
        signal[vi] = Some(net.add_lut(fanins, tt));
    }

    for po in aig.pos() {
        let v = po.var();
        let s = if po.is_const() {
            // Constant PO: a zero-input LUT holding the constant.
            let value = po.is_compl(); // !node0 == true
            net.add_lut(Vec::new(), if value { Tt::one(0) } else { Tt::zero(0) })
        } else {
            signal[v as usize]
                .expect("PO driver mapped")
                .xor_compl(po.is_compl())
        };
        net.add_output(s);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AreaCost, BranchingCost};
    use aig::Lit;

    fn random_aig(seed: u64, n_pis: usize, n_gates: usize) -> Aig {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Aig::new();
        let pis = g.add_pis(n_pis);
        let mut pool: Vec<Lit> = pis;
        for _ in 0..n_gates {
            let a = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let b = pool[rng.gen_range(0..pool.len())].xor_compl(rng.gen());
            let l = match rng.gen_range(0..4) {
                0 | 1 => g.and(a, b),
                2 => g.or(a, b),
                _ => g.xor(a, b),
            };
            pool.push(l);
        }
        let n = pool.len();
        g.add_po(pool[n - 1]);
        g.add_po(pool[n / 2].xor_compl(true));
        g
    }

    fn check_netlist_equiv(g: &Aig, net: &LutNetlist) {
        assert_eq!(net.num_inputs(), g.num_pis());
        assert_eq!(net.num_outputs(), g.num_pos());
        let n = g.num_pis();
        assert!(n <= 12);
        for m in 0..(1usize << n) {
            let ins: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(g.eval(&ins), net.eval(&ins), "m={m}");
        }
    }

    #[test]
    fn mapping_preserves_function() {
        for seed in 0..6 {
            let g = random_aig(seed, 7, 60);
            for k in [3usize, 4, 5, 6] {
                let net = map_luts(
                    &g,
                    &MapParams {
                        k,
                        max_cuts: 8,
                        rounds: 2,
                        ..MapParams::default()
                    },
                    &AreaCost,
                );
                check_netlist_equiv(&g, &net);
                assert!(net.max_fanin() <= k);
            }
        }
    }

    #[test]
    fn branching_cost_mapping_preserves_function() {
        for seed in 20..25 {
            let g = random_aig(seed, 8, 80);
            let net = map_luts(&g, &MapParams::default(), &BranchingCost::new());
            check_netlist_equiv(&g, &net);
        }
    }

    #[test]
    fn mapping_compresses_and_chain() {
        // A 16-input AND chain fits in five 4-LUTs.
        let mut g = Aig::new();
        let pis = g.add_pis(16);
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.and(acc, p);
        }
        g.add_po(acc);
        let net = map_luts(&g, &MapParams::default(), &AreaCost);
        assert!(net.num_luts() <= 5, "got {} LUTs", net.num_luts());
    }

    #[test]
    fn branching_cost_avoids_xor_packing() {
        // An XOR tree: the branching-cost mapper should produce a netlist
        // with no higher total branching complexity than the area mapper.
        let mut g = Aig::new();
        let pis = g.add_pis(8);
        let x = g.xor_many(&pis);
        g.add_po(x);
        let area_net = map_luts(&g, &MapParams::default(), &AreaCost);
        let br_net = map_luts(&g, &MapParams::default(), &BranchingCost::new());
        assert!(
            br_net.total_branching_complexity() <= area_net.total_branching_complexity(),
            "branching {} vs area {}",
            br_net.total_branching_complexity(),
            area_net.total_branching_complexity()
        );
    }

    #[test]
    fn constant_and_pi_outputs() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(Lit::TRUE);
        g.add_po(Lit::FALSE);
        g.add_po(a);
        g.add_po(!a);
        let net = map_luts(&g, &MapParams::default(), &AreaCost);
        assert_eq!(net.eval(&[true]), vec![true, false, true, false]);
        assert_eq!(net.eval(&[false]), vec![true, false, false, true]);
    }

    #[test]
    fn dead_logic_not_mapped() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let live = g.and(a, b);
        let _dead = g.xor(a, b);
        g.add_po(live);
        let net = map_luts(&g, &MapParams::default(), &AreaCost);
        assert_eq!(net.num_luts(), 1);
    }
}
