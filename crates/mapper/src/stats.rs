//! Mapping-quality statistics — the quantities the evaluation reasons
//! about, computed once per netlist.
//!
//! The paper's argument is that the *right* objective for SAT-oriented
//! mapping is total branching complexity, not LUT count or depth. This
//! module measures all three (plus the fanin histogram) so benches and
//! reports can show the trade-off each cost model makes.

use cnf::{LutNetlist, LutSignal};

/// Aggregate statistics of a mapped netlist.
#[derive(Clone, Debug, PartialEq)]
pub struct MappingStats {
    /// Number of LUTs (conventional "area").
    pub luts: usize,
    /// Logic depth in LUT levels.
    pub depth: usize,
    /// Total branching complexity (= CNF clauses `lut2cnf` will emit for
    /// the LUT bodies).
    pub branching: usize,
    /// LUT-count histogram by fanin arity; `fanin_histogram[k]` counts
    /// k-input LUTs.
    pub fanin_histogram: Vec<usize>,
    /// Mean branching complexity per LUT.
    pub mean_branching: f64,
}

impl MappingStats {
    /// Computes statistics for a netlist.
    ///
    /// ```
    /// use aig::Aig;
    /// use mapper::{map_luts, BranchingCost, MapParams, MappingStats};
    ///
    /// let mut g = Aig::new();
    /// let pis = g.add_pis(6);
    /// let x = g.xor_many(&pis);
    /// g.add_po(x);
    /// let net = map_luts(&g, &MapParams::default(), &BranchingCost::new());
    /// let stats = MappingStats::of(&net);
    /// assert!(stats.luts >= 2 && stats.depth >= 2);
    /// assert!(stats.branching >= stats.luts);
    /// ```
    pub fn of(net: &LutNetlist) -> MappingStats {
        let luts = net.num_luts();
        let branching = net.total_branching_complexity();
        let mut fanin_histogram = vec![0usize; net.max_fanin() + 1];
        for lut in net.luts() {
            fanin_histogram[lut.fanins.len()] += 1;
        }
        MappingStats {
            luts,
            depth: depth_of(net),
            branching,
            fanin_histogram,
            mean_branching: if luts == 0 {
                0.0
            } else {
                branching as f64 / luts as f64
            },
        }
    }
}

/// LUT-level depth: primary inputs are level 0, each LUT one more than its
/// deepest fanin.
fn depth_of(net: &LutNetlist) -> usize {
    let n_in = net.num_inputs();
    // Signal numbering: 0..n_in are inputs, n_in + i is LUT i.
    let mut level = vec![0usize; n_in + net.num_luts()];
    let of = |level: &[usize], s: &LutSignal| level[s.node as usize];
    for (i, lut) in net.luts().iter().enumerate() {
        let deepest = lut.fanins.iter().map(|f| of(&level, f)).max().unwrap_or(0);
        level[n_in + i] = deepest + 1;
    }
    net.outputs()
        .iter()
        .map(|o| of(&level, o))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{map_luts, AreaCost, BranchingCost, MapParams};
    use aig::Aig;

    fn xor_tree(n: usize) -> Aig {
        let mut g = Aig::new();
        let pis = g.add_pis(n);
        let x = g.xor_many(&pis);
        g.add_po(x);
        g
    }

    #[test]
    fn depth_counts_lut_levels() {
        // A 16-input XOR with k=4 needs at least two LUT levels.
        let g = xor_tree(16);
        let net = map_luts(&g, &MapParams::default(), &AreaCost);
        let s = MappingStats::of(&net);
        assert!(s.depth >= 2, "16 inputs cannot fit one 4-LUT level: {s:?}");
        assert!(s.luts >= 5, "16-input XOR needs ≥ 5 4-LUTs: {s:?}");
    }

    #[test]
    fn branching_equals_netlist_total() {
        let g = xor_tree(9);
        let net = map_luts(&g, &MapParams::default(), &BranchingCost::new());
        let s = MappingStats::of(&net);
        assert_eq!(s.branching, net.total_branching_complexity());
        assert!((s.mean_branching - s.branching as f64 / s.luts as f64).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_lut_count() {
        let mut g = Aig::new();
        let pis = g.add_pis(8);
        let a = g.and_many(&pis[..5]);
        let b = g.xor_many(&pis[3..]);
        let f = g.or(a, b);
        g.add_po(f);
        let net = map_luts(&g, &MapParams::default(), &BranchingCost::new());
        let s = MappingStats::of(&net);
        assert_eq!(s.fanin_histogram.iter().sum::<usize>(), s.luts);
        assert!(s.fanin_histogram.len() <= 5, "k=4 mapping: arity ≤ 4");
    }

    #[test]
    fn empty_netlist_is_all_zero() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(a); // wire: no LUTs at all
        let net = map_luts(&g, &MapParams::default(), &AreaCost);
        let s = MappingStats::of(&net);
        assert_eq!(s.luts, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.mean_branching, 0.0);
    }

    #[test]
    fn branching_cost_trades_area_for_complexity_on_xor_logic() {
        // On XOR-heavy logic the branching mapper may use more LUTs but
        // must never produce *higher* total branching than the area mapper.
        let g = xor_tree(24);
        let area = MappingStats::of(&map_luts(&g, &MapParams::default(), &AreaCost));
        let brch = MappingStats::of(&map_luts(&g, &MapParams::default(), &BranchingCost::new()));
        assert!(
            brch.branching <= area.branching,
            "branching mapper lost its own objective: {} vs {}",
            brch.branching,
            area.branching
        );
    }
}
