//! # `mapper` — k-LUT technology mapping with customisable cut costs
//!
//! The paper's third contribution is a *cost-customised* LUT mapper: instead
//! of minimising area or delay, cuts are priced by the **branching
//! complexity** of the function they implement (`|ISOP(f)| + |ISOP(¬f)|`,
//! Fig. 3), so the mapped netlist — and hence the CNF produced by
//! [`cnf::lut2cnf`] — presents the SAT solver with as few branchable
//! alternatives as possible.
//!
//! * [`map_luts`] — priority-cut mapping with area-flow refinement,
//! * [`CutCost`] — the pluggable pricing trait,
//! * [`AreaCost`] — conventional pricing (the *C. Mapper* ablation arm),
//! * [`BranchingCost`] — the paper's pricing.
//!
//! ```
//! use aig::Aig;
//! use mapper::{map_luts, BranchingCost, MapParams};
//!
//! let mut g = Aig::new();
//! let pis = g.add_pis(6);
//! let f = g.and_many(&pis);
//! g.add_po(f);
//! let net = map_luts(&g, &MapParams::default(), &BranchingCost::new());
//! assert!(net.num_luts() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod mapping;
mod stats;

pub use cost::{AreaCost, BranchingCost, CutCost};
pub use mapping::{map_luts, MapParams};
pub use stats::MappingStats;
